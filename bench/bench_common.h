// Shared helpers for the paper-exhibit bench harnesses.
//
// Every bench accepts --scale=<f> (default 1.0) to grow or shrink the
// workload; EXPERIMENTS.md records the default-scale runs. Efficiency
// benches pin D3L profiling to one thread so system comparisons are
// apples-to-apples.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "baselines/aurum.h"
#include "baselines/tus.h"
#include "baselines/yago_kb.h"
#include "benchdata/domains.h"
#include "benchdata/realish_gen.h"
#include "benchdata/synthetic_gen.h"
#include "core/join_graph.h"
#include "core/query.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace d3l::bench {

/// Writes `text` to `path`, reporting every failure mode (open, short
/// write, close/flush) as a Status. The --metrics-out CI artifacts go
/// through this so a full disk or bad path fails the bench run instead of
/// silently uploading a truncated snapshot.
inline Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (std::fclose(f) != 0) {
    return Status::IOError("close failed for " + path +
                           " (buffered bytes may be lost)");
  }
  if (written != text.size()) {
    return Status::IOError("short write to " + path + ": " +
                           std::to_string(written) + " of " +
                           std::to_string(text.size()) + " bytes");
  }
  return Status::OK();
}

/// Default-scale Synthetic repository (DESIGN.md §7: 900 tables at 1.0).
inline benchdata::GeneratedLake MakeSynthetic(double scale, uint64_t seed = 42) {
  benchdata::SyntheticOptions opts;
  opts.num_base_tables = eval::Scaled(30, scale);
  opts.derived_per_base = 29;
  opts.seed = seed;
  auto gen = benchdata::GenerateSynthetic(opts);
  gen.status().CheckOK();
  return std::move(*gen);
}

/// Default-scale Smaller-Real-like repository (~320 tables at 1.0).
inline benchdata::GeneratedLake MakeRealish(double scale, uint64_t seed = 7) {
  benchdata::RealishOptions opts;
  opts.num_clusters = eval::Scaled(40, scale);
  opts.seed = seed;
  auto gen = benchdata::GenerateRealish(opts);
  gen.status().CheckOK();
  return std::move(*gen);
}

/// Larger-Real-like lake of roughly `num_tables` tables (efficiency runs).
inline benchdata::GeneratedLake MakeLargerReal(size_t num_tables, uint64_t seed = 11) {
  auto gen = benchdata::GenerateRealish(benchdata::LargerRealOptions(num_tables, seed));
  gen.status().CheckOK();
  return std::move(*gen);
}

/// A ready-to-use TUS stack (KB built from the domain vocabulary).
struct TusStack {
  TusStack()
      : kb(benchdata::DomainRegistry::Instance().BuildKbVocabulary()), wem(),
        engine(baselines::TusOptions{}, &kb, &wem) {}
  baselines::YagoKb kb;
  SubwordHashModel wem;
  baselines::TusEngine engine;
};

/// Ranked table names from a D3L search result.
inline std::vector<std::string> NamesOf(const core::SearchResult& res,
                                        const DataLake& lake) {
  std::vector<std::string> names;
  names.reserve(res.ranked.size());
  for (const auto& m : res.ranked) names.push_back(lake.table(m.table_index).name());
  return names;
}

/// A system under PR evaluation: returns ranked table names for (target, k).
using RankedNamesFn =
    std::function<std::vector<std::string>(const Table& target, size_t k)>;

struct PrPoint {
  size_t k = 0;
  double precision = 0;
  double recall = 0;
};

/// Average precision/recall over targets for each k (one search per target
/// at max k; prefixes give the smaller-k points, as ranked lists nest).
inline std::vector<PrPoint> PrCurve(const RankedNamesFn& search,
                                    const DataLake& lake,
                                    const benchdata::GroundTruth& truth,
                                    const std::vector<uint32_t>& targets,
                                    const std::vector<size_t>& ks) {
  size_t max_k = 0;
  for (size_t k : ks) max_k = std::max(max_k, k);
  std::vector<PrPoint> points;
  for (size_t k : ks) points.push_back({k, 0, 0});
  for (uint32_t t : targets) {
    const Table& target = lake.table(t);
    std::vector<std::string> ranked = search(target, max_k);
    for (size_t i = 0; i < ks.size(); ++i) {
      std::vector<std::string> prefix(
          ranked.begin(),
          ranked.begin() + std::min(ks[i], ranked.size()));
      auto e = eval::EvaluateTopK(prefix, target.name(), truth);
      points[i].precision += e.precision;
      points[i].recall += e.recall;
    }
  }
  for (PrPoint& p : points) {
    p.precision /= static_cast<double>(targets.size());
    p.recall /= static_cast<double>(targets.size());
  }
  return points;
}

/// Converts D3L matches to the evaluation representation.
inline std::vector<eval::RankedTable> ToRankedTables(const core::D3LEngine& engine,
                                                     const core::SearchResult& res) {
  std::vector<eval::RankedTable> out;
  for (const auto& m : res.ranked) {
    eval::RankedTable rt;
    rt.name = engine.lake()->table(m.table_index).name();
    for (const auto& p : m.pairs) {
      rt.alignments.push_back(
          {p.target_column, engine.indexes().profile(p.attribute_id).ref.column});
    }
    out.push_back(std::move(rt));
  }
  return out;
}

/// Join-path datasets per top-k entry for D3L (+J evaluation).
inline std::vector<std::vector<eval::RankedTable>> D3lJoinTables(
    const core::D3LEngine& engine, const core::SaJoinGraph& graph,
    const core::SearchResult& res) {
  std::unordered_set<uint32_t> top_set;
  for (const auto& m : res.ranked) top_set.insert(m.table_index);
  std::unordered_set<uint32_t> related;
  for (const auto& [ti, a] : res.candidate_alignments) related.insert(ti);

  std::vector<std::vector<eval::RankedTable>> joins(res.ranked.size());
  for (size_t i = 0; i < res.ranked.size(); ++i) {
    auto paths = core::FindJoinPaths(graph, res.ranked[i].table_index, top_set, related);
    std::unordered_set<uint32_t> path_tables;
    for (const auto& p : paths) {
      for (size_t j = 1; j < p.tables.size(); ++j) path_tables.insert(p.tables[j]);
    }
    for (uint32_t pt : path_tables) {
      eval::RankedTable rt;
      rt.name = engine.lake()->table(pt).name();
      auto it = res.candidate_alignments.find(pt);
      if (it != res.candidate_alignments.end()) {
        for (const auto& [tc, attr] : it->second) {
          rt.alignments.push_back({tc, engine.indexes().profile(attr).ref.column});
        }
      }
      joins[i].push_back(std::move(rt));
    }
  }
  return joins;
}

/// Converts TUS matches to the evaluation representation.
inline std::vector<eval::RankedTable> ToRankedTables(const baselines::TusEngine& engine,
                                                     const baselines::TusSearchResult& res) {
  std::vector<eval::RankedTable> out;
  for (const auto& m : res.ranked) {
    eval::RankedTable rt;
    rt.name = engine.lake()->table(m.table_index).name();
    for (const auto& a : m.alignments) {
      rt.alignments.push_back({a.target_column, a.column});
    }
    out.push_back(std::move(rt));
  }
  return out;
}

/// Converts Aurum matches to the evaluation representation.
inline std::vector<eval::RankedTable> ToRankedTables(
    const baselines::AurumEngine& engine, const baselines::AurumSearchResult& res) {
  std::vector<eval::RankedTable> out;
  for (const auto& m : res.ranked) {
    eval::RankedTable rt;
    rt.name = engine.lake()->table(m.table_index).name();
    for (const auto& a : m.alignments) {
      rt.alignments.push_back({a.target_column, a.column});
    }
    out.push_back(std::move(rt));
  }
  return out;
}

/// Aurum+J: join-expanded datasets per top-k entry (FK edges), with the
/// alignments Aurum's search discovered for them.
inline std::vector<std::vector<eval::RankedTable>> AurumJoinTables(
    const baselines::AurumEngine& engine, const baselines::AurumSearchResult& res) {
  std::vector<std::vector<eval::RankedTable>> joins(res.ranked.size());
  for (size_t i = 0; i < res.ranked.size(); ++i) {
    for (uint32_t pt : engine.JoinExpand({res.ranked[i].table_index}, 2)) {
      eval::RankedTable rt;
      rt.name = engine.lake()->table(pt).name();
      auto it = res.candidate_alignments.find(pt);
      if (it != res.candidate_alignments.end()) {
        for (const auto& a : it->second) {
          rt.alignments.push_back({a.target_column, a.column});
        }
      }
      joins[i].push_back(std::move(rt));
    }
  }
  return joins;
}

}  // namespace d3l::bench

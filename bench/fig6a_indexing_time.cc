// Figure 6a (Experiment 4): time to create the indexes as the data lake
// grows, for D3L, TUS and Aurum, on Larger-Real-like samples.
//
// All systems run single-threaded here so the comparison is fair.
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 6a analogue: indexing time vs lake size (scale=%.2f) ===\n\n",
         scale);

  std::vector<size_t> sizes;
  for (size_t base : {100, 200, 400, 700, 1000}) {
    sizes.push_back(eval::Scaled(base, scale));
  }

  eval::TablePrinter out(
      {"tables", "attrs", "D3L (s)", "TUS (s)", "Aurum (s)", "TUS KB lookups"});
  for (size_t n : sizes) {
    auto data = bench::MakeLargerReal(n);
    size_t attrs = data.lake.Stats().num_attributes;

    core::D3LOptions d3l_opts;
    d3l_opts.num_threads = 1;  // fair single-threaded comparison
    core::D3LEngine d3l_engine(d3l_opts);
    eval::Timer t1;
    d3l_engine.IndexLake(data.lake).CheckOK();
    double d3l_s = t1.Seconds();

    bench::TusStack tus;
    eval::Timer t2;
    tus.engine.IndexLake(data.lake).CheckOK();
    double tus_s = t2.Seconds();

    baselines::AurumEngine aurum;
    eval::Timer t3;
    aurum.BuildEkg(data.lake).CheckOK();
    double aurum_s = t3.Seconds();

    out.AddRow({std::to_string(data.lake.size()), std::to_string(attrs),
                eval::TablePrinter::Num(d3l_s, 3), eval::TablePrinter::Num(tus_s, 3),
                eval::TablePrinter::Num(aurum_s, 3),
                std::to_string(tus.kb.lookup_count())});
  }
  out.Print();

  printf(
      "\nPaper shape to check: TUS indexing is the slowest (its per-token\n"
      "knowledge-base mapping dominates; the paper reports D3L up to 4-6x\n"
      "faster). Aurum profiling is light but its graph construction grows\n"
      "with lake size, approaching D3L on larger lakes.\n");
  return 0;
}

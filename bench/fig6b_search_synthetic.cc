// Figure 6b (Experiment 5): effect of the answer size k on search time,
// Synthetic repository. Aurum's traversal-based query model is not
// parameterized by k; its average query time is reported separately, as in
// the paper.
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 6b analogue: search time vs k on Synthetic (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeSynthetic(scale);
  core::D3LOptions d3l_opts;
  d3l_opts.num_threads = 1;
  core::D3LEngine d3l_engine(d3l_opts);
  d3l_engine.IndexLake(data.lake).CheckOK();
  bench::TusStack tus;
  tus.engine.IndexLake(data.lake).CheckOK();
  baselines::AurumEngine aurum;
  aurum.BuildEkg(data.lake).CheckOK();

  auto targets = eval::SampleTargets(data.lake, eval::Scaled(15, scale), 31);
  std::vector<size_t> ks = {20, 50, 100, 150, 220};

  eval::TablePrinter out({"k", "D3L (ms/query)", "TUS (ms/query)"});
  for (size_t k : ks) {
    eval::Timer td;
    for (uint32_t t : targets) {
      d3l_engine.Search(data.lake.table(t), k).status().CheckOK();
    }
    double d3l_ms = td.Seconds() * 1000 / static_cast<double>(targets.size());

    eval::Timer tt;
    for (uint32_t t : targets) {
      tus.engine.Search(data.lake.table(t), k).status().CheckOK();
    }
    double tus_ms = tt.Seconds() * 1000 / static_cast<double>(targets.size());

    out.AddRow({std::to_string(k), eval::TablePrinter::Num(d3l_ms, 2),
                eval::TablePrinter::Num(tus_ms, 2)});
  }
  out.Print();

  eval::Timer ta;
  for (uint32_t t : targets) {
    aurum.Search(data.lake.table(t), 220).status().CheckOK();
  }
  printf("\nAurum average search time (not k-parameterized): %.2f ms/query\n",
         ta.Seconds() * 1000 / static_cast<double>(targets.size()));

  printf(
      "\nPaper shape to check: D3L is much faster than TUS at every k — TUS\n"
      "re-maps target tokens through the KB and exactly re-scores every\n"
      "blocked candidate, while D3L's lookups plug directly into distance\n"
      "estimates. Both grow with k; Aurum is flat but slow.\n");
  return 0;
}

// DiscoveryService throughput: cache hit vs miss, async vs sync, engine vs
// sharded backend — the serving-layer companion to shard_search.
//
//   $ ./build/service_throughput [--scale=F] [--threads=T] [--k=K]
//                                [--metrics-out=PATH]
//
// Four serving modes over the same target set on the Synthetic repository:
//
//   sync direct      D3LEngine::Search on the caller thread (the baseline)
//   async uncached   DiscoveryService::SubmitBatch with the cache bypassed
//   async cold       SubmitBatch against an empty cache (miss + insert)
//   async warm       SubmitBatch with every query already cached (pure hits)
//
// plus a warm pass through a 2-shard ShardedEngine backend. Expected shape:
// async uncached tracks sync direct within scheduling overhead (or beats it
// with T > 1 workers); warm hits are decisively faster than any miss mode
// because retrieval and scoring are skipped entirely — a warm hit costs one
// target profiling plus a cache copy. The bench re-checks byte-identity of
// cached results against direct Search and exits nonzero on a divergence,
// so the CI bench-smoke run doubles as an end-to-end cache-correctness
// gate.
//
// Two observability riders: an extra uncached pass with per-query tracing
// disabled gates the telemetry overhead (the traced pass must stay within
// 1.5x + 0.5ms of the untraced one, a bound far above real span cost but
// below any accidental lock-in-the-hot-path regression), and
// --metrics-out=PATH dumps the post-run Prometheus exposition so CI can
// archive the metrics snapshot next to the timing table.
#include <cstring>
#include <filesystem>
#include <future>
#include <unistd.h>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "serving/discovery_service.h"
#include "serving/search_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance) {
      return false;
    }
  }
  return true;
}

struct ModeResult {
  double ms_per_query = 0;
  size_t cache_hits = 0;
  bool exact = true;
};

/// Submits every target once and waits; checks results against the
/// references.
ModeResult RunServicePass(serving::DiscoveryService& service,
                          const std::vector<const Table*>& targets, size_t k,
                          bool bypass_cache,
                          const std::vector<core::SearchResult>& reference) {
  const size_t hits_before = service.Stats().cache_hits;
  std::vector<serving::QueryRequest> requests;
  requests.reserve(targets.size());
  for (const Table* t : targets) {
    requests.push_back({t, k, std::nullopt, bypass_cache});
  }
  eval::Timer timer;
  std::vector<std::future<serving::QueryResponse>> futures =
      service.SubmitBatch(std::move(requests));
  ModeResult mode;
  for (size_t i = 0; i < futures.size(); ++i) {
    serving::QueryResponse response = futures[i].get();
    response.result.status().CheckOK();
    mode.exact = mode.exact && SameRanking(reference[i], *response.result);
  }
  mode.ms_per_query = timer.Seconds() * 1000 / static_cast<double>(targets.size());
  mode.cache_hits = service.Stats().cache_hits - hits_before;
  return mode;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t threads = serving::ThreadPool::DefaultThreads();
  size_t k = 20;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      long v = std::atol(a + 10);
      if (v > 0) threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      long v = std::atol(a + 4);
      if (v > 0) k = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      metrics_out = a + 14;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== DiscoveryService throughput on Synthetic (scale=%.2f, threads=%zu, "
         "k=%zu) ===\n\n",
         scale, threads, k);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n", data.lake.size());

  core::D3LEngine engine;
  engine.IndexLake(data.lake).CheckOK();

  // Floor the target count so the smoke-scale CI run still exercises a
  // multi-entry cache (Scaled(20, 0.05) alone would be a single target).
  auto target_ids = eval::SampleTargets(
      data.lake, std::max<size_t>(8, eval::Scaled(20, scale)), 31);
  std::vector<const Table*> targets;
  for (uint32_t t : target_ids) targets.push_back(&data.lake.table(t));

  // Sync direct baseline + the byte-identity references.
  std::vector<core::SearchResult> reference;
  for (const Table* t : targets) {  // warm-up + reference
    reference.push_back(std::move(*engine.Search(*t, k)));
  }
  eval::Timer t_sync;
  for (const Table* t : targets) {
    (void)*engine.Search(*t, k);
  }
  const double sync_ms = t_sync.Seconds() * 1000 / static_cast<double>(targets.size());

  serving::EngineBackend backend(&engine, &data.lake);
  serving::DiscoveryServiceOptions service_options;
  service_options.num_threads = threads;
  // One cache shard with headroom: per-shard LRU slices could otherwise
  // evict within the cold pass when several keys hash to one shard, which
  // would turn the deterministic all-hits warm check into a coin flip.
  service_options.cache_capacity = targets.size() * 4;
  service_options.cache_shards = 1;
  serving::DiscoveryService service(&backend, service_options);

  ModeResult uncached = RunServicePass(service, targets, k, /*bypass_cache=*/true,
                                       reference);
  ModeResult cold = RunServicePass(service, targets, k, /*bypass_cache=*/false,
                                   reference);
  ModeResult warm = RunServicePass(service, targets, k, /*bypass_cache=*/false,
                                   reference);

  // Tracing overhead gate: the same uncached pass with per-query tracing
  // off. Both services run against the already-warm engine, so the delta
  // is the telemetry itself (span allocation, histogram records).
  serving::DiscoveryServiceOptions untraced_options = service_options;
  untraced_options.trace_queries = false;
  serving::DiscoveryService untraced_service(&backend, untraced_options);
  ModeResult untraced = RunServicePass(untraced_service, targets, k,
                                       /*bypass_cache=*/true, reference);

  // Warm pass through a sharded backend: same API, same cache layer.
  namespace fs = std::filesystem;
  fs::path tmp = fs::temp_directory_path() /
                 ("d3l_service_throughput_" + std::to_string(::getpid()));
  fs::create_directories(tmp);
  serving::ShardingOptions shard_options;
  shard_options.num_shards = 2;
  auto report =
      serving::BuildShards(data.lake, shard_options, (tmp / "lake").string());
  report.status().CheckOK();
  serving::ShardedEngineOptions shard_open;
  shard_open.num_threads = threads;
  auto sharded = serving::ShardedEngine::Open(report->manifest_path, shard_open);
  sharded.status().CheckOK();
  serving::DiscoveryServiceOptions sharded_service_options;
  // The sharded backend owns the scatter-gather pool; run the service's
  // submissions on a single worker to avoid oversubscription.
  sharded_service_options.num_threads = 1;
  sharded_service_options.cache_capacity = targets.size() * 4;
  sharded_service_options.cache_shards = 1;
  serving::DiscoveryService sharded_service(sharded->get(), sharded_service_options);
  ModeResult sharded_cold = RunServicePass(sharded_service, targets, k,
                                           /*bypass_cache=*/false, reference);
  ModeResult sharded_warm = RunServicePass(sharded_service, targets, k,
                                           /*bypass_cache=*/false, reference);
  fs::remove_all(tmp);

  eval::TablePrinter out({"mode", "ms/query", "speedup vs sync", "cache hits", "exact"});
  const auto row = [&](const char* name, const ModeResult& m) {
    out.AddRow({name, eval::TablePrinter::Num(m.ms_per_query, 3),
                eval::TablePrinter::Num(sync_ms / m.ms_per_query, 2),
                std::to_string(m.cache_hits), m.exact ? "yes" : "NO"});
  };
  out.AddRow({"sync direct", eval::TablePrinter::Num(sync_ms, 3), "1.00", "-", "yes"});
  row("async uncached", uncached);
  row("async untraced", untraced);
  row("async cold (miss)", cold);
  row("async warm (hit)", warm);
  row("sharded cold (miss)", sharded_cold);
  row("sharded warm (hit)", sharded_warm);
  out.Print();

  printf("\nShape to check: warm hits are the fastest rows by a wide margin\n"
         "(they skip retrieval and scoring entirely), async uncached tracks\n"
         "sync direct, and every row is exact (byte-identical rankings).\n");

  if (!metrics_out.empty()) {
    // Post-run registry snapshot for the CI artifact. Written before the
    // gates so a failing run still leaves the evidence behind.
    const Status written = bench::WriteTextFile(
        metrics_out, obs::MetricRegistry::Default().ExportText());
    if (!written.ok()) {
      fprintf(stderr, "metrics snapshot failed: %s\n",
              written.ToString().c_str());
      return 1;
    }
  }

  const bool all_exact = uncached.exact && untraced.exact && cold.exact &&
                         warm.exact && sharded_cold.exact && sharded_warm.exact;
  const bool all_hits = warm.cache_hits == targets.size() &&
                        sharded_warm.cache_hits == targets.size();
  // Generous noise bound: telemetry overhead is nanoseconds per query, so
  // only a lock or allocation regression on the hot path can trip this.
  const bool trace_cheap =
      uncached.ms_per_query <= untraced.ms_per_query * 1.5 + 0.5;
  if (!all_exact || !all_hits || !trace_cheap) {
    fprintf(stderr, "FAIL: %s\n",
            !all_exact ? "a served ranking diverged from direct Search"
            : !all_hits
                ? "a warm pass missed the cache"
                : "tracing overhead exceeded the noise gate (traced uncached "
                  "vs untraced uncached)");
    return 1;  // fails the CI bench-smoke step, not just the artifact text
  }
  return 0;
}

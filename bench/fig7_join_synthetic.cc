// Figure 7 (Experiments 8-9): target coverage and attribute precision on
// Synthetic as answer size grows, with (+J) and without join paths.
#include "bench/join_experiment.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 7 analogue: join impact on Synthetic (scale=%.2f) ===\n\n", scale);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n", data.lake.size());
  std::vector<size_t> ks = {5, 15, 30, 50, 80};
  bench::RunJoinExperiment(data, ks, eval::Scaled(12, scale), 321);

  printf(
      "\nPaper shape to check: +J variants cover notably more target\n"
      "attributes than their join-unaware versions; D3L(+J) attribute\n"
      "precision stays high (85-100%% in the paper) and does not drop below\n"
      "join-less D3L, while Aurum+J degrades faster as k grows.\n");
  return 0;
}

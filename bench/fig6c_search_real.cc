// Figure 6c (Experiment 6): search time vs k on Smaller Real. The higher
// numeric-attribute ratio makes D3L spend time on the guarded KS path
// while TUS skips numeric attributes entirely, shrinking the gap.
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 6c analogue: search time vs k on Smaller Real (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeRealish(scale);
  printf("numeric attribute ratio: %.1f%%\n\n", data.lake.Stats().numeric_ratio * 100);

  core::D3LOptions d3l_opts;
  d3l_opts.num_threads = 1;
  core::D3LEngine d3l_engine(d3l_opts);
  d3l_engine.IndexLake(data.lake).CheckOK();
  bench::TusStack tus;
  tus.engine.IndexLake(data.lake).CheckOK();
  baselines::AurumEngine aurum;
  aurum.BuildEkg(data.lake).CheckOK();

  auto targets = eval::SampleTargets(data.lake, eval::Scaled(15, scale), 63);
  std::vector<size_t> ks = {10, 30, 50, 70, 90, 110};

  eval::TablePrinter out({"k", "D3L (ms/query)", "TUS (ms/query)"});
  for (size_t k : ks) {
    eval::Timer td;
    for (uint32_t t : targets) {
      d3l_engine.Search(data.lake.table(t), k).status().CheckOK();
    }
    double d3l_ms = td.Seconds() * 1000 / static_cast<double>(targets.size());

    eval::Timer tt;
    for (uint32_t t : targets) {
      tus.engine.Search(data.lake.table(t), k).status().CheckOK();
    }
    double tus_ms = tt.Seconds() * 1000 / static_cast<double>(targets.size());

    out.AddRow({std::to_string(k), eval::TablePrinter::Num(d3l_ms, 2),
                eval::TablePrinter::Num(tus_ms, 2)});
  }
  out.Print();

  eval::Timer ta;
  for (uint32_t t : targets) {
    aurum.Search(data.lake.table(t), 110).status().CheckOK();
  }
  printf("\nAurum average search time (not k-parameterized): %.2f ms/query\n",
         ta.Seconds() * 1000 / static_cast<double>(targets.size()));

  printf(
      "\nPaper shape to check: D3L still wins, but the D3L-TUS gap shrinks\n"
      "relative to Fig. 6b — D3L pays for numeric (KS) evidence that TUS\n"
      "ignores; TUS's flip side was ~0.2 lower precision/recall (Fig. 5).\n");
  return 0;
}

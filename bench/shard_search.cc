// Sharded scatter-gather search: wall-clock scaling with the shard count
// on the Synthetic repository, plus an exactness check against the single
// unsharded engine (the sharded top-k must be byte-identical).
//
//   $ ./build/shard_search [--scale=F] [--threads=T] [--k=K]
//
// Shard sets are built into a temporary directory and removed afterwards.
// Expected shape on a multi-core box with T >= 4: ms/query drops as the
// shard count grows (profiling the target once, then querying N smaller
// indexes in parallel), flattening once shards outnumber worker threads.
// On a single core the pipeline degenerates gracefully to serial scans.
#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "bench/bench_common.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t threads = serving::ThreadPool::DefaultThreads();
  size_t k = 20;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      long v = std::atol(a + 10);
      if (v > 0) threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      long v = std::atol(a + 4);
      if (v > 0) k = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== Sharded search scaling on Synthetic (scale=%.2f, threads=%zu, "
         "k=%zu) ===\n\n",
         scale, threads, k);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n", data.lake.size());

  core::D3LEngine unsharded;
  unsharded.IndexLake(data.lake).CheckOK();

  auto target_ids = eval::SampleTargets(data.lake, eval::Scaled(20, scale), 31);
  std::vector<const Table*> targets;
  for (uint32_t t : target_ids) targets.push_back(&data.lake.table(t));

  // Reference rankings (and a warm single-engine baseline timing).
  std::vector<core::SearchResult> reference;
  eval::Timer t_single;
  for (const Table* t : targets) {
    reference.push_back(std::move(*unsharded.Search(*t, k)));
  }
  double single_ms = t_single.Seconds() * 1000 / static_cast<double>(targets.size());
  printf("unsharded engine: %.2f ms/query over %zu targets\n\n", single_ms,
         targets.size());

  namespace fs = std::filesystem;
  fs::path tmp = fs::temp_directory_path() /
                 ("d3l_shard_search_" + std::to_string(::getpid()));
  fs::create_directories(tmp);

  eval::TablePrinter out(
      {"shards", "build (s)", "open (s)", "ms/query", "speedup vs 1", "exact"});
  double one_shard_ms = 0;
  bool all_exact = true;
  for (size_t n_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (n_shards > data.lake.size()) break;
    serving::ShardingOptions options;
    options.num_shards = n_shards;
    auto report = serving::BuildShards(
        data.lake, options, (tmp / ("s" + std::to_string(n_shards))).string());
    report.status().CheckOK();

    serving::ShardedEngineOptions open_options;
    open_options.num_threads = threads;
    eval::Timer t_open;
    auto engine = serving::ShardedEngine::Open(report->manifest_path, open_options);
    engine.status().CheckOK();
    double open_s = t_open.Seconds();

    serving::QueryBatch batch;
    batch.targets = targets;
    batch.k = k;
    // Warm-up — but an error here would skew the timed pass below, so
    // check it instead of discarding (this used to be a silent `(void)`).
    for (auto& warm : (*engine)->Execute(batch)) warm.status().CheckOK();
    eval::Timer t_query;
    auto results = (*engine)->Execute(batch);
    double ms = t_query.Seconds() * 1000 / static_cast<double>(targets.size());
    if (n_shards == 1) one_shard_ms = ms;

    bool exact = true;
    for (size_t i = 0; i < results.size(); ++i) {
      results[i].status().CheckOK();
      exact = exact && SameRanking(reference[i], *results[i]);
    }
    all_exact = all_exact && exact;
    out.AddRow({std::to_string(n_shards), eval::TablePrinter::Num(report->build_seconds),
                eval::TablePrinter::Num(open_s), eval::TablePrinter::Num(ms, 2),
                eval::TablePrinter::Num(one_shard_ms / ms, 2), exact ? "yes" : "NO"});
  }
  out.Print();
  fs::remove_all(tmp);

  printf(
      "\nShape to check: every row's ranking is exact (byte-identical to the\n"
      "unsharded engine), and with >= 4 worker threads ms/query drops as the\n"
      "shard count grows toward the thread count.\n");
  if (!all_exact) {
    fprintf(stderr, "FAIL: a sharded ranking diverged from the unsharded engine\n");
    return 1;  // fails the CI bench-smoke step, not just the artifact text
  }
  return 0;
}

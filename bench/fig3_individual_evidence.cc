// Figure 3 (Experiment 1): precision and recall on Smaller Real for each
// individual evidence type vs the aggregated framework, as answer size
// grows. Includes the paper's DD=1 (non-numeric-only) ablation.
#include "bench/bench_common.h"

using namespace d3l;
using core::Evidence;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 3 analogue: individual evidence effectiveness (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeRealish(scale);
  core::D3LEngine engine;
  engine.IndexLake(data.lake).CheckOK();

  auto targets = eval::SampleTargets(data.lake, eval::Scaled(20, scale), 1234);
  std::vector<size_t> ks = {5, 10, 20, 35, 50, 70};

  struct Config {
    const char* name;
    std::array<bool, core::kNumEvidence> mask;
  };
  const std::vector<Config> configs = {
      {"name(N)", {true, false, false, false, false}},
      {"value(V)", {false, true, false, false, false}},
      {"format(F)", {false, false, true, false, false}},
      {"embedding(E)", {false, false, false, true, false}},
      {"ALL", {true, true, true, true, true}},
      {"ALL\\D (DD=1)", {true, true, true, true, false}},
  };

  std::vector<std::vector<bench::PrPoint>> curves;
  for (const Config& cfg : configs) {
    auto search = [&](const Table& target, size_t k) {
      auto res = engine.Search(target, k, cfg.mask);
      res.status().CheckOK();
      return bench::NamesOf(*res, data.lake);
    };
    curves.push_back(bench::PrCurve(search, data.lake, data.truth, targets, ks));
  }

  auto print_metric = [&](const char* title, bool recall) {
    printf("%s\n", title);
    std::vector<std::string> headers = {"k"};
    for (const Config& c : configs) headers.push_back(c.name);
    eval::TablePrinter out(headers);
    for (size_t i = 0; i < ks.size(); ++i) {
      std::vector<std::string> row = {std::to_string(ks[i])};
      for (const auto& curve : curves) {
        row.push_back(eval::TablePrinter::Num(
            recall ? curve[i].recall : curve[i].precision));
      }
      out.AddRow(std::move(row));
    }
    out.Print();
    printf("\n");
  };

  print_metric("(a) Precision", false);
  print_metric("(b) Recall", true);

  printf(
      "Paper shape to check: format alone is the weakest signal; value is\n"
      "the strongest individual type; ALL dominates every individual type;\n"
      "dropping D (DD=1) costs only a few points (Experiment 1 reports\n"
      "< 3.5%% average decrease).\n");
  return 0;
}

// Figure 5 (Experiment 3): D3L vs TUS vs Aurum precision/recall on the
// Smaller-Real repository (dirty, inconsistently represented values).
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 5 analogue: comparative P/R on Smaller Real (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeRealish(scale);
  printf("lake: %zu tables, avg answer size %.1f\n\n", data.lake.size(),
         data.truth.AverageAnswerSize());

  core::D3LEngine d3l_engine;
  d3l_engine.IndexLake(data.lake).CheckOK();
  bench::TusStack tus;
  tus.engine.IndexLake(data.lake).CheckOK();
  baselines::AurumEngine aurum;
  aurum.BuildEkg(data.lake).CheckOK();

  auto targets = eval::SampleTargets(data.lake, eval::Scaled(20, scale), 55);
  std::vector<size_t> ks = {5, 10, 20, 35, 50, 70};

  auto d3l_search = [&](const Table& t, size_t k) {
    auto r = d3l_engine.Search(t, k);
    r.status().CheckOK();
    return bench::NamesOf(*r, data.lake);
  };
  auto tus_search = [&](const Table& t, size_t k) {
    auto r = tus.engine.Search(t, k);
    r.status().CheckOK();
    std::vector<std::string> names;
    for (const auto& m : r->ranked) names.push_back(data.lake.table(m.table_index).name());
    return names;
  };
  auto aurum_search = [&](const Table& t, size_t k) {
    auto r = aurum.Search(t, k);
    r.status().CheckOK();
    std::vector<std::string> names;
    for (const auto& m : r->ranked) names.push_back(data.lake.table(m.table_index).name());
    return names;
  };

  auto d3l_pr = bench::PrCurve(d3l_search, data.lake, data.truth, targets, ks);
  auto tus_pr = bench::PrCurve(tus_search, data.lake, data.truth, targets, ks);
  auto aurum_pr = bench::PrCurve(aurum_search, data.lake, data.truth, targets, ks);

  printf("(a) Precision\n");
  eval::TablePrinter prec({"k", "D3L", "TUS", "Aurum"});
  for (size_t i = 0; i < ks.size(); ++i) {
    prec.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(d3l_pr[i].precision),
                 eval::TablePrinter::Num(tus_pr[i].precision),
                 eval::TablePrinter::Num(aurum_pr[i].precision)});
  }
  prec.Print();

  printf("\n(b) Recall\n");
  eval::TablePrinter rec({"k", "D3L", "TUS", "Aurum"});
  for (size_t i = 0; i < ks.size(); ++i) {
    rec.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(d3l_pr[i].recall),
                eval::TablePrinter::Num(tus_pr[i].recall),
                eval::TablePrinter::Num(aurum_pr[i].recall)});
  }
  rec.Print();

  printf(
      "\nPaper shape to check: the D3L-vs-baselines gap is WIDER here than\n"
      "on Synthetic (Fig. 4) — TUS and Aurum lean on value equality, which\n"
      "dirty real data violates, while D3L's fine-grained features cope.\n");
  return 0;
}

// Hot-reload serving under live traffic: a YCSB-flavoured closed/paced
// workload against a HotReloader while a mutator edits the CSV lake and
// triggers back-to-back Reload() swaps.
//
//   $ ./build/live_update [--scale=F] [--threads=M] [--qps=Q] [--reloads=R]
//                         [--k=K]
//
// M client threads submit discovery queries (paced to Q total queries/sec,
// or closed-loop when Q=0) while the main thread runs R reload cycles:
// each cycle edits an existing CSV, adds a new table, and calls Reload().
// Every response is attributed to the generation that answered it via
// QueryStats::index_fingerprint, giving per-generation throughput and
// p50/p99/p999 latency — the numbers that show queries never stall behind
// a rebuild — plus a per-reload row (duration, shards rebuilt, in-memory
// replicas reused).
//
// After quiescing, the bench re-runs every target with the cache bypassed
// and compares rankings byte-for-byte against a freshly built single
// engine over the final lake state; any divergence exits nonzero, so the
// CI bench-smoke run doubles as an end-to-end hot-reload exactness gate.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serving/discovery_service.h"
#include "serving/hot_reload.h"
#include "table/csv.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance) {
      return false;
    }
  }
  return true;
}

double PercentileMs(std::vector<double>& seconds, double q) {
  if (seconds.empty()) return 0;
  std::sort(seconds.begin(), seconds.end());
  const size_t idx = std::min(seconds.size() - 1,
                              static_cast<size_t>(q * static_cast<double>(seconds.size())));
  return seconds[idx] * 1000;
}

/// Latencies one client thread observed, tagged by answering generation.
struct ClientLog {
  std::map<uint64_t, std::vector<double>> by_generation;
  size_t failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t threads = 4;
  double qps = 0;  // 0 = closed loop (each client submits back to back)
  size_t reloads = 3;
  size_t k = 10;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      long v = std::atol(a + 10);
      if (v > 0) threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--qps=", 6) == 0) {
      double v = std::atof(a + 6);
      if (v > 0) qps = v;
    } else if (std::strncmp(a, "--reloads=", 10) == 0) {
      long v = std::atol(a + 10);
      if (v > 0) reloads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      long v = std::atol(a + 4);
      if (v > 0) k = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== Hot-reload serving under live traffic (scale=%.2f, threads=%zu, "
         "qps=%s, reloads=%zu, k=%zu) ===\n\n",
         scale, threads, qps > 0 ? eval::TablePrinter::Num(qps, 0).c_str() : "max",
         reloads, k);

  // Materialize the Synthetic repository as a CSV lake directory — the
  // thing the mutator edits and HotReloader re-profiles.
  auto data = bench::MakeSynthetic(scale);
  namespace fs = std::filesystem;
  const fs::path tmp =
      fs::temp_directory_path() / ("d3l_live_update_" + std::to_string(::getpid()));
  const fs::path csv_dir = tmp / "lake";
  fs::create_directories(csv_dir);
  for (size_t t = 0; t < data.lake.size(); ++t) {
    const Table& table = data.lake.table(t);
    WriteCsvFile(table, (csv_dir / (table.name() + ".csv")).string()).CheckOK();
  }
  printf("lake: %zu tables in %s\n", data.lake.size(), csv_dir.string().c_str());

  serving::HotReloaderOptions options;
  options.sharding.num_shards = 2;
  auto opened = serving::HotReloader::Open(csv_dir.string(), (tmp / "dep").string(),
                                           options);
  opened.status().CheckOK();
  serving::HotReloader& server = **opened;

  // Target tables (floored so the smoke scale still has a working set).
  auto target_ids = eval::SampleTargets(
      data.lake, std::max<size_t>(8, eval::Scaled(20, scale)), 31);
  std::vector<const Table*> targets;
  for (uint32_t t : target_ids) targets.push_back(&data.lake.table(t));

  // Client threads: round-robin over targets, latency = Submit to future
  // resolution. Paced mode spaces each client's submissions so the fleet
  // lands `qps` total; closed loop otherwise.
  std::atomic<bool> stop{false};
  std::vector<ClientLog> logs(threads);
  std::vector<std::thread> clients;
  clients.reserve(threads);
  const double pace_seconds = qps > 0 ? static_cast<double>(threads) / qps : 0;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      auto next = std::chrono::steady_clock::now();
      size_t i = c;  // stagger the per-client target rotation
      while (!stop.load(std::memory_order_relaxed)) {
        if (pace_seconds > 0) {
          next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(pace_seconds));
          std::this_thread::sleep_until(next);
        }
        serving::QueryRequest request;
        request.target = targets[i++ % targets.size()];
        request.k = k;
        eval::Timer timer;
        serving::QueryResponse response = server.service().Submit(request).get();
        if (response.result.ok()) {
          logs[c].by_generation[response.stats.index_fingerprint].push_back(
              timer.Seconds());
        } else {
          ++logs[c].failures;
        }
      }
    });
  }

  // The mutator: R cycles of edit-one-table + add-one-table + Reload(),
  // with a short traffic window between swaps so every generation serves.
  struct ReloadRow {
    serving::ReloadReport report;
  };
  std::vector<ReloadRow> reload_rows;
  std::vector<uint64_t> generation_order;
  generation_order.push_back(server.service().Info().index_fingerprint);
  eval::Timer wall;
  for (size_t r = 1; r <= reloads; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Table edited = data.lake.table(r % data.lake.size());
    std::vector<std::string> row;
    for (size_t col = 0; col < edited.num_columns(); ++col) {
      row.push_back("live_update_" + std::to_string(r) + "_" + std::to_string(col));
    }
    edited.AddRow(row).CheckOK();
    WriteCsvFile(edited, (csv_dir / (edited.name() + ".csv")).string()).CheckOK();
    Table added = data.lake.table((r + 7) % data.lake.size());
    WriteCsvFile(added, (csv_dir / ("live_added_" + std::to_string(r) + ".csv")).string())
        .CheckOK();

    auto report = server.Reload();
    report.status().CheckOK();
    reload_rows.push_back({*report});
    generation_order.push_back(report->index_fingerprint);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& th : clients) th.join();
  const double wall_seconds = wall.Seconds();

  // Merge the per-client logs by generation.
  std::map<uint64_t, std::vector<double>> by_generation;
  size_t failures = 0, completed = 0;
  for (ClientLog& log : logs) {
    failures += log.failures;
    for (auto& [fp, lat] : log.by_generation) {
      completed += lat.size();
      auto& sink = by_generation[fp];
      sink.insert(sink.end(), lat.begin(), lat.end());
    }
  }

  eval::TablePrinter gen_out(
      {"generation", "fingerprint", "queries", "p50 ms", "p99 ms", "p999 ms"});
  for (size_t g = 0; g < generation_order.size(); ++g) {
    const uint64_t fp = generation_order[g];
    auto it = by_generation.find(fp);
    std::vector<double> empty;
    std::vector<double>& lat = it == by_generation.end() ? empty : it->second;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(fp));
    gen_out.AddRow({"gen " + std::to_string(g), hex, std::to_string(lat.size()),
                    eval::TablePrinter::Num(PercentileMs(lat, 0.50), 2),
                    eval::TablePrinter::Num(PercentileMs(lat, 0.99), 2),
                    eval::TablePrinter::Num(PercentileMs(lat, 0.999), 2)});
  }
  gen_out.Print();

  printf("\n");
  eval::TablePrinter reload_out(
      {"reload", "seconds", "shards rebuilt", "replicas reused", "fingerprint"});
  for (size_t r = 0; r < reload_rows.size(); ++r) {
    const serving::ReloadReport& rep = reload_rows[r].report;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(rep.index_fingerprint));
    reload_out.AddRow({std::to_string(r + 1), eval::TablePrinter::Num(rep.seconds, 3),
                       std::to_string(rep.shards_rebuilt),
                       std::to_string(rep.replicas_reused), hex});
  }
  reload_out.Print();
  printf("\n%zu queries completed (%zu failed) across %zu generations in %.1fs "
         "(%.0f queries/sec overall)\n",
         completed, failures, generation_order.size(), wall_seconds,
         static_cast<double>(completed) / wall_seconds);

  printf("\nShape to check: every generation row served queries (traffic never\n"
         "stalled behind a rebuild), p999 stays within an order of magnitude of\n"
         "p50 across reload events, and the exactness gate below passes.\n\n");

  // Exactness gate: post-quiesce, the serving stack must answer byte-
  // identically to a freshly built engine over the final lake state.
  DataLake final_lake;
  final_lake.LoadDirectory(csv_dir.string()).CheckOK();
  core::D3LEngine fresh;
  fresh.IndexLake(final_lake).CheckOK();
  bool exact = true;
  for (const Table* t : targets) {
    auto direct = fresh.Search(*t, k);
    direct.status().CheckOK();
    serving::QueryRequest request;
    request.target = t;
    request.k = k;
    request.bypass_cache = true;
    serving::QueryResponse response = server.service().Query(request);
    response.result.status().CheckOK();
    exact = exact && SameRanking(*direct, *response.result);
  }
  printf("exactness gate: %s\n", exact ? "pass (byte-identical to fresh build)"
                                       : "FAIL (served ranking diverged)");

  const bool all_generations_served =
      by_generation.size() >= std::min<size_t>(2, generation_order.size());
  opened->reset();  // drain the service before deleting its files
  fs::remove_all(tmp);
  if (!exact || failures != 0 || !all_generations_served) {
    fprintf(stderr, "FAIL: %s\n",
            !exact ? "post-quiesce results diverged from a fresh build"
            : failures ? "a live query failed during reload"
                       : "only one generation ever answered traffic");
    return 1;
  }
  return 0;
}

// Incremental shard re-profiling: build-time savings of UpdateShards over
// a from-scratch BuildShards when a single table of the lake changes, on
// the Synthetic repository — plus an exactness gate (the updated
// deployment's rankings must be byte-identical to a fresh build at the
// same placement).
//
//   $ ./build/incremental_rebuild [--scale=F] [--shards=N]
//
// Deployments are built into a temporary directory and removed afterwards.
// Expected shape: the full rebuild re-profiles every table, the update
// re-profiles one shard's worth, so the speedup approaches N when the
// shards are balanced (profiling dominates, per the paper's Experiment 4).
#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "bench/bench_common.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t num_shards = 4;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      long v = std::atol(a + 9);
      if (v > 0) num_shards = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== Incremental shard rebuild on Synthetic (scale=%.2f, shards=%zu) ===\n\n",
         scale, num_shards);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n\n", data.lake.size());
  if (num_shards > data.lake.size()) num_shards = data.lake.size();

  namespace fs = std::filesystem;
  fs::path tmp = fs::temp_directory_path() /
                 ("d3l_incremental_rebuild_" + std::to_string(::getpid()));
  fs::create_directories(tmp);
  const std::string base = (tmp / "dep").string();

  serving::ShardingOptions options;
  options.num_shards = num_shards;
  auto initial = serving::BuildShards(data.lake, options, base);
  initial.status().CheckOK();
  const double full_build_s = initial->build_seconds;

  // Dirty exactly one table: append a row, which flips its content
  // identity and leaves every other shard untouched.
  {
    Table& edited = data.lake.table(0);
    std::vector<std::string> row;
    for (size_t c = 0; c < edited.num_columns(); ++c) {
      row.push_back("bench-edit-" + std::to_string(c));
    }
    edited.AddRow(row).CheckOK();
  }

  auto update = serving::UpdateShards(data.lake, options, base);
  update.status().CheckOK();
  const double update_s = update->build_seconds;

  // Reference: a from-scratch build of the NEW lake at the same placement.
  auto fresh = serving::BuildShards(data.lake, options, (tmp / "fresh").string(),
                                    &update->plan);
  fresh.status().CheckOK();

  // Exactness gate over a sample of targets.
  auto updated_open = serving::ShardedEngine::Open(serving::ManifestPath(base));
  updated_open.status().CheckOK();
  auto fresh_open = serving::ShardedEngine::Open(fresh->manifest_path);
  fresh_open.status().CheckOK();
  auto target_ids = eval::SampleTargets(data.lake, eval::Scaled(10, scale), 31);
  bool exact = true;
  for (uint32_t t : target_ids) {
    auto expected = (*fresh_open)->Search(data.lake.table(t), 10);
    auto actual = (*updated_open)->Search(data.lake.table(t), 10);
    expected.status().CheckOK();
    actual.status().CheckOK();
    exact = exact && SameRanking(*expected, *actual);
  }

  eval::TablePrinter out({"mode", "build (s)", "shards rebuilt", "shards reused",
                          "speedup", "exact"});
  out.AddRow({"full build", eval::TablePrinter::Num(full_build_s),
              std::to_string(num_shards), "0", "1.00", "-"});
  out.AddRow({"incremental", eval::TablePrinter::Num(update_s),
              std::to_string(update->rebuilt_shards.size()),
              std::to_string(update->shards_reused),
              eval::TablePrinter::Num(full_build_s / update_s, 2),
              exact ? "yes" : "NO"});
  out.Print();
  fs::remove_all(tmp);

  printf(
      "\nShape to check: 1 of %zu shards rebuilt, the rest reused, with the\n"
      "speedup approaching the shard count (profiling dominates build time),\n"
      "and the updated deployment ranking byte-identically to a fresh build.\n",
      num_shards);
  if (!exact) {
    fprintf(stderr, "FAIL: updated deployment diverged from a fresh build\n");
    return 1;  // fails the CI bench-smoke step, not just the artifact text
  }
  if (update->rebuilt_shards.size() != 1 ||
      update->shards_reused != num_shards - 1) {
    fprintf(stderr, "FAIL: expected exactly 1 rebuilt / %zu reused shards\n",
            num_shards - 1);
    return 1;
  }
  return 0;
}

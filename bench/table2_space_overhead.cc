// Table II (Experiment 7): space occupied by each system's indexes,
// relative to the (in-memory) size of the data lake.
#include "bench/bench_common.h"

using namespace d3l;

namespace {
std::string Pct(size_t part, size_t whole) {
  double pct = whole > 0 ? 100.0 * static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0;
  return eval::TablePrinter::Num(pct, 0) + "%";
}
}  // namespace

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Table II analogue: index space overhead (scale=%.2f) ===\n\n", scale);

  struct Repo {
    const char* name;
    benchdata::GeneratedLake data;
  };
  std::vector<Repo> repos;
  repos.push_back({"Synthetic", bench::MakeSynthetic(scale)});
  repos.push_back({"Smaller Real", bench::MakeRealish(scale)});
  repos.push_back({"Larger Real (sample)",
                   bench::MakeLargerReal(eval::Scaled(600, scale))});

  eval::TablePrinter out({"system", "Synthetic", "Smaller Real", "Larger Real (sample)"});
  std::vector<std::string> d3l_row = {"D3L"};
  std::vector<std::string> tus_row = {"TUS"};
  std::vector<std::string> aurum_row = {"Aurum"};

  for (Repo& r : repos) {
    size_t lake_bytes = r.data.lake.Stats().total_bytes;

    core::D3LEngine d3l_engine;
    d3l_engine.IndexLake(r.data.lake).CheckOK();
    d3l_row.push_back(Pct(d3l_engine.indexes().MemoryUsage(), lake_bytes));

    bench::TusStack tus;
    tus.engine.IndexLake(r.data.lake).CheckOK();
    tus_row.push_back(Pct(tus.engine.MemoryUsage(), lake_bytes));

    baselines::AurumEngine aurum;
    aurum.BuildEkg(r.data.lake).CheckOK();
    aurum_row.push_back(Pct(aurum.MemoryUsage(), lake_bytes));

    printf("%s: lake size %.1f MB\n", r.name,
           static_cast<double>(lake_bytes) / (1024 * 1024));
  }
  printf("\n");
  out.AddRow(std::move(d3l_row));
  out.AddRow(std::move(tus_row));
  out.AddRow(std::move(aurum_row));
  out.Print();

  printf(
      "\nPaper shape to check: D3L occupies the most index space (four\n"
      "evidence indexes vs three in TUS / Aurum's profile store + graph;\n"
      "the paper reports 69/33/58%% for D3L vs 55-56/19-20/29-32%% for the\n"
      "baselines).\n");
  return 0;
}

// Figure 4 (Experiment 2): D3L vs TUS vs Aurum precision/recall on the
// Synthetic repository as answer size grows.
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 4 analogue: comparative P/R on Synthetic (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables, avg answer size %.1f\n\n", data.lake.size(),
         data.truth.AverageAnswerSize());

  core::D3LEngine d3l_engine;
  d3l_engine.IndexLake(data.lake).CheckOK();
  bench::TusStack tus;
  tus.engine.IndexLake(data.lake).CheckOK();
  baselines::AurumEngine aurum;
  aurum.BuildEkg(data.lake).CheckOK();

  auto targets = eval::SampleTargets(data.lake, eval::Scaled(20, scale), 77);
  std::vector<size_t> ks = {5, 15, 30, 50, 80, 120};

  auto d3l_search = [&](const Table& t, size_t k) {
    auto r = d3l_engine.Search(t, k);
    r.status().CheckOK();
    return bench::NamesOf(*r, data.lake);
  };
  auto tus_search = [&](const Table& t, size_t k) {
    auto r = tus.engine.Search(t, k);
    r.status().CheckOK();
    std::vector<std::string> names;
    for (const auto& m : r->ranked) names.push_back(data.lake.table(m.table_index).name());
    return names;
  };
  auto aurum_search = [&](const Table& t, size_t k) {
    auto r = aurum.Search(t, k);
    r.status().CheckOK();
    std::vector<std::string> names;
    for (const auto& m : r->ranked) names.push_back(data.lake.table(m.table_index).name());
    return names;
  };

  auto d3l_pr = bench::PrCurve(d3l_search, data.lake, data.truth, targets, ks);
  auto tus_pr = bench::PrCurve(tus_search, data.lake, data.truth, targets, ks);
  auto aurum_pr = bench::PrCurve(aurum_search, data.lake, data.truth, targets, ks);

  printf("(a) Precision\n");
  eval::TablePrinter prec({"k", "D3L", "TUS", "Aurum"});
  for (size_t i = 0; i < ks.size(); ++i) {
    prec.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(d3l_pr[i].precision),
                 eval::TablePrinter::Num(tus_pr[i].precision),
                 eval::TablePrinter::Num(aurum_pr[i].precision)});
  }
  prec.Print();

  printf("\n(b) Recall\n");
  eval::TablePrinter rec({"k", "D3L", "TUS", "Aurum"});
  for (size_t i = 0; i < ks.size(); ++i) {
    rec.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(d3l_pr[i].recall),
                eval::TablePrinter::Num(tus_pr[i].recall),
                eval::TablePrinter::Num(aurum_pr[i].recall)});
  }
  rec.Print();

  printf(
      "\nPaper shape to check: D3L is most precise at small-to-mid k and\n"
      "degrades most slowly; recall rises with k for all systems with D3L\n"
      "on top (up to ~20%% over TUS, ~10%% over Aurum in the paper).\n");
  return 0;
}

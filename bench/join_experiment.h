// Shared implementation of Experiments 8-11 (Figs. 7-8): target coverage
// and attribute precision vs answer size, with and without join paths, for
// D3L(+J), TUS and Aurum(+J).
#pragma once

#include "bench/bench_common.h"

namespace d3l::bench {

inline void RunJoinExperiment(benchdata::GeneratedLake& data,
                              const std::vector<size_t>& ks, size_t num_targets,
                              uint64_t target_seed) {
  core::D3LEngine d3l_engine;
  d3l_engine.IndexLake(data.lake).CheckOK();
  core::SaJoinGraph graph = core::SaJoinGraph::Build(d3l_engine);
  printf("SA-join graph: %zu edges\n", graph.num_edges());

  TusStack tus;
  tus.engine.IndexLake(data.lake).CheckOK();
  baselines::AurumEngine aurum;
  aurum.BuildEkg(data.lake).CheckOK();
  printf("Aurum EKG: %zu edges (%zu PK/FK candidates)\n\n",
         aurum.num_graph_edges(), aurum.num_fk_edges());

  auto targets = eval::SampleTargets(data.lake, num_targets, target_seed);

  struct Row {
    double d3l_cov = 0, d3lj_cov = 0, tus_cov = 0, aurum_cov = 0, aurumj_cov = 0;
    double d3l_ap = 0, d3lj_ap = 0, tus_ap = 0, aurum_ap = 0, aurumj_ap = 0;
  };
  std::vector<Row> rows(ks.size());

  for (uint32_t t : targets) {
    const Table& target = data.lake.table(t);
    const std::string& tname = target.name();
    size_t arity = target.num_columns();

    for (size_t i = 0; i < ks.size(); ++i) {
      size_t k = ks[i];

      auto d3l_res = d3l_engine.Search(target, k);
      d3l_res.status().CheckOK();
      auto d3l_topk = ToRankedTables(d3l_engine, *d3l_res);
      auto d3l_joins = D3lJoinTables(d3l_engine, graph, *d3l_res);

      auto tus_res = tus.engine.Search(target, k);
      tus_res.status().CheckOK();
      auto tus_topk = ToRankedTables(tus.engine, *tus_res);

      auto aurum_res = aurum.Search(target, k);
      aurum_res.status().CheckOK();
      auto aurum_topk = ToRankedTables(aurum, *aurum_res);
      auto aurum_joins = AurumJoinTables(aurum, *aurum_res);

      Row& r = rows[i];
      r.d3l_cov += eval::AverageCoverage(d3l_topk, arity);
      r.d3lj_cov += eval::AverageJoinCoverage(d3l_topk, d3l_joins, arity);
      r.tus_cov += eval::AverageCoverage(tus_topk, arity);
      r.aurum_cov += eval::AverageCoverage(aurum_topk, arity);
      r.aurumj_cov += eval::AverageJoinCoverage(aurum_topk, aurum_joins, arity);

      r.d3l_ap += eval::AverageAttributePrecision(d3l_topk, tname, data.truth);
      r.d3lj_ap += eval::AverageJoinAttributePrecision(d3l_topk, d3l_joins, tname,
                                                       data.truth);
      r.tus_ap += eval::AverageAttributePrecision(tus_topk, tname, data.truth);
      r.aurum_ap += eval::AverageAttributePrecision(aurum_topk, tname, data.truth);
      r.aurumj_ap += eval::AverageJoinAttributePrecision(aurum_topk, aurum_joins,
                                                         tname, data.truth);
    }
  }

  double n = static_cast<double>(targets.size());
  printf("(a) Target coverage\n");
  eval::TablePrinter cov({"k", "D3L", "D3L+J", "TUS", "Aurum", "Aurum+J"});
  for (size_t i = 0; i < ks.size(); ++i) {
    cov.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(rows[i].d3l_cov / n),
                eval::TablePrinter::Num(rows[i].d3lj_cov / n),
                eval::TablePrinter::Num(rows[i].tus_cov / n),
                eval::TablePrinter::Num(rows[i].aurum_cov / n),
                eval::TablePrinter::Num(rows[i].aurumj_cov / n)});
  }
  cov.Print();

  printf("\n(b) Attribute precision\n");
  eval::TablePrinter ap({"k", "D3L", "D3L+J", "TUS", "Aurum", "Aurum+J"});
  for (size_t i = 0; i < ks.size(); ++i) {
    ap.AddRow({std::to_string(ks[i]), eval::TablePrinter::Num(rows[i].d3l_ap / n),
               eval::TablePrinter::Num(rows[i].d3lj_ap / n),
               eval::TablePrinter::Num(rows[i].tus_ap / n),
               eval::TablePrinter::Num(rows[i].aurum_ap / n),
               eval::TablePrinter::Num(rows[i].aurumj_ap / n)});
  }
  ap.Print();
}

}  // namespace d3l::bench

// Remote scatter-gather search: latency of serving::RemoteBackend over N
// in-process RpcServers (real TCP sockets on localhost, real wire frames)
// versus the local ShardedEngine over the same manifest, plus the exactness
// gate — the remote top-k must be byte-identical to local, or the driver
// exits non-zero and fails the CI bench-smoke step.
//
//   $ ./build/remote_search [--scale=F] [--threads=T] [--k=K]
//                           [--metrics-out=PATH]
//
// --metrics-out=PATH dumps the post-run Prometheus exposition (client and
// server series share the process-default registry here, so one file holds
// both sides of the wire) for the CI metrics-snapshot artifact.
//
// Shard sets are built into a temporary directory and removed afterwards.
// Expected shape: remote ms/query tracks local sharded ms/query plus a
// per-server wire cost (two round trips — depth counts, then scores — with
// serialized candidate lists and pair rows on the reply). The gap is the
// price of process isolation, not of extra index work.
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "rpc/server.h"
#include "serving/remote_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t threads = serving::ThreadPool::DefaultThreads();
  size_t k = 20;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      long v = std::atol(a + 10);
      if (v > 0) threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      long v = std::atol(a + 4);
      if (v > 0) k = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      metrics_out = a + 14;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== Remote scatter-gather search on Synthetic (scale=%.2f, "
         "threads=%zu, k=%zu) ===\n\n",
         scale, threads, k);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n", data.lake.size());

  auto target_ids = eval::SampleTargets(data.lake, eval::Scaled(20, scale), 31);
  std::vector<const Table*> targets;
  for (uint32_t t : target_ids) targets.push_back(&data.lake.table(t));

  namespace fs = std::filesystem;
  fs::path tmp = fs::temp_directory_path() /
                 ("d3l_remote_search_" + std::to_string(::getpid()));
  fs::create_directories(tmp);

  eval::TablePrinter out({"servers", "local ms/query", "remote ms/query",
                          "overhead", "exact"});
  bool all_exact = true;
  // Each deployment's instruments die with its loop iteration (the registry
  // keeps only weak references), so fold a snapshot in while they are live.
  // Nothing instrumented outlives an iteration here, so the merge never
  // double-counts.
  obs::RegistrySnapshot accumulated;
  for (size_t n_servers : {size_t{1}, size_t{2}, size_t{4}}) {
    if (n_servers > data.lake.size()) break;
    serving::ShardingOptions options;
    options.num_shards = n_servers;
    auto report = serving::BuildShards(
        data.lake, options, (tmp / ("s" + std::to_string(n_servers))).string());
    report.status().CheckOK();

    // The local reference: one process, N shard replicas, worker pool.
    serving::ShardedEngineOptions open_options;
    open_options.num_threads = threads;
    auto local = serving::ShardedEngine::Open(report->manifest_path, open_options);
    local.status().CheckOK();

    // The remote deployment: one RpcServer per shard, each serving its own
    // subset engine over a real localhost socket.
    std::vector<std::unique_ptr<rpc::RpcServer>> servers;
    std::vector<std::string> endpoints;
    for (size_t s = 0; s < n_servers; ++s) {
      serving::ShardedEngineOptions subset_options;
      subset_options.serve_shards = {s};
      auto subset =
          serving::ShardedEngine::Open(report->manifest_path, subset_options);
      subset.status().CheckOK();
      auto server = rpc::RpcServer::Start(
          std::shared_ptr<const serving::ShardedEngine>(std::move(*subset)));
      server.status().CheckOK();
      endpoints.push_back("127.0.0.1:" + std::to_string((*server)->port()));
      servers.push_back(std::move(*server));
    }
    serving::RemoteBackendOptions remote_options;
    remote_options.num_threads = threads;
    auto remote = serving::RemoteBackend::Connect(endpoints, remote_options);
    remote.status().CheckOK();

    // Profile once per target (shared by both sides — profiling cost is
    // identical by construction, the comparison is the query pipeline).
    std::vector<core::QueryTarget> profiled;
    for (const Table* t : targets) {
      profiled.push_back(std::move(*(*local)->Profile(*t)));
    }

    auto run = [&](const serving::SearchBackend& backend,
                   std::vector<core::SearchResult>* results) {
      results->clear();
      for (const core::QueryTarget& qt : profiled) {
        // Search consumes the target's buffers, so hand each call a copy.
        results->push_back(std::move(
            *backend.Search(qt, k, backend.options().enabled)));
      }
    };

    std::vector<core::SearchResult> local_results, remote_results;
    run(**local, &local_results);   // warm-up + reference
    run(**remote, &remote_results); // warm-up
    eval::Timer t_local;
    run(**local, &local_results);
    double local_ms =
        t_local.Seconds() * 1000 / static_cast<double>(targets.size());
    eval::Timer t_remote;
    run(**remote, &remote_results);
    double remote_ms =
        t_remote.Seconds() * 1000 / static_cast<double>(targets.size());

    bool exact = true;
    for (size_t i = 0; i < local_results.size(); ++i) {
      exact = exact && SameRanking(local_results[i], remote_results[i]);
    }
    all_exact = all_exact && exact;
    out.AddRow({std::to_string(n_servers), eval::TablePrinter::Num(local_ms, 2),
                eval::TablePrinter::Num(remote_ms, 2),
                eval::TablePrinter::Num(remote_ms / local_ms, 2),
                exact ? "yes" : "NO"});
    accumulated.Merge(obs::MetricRegistry::Default().Snapshot());
  }
  out.Print();
  fs::remove_all(tmp);

  printf(
      "\nShape to check: every row is exact (remote ranking byte-identical\n"
      "to the local sharded engine), and the remote overhead factor stays\n"
      "modest — the wire adds serialization and two round trips per query,\n"
      "not index work.\n");

  if (!metrics_out.empty()) {
    const Status written =
        bench::WriteTextFile(metrics_out, accumulated.ExportText());
    if (!written.ok()) {
      fprintf(stderr, "metrics snapshot failed: %s\n",
              written.ToString().c_str());
      return 1;
    }
  }

  if (!all_exact) {
    fprintf(stderr, "FAIL: a remote ranking diverged from the local engine\n");
    return 1;  // fails the CI bench-smoke step, not just the artifact text
  }
  return 0;
}

// Micro-benchmarks (google-benchmark) for the LSH substrate: MinHash
// signing, Jaccard estimation, LSH Forest queries, banded lookups and
// random-projection signing. Not a paper exhibit; used to track substrate
// regressions.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "lsh/lsh_banding.h"
#include "lsh/lsh_forest.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"

namespace d3l {
namespace {

std::vector<std::string> MakeTokens(size_t n, uint64_t salt) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back("token_" + std::to_string(salt) + "_" + std::to_string(i));
  }
  return out;
}

void BM_MinHashSign(benchmark::State& state) {
  MinHasher hasher(256, 7);
  auto tokens = MakeTokens(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Sign(tokens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MinHashSign)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EstimateJaccard(benchmark::State& state) {
  MinHasher hasher(256, 7);
  Signature a = hasher.Sign(MakeTokens(200, 1));
  Signature b = hasher.Sign(MakeTokens(200, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateJaccard(a, b));
  }
}
BENCHMARK(BM_EstimateJaccard);

void BM_ForestQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MinHasher hasher(256, 7);
  LshForest forest;
  for (uint32_t i = 0; i < n; ++i) {
    forest.Insert(i, hasher.Sign(MakeTokens(60, i)));
  }
  forest.Index();
  Signature q = hasher.Sign(MakeTokens(60, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Query(q, 32));
  }
}
BENCHMARK(BM_ForestQuery)->Arg(1000)->Arg(10000)->Arg(25000);

void BM_BandedQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MinHasher hasher(256, 7);
  BandedLsh index;
  for (uint32_t i = 0; i < n; ++i) {
    index.Insert(i, hasher.Sign(MakeTokens(60, i)));
  }
  Signature q = hasher.Sign(MakeTokens(60, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(q));
  }
}
BENCHMARK(BM_BandedQuery)->Arg(1000)->Arg(10000);

void BM_RandomProjectionSign(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  RandomProjectionHasher hasher(dim, 256, 7);
  Rng rng(1);
  Vec v(dim);
  for (float& x : v) x = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Sign(v));
  }
}
BENCHMARK(BM_RandomProjectionSign)->Arg(32)->Arg(64)->Arg(128);

void BM_HammingEstimate(benchmark::State& state) {
  RandomProjectionHasher hasher(64, 256, 7);
  Rng rng(2);
  Vec a(64);
  Vec b(64);
  for (float& x : a) x = static_cast<float>(rng.Gaussian());
  for (float& x : b) x = static_cast<float>(rng.Gaussian());
  BitSignature sa = hasher.Sign(a);
  BitSignature sb = hasher.Sign(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateCosine(sa, sb));
  }
}
BENCHMARK(BM_HammingEstimate);

}  // namespace
}  // namespace d3l

BENCHMARK_MAIN();

// Snapshot load-path cost: mapped (zero-copy) vs copied (full
// deserialization) opens of the same engine snapshot, for the monolithic
// engine and a sharded deployment — plus the exactness gate (a mapped
// engine's rankings must be byte-identical to a copied one's) and a
// speedup gate on the forest-deserialization phase, which is the part the
// flat v2 layout removes. The CI bench-smoke run executes this at
// --scale=0.05.
//
//   $ ./build/snapshot_load [--scale=F] [--repeat=N] [--k=K]
//                           [--metrics-out=PATH]
//
// Reported per mode: best-of-N open wall clock, the INDX section decode,
// the forest-deserialization component of that decode, index heap
// (D3LIndexes::MemoryUsage) and the process-resident delta after load + one
// query. The speedup gate runs on the forest parse: that is the
// full-deserialization work the flat v2 layout removes — a mapped load
// fixes up pointers into the mapping instead of materializing every key/id
// array, so its cost collapses from O(index bytes) to O(sections). It must
// be at least 5x faster mapped than copied. The enclosing index parse and
// end-to-end open are printed but not gated: both are dominated by work
// that is mode-independent by design — the banded threshold indexes are
// deliberately not stored (replayed from the saved signatures either way;
// see D3LIndexes::Save) and first open pays the shared, options-keyed WEM
// model build.
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "io/binary_io.h"
#include "obs/metrics.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

bool SameRanking(const core::SearchResult& a, const core::SearchResult& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].table_index != b.ranked[i].table_index ||
        a.ranked[i].distance != b.ranked[i].distance ||
        a.ranked[i].evidence_distances != b.ranked[i].evidence_distances) {
      return false;
    }
  }
  return true;
}

/// Current resident set in bytes (/proc/self/statm; 0 if unreadable).
size_t ResidentBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%lu %lu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return rss_pages * static_cast<size_t>(::sysconf(_SC_PAGESIZE));
}

struct LoadMeasurement {
  double open_seconds = 0;          ///< best-of-N wall clock
  double index_parse_seconds = 0;   ///< best-of-N INDX section decode
  double forest_parse_seconds = 0;  ///< best-of-N forest deserialization
  size_t index_heap_bytes = 0;      ///< D3LIndexes::MemoryUsage of one load
  size_t rss_delta_bytes = 0;       ///< resident growth across load + 1 query
  bool mapped = false;              ///< did zero-copy actually engage
};

const char* ModeName(core::SnapshotLoadMode mode) {
  return mode == core::SnapshotLoadMode::kMapped ? "mapped" : "copied";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t repeat = 3;
  size_t k = 10;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      double v = std::atof(a + 8);
      if (v > 0) scale = v;
    } else if (std::strncmp(a, "--repeat=", 9) == 0) {
      long v = std::atol(a + 9);
      if (v > 0) repeat = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      long v = std::atol(a + 4);
      if (v > 0) k = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      metrics_out = a + 14;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", a);
    }
  }
  printf("=== Snapshot load: mapped vs copied on Synthetic (scale=%.2f, "
         "repeat=%zu, k=%zu) ===\n\n",
         scale, repeat, k);

  auto data = bench::MakeSynthetic(scale);
  printf("lake: %zu tables\n", data.lake.size());

  core::D3LEngine built;
  built.IndexLake(data.lake).CheckOK();

  namespace fs = std::filesystem;
  fs::path tmp = fs::temp_directory_path() /
                 ("d3l_snapshot_load_" + std::to_string(::getpid()));
  fs::create_directories(tmp);
  const std::string snap_path = (tmp / "engine.d3l").string();
  built.SaveSnapshot(snap_path).CheckOK();
  printf("snapshot: %llu bytes (format v%u)\n\n",
         static_cast<unsigned long long>(fs::file_size(snap_path)),
         core::D3LEngine::kSnapshotVersion);

  auto target_ids = eval::SampleTargets(data.lake, eval::Scaled(10, scale), 17);
  if (target_ids.empty()) target_ids.push_back(0);
  std::vector<const Table*> targets;
  for (uint32_t t : target_ids) targets.push_back(&data.lake.table(t));

  // Reference rankings from the freshly built engine.
  std::vector<core::SearchResult> reference;
  for (const Table* t : targets) {
    reference.push_back(std::move(*built.Search(*t, k)));
  }

  // ---- monolithic engine: load under each mode ----
  // A first throwaway load warms the shared WEM registry and the page
  // cache, so both modes measure the same steady serving-process state.
  {
    DataLake warm_meta;
    core::D3LEngine::LoadSnapshot(snap_path, &warm_meta).status().CheckOK();
  }

  LoadMeasurement measured[2];
  bool all_exact = true;
  const core::SnapshotLoadMode kModes[2] = {core::SnapshotLoadMode::kCopied,
                                            core::SnapshotLoadMode::kMapped};
  for (int mi = 0; mi < 2; ++mi) {
    LoadMeasurement& m = measured[mi];
    m.open_seconds = 1e30;
    m.index_parse_seconds = 1e30;
    m.forest_parse_seconds = 1e30;
    for (size_t r = 0; r < repeat; ++r) {
      const size_t rss_before = ResidentBytes();
      DataLake meta;
      auto loaded = core::D3LEngine::LoadSnapshot(snap_path, &meta, kModes[mi]);
      loaded.status().CheckOK();
      const core::SnapshotLoadStats& ls = (*loaded)->load_stats();
      m.open_seconds = std::min(m.open_seconds, ls.open_seconds);
      m.index_parse_seconds = std::min(m.index_parse_seconds, ls.index_parse_seconds);
      m.forest_parse_seconds =
          std::min(m.forest_parse_seconds, ls.forest_parse_seconds);
      m.mapped = ls.mapped;
      m.index_heap_bytes = (*loaded)->indexes().MemoryUsage();
      // Exactness: every target's ranking must match the built engine's.
      for (size_t i = 0; i < targets.size(); ++i) {
        auto res = (*loaded)->Search(*targets[i], k);
        res.status().CheckOK();
        all_exact = all_exact && SameRanking(reference[i], *res);
      }
      const size_t rss_after = ResidentBytes();
      m.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
    }
  }

  eval::TablePrinter out({"mode", "open (ms)", "index parse (ms)",
                          "forest parse (us)", "index heap (MB)",
                          "rss delta (MB)", "zero-copy"});
  for (int mi = 0; mi < 2; ++mi) {
    const LoadMeasurement& m = measured[mi];
    out.AddRow({ModeName(kModes[mi]),
                eval::TablePrinter::Num(m.open_seconds * 1000),
                eval::TablePrinter::Num(m.index_parse_seconds * 1000),
                eval::TablePrinter::Num(m.forest_parse_seconds * 1e6),
                eval::TablePrinter::Num(static_cast<double>(m.index_heap_bytes) / 1e6),
                eval::TablePrinter::Num(static_cast<double>(m.rss_delta_bytes) / 1e6),
                m.mapped ? "yes" : "no"});
  }
  out.Print();

  const double parse_speedup =
      measured[1].forest_parse_seconds > 0
          ? measured[0].forest_parse_seconds / measured[1].forest_parse_seconds
          : 1e9;
  printf("\nforest deserialization speedup (copied / mapped): %.1fx\n",
         parse_speedup);
  printf("exactness gate: %s\n",
         all_exact ? "pass (mapped and copied rankings byte-identical)"
                   : "FAIL (rankings diverged)");

  // ---- sharded open: replica loads dominate ShardedEngine::Open ----
  serving::ShardingOptions shard_opts;
  shard_opts.num_shards = 2;
  const std::string shard_base = (tmp / "deploy").string();
  auto report = serving::BuildShards(data.lake, shard_opts, shard_base);
  report.status().CheckOK();

  printf("\nsharded open (%zu shards):\n", shard_opts.num_shards);
  double sharded_open_ms[2] = {0, 0};
  bool sharded_exact = true;
  for (int mi = 0; mi < 2; ++mi) {
    double best = 1e30;
    for (size_t r = 0; r < repeat; ++r) {
      serving::ShardedEngineOptions open_opts;
      open_opts.load_mode = kModes[mi];
      eval::Timer timer;
      auto sharded = serving::ShardedEngine::Open(report->manifest_path, open_opts);
      best = std::min(best, timer.Seconds());
      sharded.status().CheckOK();
      if (r == 0) {
        for (size_t i = 0; i < targets.size(); ++i) {
          auto res = (*sharded)->Search(*targets[i], k);
          res.status().CheckOK();
          sharded_exact = sharded_exact && SameRanking(reference[i], *res);
        }
      }
    }
    sharded_open_ms[mi] = best * 1000;
    printf("  %s: %.2f ms\n", ModeName(kModes[mi]), sharded_open_ms[mi]);
  }
  printf("sharded exactness gate: %s\n",
         sharded_exact ? "pass (both modes byte-identical to the built engine)"
                       : "FAIL (sharded rankings diverged)");

  printf(
      "\nShape to check: the mapped forest deserialization collapses to\n"
      "pointer fixups (>= 5x under the copied full decode; gated), zero-copy\n"
      "engages (forest arrays borrowed, index heap drops), and both load\n"
      "modes — engine and sharded — rank byte-identically to the freshly\n"
      "built engine. Index parse and open are reported unmodified: they are\n"
      "dominated by the banded replay and WEM build, which cost the same\n"
      "under either mode by design.\n");

  if (!metrics_out.empty()) {
    obs::MetricRegistry registry;
    // The registry keeps weak references; the gauges must stay alive until
    // ExportText below.
    std::vector<std::shared_ptr<obs::Gauge>> gauges;
    const auto add = [&](const char* name, obs::LabelSet labels, int64_t v) {
      gauges.push_back(registry.AddGauge(name, std::move(labels)));
      gauges.back()->Set(v);
    };
    for (int mi = 0; mi < 2; ++mi) {
      const obs::LabelSet labels = {{"mode", ModeName(kModes[mi])}};
      add("d3l_snapshot_load_open_us", labels,
          static_cast<int64_t>(measured[mi].open_seconds * 1e6));
      add("d3l_snapshot_load_index_parse_us", labels,
          static_cast<int64_t>(measured[mi].index_parse_seconds * 1e6));
      add("d3l_snapshot_load_forest_parse_ns", labels,
          static_cast<int64_t>(measured[mi].forest_parse_seconds * 1e9));
      add("d3l_snapshot_load_index_heap_bytes", labels,
          static_cast<int64_t>(measured[mi].index_heap_bytes));
      add("d3l_snapshot_sharded_open_us", labels,
          static_cast<int64_t>(sharded_open_ms[mi] * 1000));
    }
    add("d3l_snapshot_load_exact", {}, all_exact && sharded_exact ? 1 : 0);
    const Status written = bench::WriteTextFile(metrics_out, registry.ExportText());
    if (!written.ok()) {
      fprintf(stderr, "metrics snapshot failed: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  fs::remove_all(tmp);

  if (!all_exact || !sharded_exact) {
    fprintf(stderr, "FAIL: a loaded engine's ranking diverged\n");
    return 1;
  }
  if (!measured[1].mapped) {
    fprintf(stderr, "FAIL: zero-copy did not engage on the mapped load\n");
    return 1;
  }
  if (parse_speedup < 5.0) {
    fprintf(stderr,
            "FAIL: mapped forest deserialization only %.1fx faster (gate: 5x)\n",
            parse_speedup);
    return 1;
  }
  return 0;
}

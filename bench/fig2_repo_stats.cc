// Figure 2: arity, cardinality and data-type statistics of the Synthetic
// and Smaller-Real repositories.
#include "bench/bench_common.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 2 analogue: repository statistics (scale=%.2f) ===\n\n", scale);

  auto synth = bench::MakeSynthetic(scale);
  auto real = bench::MakeRealish(scale);

  auto row = [](const char* name, const benchdata::GeneratedLake& g) {
    LakeStats s = g.lake.Stats();
    return std::vector<std::string>{
        name,
        std::to_string(s.num_tables),
        std::to_string(s.num_attributes),
        eval::TablePrinter::Num(s.avg_arity, 1),
        eval::TablePrinter::Num(s.max_arity, 0),
        eval::TablePrinter::Num(s.avg_cardinality, 1),
        eval::TablePrinter::Num(s.max_cardinality, 0),
        eval::TablePrinter::Num(s.numeric_ratio * 100, 1) + "%",
        eval::TablePrinter::Num(g.truth.AverageAnswerSize(), 1)};
  };

  eval::TablePrinter out({"repository", "tables", "attrs", "avg arity", "max arity",
                          "avg card", "max card", "numeric", "avg answer"});
  out.AddRow(row("Synthetic", synth));
  out.AddRow(row("Smaller Real", real));
  out.Print();

  printf(
      "\nPaper shape to check: the real repository has a higher numeric\n"
      "attribute ratio than the synthetic one (Fig. 2c), comparable arity,\n"
      "and a positive average answer size for both.\n");
  return 0;
}

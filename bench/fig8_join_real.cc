// Figure 8 (Experiments 10-11): target coverage and attribute precision on
// Smaller Real as answer size grows, with (+J) and without join paths.
#include "bench/join_experiment.h"

using namespace d3l;

int main(int argc, char** argv) {
  double scale = eval::ParseScaleArg(argc, argv);
  printf("=== Fig. 8 analogue: join impact on Smaller Real (scale=%.2f) ===\n\n",
         scale);

  auto data = bench::MakeRealish(scale);
  printf("lake: %zu tables\n", data.lake.size());
  std::vector<size_t> ks = {5, 10, 20, 35, 50};
  bench::RunJoinExperiment(data, ks, eval::Scaled(12, scale), 654);

  printf(
      "\nPaper shape to check: both D3L+J and Aurum+J improve coverage over\n"
      "their join-unaware variants, more so at larger k; TUS coverage stays\n"
      "low (top-ranked tables align with few target attributes); D3L's\n"
      "attribute precision remains the highest and +J never sinks below it.\n");
  return 0;
}

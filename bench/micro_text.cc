// Micro-benchmarks for the text/profile substrate: tokenization, q-grams,
// format strings, subword embeddings and full attribute profiling.
#include <benchmark/benchmark.h>

#include "core/attribute_profile.h"
#include "embedding/subword_model.h"
#include "table/table.h"
#include "text/format.h"
#include "text/qgram.h"
#include "text/tokenizer.h"

namespace d3l {
namespace {

const char* kSampleValues[] = {
    "18 Portland Street, M1 3BE",
    "Blackfriars Medical Practice",
    "https://www.example.co.uk/services",
    "john.smith@mail.co.uk",
    "0161 496 0123",
    "2019-03-12",
};

void BM_Tokenize(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(kSampleValues[i++ % 6]));
  }
}
BENCHMARK(BM_Tokenize);

void BM_QGrams(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGrams("Practice Name", 4));
  }
}
BENCHMARK(BM_QGrams);

void BM_FormatOf(benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FormatOf(kSampleValues[i++ % 6]));
  }
}
BENCHMARK(BM_FormatOf);

void BM_SubwordEmbed(benchmark::State& state) {
  SubwordHashModel model;
  size_t i = 0;
  const char* words[] = {"manchester", "salford", "practice", "medical"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Embed(words[i++ % 4]));
  }
}
BENCHMARK(BM_SubwordEmbed);

void BM_BuildProfile(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Table t("bench");
  t.AddColumn("Address").CheckOK();
  for (size_t r = 0; r < rows; ++r) {
    t.AddRow({std::string(kSampleValues[r % 6]) + " #" + std::to_string(r)}).CheckOK();
  }
  SubwordHashModel wem;
  CachingEmbedder cache(&wem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildProfile(t, 0, wem, &cache));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_BuildProfile)->Arg(64)->Arg(256)->Arg(512);

}  // namespace
}  // namespace d3l

BENCHMARK_MAIN();

// q-gram extraction for attribute names (evidence type N, Section III-A).
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace d3l {

/// \brief Computes the qset of a name: sliding q-grams over the lowercased,
/// alphanumeric-normalized name. The paper uses q = 4 ("addr, ddre, dres,
/// ress" for "Address"). Names shorter than q contribute themselves.
std::set<std::string> QGrams(std::string_view name, size_t q = 4);

/// \brief Lowercases and strips non-alphanumeric characters (the
/// normalization applied before q-gram extraction).
std::string NormalizeName(std::string_view name);

}  // namespace d3l

// Format-describing "regular expression strings" (evidence type F,
// Section III-B, get_regex_string).
//
// Primitive lexical classes, tried in this order (first full match wins):
//   C = [A-Z][a-z]+   capitalized word
//   U = [A-Z]+        all-caps run
//   L = [a-z]+        all-lowercase run
//   N = [0-9]+        digit run
//   A = [A-Za-z0-9]+  alphanumeric mix
//   P = [.,;:/-]+     punctuation (and any symbol not matched above)
//
// A value is tokenized into alternating non-space/punctuation runs; each
// token maps to a class symbol, consecutive repeats collapse to "X+":
// "18 Portland Street, M1 3BE"  ->  "NC+P+A+".
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace d3l {

/// \brief Returns the format string of one value, e.g. "NC+P+A+".
std::string FormatOf(std::string_view value);

/// \brief The rset of an extent: the set of format strings of its values.
std::set<std::string> RSet(const std::vector<std::string>& extent);

}  // namespace d3l

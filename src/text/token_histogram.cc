#include "text/token_histogram.h"

#include <algorithm>

namespace d3l {

void TokenHistogram::Insert(const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    ++counts_[t];
    ++total_;
  }
}

size_t TokenHistogram::CountOf(const std::string& token) const {
  auto it = counts_.find(token);
  return it == counts_.end() ? 0 : it->second;
}

size_t TokenHistogram::MedianCount() const {
  if (counts_.empty()) return 0;
  std::vector<size_t> c;
  c.reserve(counts_.size());
  for (const auto& [tok, n] : counts_) c.push_back(n);
  size_t mid = c.size() / 2;
  std::nth_element(c.begin(), c.begin() + mid, c.end());
  return c[mid];
}

std::vector<std::string> TokenHistogram::Infrequent() const {
  size_t median = MedianCount();
  std::vector<std::string> out;
  for (const auto& [tok, n] : counts_) {
    if (n <= median) out.push_back(tok);
  }
  return out;
}

std::vector<std::string> TokenHistogram::Frequent() const {
  size_t median = MedianCount();
  std::vector<std::string> out;
  for (const auto& [tok, n] : counts_) {
    if (n > median) out.push_back(tok);
  }
  return out;
}

}  // namespace d3l

// Value tokenization following Section III-B / Example 2 of the paper:
// a value (document) is split at punctuation characters into *parts*, and
// each part is split at whitespace into lowercase *words*.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace d3l {

/// \brief A contiguous punctuation-free segment of a value, as words.
struct Part {
  std::vector<std::string> words;
};

/// \brief True for characters that delimit parts (the paper's punctuation
/// class: `.,;:/-` plus other non-alphanumeric, non-space symbols).
bool IsPartDelimiter(char c);

/// \brief Splits a value into parts at punctuation, each part into
/// lowercased words at whitespace. Empty parts/words are dropped.
std::vector<Part> SplitParts(std::string_view value);

/// \brief All lowercased words of a value, across parts (get_tokens(v)).
std::vector<std::string> Tokenize(std::string_view value);

}  // namespace d3l

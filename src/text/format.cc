#include "text/format.h"

#include <cctype>

namespace d3l {

namespace {

enum class Lex { kC, kU, kL, kN, kA, kP };

char LexSymbol(Lex l) {
  switch (l) {
    case Lex::kC:
      return 'C';
    case Lex::kU:
      return 'U';
    case Lex::kL:
      return 'L';
    case Lex::kN:
      return 'N';
    case Lex::kA:
      return 'A';
    case Lex::kP:
      return 'P';
  }
  return '?';
}

// Classifies a whole token by the first fully-matching primitive class, in
// the order C, U, L, N, A, P (Section III-B).
Lex ClassifyToken(std::string_view token) {
  bool all_upper = true;
  bool all_lower = true;
  bool all_digit = true;
  bool all_alnum = true;
  for (char c : token) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!std::isupper(u)) all_upper = false;
    if (!std::islower(u)) all_lower = false;
    if (!std::isdigit(u)) all_digit = false;
    if (!std::isalnum(u)) all_alnum = false;
  }
  // C = [A-Z][a-z]+ : first char upper, rest lower, length >= 2.
  if (token.size() >= 2 && std::isupper(static_cast<unsigned char>(token[0]))) {
    bool rest_lower = true;
    for (size_t i = 1; i < token.size(); ++i) {
      if (!std::islower(static_cast<unsigned char>(token[i]))) {
        rest_lower = false;
        break;
      }
    }
    if (rest_lower) return Lex::kC;
  }
  if (all_upper) return Lex::kU;
  if (all_lower) return Lex::kL;
  if (all_digit) return Lex::kN;
  if (all_alnum) return Lex::kA;
  return Lex::kP;
}

}  // namespace

std::string FormatOf(std::string_view value) {
  // Tokenize into maximal runs of (a) non-space non-punctuation characters
  // and (b) punctuation characters; whitespace only separates tokens.
  std::vector<std::string> tokens;
  std::string cur;
  bool cur_is_punct = false;
  auto is_punct = [](unsigned char u) { return !std::isalnum(u) && !std::isspace(u); };
  auto flush = [&]() {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (char c : value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isspace(u)) {
      flush();
      continue;
    }
    bool punct = is_punct(u);
    if (!cur.empty() && punct != cur_is_punct) flush();
    cur_is_punct = punct;
    cur += c;
  }
  flush();

  std::string format;
  char last = '\0';
  bool last_plused = false;
  for (const std::string& tok : tokens) {
    char sym = LexSymbol(ClassifyToken(tok));
    if (sym == last) {
      // Collapse consecutive identical symbols into "X+".
      if (!last_plused) {
        format += '+';
        last_plused = true;
      }
    } else {
      format += sym;
      last = sym;
      // Punctuation runs always render as "P+": P absorbs the variable-
      // length separator region (the paper's example formats a single
      // comma as P+ in "NC+P+A+").
      if (sym == 'P') {
        format += '+';
        last_plused = true;
      } else {
        last_plused = false;
      }
    }
  }
  return format;
}

std::set<std::string> RSet(const std::vector<std::string>& extent) {
  std::set<std::string> out;
  for (const std::string& v : extent) {
    std::string f = FormatOf(v);
    if (!f.empty()) out.insert(std::move(f));
  }
  return out;
}

}  // namespace d3l

#include "text/qgram.h"

#include <cctype>

namespace d3l {

std::string NormalizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) out += static_cast<char>(std::tolower(u));
  }
  return out;
}

std::set<std::string> QGrams(std::string_view name, size_t q) {
  std::set<std::string> grams;
  std::string norm = NormalizeName(name);
  if (norm.empty()) return grams;
  if (norm.size() <= q) {
    grams.insert(norm);
    return grams;
  }
  for (size_t i = 0; i + q <= norm.size(); ++i) {
    grams.insert(norm.substr(i, q));
  }
  return grams;
}

}  // namespace d3l

// Extent-wide token occurrence histogram (Algorithm 1, lines 5-14).
//
// The histogram drives the TF/IDF-like split used by D3L: per value part,
// the *least* frequent word is an informative token (goes into the tset) and
// the *most* frequent word indicates the domain-specific type (its embedding
// goes into the attribute's embedding vector).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace d3l {

class TokenHistogram {
 public:
  /// Inserts one occurrence of each token.
  void Insert(const std::vector<std::string>& tokens);
  void InsertOne(const std::string& token) { ++counts_[token]; }

  size_t CountOf(const std::string& token) const;
  size_t distinct_tokens() const { return counts_.size(); }
  size_t total_occurrences() const { return total_; }

  /// Tokens whose count is <= the median count ("infrequent", Algorithm 1
  /// line 9). Ties at the median are included.
  std::vector<std::string> Infrequent() const;

  /// Tokens whose count is > the median count ("frequent", line 12).
  std::vector<std::string> Frequent() const;

  const std::unordered_map<std::string, size_t>& counts() const { return counts_; }

 private:
  size_t MedianCount() const;

  std::unordered_map<std::string, size_t> counts_;
  size_t total_ = 0;
};

}  // namespace d3l

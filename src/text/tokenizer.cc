#include "text/tokenizer.h"

#include <cctype>

namespace d3l {

bool IsPartDelimiter(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (std::isalnum(u) || std::isspace(u)) return false;
  return true;  // every other symbol delimits parts (.,;:/- etc.)
}

std::vector<Part> SplitParts(std::string_view value) {
  std::vector<Part> parts;
  Part current;
  std::string word;
  auto flush_word = [&]() {
    if (!word.empty()) {
      current.words.push_back(word);
      word.clear();
    }
  };
  auto flush_part = [&]() {
    flush_word();
    if (!current.words.empty()) {
      parts.push_back(std::move(current));
      current = Part{};
    }
  };
  for (char c : value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (IsPartDelimiter(c)) {
      flush_part();
    } else if (std::isspace(u)) {
      flush_word();
    } else {
      word += static_cast<char>(std::tolower(u));
    }
  }
  flush_part();
  return parts;
}

std::vector<std::string> Tokenize(std::string_view value) {
  std::vector<std::string> out;
  for (Part& p : SplitParts(value)) {
    for (std::string& w : p.words) {
      out.push_back(std::move(w));
    }
  }
  return out;
}

}  // namespace d3l

// Feature standardization for classifier training.
#pragma once

#include <vector>

namespace d3l {

/// \brief Z-score standardizer fitted on a training matrix.
class StandardScaler {
 public:
  /// Fits means and standard deviations per feature column.
  void Fit(const std::vector<std::vector<double>>& xs);

  /// Standardizes one row: (x - mean) / std (std of 0 maps to passthrough).
  std::vector<double> Transform(const std::vector<double>& x) const;

  /// Fit + transform all rows.
  std::vector<std::vector<double>> FitTransform(
      const std::vector<std::vector<double>>& xs);

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace d3l

#include "ml/scaler.h"

#include <cmath>

namespace d3l {

void StandardScaler::Fit(const std::vector<std::vector<double>>& xs) {
  means_.clear();
  stds_.clear();
  if (xs.empty()) return;
  size_t d = xs[0].size();
  means_.assign(d, 0.0);
  stds_.assign(d, 0.0);
  for (const auto& row : xs) {
    for (size_t j = 0; j < d; ++j) means_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) means_[j] /= static_cast<double>(xs.size());
  for (const auto& row : xs) {
    for (size_t j = 0; j < d; ++j) {
      double dd = row[j] - means_[j];
      stds_[j] += dd * dd;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stds_[j] = std::sqrt(stds_[j] / static_cast<double>(xs.size()));
  }
}

std::vector<double> StandardScaler::Transform(const std::vector<double>& x) const {
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size() && j < means_.size(); ++j) {
    out[j] = stds_[j] > 0 ? (x[j] - means_[j]) / stds_[j] : x[j] - means_[j];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::FitTransform(
    const std::vector<std::vector<double>>& xs) {
  Fit(xs);
  std::vector<std::vector<double>> out;
  out.reserve(xs.size());
  for (const auto& row : xs) out.push_back(Transform(row));
  return out;
}

}  // namespace d3l

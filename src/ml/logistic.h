// L2-regularized logistic regression fit by cyclic coordinate descent.
//
// Used twice in D3L (Section III-D): (i) to learn the Eq. 3 evidence
// weights from benchmark ground truth, where the classifier coefficients
// become the weights; and (ii) as the subject-attribute classifier
// (Section III-C). The paper cites dual coordinate descent [30]; we use a
// per-coordinate Newton update with cyclic sweeps, which has the same
// optimizer structure and converges to the same optimum for this convex
// objective.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace d3l {

struct LogisticOptions {
  double l2 = 1e-3;           ///< L2 regularization strength (not on bias)
  size_t max_sweeps = 200;    ///< coordinate-descent sweeps
  double tolerance = 1e-7;    ///< stop when max coefficient delta is below
};

/// \brief A fitted binary classifier: P(y=1|x) = sigmoid(w.x + b).
class LogisticModel {
 public:
  LogisticModel() = default;
  LogisticModel(std::vector<double> weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  double PredictProbability(const std::vector<double>& x) const;
  bool PredictLabel(const std::vector<double>& x) const {
    return PredictProbability(x) >= 0.5;
  }

  /// Fraction of correct predictions over a labelled set.
  double Accuracy(const std::vector<std::vector<double>>& xs,
                  const std::vector<int>& ys) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0;
};

/// \brief Trains by cyclic coordinate descent (one-dimensional Newton steps
/// per coordinate with a conservative curvature bound).
///
/// \param xs feature rows (equal length), \param ys labels in {0, 1}.
Result<LogisticModel> TrainLogistic(const std::vector<std::vector<double>>& xs,
                                    const std::vector<int>& ys,
                                    const LogisticOptions& options = {});

}  // namespace d3l

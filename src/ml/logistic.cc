#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

namespace d3l {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double LogisticModel::PredictProbability(const std::vector<double>& x) const {
  double z = bias_;
  size_t n = std::min(x.size(), weights_.size());
  for (size_t i = 0; i < n; ++i) z += weights_[i] * x[i];
  return Sigmoid(z);
}

double LogisticModel::Accuracy(const std::vector<std::vector<double>>& xs,
                               const std::vector<int>& ys) const {
  if (xs.empty()) return 0;
  size_t correct = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (PredictLabel(xs[i]) == (ys[i] != 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

Result<LogisticModel> TrainLogistic(const std::vector<std::vector<double>>& xs,
                                    const std::vector<int>& ys,
                                    const LogisticOptions& options) {
  if (xs.empty()) return Status::InvalidArgument("empty training set");
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("xs/ys size mismatch");
  }
  const size_t n = xs.size();
  const size_t d = xs[0].size();
  for (const auto& row : xs) {
    if (row.size() != d) return Status::InvalidArgument("ragged feature rows");
  }
  for (int y : ys) {
    if (y != 0 && y != 1) return Status::InvalidArgument("labels must be 0/1");
  }

  std::vector<double> w(d, 0.0);
  double b = 0;
  // Cached margins z_i = w.x_i + b, updated incrementally per coordinate.
  std::vector<double> z(n, 0.0);

  // Curvature bound: sigma'(z) <= 1/4, so the per-coordinate Hessian is
  // bounded by sum_i x_ij^2 / 4 + l2. Using the bound keeps steps stable.
  std::vector<double> hess_bound(d, options.l2);
  for (size_t j = 0; j < d; ++j) {
    double s = 0;
    for (size_t i = 0; i < n; ++i) s += xs[i][j] * xs[i][j];
    hess_bound[j] += s / 4.0;
  }
  double bias_hess = static_cast<double>(n) / 4.0;

  for (size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double max_delta = 0;
    // Coordinate sweep over weights.
    for (size_t j = 0; j < d; ++j) {
      double grad = options.l2 * w[j];
      for (size_t i = 0; i < n; ++i) {
        double p = Sigmoid(z[i]);
        grad += (p - ys[i]) * xs[i][j];
      }
      if (hess_bound[j] <= 0) continue;
      double delta = -grad / hess_bound[j];
      if (delta != 0) {
        w[j] += delta;
        for (size_t i = 0; i < n; ++i) z[i] += delta * xs[i][j];
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    // Bias coordinate (unregularized).
    {
      double grad = 0;
      for (size_t i = 0; i < n; ++i) grad += Sigmoid(z[i]) - ys[i];
      double delta = bias_hess > 0 ? -grad / bias_hess : 0;
      if (delta != 0) {
        b += delta;
        for (size_t i = 0; i < n; ++i) z[i] += delta;
        max_delta = std::max(max_delta, std::fabs(delta));
      }
    }
    if (max_delta < options.tolerance) break;
  }
  return LogisticModel(std::move(w), b);
}

}  // namespace d3l

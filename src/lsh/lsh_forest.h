// LSH Forest (Bawa, Condie, Ganesan — WWW 2005).
//
// A self-tuning LSH index: l prefix trees, each keyed by a fixed-length
// sequence of hash values taken from an item's signature. A top-m query
// starts at the deepest shared prefix and relaxes the prefix length until
// enough candidates are found, which keeps search time nearly independent
// of repository size (the property the paper relies on, Section II).
//
// This implementation stores each tree as a flat structure-of-arrays: one
// contiguous array of fixed-width keys (hashes_per_tree uint64_t values per
// entry, entries prefix-sorted) and a parallel array of item ids. Queries
// are prefix-range binary searches over the key array — equivalent to a
// prefix tree but cache-friendly, allocation-free per entry, and directly
// serializable: Save() emits the arrays verbatim (8-byte aligned), so a
// mapped snapshot load is pointer fix-up and the tree borrows the mapping
// instead of copying it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "io/binary_io.h"
#include "lsh/minhash.h"

namespace d3l {

struct LshForestOptions {
  size_t num_trees = 8;       ///< l: number of prefix trees
  size_t hashes_per_tree = 8; ///< k_l: key length per tree (in hash values)

  bool operator==(const LshForestOptions&) const = default;
};

/// \brief Clamps forest options so num_trees * hashes_per_tree fits within a
/// signature of `available_values` values (e.g. rp_bits / 8 for bit
/// signatures run through SignatureAsHashSequence). Shrinks hashes_per_tree
/// first, then num_trees when even one hash per tree does not fit.
/// Requires available_values >= 1: nothing fits an empty signature, and the
/// returned 1x1 shape would still abort on the first Insert.
LshForestOptions ClampForestToSignature(LshForestOptions f, size_t available_values);

/// \brief On-disk layout of a serialized forest. The engine snapshot
/// version determines which one a file contains; the enum exists because
/// several container formats (engine snapshots, shard files) embed forests
/// and each versions its own magic.
enum class ForestWireFormat {
  kPerEntry,  ///< legacy: per-entry key values + id as u64 (copy-only load)
  kFlat,      ///< flat aligned key/id arrays (zero-copy capable)
};

/// \brief Top-m candidate index over integer-sequence signatures.
///
/// Works for MinHash signatures directly and for bit signatures via
/// RandomProjectionHasher::SignatureAsHashSequence. Signatures must provide
/// at least num_trees * hashes_per_tree values.
class LshForest {
 public:
  using ItemId = uint32_t;

  explicit LshForest(LshForestOptions options = {});

  /// Registers an item; call Index() before querying. Inserting into a
  /// forest that borrows a mapping detaches it (copies the arrays) first.
  void Insert(ItemId id, const Signature& signature);

  /// Sorts the trees. Insert/Index may be alternated (Index re-sorts).
  void Index();

  /// Returns up to m item ids whose keys share the longest prefixes with
  /// the query, most-similar-first ordering is NOT guaranteed (callers
  /// re-rank with exact signature distances). The query signature must come
  /// from the same hasher family as the inserted ones.
  std::vector<ItemId> Query(const Signature& signature, size_t m) const;

  /// All items sharing a prefix of at least `min_depth` hash values with
  /// the query in at least one tree (threshold-flavoured lookup).
  std::vector<ItemId> QueryAtDepth(const Signature& signature, size_t min_depth) const;

  /// Distinct-match counts per prefix depth: counts[d-1] is the number of
  /// distinct items sharing a prefix of at least d hash values with the
  /// query in at least one tree, for d in [1, hashes_per_tree]. Counts are
  /// monotone nonincreasing in d, and — because every item lives in exactly
  /// one forest — counts from forests over disjoint item sets (the shards
  /// of src/serving) add element-wise into the counts of the union forest.
  ///
  /// A non-zero `budget` (the m of the StopDepth rule) enables early
  /// termination: the forest descends its nested prefix ranges from the
  /// deepest depth and stops scanning once the cumulative distinct-match
  /// count reaches the budget. Counts at the saturating depth and deeper
  /// are exact; shallower entries are clamped to the count at saturation
  /// (>= budget). Because the stop rule picks the DEEPEST depth with at
  /// least m matches, the clamp can never change StopDepth — locally or
  /// after shard summing: any shard that clamped below depth d certifies
  /// the summed count at d already reaches m, so no shallower depth is
  /// ever consulted. With budget == 0 the full exact histogram is scanned.
  std::vector<size_t> DepthCounts(const Signature& signature, size_t budget = 0) const;

  /// The synchronous-descent stop rule of Query() applied to a (possibly
  /// shard-merged) DepthCounts vector: the deepest depth at which at least
  /// m distinct candidates exist, or 1 when no depth reaches m. Combined
  /// with QueryAtDepth, this reproduces Query's candidate set without the
  /// arbitrary order-dependent truncation to exactly m.
  static size_t StopDepth(const std::vector<size_t>& counts, size_t m);

  size_t size() const { return num_items_; }

  const LshForestOptions& options() const { return options_; }
  size_t num_trees() const { return trees_.size(); }

  /// Number of entries stored in one tree (== size() once every item is
  /// inserted into every tree, i.e. always outside of Insert itself).
  size_t tree_size(size_t tree) const { return trees_[tree].size; }

  /// Read-only view of one tree's key array: tree_size(tree) entries of
  /// hashes_per_tree values each, entry i at [i*hashes_per_tree,
  /// (i+1)*hashes_per_tree). Insertion order before Index(), key-sorted
  /// after. This is the enumeration surface used by Save() and by
  /// diagnostics; it exists so serialization does not need friend access.
  const uint64_t* tree_keys(size_t tree) const { return trees_[tree].keys(); }

  /// Read-only view of one tree's item-id array, parallel to tree_keys().
  const ItemId* tree_ids(size_t tree) const { return trees_[tree].ids(); }

  /// True when any tree borrows its arrays from a snapshot mapping instead
  /// of owning heap copies (diagnostics; zero heap cost in MemoryUsage).
  bool borrows_mapping() const { return storage_ != nullptr; }

  /// Serializes options and all tree arrays (ForestWireFormat::kFlat) into
  /// the writer's current section, 8-byte aligning the arrays so a mapped
  /// reader can serve them in place. The forest should be Index()ed first
  /// so a loaded forest is immediately queryable.
  void Save(io::Writer& w) const;

  /// Deserializes a forest written in `format`. On any read error the
  /// reader's status() is non-OK and the returned forest must be discarded.
  /// When the reader is mapped and the host allows it, a kFlat forest
  /// borrows its arrays straight from the mapping and holds the mapping
  /// alive; otherwise it owns heap copies. kPerEntry reads the legacy
  /// per-entry layout (always copied).
  static LshForest Load(io::Reader& r, ForestWireFormat format = ForestWireFormat::kFlat);

  /// Exact heap footprint in bytes (space-overhead bench): the owned key
  /// and id array capacities plus the tree table. Arrays borrowed from a
  /// mapping cost no heap and count zero — resident cost for those lives in
  /// the (shared, page-cached) mapping.
  size_t MemoryUsage() const;

 private:
  struct Tree {
    std::vector<uint64_t> owned_keys;  ///< size * hashes_per_tree values
    std::vector<ItemId> owned_ids;     ///< size values
    const uint64_t* borrowed_keys = nullptr;  ///< into a mapping, or null
    const ItemId* borrowed_ids = nullptr;
    size_t size = 0;  ///< number of entries
    bool sorted = false;

    const uint64_t* keys() const {
      return borrowed_keys != nullptr ? borrowed_keys : owned_keys.data();
    }
    const ItemId* ids() const {
      return borrowed_ids != nullptr ? borrowed_ids : owned_ids.data();
    }
  };

  std::vector<uint64_t> TreeKey(size_t tree, const Signature& sig) const;
  // Aborts (in all build types) if the signature is too short for TreeKey.
  void CheckSignatureSize(const Signature& sig) const;
  // Copies borrowed arrays into owned storage so the tree can be mutated.
  void DetachTree(Tree& tree);
  // Collects ids of entries matching the first `depth` key values.
  void CollectAtDepth(const Tree& tree, const std::vector<uint64_t>& key, size_t depth,
                      std::vector<ItemId>* out) const;

  LshForestOptions options_;
  std::vector<Tree> trees_;
  size_t num_items_ = 0;
  /// Keeps the snapshot mapping alive while any tree borrows from it.
  std::shared_ptr<io::MappedFile> storage_;
};

}  // namespace d3l

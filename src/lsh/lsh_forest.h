// LSH Forest (Bawa, Condie, Ganesan — WWW 2005).
//
// A self-tuning LSH index: l prefix trees, each keyed by a fixed-length
// sequence of hash values taken from an item's signature. A top-m query
// starts at the deepest shared prefix and relaxes the prefix length until
// enough candidates are found, which keeps search time nearly independent
// of repository size (the property the paper relies on, Section II).
//
// This implementation stores each tree as a sorted array of fixed-width
// keys and performs prefix-range binary searches, equivalent to a prefix
// tree but far more cache-friendly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/binary_io.h"
#include "lsh/minhash.h"

namespace d3l {

struct LshForestOptions {
  size_t num_trees = 8;       ///< l: number of prefix trees
  size_t hashes_per_tree = 8; ///< k_l: key length per tree (in hash values)

  bool operator==(const LshForestOptions&) const = default;
};

/// \brief Clamps forest options so num_trees * hashes_per_tree fits within a
/// signature of `available_values` values (e.g. rp_bits / 8 for bit
/// signatures run through SignatureAsHashSequence). Shrinks hashes_per_tree
/// first, then num_trees when even one hash per tree does not fit.
/// Requires available_values >= 1: nothing fits an empty signature, and the
/// returned 1x1 shape would still abort on the first Insert.
LshForestOptions ClampForestToSignature(LshForestOptions f, size_t available_values);

/// \brief Top-m candidate index over integer-sequence signatures.
///
/// Works for MinHash signatures directly and for bit signatures via
/// RandomProjectionHasher::SignatureAsHashSequence. Signatures must provide
/// at least num_trees * hashes_per_tree values.
class LshForest {
 public:
  using ItemId = uint32_t;

  /// One stored entry of a tree: the fixed-width key (hashes_per_tree
  /// values sliced from the inserted signature) plus the item id.
  struct Entry {
    std::vector<uint64_t> key;
    ItemId id;
  };

  explicit LshForest(LshForestOptions options = {});

  /// Registers an item; call Index() before querying.
  void Insert(ItemId id, const Signature& signature);

  /// Sorts the trees. Insert/Index may be alternated (Index re-sorts).
  void Index();

  /// Returns up to m item ids whose keys share the longest prefixes with
  /// the query, most-similar-first ordering is NOT guaranteed (callers
  /// re-rank with exact signature distances). The query signature must come
  /// from the same hasher family as the inserted ones.
  std::vector<ItemId> Query(const Signature& signature, size_t m) const;

  /// All items sharing a prefix of at least `min_depth` hash values with
  /// the query in at least one tree (threshold-flavoured lookup).
  std::vector<ItemId> QueryAtDepth(const Signature& signature, size_t min_depth) const;

  /// Distinct-match counts per prefix depth: counts[d-1] is the number of
  /// distinct items sharing a prefix of at least d hash values with the
  /// query in at least one tree, for d in [1, hashes_per_tree]. Counts are
  /// monotone nonincreasing in d, and — because every item lives in exactly
  /// one forest — counts from forests over disjoint item sets (the shards
  /// of src/serving) add element-wise into the counts of the union forest.
  ///
  /// A non-zero `budget` (the m of the StopDepth rule) enables early
  /// termination: the forest descends its nested prefix ranges from the
  /// deepest depth and stops scanning once the cumulative distinct-match
  /// count reaches the budget. Counts at the saturating depth and deeper
  /// are exact; shallower entries are clamped to the count at saturation
  /// (>= budget). Because the stop rule picks the DEEPEST depth with at
  /// least m matches, the clamp can never change StopDepth — locally or
  /// after shard summing: any shard that clamped below depth d certifies
  /// the summed count at d already reaches m, so no shallower depth is
  /// ever consulted. With budget == 0 the full exact histogram is scanned.
  std::vector<size_t> DepthCounts(const Signature& signature, size_t budget = 0) const;

  /// The synchronous-descent stop rule of Query() applied to a (possibly
  /// shard-merged) DepthCounts vector: the deepest depth at which at least
  /// m distinct candidates exist, or 1 when no depth reaches m. Combined
  /// with QueryAtDepth, this reproduces Query's candidate set without the
  /// arbitrary order-dependent truncation to exactly m.
  static size_t StopDepth(const std::vector<size_t>& counts, size_t m);

  size_t size() const { return num_items_; }

  const LshForestOptions& options() const { return options_; }
  size_t num_trees() const { return trees_.size(); }

  /// Read-only view of one tree's stored entries (insertion order before
  /// Index(), key-sorted after). This is the enumeration surface used by
  /// Save() and by diagnostics; it exists so serialization does not need
  /// friend access to the internals.
  const std::vector<Entry>& tree_entries(size_t tree) const {
    return trees_[tree].entries;
  }

  /// Serializes options and all tree entries into the writer's current
  /// section. The forest should be Index()ed first so a loaded forest is
  /// immediately queryable.
  void Save(io::Writer& w) const;

  /// Deserializes a forest written by Save(). On any read error the
  /// reader's status() is non-OK and the returned forest must be discarded.
  static LshForest Load(io::Reader& r);

  /// Approximate heap footprint in bytes (space-overhead bench).
  size_t MemoryUsage() const;

 private:
  struct Tree {
    std::vector<Entry> entries;
    bool sorted = false;
  };

  std::vector<uint64_t> TreeKey(size_t tree, const Signature& sig) const;
  // Aborts (in all build types) if the signature is too short for TreeKey.
  void CheckSignatureSize(const Signature& sig) const;
  // Collects ids of entries matching the first `depth` key values.
  void CollectAtDepth(const Tree& tree, const std::vector<uint64_t>& key, size_t depth,
                      std::vector<ItemId>* out) const;

  LshForestOptions options_;
  std::vector<Tree> trees_;
  size_t num_items_ = 0;
};

}  // namespace d3l

// LSH Ensemble (Zhu, Nargesian, Pu, Miller — PVLDB 2016).
//
// The D3L paper (Section II) names LSH Ensemble as an indexing scheme
// compatible with its use case: it "aims to overcome the weaknesses of
// MinHash when used on sets with skewed lengths". Plain MinHash banding
// thresholds *Jaccard* similarity, which under-retrieves small sets
// contained in large ones; domain search wants *containment*
// c(Q, X) = |Q ∩ X| / |Q|.
//
// This implementation follows the ensemble recipe: indexed sets are
// partitioned by cardinality into near-equal buckets, each partition keeps
// a recall-oriented banded index plus its members' signatures and exact
// sizes. A containment query converts the containment threshold into the
// partition-specific Jaccard threshold (using the partition's size bounds)
// and filters candidates on the containment estimate derived from the
// MinHash Jaccard estimate and the known set sizes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "io/binary_io.h"
#include "lsh/lsh_banding.h"
#include "lsh/minhash.h"

namespace d3l {

struct LshEnsembleOptions {
  size_t num_partitions = 8;
  size_t signature_size = 256;
  /// Jaccard-threshold ladder of the per-partition banded indexes
  /// (dynamic banding): a containment query converts its threshold into a
  /// partition-specific Jaccard bound — which can be tiny when a small
  /// query probes a large-set partition — and probes the rung just below
  /// that bound. Precision comes from the subsequent containment filter.
  std::vector<double> threshold_ladder = {0.02, 0.12, 0.25, 0.45, 0.7};
};

/// \brief Containment-threshold search over sets of skewed cardinalities.
class LshEnsemble {
 public:
  using ItemId = uint32_t;

  explicit LshEnsemble(LshEnsembleOptions options = {});

  /// Registers a set's signature together with its exact cardinality. The
  /// signature must have exactly options().signature_size values: the
  /// ensemble stores signatures in one flat fixed-stride array.
  void Insert(ItemId id, const Signature& signature, size_t set_size);

  /// Partitions by cardinality and builds the per-partition indexes. Must
  /// be called after the last Insert and before queries.
  void Index();

  /// Ids X with estimated containment c(Q, X) = |Q ∩ X| / |Q| at or above
  /// `threshold`, for a query set of size `query_set_size`.
  std::vector<ItemId> QueryContainment(const Signature& query, size_t query_set_size,
                                       double threshold) const;

  /// Estimated containment of the query in one indexed item.
  double EstimateContainment(const Signature& query, size_t query_set_size,
                             ItemId id) const;

  size_t size() const { return ids_.size(); }
  size_t num_partitions() const { return partitions_.size(); }
  size_t MemoryUsage() const;

  const LshEnsembleOptions& options() const { return options_; }

  /// Serializes options and the inserted signatures (one flat aligned
  /// array) into the writer's current section. Partitions are not written:
  /// they are a deterministic function of the items, so Load() rebuilds
  /// them via Index().
  void Save(io::Writer& w) const;

  /// Deserializes an ensemble written by Save(); check the reader's
  /// status() before use. Under a mapped reader the signature array
  /// borrows the mapping (and keeps it alive) instead of being copied.
  static LshEnsemble Load(io::Reader& r);

 private:
  struct Partition {
    size_t min_size = 0;
    size_t max_size = 0;
    std::vector<size_t> member_indexes;   // into the item arrays
    std::vector<BandedLsh> rungs;         // one banded index per ladder rung
  };

  /// Signature of item `index`: options_.signature_size values.
  const uint64_t* SignatureOf(size_t index) const {
    const uint64_t* base = borrowed_sigs_ != nullptr ? borrowed_sigs_ : owned_sigs_.data();
    return base + index * options_.signature_size;
  }
  /// Copies a borrowed signature array into owned storage (pre-mutation).
  void Detach();

  LshEnsembleOptions options_;
  // Parallel item arrays; signatures are fixed-stride (signature_size) in
  // one contiguous block, either owned or borrowed from a snapshot mapping.
  std::vector<ItemId> ids_;
  std::vector<uint64_t> set_sizes_;
  std::vector<uint64_t> owned_sigs_;
  const uint64_t* borrowed_sigs_ = nullptr;
  std::shared_ptr<io::MappedFile> storage_;  ///< alive while borrowing
  std::vector<Partition> partitions_;
  bool indexed_ = false;
};

/// \brief Containment estimate from a Jaccard estimate and both set sizes:
/// |Q ∩ X| ≈ j / (1 + j) * (|Q| + |X|), c = |Q ∩ X| / |Q|. Clamped to [0,1].
double ContainmentFromJaccard(double jaccard, size_t query_size, size_t set_size);

}  // namespace d3l

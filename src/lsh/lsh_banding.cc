#include "lsh/lsh_banding.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "common/hash.h"

namespace d3l {

std::pair<size_t, size_t> OptimalBandsRows(size_t signature_size, double threshold) {
  assert(signature_size > 0);
  // b*r need not cover the whole signature exactly; allowing b = floor(n/r)
  // makes the achievable threshold set much denser.
  size_t best_b = 1;
  size_t best_r = signature_size;
  double best_err = 1e9;
  for (size_t r = 1; r <= signature_size; ++r) {
    size_t b = signature_size / r;
    if (b == 0) break;
    double t = std::pow(1.0 / static_cast<double>(b), 1.0 / static_cast<double>(r));
    double err = std::fabs(t - threshold);
    if (err < best_err) {
      best_err = err;
      best_b = b;
      best_r = r;
    }
  }
  return {best_b, best_r};
}

double BandingCollisionProbability(double similarity, size_t bands, size_t rows) {
  double p_band = std::pow(similarity, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - p_band, static_cast<double>(bands));
}

BandedLsh::BandedLsh(BandedLshOptions options) : options_(options) {
  auto [b, r] = OptimalBandsRows(options_.signature_size, options_.threshold);
  bands_ = b;
  rows_ = r;
  buckets_.resize(bands_);
}

void BandedLsh::CheckSignatureSize(size_t n) const {
  // BandHash reads sig[bands * rows - 1]; a short signature (an ensemble
  // whose options disagree with its hasher) would read out of bounds. Fail
  // loudly in release builds too, like LshForest::CheckSignatureSize —
  // Insert/Query are per-item, so the check is cheap.
  const size_t need = bands_ * rows_;
  if (n < need) {
    std::fprintf(stderr,
                 "BandedLsh: signature has %zu values but bands * rows = %zu "
                 "(options signature_size %zu)\n",
                 n, need, options_.signature_size);
    std::abort();
  }
}

uint64_t BandedLsh::BandHash(size_t band, const uint64_t* sig) const {
  uint64_t h = Mix64(band + 0x51ed2701);
  for (size_t i = 0; i < rows_; ++i) {
    h = HashCombine(h, sig[band * rows_ + i]);
  }
  return h;
}

void BandedLsh::Insert(ItemId id, const Signature& signature) {
  Insert(id, signature.data(), signature.size());
}

void BandedLsh::Insert(ItemId id, const uint64_t* signature, size_t n) {
  CheckSignatureSize(n);
  for (size_t b = 0; b < bands_; ++b) {
    buckets_[b][BandHash(b, signature)].push_back(id);
  }
  ++num_items_;
}

std::vector<BandedLsh::ItemId> BandedLsh::Query(const Signature& signature) const {
  CheckSignatureSize(signature.size());
  std::unordered_set<ItemId> seen;
  std::vector<ItemId> out;
  for (size_t b = 0; b < bands_; ++b) {
    auto it = buckets_[b].find(BandHash(b, signature.data()));
    if (it == buckets_[b].end()) continue;
    for (ItemId id : it->second) {
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return out;
}

size_t BandedLsh::MemoryUsage() const {
  size_t bytes = sizeof(BandedLsh);
  for (const auto& band : buckets_) {
    bytes += band.size() * (sizeof(uint64_t) + 16);
    for (const auto& [h, ids] : band) {
      bytes += ids.size() * sizeof(ItemId);
    }
  }
  return bytes;
}

}  // namespace d3l

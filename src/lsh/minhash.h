// MinHash signatures (Broder 1997) for Jaccard-similarity LSH.
//
// Evidence types N, V and F are grounded on Jaccard similarity of set
// representations (qsets/tsets/rsets); their distances are estimated from
// MinHash signatures (Section III-B). The paper uses a MinHash size of 256.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"

namespace d3l {

using Signature = std::vector<uint64_t>;

/// \brief Produces k-permutation MinHash signatures of string sets.
///
/// Uses the "one strong hash + k cheap rehashes" construction: an element is
/// first hashed to 64 bits, then each of the k component values is the
/// minimum of a seeded remix over the set.
class MinHasher {
 public:
  /// \param k signature size (paper: 256)
  /// \param seed hash-family seed; equal seeds give comparable signatures
  MinHasher(size_t k, uint64_t seed);

  size_t k() const { return family_.size(); }

  /// Signature of a set of strings. An empty set gets a sentinel signature
  /// (all-max) that matches nothing.
  Signature Sign(const std::set<std::string>& elements) const;
  Signature Sign(const std::vector<std::string>& elements) const;

  /// Signature from pre-hashed 64-bit element keys.
  Signature SignHashed(const std::vector<uint64_t>& element_hashes) const;

 private:
  HashFamily family_;
};

/// \brief Fraction of matching components: unbiased estimator of Jaccard
/// similarity for signatures produced with the same MinHasher.
double EstimateJaccard(const Signature& a, const Signature& b);

/// \brief Span form over `n`-value signatures (flat signature stores that
/// keep many signatures in one contiguous — possibly mapped — array).
double EstimateJaccard(const uint64_t* a, const uint64_t* b, size_t n);

/// \brief 1 - EstimateJaccard: the estimated Jaccard distance.
inline double EstimateJaccardDistance(const Signature& a, const Signature& b) {
  return 1.0 - EstimateJaccard(a, b);
}

}  // namespace d3l

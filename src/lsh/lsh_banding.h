// Classic banded LSH for threshold queries.
//
// A signature of n values is split into b bands of r rows; two items
// collide if any band matches exactly. The collision probability for
// Jaccard similarity s is 1 - (1 - s^r)^b, an S-curve whose inflection
// approximates (1/b)^(1/r). Given a target threshold tau (the paper uses
// 0.7), OptimalBandCount picks the b (and r = n/b) whose curve threshold is
// closest to tau. Used for the SA-join graph's tset-overlap evidence
// (Section IV), where threshold semantics — not top-k — are needed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lsh/minhash.h"

namespace d3l {

struct BandedLshOptions {
  double threshold = 0.7;  ///< target Jaccard similarity threshold tau
  size_t signature_size = 256;
};

/// \brief Chooses (bands, rows) for a signature size and threshold.
///
/// Scans divisors b of n and returns the b minimizing
/// |(1/b)^(1/(n/b)) - threshold|.
std::pair<size_t, size_t> OptimalBandsRows(size_t signature_size, double threshold);

/// \brief Expected collision probability 1 - (1 - s^r)^b.
double BandingCollisionProbability(double similarity, size_t bands, size_t rows);

/// \brief Threshold-style LSH index over MinHash signatures.
class BandedLsh {
 public:
  using ItemId = uint32_t;

  explicit BandedLsh(BandedLshOptions options = {});

  size_t bands() const { return bands_; }
  size_t rows() const { return rows_; }

  void Insert(ItemId id, const Signature& signature);

  /// Span form for flat signature stores: `signature` points at `n` values.
  void Insert(ItemId id, const uint64_t* signature, size_t n);

  /// Items sharing at least one band with the query (candidates whose
  /// Jaccard similarity is likely >= threshold). Deduplicated.
  std::vector<ItemId> Query(const Signature& signature) const;

  size_t size() const { return num_items_; }
  size_t MemoryUsage() const;

 private:
  uint64_t BandHash(size_t band, const uint64_t* sig) const;
  // Aborts (in all build types) if the signature is too short for BandHash.
  void CheckSignatureSize(size_t n) const;

  BandedLshOptions options_;
  size_t bands_;
  size_t rows_;
  // band index -> (band hash -> item ids)
  std::vector<std::unordered_map<uint64_t, std::vector<ItemId>>> buckets_;
  size_t num_items_ = 0;
};

}  // namespace d3l

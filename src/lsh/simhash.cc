#include "lsh/simhash.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace d3l {

RandomProjectionHasher::RandomProjectionHasher(size_t dim, size_t bits, uint64_t seed)
    : dim_(dim), bits_(bits) {
  planes_.resize(dim * bits);
  for (size_t p = 0; p < bits_; ++p) {
    uint64_t plane_key = HashCombine(seed, p);
    for (size_t j = 0; j < dim_; ++j) {
      planes_[p * dim_ + j] =
          static_cast<float>(GaussianFromKey(HashCombine(plane_key, j)));
    }
  }
}

BitSignature RandomProjectionHasher::Sign(const Vec& v) const {
  assert(v.size() == dim_);
  BitSignature sig;
  sig.bits = bits_;
  sig.words.assign((bits_ + 63) / 64, 0);
  for (size_t p = 0; p < bits_; ++p) {
    double dot = 0;
    const float* plane = &planes_[p * dim_];
    for (size_t j = 0; j < dim_; ++j) {
      dot += static_cast<double>(v[j]) * plane[j];
    }
    if (dot >= 0) {
      sig.words[p / 64] |= (1ULL << (p % 64));
    }
  }
  return sig;
}

std::vector<uint64_t> RandomProjectionHasher::SignatureAsHashSequence(
    const BitSignature& sig) const {
  std::vector<uint64_t> seq;
  seq.reserve((sig.bits + 7) / 8);
  for (size_t b = 0; b < sig.bits; b += 8) {
    uint64_t byte = 0;
    for (size_t i = 0; i < 8 && b + i < sig.bits; ++i) {
      size_t p = b + i;
      uint64_t bit = (sig.words[p / 64] >> (p % 64)) & 1ULL;
      byte |= bit << i;
    }
    seq.push_back(byte);
  }
  return seq;
}

size_t HammingDistance(const BitSignature& a, const BitSignature& b) {
  assert(a.bits == b.bits);
  size_t d = 0;
  for (size_t i = 0; i < a.words.size(); ++i) {
    d += static_cast<size_t>(std::popcount(a.words[i] ^ b.words[i]));
  }
  return d;
}

double EstimateCosine(const BitSignature& a, const BitSignature& b) {
  if (a.bits == 0) return 0;
  double theta = M_PI * static_cast<double>(HammingDistance(a, b)) /
                 static_cast<double>(a.bits);
  return std::cos(theta);
}

double EstimateCosineDistance(const BitSignature& a, const BitSignature& b) {
  return std::clamp(1.0 - EstimateCosine(a, b), 0.0, 1.0);
}

}  // namespace d3l

#include "lsh/minhash.h"

#include <cassert>
#include <limits>

namespace d3l {

MinHasher::MinHasher(size_t k, uint64_t seed) : family_(k, seed) {}

Signature MinHasher::SignHashed(const std::vector<uint64_t>& element_hashes) const {
  Signature sig(family_.size(), std::numeric_limits<uint64_t>::max());
  for (uint64_t eh : element_hashes) {
    for (size_t i = 0; i < family_.size(); ++i) {
      uint64_t h = family_.Apply(i, eh);
      if (h < sig[i]) sig[i] = h;
    }
  }
  return sig;
}

Signature MinHasher::Sign(const std::set<std::string>& elements) const {
  std::vector<uint64_t> hashes;
  hashes.reserve(elements.size());
  for (const std::string& e : elements) hashes.push_back(HashString(e));
  return SignHashed(hashes);
}

Signature MinHasher::Sign(const std::vector<std::string>& elements) const {
  std::vector<uint64_t> hashes;
  hashes.reserve(elements.size());
  for (const std::string& e : elements) hashes.push_back(HashString(e));
  return SignHashed(hashes);
}

double EstimateJaccard(const Signature& a, const Signature& b) {
  assert(a.size() == b.size());
  return EstimateJaccard(a.data(), b.data(), a.size());
}

double EstimateJaccard(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n == 0) return 0;
  size_t match = 0;
  size_t valid = 0;
  constexpr uint64_t kEmpty = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < n; ++i) {
    // Sentinel components (both sets empty at i) are not evidence of
    // similarity; a signature of an empty set matches nothing.
    if (a[i] == kEmpty && b[i] == kEmpty) continue;
    ++valid;
    if (a[i] == b[i]) ++match;
  }
  if (valid == 0) return 0;
  return static_cast<double>(match) / static_cast<double>(n);
}

}  // namespace d3l

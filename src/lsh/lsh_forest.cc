#include "lsh/lsh_forest.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace d3l {

LshForestOptions ClampForestToSignature(LshForestOptions f, size_t available_values) {
  assert(available_values >= 1);  // an empty signature fits no key shape
  if (f.num_trees > available_values) {
    f.num_trees = std::max<size_t>(1, available_values);
  }
  size_t per_tree = available_values / std::max<size_t>(1, f.num_trees);
  f.hashes_per_tree = std::max<size_t>(1, std::min(f.hashes_per_tree, per_tree));
  return f;
}

LshForest::LshForest(LshForestOptions options) : options_(options) {
  trees_.resize(options_.num_trees);
}

void LshForest::CheckSignatureSize(const Signature& sig) const {
  // A short signature would make TreeKey read out of bounds; fail loudly in
  // release builds too (Insert/Query are per-item, so the check is cheap).
  const size_t need = options_.num_trees * options_.hashes_per_tree;
  if (sig.size() < need) {
    std::fprintf(stderr,
                 "LshForest: signature has %zu values but num_trees * "
                 "hashes_per_tree = %zu\n",
                 sig.size(), need);
    std::abort();
  }
}

std::vector<uint64_t> LshForest::TreeKey(size_t tree, const Signature& sig) const {
  const size_t kpt = options_.hashes_per_tree;
  assert(sig.size() >= options_.num_trees * kpt);
  std::vector<uint64_t> key(kpt);
  for (size_t i = 0; i < kpt; ++i) {
    key[i] = sig[tree * kpt + i];
  }
  return key;
}

void LshForest::Insert(ItemId id, const Signature& signature) {
  CheckSignatureSize(signature);
  for (size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].entries.push_back(Entry{TreeKey(t, signature), id});
    trees_[t].sorted = false;
  }
  ++num_items_;
}

void LshForest::Index() {
  for (Tree& tree : trees_) {
    if (tree.sorted) continue;
    std::sort(tree.entries.begin(), tree.entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.id < b.id;
              });
    tree.sorted = true;
  }
}

void LshForest::CollectAtDepth(const Tree& tree, const std::vector<uint64_t>& key,
                               size_t depth, std::vector<ItemId>* out) const {
  assert(tree.sorted);
  // Entries matching the first `depth` components form a contiguous sorted
  // range; locate it with prefix-comparing binary searches.
  auto prefix_less = [depth](const Entry& e, const std::vector<uint64_t>& k) {
    for (size_t i = 0; i < depth; ++i) {
      if (e.key[i] != k[i]) return e.key[i] < k[i];
    }
    return false;
  };
  auto less_prefix = [depth](const std::vector<uint64_t>& k, const Entry& e) {
    for (size_t i = 0; i < depth; ++i) {
      if (k[i] != e.key[i]) return k[i] < e.key[i];
    }
    return false;
  };
  auto lo = std::lower_bound(tree.entries.begin(), tree.entries.end(), key, prefix_less);
  auto hi = std::upper_bound(lo, tree.entries.end(), key, less_prefix);
  for (auto it = lo; it != hi; ++it) {
    out->push_back(it->id);
  }
}

std::vector<LshForest::ItemId> LshForest::Query(const Signature& signature,
                                                size_t m) const {
  std::unordered_set<ItemId> seen;
  std::vector<ItemId> result;
  if (m == 0) return result;
  CheckSignatureSize(signature);
  std::vector<std::vector<uint64_t>> keys(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) keys[t] = TreeKey(t, signature);

  // Descend from the deepest prefix; stop as soon as enough distinct
  // candidates have been accumulated (LSH Forest's synchronous descent).
  for (size_t depth = options_.hashes_per_tree; depth >= 1; --depth) {
    std::vector<ItemId> level;
    for (size_t t = 0; t < trees_.size(); ++t) {
      CollectAtDepth(trees_[t], keys[t], depth, &level);
    }
    for (ItemId id : level) {
      if (seen.insert(id).second) {
        result.push_back(id);
      }
    }
    if (result.size() >= m) break;
  }
  if (result.size() > m) result.resize(m);
  return result;
}

std::vector<LshForest::ItemId> LshForest::QueryAtDepth(const Signature& signature,
                                                       size_t min_depth) const {
  assert(min_depth >= 1 && min_depth <= options_.hashes_per_tree);
  CheckSignatureSize(signature);
  std::unordered_set<ItemId> seen;
  std::vector<ItemId> result;
  for (size_t t = 0; t < trees_.size(); ++t) {
    std::vector<ItemId> level;
    CollectAtDepth(trees_[t], TreeKey(t, signature), min_depth, &level);
    for (ItemId id : level) {
      if (seen.insert(id).second) result.push_back(id);
    }
  }
  return result;
}

std::vector<size_t> LshForest::DepthCounts(const Signature& signature,
                                           size_t budget) const {
  CheckSignatureSize(signature);
  const size_t kpt = options_.hashes_per_tree;
  if (budget == 0) {
    // Exact histogram: deepest matching prefix per item across all trees.
    // One pass over the depth-1 range of every tree (a superset of every
    // deeper range) beats re-collecting the deeper ranges once per depth.
    std::unordered_map<ItemId, size_t> deepest;
    for (size_t t = 0; t < trees_.size(); ++t) {
      const Tree& tree = trees_[t];
      assert(tree.sorted);
      const std::vector<uint64_t> key = TreeKey(t, signature);
      auto prefix_less = [](const Entry& e, const std::vector<uint64_t>& k) {
        return e.key[0] < k[0];
      };
      auto less_prefix = [](const std::vector<uint64_t>& k, const Entry& e) {
        return k[0] < e.key[0];
      };
      auto lo =
          std::lower_bound(tree.entries.begin(), tree.entries.end(), key, prefix_less);
      auto hi = std::upper_bound(lo, tree.entries.end(), key, less_prefix);
      for (auto it = lo; it != hi; ++it) {
        size_t lcp = 1;
        while (lcp < kpt && it->key[lcp] == key[lcp]) ++lcp;
        size_t& best = deepest[it->id];
        best = std::max(best, lcp);
      }
    }
    std::vector<size_t> counts(kpt, 0);
    for (const auto& [id, depth] : deepest) counts[depth - 1]++;
    // Suffix-sum the histogram: counts[d-1] becomes |{items: lcp >= d}|.
    for (size_t d = kpt - 1; d-- > 0;) counts[d] += counts[d + 1];
    return counts;
  }

  // Budgeted descent over nested prefix ranges: per tree, the entries
  // matching the first d key values form a contiguous range that contains
  // the depth-(d+1) range, so expanding depth by depth visits each entry at
  // most once — at exactly its prefix depth — and never touches entries
  // deeper than where the cumulative distinct count saturates the budget.
  struct TreeRange {
    const Tree* tree;
    std::vector<uint64_t> key;
    size_t lo = 0, hi = 0;  ///< current range (depth d+1 when expanding to d)
  };
  std::vector<TreeRange> ranges;
  ranges.reserve(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    assert(trees_[t].sorted);
    TreeRange r{&trees_[t], TreeKey(t, signature), 0, 0};
    // Seed with the (possibly empty) deepest range's insertion point so the
    // first expansion below starts from a valid nested position.
    auto full_less = [kpt](const Entry& e, const std::vector<uint64_t>& k) {
      for (size_t i = 0; i < kpt; ++i) {
        if (e.key[i] != k[i]) return e.key[i] < k[i];
      }
      return false;
    };
    auto lo = std::lower_bound(r.tree->entries.begin(), r.tree->entries.end(), r.key,
                               full_less);
    r.lo = r.hi = static_cast<size_t>(lo - r.tree->entries.begin());
    ranges.push_back(std::move(r));
  }

  std::unordered_map<ItemId, size_t> deepest;  // exact lcp of every scanned item
  size_t stopped_above = 0;  // depths < this were never scanned (clamped)
  for (size_t d = kpt; d >= 1; --d) {
    for (TreeRange& r : ranges) {
      const std::vector<Entry>& entries = r.tree->entries;
      auto prefix_less = [d](const Entry& e, const std::vector<uint64_t>& k) {
        for (size_t i = 0; i < d; ++i) {
          if (e.key[i] != k[i]) return e.key[i] < k[i];
        }
        return false;
      };
      auto less_prefix = [d](const std::vector<uint64_t>& k, const Entry& e) {
        for (size_t i = 0; i < d; ++i) {
          if (k[i] != e.key[i]) return k[i] < e.key[i];
        }
        return false;
      };
      const size_t lo = static_cast<size_t>(
          std::lower_bound(entries.begin(), entries.begin() + r.lo, r.key, prefix_less) -
          entries.begin());
      const size_t hi = static_cast<size_t>(
          std::upper_bound(entries.begin() + r.hi, entries.end(), r.key, less_prefix) -
          entries.begin());
      // Entries in [lo, r.lo) and [r.hi, hi) match d values but not d+1:
      // their lcp with the query is exactly d.
      for (size_t i = lo; i < r.lo; ++i) {
        size_t& best = deepest[entries[i].id];
        best = std::max(best, d);
      }
      for (size_t i = r.hi; i < hi; ++i) {
        size_t& best = deepest[entries[i].id];
        best = std::max(best, d);
      }
      r.lo = lo;
      r.hi = hi;
    }
    if (deepest.size() >= budget) {
      stopped_above = d - 1;  // depths 1..d-1 not scanned
      break;
    }
  }

  std::vector<size_t> counts(kpt, 0);
  for (const auto& [id, depth] : deepest) counts[depth - 1]++;
  for (size_t d = kpt - 1; d-- > 0;) counts[d] += counts[d + 1];
  // Clamp the unscanned shallow depths to the saturation count. True counts
  // there are >= this value, which is itself >= budget, so neither the
  // local stop rule nor a shard-summed one can be diverted by the clamp.
  for (size_t d = 0; d < stopped_above; ++d) counts[d] = counts[stopped_above];
  return counts;
}

size_t LshForest::StopDepth(const std::vector<size_t>& counts, size_t m) {
  for (size_t d = counts.size(); d >= 1; --d) {
    if (counts[d - 1] >= m) return d;
  }
  return 1;
}

void LshForest::Save(io::Writer& w) const {
  w.WriteU64(options_.num_trees);
  w.WriteU64(options_.hashes_per_tree);
  w.WriteU64(num_items_);
  w.WriteU64(trees_.size());
  for (const Tree& tree : trees_) {
    w.WriteBool(tree.sorted);
    w.WriteU64(tree.entries.size());
    for (const Entry& e : tree.entries) {
      // Keys are fixed-width (hashes_per_tree values), so no per-entry
      // length prefix is needed.
      for (uint64_t k : e.key) w.WriteU64(k);
      w.WriteU64(e.id);
    }
  }
}

LshForest LshForest::Load(io::Reader& r) {
  LshForestOptions options;
  options.num_trees = r.ReadU64();
  options.hashes_per_tree = r.ReadU64();
  // An absurd key shape (corruption that survived the checksum cannot
  // happen, but a format drift could) would overflow the per-entry reads;
  // bound it before allocating.
  if (r.status().ok() &&
      (options.num_trees == 0 || options.hashes_per_tree == 0 ||
       options.num_trees > 4096 || options.hashes_per_tree > 4096)) {
    r.MarkCorrupt("implausible LshForest key shape");
    return LshForest();
  }
  LshForest forest(options);
  forest.num_items_ = r.ReadU64();
  size_t n_trees = r.ReadLength(sizeof(uint64_t));
  if (!r.status().ok() || n_trees != options.num_trees) {
    r.MarkCorrupt("LshForest tree count disagrees with its options");
    return LshForest();
  }
  const size_t entry_bytes = (options.hashes_per_tree + 1) * sizeof(uint64_t);
  for (size_t t = 0; t < n_trees && r.status().ok(); ++t) {
    Tree& tree = forest.trees_[t];
    tree.sorted = r.ReadBool();
    size_t n_entries = r.ReadLength(entry_bytes);
    tree.entries.reserve(n_entries);
    for (size_t i = 0; i < n_entries && r.status().ok(); ++i) {
      Entry e;
      e.key.resize(options.hashes_per_tree);
      for (uint64_t& k : e.key) k = r.ReadU64();
      e.id = static_cast<ItemId>(r.ReadU64());
      tree.entries.push_back(std::move(e));
    }
  }
  return forest;
}

size_t LshForest::MemoryUsage() const {
  size_t bytes = sizeof(LshForest);
  for (const Tree& tree : trees_) {
    bytes += tree.entries.capacity() * sizeof(Entry);
    for (const Entry& e : tree.entries) {
      bytes += e.key.capacity() * sizeof(uint64_t);
    }
  }
  return bytes;
}

}  // namespace d3l

#include "lsh/lsh_forest.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace d3l {

namespace {

/// Three-way compare of one stored key's first `depth` values against the
/// query key. `entry` points at the key's first value in the flat array.
inline int ComparePrefix(const uint64_t* entry, const uint64_t* key, size_t depth) {
  for (size_t i = 0; i < depth; ++i) {
    if (entry[i] != key[i]) return entry[i] < key[i] ? -1 : 1;
  }
  return 0;
}

/// First entry index in [first, last) whose depth-prefix is >= the query's.
size_t PrefixLowerBound(const uint64_t* keys, size_t stride, size_t first, size_t last,
                        const uint64_t* key, size_t depth) {
  while (first < last) {
    const size_t mid = first + (last - first) / 2;
    if (ComparePrefix(keys + mid * stride, key, depth) < 0) {
      first = mid + 1;
    } else {
      last = mid;
    }
  }
  return first;
}

/// First entry index in [first, last) whose depth-prefix is > the query's.
size_t PrefixUpperBound(const uint64_t* keys, size_t stride, size_t first, size_t last,
                        const uint64_t* key, size_t depth) {
  while (first < last) {
    const size_t mid = first + (last - first) / 2;
    if (ComparePrefix(keys + mid * stride, key, depth) <= 0) {
      first = mid + 1;
    } else {
      last = mid;
    }
  }
  return first;
}

}  // namespace

LshForestOptions ClampForestToSignature(LshForestOptions f, size_t available_values) {
  assert(available_values >= 1);  // an empty signature fits no key shape
  if (f.num_trees > available_values) {
    f.num_trees = std::max<size_t>(1, available_values);
  }
  size_t per_tree = available_values / std::max<size_t>(1, f.num_trees);
  f.hashes_per_tree = std::max<size_t>(1, std::min(f.hashes_per_tree, per_tree));
  return f;
}

LshForest::LshForest(LshForestOptions options) : options_(options) {
  trees_.resize(options_.num_trees);
}

void LshForest::CheckSignatureSize(const Signature& sig) const {
  // A short signature would make TreeKey read out of bounds; fail loudly in
  // release builds too (Insert/Query are per-item, so the check is cheap).
  const size_t need = options_.num_trees * options_.hashes_per_tree;
  if (sig.size() < need) {
    std::fprintf(stderr,
                 "LshForest: signature has %zu values but num_trees * "
                 "hashes_per_tree = %zu\n",
                 sig.size(), need);
    std::abort();
  }
}

std::vector<uint64_t> LshForest::TreeKey(size_t tree, const Signature& sig) const {
  const size_t kpt = options_.hashes_per_tree;
  assert(sig.size() >= options_.num_trees * kpt);
  std::vector<uint64_t> key(kpt);
  for (size_t i = 0; i < kpt; ++i) {
    key[i] = sig[tree * kpt + i];
  }
  return key;
}

void LshForest::DetachTree(Tree& tree) {
  if (tree.borrowed_keys == nullptr && tree.borrowed_ids == nullptr) return;
  const size_t kpt = options_.hashes_per_tree;
  if (tree.borrowed_keys != nullptr) {
    tree.owned_keys.assign(tree.borrowed_keys, tree.borrowed_keys + tree.size * kpt);
    tree.borrowed_keys = nullptr;
  }
  if (tree.borrowed_ids != nullptr) {
    tree.owned_ids.assign(tree.borrowed_ids, tree.borrowed_ids + tree.size);
    tree.borrowed_ids = nullptr;
  }
}

void LshForest::Insert(ItemId id, const Signature& signature) {
  CheckSignatureSize(signature);
  const size_t kpt = options_.hashes_per_tree;
  for (size_t t = 0; t < trees_.size(); ++t) {
    Tree& tree = trees_[t];
    DetachTree(tree);
    for (size_t i = 0; i < kpt; ++i) {
      tree.owned_keys.push_back(signature[t * kpt + i]);
    }
    tree.owned_ids.push_back(id);
    ++tree.size;
    tree.sorted = false;
  }
  storage_.reset();  // every tree was detached; nothing borrows the mapping
  ++num_items_;
}

void LshForest::Index() {
  const size_t kpt = options_.hashes_per_tree;
  for (Tree& tree : trees_) {
    if (tree.sorted) continue;
    // Sort via a permutation, then rebuild both arrays in one pass: the
    // keys are wide (kpt values), so moving 4-byte indices during the sort
    // beats swapping whole entries.
    const uint64_t* keys = tree.keys();
    const ItemId* ids = tree.ids();
    std::vector<uint32_t> perm(tree.size);
    std::iota(perm.begin(), perm.end(), 0u);
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      const int c = ComparePrefix(keys + a * kpt, keys + b * kpt, kpt);
      if (c != 0) return c < 0;
      return ids[a] < ids[b];
    });
    std::vector<uint64_t> sorted_keys(tree.size * kpt);
    std::vector<ItemId> sorted_ids(tree.size);
    for (size_t i = 0; i < tree.size; ++i) {
      std::copy_n(keys + perm[i] * kpt, kpt, sorted_keys.data() + i * kpt);
      sorted_ids[i] = ids[perm[i]];
    }
    tree.owned_keys = std::move(sorted_keys);
    tree.owned_ids = std::move(sorted_ids);
    tree.borrowed_keys = nullptr;
    tree.borrowed_ids = nullptr;
    tree.sorted = true;
  }
}

void LshForest::CollectAtDepth(const Tree& tree, const std::vector<uint64_t>& key,
                               size_t depth, std::vector<ItemId>* out) const {
  assert(tree.sorted);
  // Entries matching the first `depth` components form a contiguous sorted
  // range; locate it with prefix-comparing binary searches.
  const size_t kpt = options_.hashes_per_tree;
  const uint64_t* keys = tree.keys();
  const size_t lo = PrefixLowerBound(keys, kpt, 0, tree.size, key.data(), depth);
  const size_t hi = PrefixUpperBound(keys, kpt, lo, tree.size, key.data(), depth);
  const ItemId* ids = tree.ids();
  for (size_t i = lo; i < hi; ++i) {
    out->push_back(ids[i]);
  }
}

std::vector<LshForest::ItemId> LshForest::Query(const Signature& signature,
                                                size_t m) const {
  std::unordered_set<ItemId> seen;
  std::vector<ItemId> result;
  if (m == 0) return result;
  CheckSignatureSize(signature);
  std::vector<std::vector<uint64_t>> keys(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) keys[t] = TreeKey(t, signature);

  // Descend from the deepest prefix; stop as soon as enough distinct
  // candidates have been accumulated (LSH Forest's synchronous descent).
  for (size_t depth = options_.hashes_per_tree; depth >= 1; --depth) {
    std::vector<ItemId> level;
    for (size_t t = 0; t < trees_.size(); ++t) {
      CollectAtDepth(trees_[t], keys[t], depth, &level);
    }
    for (ItemId id : level) {
      if (seen.insert(id).second) {
        result.push_back(id);
      }
    }
    if (result.size() >= m) break;
  }
  if (result.size() > m) result.resize(m);
  return result;
}

std::vector<LshForest::ItemId> LshForest::QueryAtDepth(const Signature& signature,
                                                       size_t min_depth) const {
  assert(min_depth >= 1 && min_depth <= options_.hashes_per_tree);
  CheckSignatureSize(signature);
  std::unordered_set<ItemId> seen;
  std::vector<ItemId> result;
  for (size_t t = 0; t < trees_.size(); ++t) {
    std::vector<ItemId> level;
    CollectAtDepth(trees_[t], TreeKey(t, signature), min_depth, &level);
    for (ItemId id : level) {
      if (seen.insert(id).second) result.push_back(id);
    }
  }
  return result;
}

std::vector<size_t> LshForest::DepthCounts(const Signature& signature,
                                           size_t budget) const {
  CheckSignatureSize(signature);
  const size_t kpt = options_.hashes_per_tree;
  if (budget == 0) {
    // Exact histogram: deepest matching prefix per item across all trees.
    // One pass over the depth-1 range of every tree (a superset of every
    // deeper range) beats re-collecting the deeper ranges once per depth.
    std::unordered_map<ItemId, size_t> deepest;
    for (size_t t = 0; t < trees_.size(); ++t) {
      const Tree& tree = trees_[t];
      assert(tree.sorted);
      const std::vector<uint64_t> key = TreeKey(t, signature);
      const uint64_t* keys = tree.keys();
      const ItemId* ids = tree.ids();
      const size_t lo = PrefixLowerBound(keys, kpt, 0, tree.size, key.data(), 1);
      const size_t hi = PrefixUpperBound(keys, kpt, lo, tree.size, key.data(), 1);
      for (size_t i = lo; i < hi; ++i) {
        const uint64_t* entry = keys + i * kpt;
        size_t lcp = 1;
        while (lcp < kpt && entry[lcp] == key[lcp]) ++lcp;
        size_t& best = deepest[ids[i]];
        best = std::max(best, lcp);
      }
    }
    std::vector<size_t> counts(kpt, 0);
    for (const auto& [id, depth] : deepest) counts[depth - 1]++;
    // Suffix-sum the histogram: counts[d-1] becomes |{items: lcp >= d}|.
    for (size_t d = kpt - 1; d-- > 0;) counts[d] += counts[d + 1];
    return counts;
  }

  // Budgeted descent over nested prefix ranges: per tree, the entries
  // matching the first d key values form a contiguous range that contains
  // the depth-(d+1) range, so expanding depth by depth visits each entry at
  // most once — at exactly its prefix depth — and never touches entries
  // deeper than where the cumulative distinct count saturates the budget.
  struct TreeRange {
    const Tree* tree;
    std::vector<uint64_t> key;
    size_t lo = 0, hi = 0;  ///< current range (depth d+1 when expanding to d)
  };
  std::vector<TreeRange> ranges;
  ranges.reserve(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) {
    assert(trees_[t].sorted);
    TreeRange r{&trees_[t], TreeKey(t, signature), 0, 0};
    // Seed with the (possibly empty) deepest range's insertion point so the
    // first expansion below starts from a valid nested position.
    r.lo = r.hi = PrefixLowerBound(r.tree->keys(), kpt, 0, r.tree->size,
                                   r.key.data(), kpt);
    ranges.push_back(std::move(r));
  }

  std::unordered_map<ItemId, size_t> deepest;  // exact lcp of every scanned item
  size_t stopped_above = 0;  // depths < this were never scanned (clamped)
  for (size_t d = kpt; d >= 1; --d) {
    for (TreeRange& r : ranges) {
      const uint64_t* keys = r.tree->keys();
      const ItemId* ids = r.tree->ids();
      const size_t lo =
          PrefixLowerBound(keys, kpt, 0, r.lo, r.key.data(), d);
      const size_t hi =
          PrefixUpperBound(keys, kpt, r.hi, r.tree->size, r.key.data(), d);
      // Entries in [lo, r.lo) and [r.hi, hi) match d values but not d+1:
      // their lcp with the query is exactly d.
      for (size_t i = lo; i < r.lo; ++i) {
        size_t& best = deepest[ids[i]];
        best = std::max(best, d);
      }
      for (size_t i = r.hi; i < hi; ++i) {
        size_t& best = deepest[ids[i]];
        best = std::max(best, d);
      }
      r.lo = lo;
      r.hi = hi;
    }
    if (deepest.size() >= budget) {
      stopped_above = d - 1;  // depths 1..d-1 not scanned
      break;
    }
  }

  std::vector<size_t> counts(kpt, 0);
  for (const auto& [id, depth] : deepest) counts[depth - 1]++;
  for (size_t d = kpt - 1; d-- > 0;) counts[d] += counts[d + 1];
  // Clamp the unscanned shallow depths to the saturation count. True counts
  // there are >= this value, which is itself >= budget, so neither the
  // local stop rule nor a shard-summed one can be diverted by the clamp.
  for (size_t d = 0; d < stopped_above; ++d) counts[d] = counts[stopped_above];
  return counts;
}

size_t LshForest::StopDepth(const std::vector<size_t>& counts, size_t m) {
  for (size_t d = counts.size(); d >= 1; --d) {
    if (counts[d - 1] >= m) return d;
  }
  return 1;
}

void LshForest::Save(io::Writer& w) const {
  const size_t kpt = options_.hashes_per_tree;
  w.WriteU64(options_.num_trees);
  w.WriteU64(kpt);
  w.WriteU64(num_items_);
  w.WriteU64(trees_.size());
  for (const Tree& tree : trees_) {
    w.WriteBool(tree.sorted);
    w.WriteU64(tree.size);
    // Keys are fixed-width (hashes_per_tree values per entry) and ids
    // parallel, so no per-entry framing is needed; the 8-byte pad puts the
    // key array at an aligned file offset, making both arrays valid
    // in-place spans under a mapped reader (ids land 4-aligned because the
    // key array's byte length is a multiple of 8).
    w.AlignTo(8);
    w.WriteRawU64Array(tree.keys(), tree.size * kpt);
    w.WriteRawU32Array(tree.ids(), tree.size);
  }
}

LshForest LshForest::Load(io::Reader& r, ForestWireFormat format) {
  LshForestOptions options;
  options.num_trees = r.ReadU64();
  options.hashes_per_tree = r.ReadU64();
  // An absurd key shape (corruption that survived the checksum cannot
  // happen, but a format drift could) would overflow the per-entry reads;
  // bound it before allocating.
  if (r.status().ok() &&
      (options.num_trees == 0 || options.hashes_per_tree == 0 ||
       options.num_trees > 4096 || options.hashes_per_tree > 4096)) {
    r.MarkCorrupt("implausible LshForest key shape");
    return LshForest();
  }
  LshForest forest(options);
  forest.num_items_ = r.ReadU64();
  size_t n_trees = r.ReadLength(sizeof(uint64_t));
  if (!r.status().ok() || n_trees != options.num_trees) {
    r.MarkCorrupt("LshForest tree count disagrees with its options");
    return LshForest();
  }
  const size_t kpt = options.hashes_per_tree;
  const size_t entry_bytes = format == ForestWireFormat::kPerEntry
                                 ? (kpt + 1) * sizeof(uint64_t)
                                 : kpt * sizeof(uint64_t) + sizeof(ItemId);
  for (size_t t = 0; t < n_trees && r.status().ok(); ++t) {
    Tree& tree = forest.trees_[t];
    tree.sorted = r.ReadBool();
    size_t n_entries = r.ReadLength(entry_bytes);
    if (!r.status().ok()) break;
    if (format == ForestWireFormat::kPerEntry) {
      // Legacy layout: interleaved key values + u64 id per entry. Always
      // de-interleaved into owned flat arrays.
      tree.owned_keys.reserve(n_entries * kpt);
      tree.owned_ids.reserve(n_entries);
      for (size_t i = 0; i < n_entries && r.status().ok(); ++i) {
        for (size_t k = 0; k < kpt; ++k) tree.owned_keys.push_back(r.ReadU64());
        tree.owned_ids.push_back(static_cast<ItemId>(r.ReadU64()));
      }
      tree.size = tree.owned_ids.size();
    } else {
      r.AlignTo(8);
      const uint64_t* keys = r.ReadU64Span(n_entries * kpt, &tree.owned_keys);
      const uint32_t* ids = r.ReadU32Span(n_entries, &tree.owned_ids);
      if (!r.status().ok()) break;
      tree.size = n_entries;
      // A span that did not land in the owned vector borrows the mapping.
      if (n_entries > 0 && keys != tree.owned_keys.data()) tree.borrowed_keys = keys;
      if (n_entries > 0 && ids != tree.owned_ids.data()) tree.borrowed_ids = ids;
    }
  }
  if (r.status().ok() && r.mapped()) {
    for (const Tree& tree : forest.trees_) {
      if (tree.borrowed_keys != nullptr || tree.borrowed_ids != nullptr) {
        forest.storage_ = r.mapping();
        break;
      }
    }
  }
  return forest;
}

size_t LshForest::MemoryUsage() const {
  // Exact: flat arrays have no per-entry allocation, so the footprint is
  // the owned capacities plus the tree table. Borrowed arrays live in the
  // snapshot mapping and cost no heap.
  size_t bytes = sizeof(LshForest);
  bytes += trees_.capacity() * sizeof(Tree);
  for (const Tree& tree : trees_) {
    bytes += tree.owned_keys.capacity() * sizeof(uint64_t);
    bytes += tree.owned_ids.capacity() * sizeof(ItemId);
  }
  return bytes;
}

}  // namespace d3l

// Random-projection (sign-random-projection / SimHash, Charikar 2002)
// signatures for cosine-similarity LSH, used by evidence type E.
//
// A vector is reduced to B sign bits w.r.t. B random hyperplanes; the
// probability two vectors agree on a bit is 1 - theta/pi, so the angle (and
// hence cosine similarity) is estimated from the Hamming distance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "embedding/vector_ops.h"

namespace d3l {

/// \brief Bit signature packed into 64-bit words.
struct BitSignature {
  std::vector<uint64_t> words;
  size_t bits = 0;

  bool empty() const { return bits == 0; }
};

/// \brief Signs vectors against a fixed family of random hyperplanes.
///
/// Hyperplane components are deterministic Gaussians derived from
/// (seed, plane, component) hashes and materialized once at construction
/// (dim * bits floats), so signing is a dense dot-product sweep.
class RandomProjectionHasher {
 public:
  /// \param dim input vector dimensionality
  /// \param bits number of hyperplanes / signature bits (paper-scale: 256)
  RandomProjectionHasher(size_t dim, size_t bits, uint64_t seed);

  size_t bits() const { return bits_; }
  size_t dim() const { return dim_; }

  BitSignature Sign(const Vec& v) const;

  /// The signature reinterpreted as a sequence of small hash values for
  /// LSH-Forest insertion (each byte of the bit signature is one value).
  std::vector<uint64_t> SignatureAsHashSequence(const BitSignature& sig) const;

 private:
  size_t dim_;
  size_t bits_;
  std::vector<float> planes_;  // [plane * dim_ + component]
};

/// \brief Hamming distance between equal-length bit signatures.
size_t HammingDistance(const BitSignature& a, const BitSignature& b);

/// \brief Estimated cosine *similarity* from bit agreement:
/// cos(pi * hamming / bits).
double EstimateCosine(const BitSignature& a, const BitSignature& b);

/// \brief Estimated cosine distance 1 - EstimateCosine, clamped to [0, 1].
double EstimateCosineDistance(const BitSignature& a, const BitSignature& b);

}  // namespace d3l

#include "lsh/lsh_ensemble.h"

#include <algorithm>
#include <cassert>

namespace d3l {

double ContainmentFromJaccard(double jaccard, size_t query_size, size_t set_size) {
  if (query_size == 0) return 0;
  double inter =
      jaccard / (1.0 + jaccard) * static_cast<double>(query_size + set_size);
  return std::clamp(inter / static_cast<double>(query_size), 0.0, 1.0);
}

LshEnsemble::LshEnsemble(LshEnsembleOptions options) : options_(options) {}

void LshEnsemble::Insert(ItemId id, const Signature& signature, size_t set_size) {
  assert(!indexed_);
  items_.push_back(Item{id, signature, set_size});
}

void LshEnsemble::Index() {
  assert(!indexed_);
  indexed_ = true;
  if (items_.empty()) return;

  // Order by cardinality; cut into near-equal partitions so each partition
  // has tight size bounds (the ensemble's skew fix).
  std::vector<size_t> order(items_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (items_[a].set_size != items_[b].set_size) {
      return items_[a].set_size < items_[b].set_size;
    }
    return items_[a].id < items_[b].id;
  });

  size_t n_parts = std::max<size_t>(1, std::min(options_.num_partitions, items_.size()));
  assert(!options_.threshold_ladder.empty());

  partitions_.clear();
  partitions_.reserve(n_parts);
  size_t per_part = (items_.size() + n_parts - 1) / n_parts;
  for (size_t p = 0; p < n_parts; ++p) {
    size_t begin = p * per_part;
    if (begin >= items_.size()) break;
    size_t end = std::min(items_.size(), begin + per_part);
    Partition part;
    part.min_size = items_[order[begin]].set_size;
    part.max_size = items_[order[end - 1]].set_size;
    for (double rung_threshold : options_.threshold_ladder) {
      BandedLshOptions banded;
      banded.threshold = rung_threshold;
      banded.signature_size = options_.signature_size;
      part.rungs.emplace_back(banded);
    }
    for (size_t i = begin; i < end; ++i) {
      part.member_indexes.push_back(order[i]);
      for (BandedLsh& rung : part.rungs) {
        rung.Insert(static_cast<ItemId>(order[i]), items_[order[i]].signature);
      }
    }
    partitions_.push_back(std::move(part));
  }
}

std::vector<LshEnsemble::ItemId> LshEnsemble::QueryContainment(
    const Signature& query, size_t query_set_size, double threshold) const {
  assert(indexed_);
  std::vector<ItemId> out;
  if (query_set_size == 0) return out;

  for (const Partition& part : partitions_) {
    // Containment threshold t translates into the partition-specific
    // Jaccard lower bound using the *largest* member size (most permissive
    // within the partition): j >= t*|Q| / (|Q| + u - t*|Q|).
    double tq = threshold * static_cast<double>(query_set_size);
    double denom = static_cast<double>(query_set_size + part.max_size) - tq;
    double jaccard_bound = denom > 0 ? tq / denom : 1.0;

    // If even a maximal overlap in this partition cannot reach the
    // containment threshold, skip it entirely.
    double best_inter = static_cast<double>(std::min(query_set_size, part.max_size));
    if (best_inter / static_cast<double>(query_set_size) < threshold) continue;

    // Dynamic banding: probe the ladder rung tuned just below the bound.
    size_t rung_idx = 0;
    for (size_t r = 0; r < options_.threshold_ladder.size(); ++r) {
      if (options_.threshold_ladder[r] <= jaccard_bound) rung_idx = r;
    }

    for (ItemId idx : part.rungs[rung_idx].Query(query)) {
      const Item& item = items_[idx];
      double j = EstimateJaccard(query, item.signature);
      if (j + 1e-12 < jaccard_bound * 0.5) continue;  // clearly hopeless
      double c = ContainmentFromJaccard(j, query_set_size, item.set_size);
      if (c >= threshold) out.push_back(item.id);
    }
  }
  return out;
}

double LshEnsemble::EstimateContainment(const Signature& query, size_t query_set_size,
                                        ItemId id) const {
  for (const Item& item : items_) {
    if (item.id == id) {
      return ContainmentFromJaccard(EstimateJaccard(query, item.signature),
                                    query_set_size, item.set_size);
    }
  }
  return 0;
}

void LshEnsemble::Save(io::Writer& w) const {
  w.WriteU64(options_.num_partitions);
  w.WriteU64(options_.signature_size);
  w.WriteDoubleVector(options_.threshold_ladder);
  w.WriteBool(indexed_);
  w.WriteU64(items_.size());
  for (const Item& item : items_) {
    w.WriteU64(item.id);
    w.WriteU64(item.set_size);
    w.WriteU64Vector(item.signature);
  }
}

LshEnsemble LshEnsemble::Load(io::Reader& r) {
  LshEnsembleOptions options;
  options.num_partitions = r.ReadU64();
  options.signature_size = r.ReadU64();
  options.threshold_ladder = r.ReadDoubleVector();
  if (r.status().ok() && (options.threshold_ladder.empty() || options.num_partitions == 0)) {
    r.MarkCorrupt("LshEnsemble options are degenerate");
    return LshEnsemble();
  }
  LshEnsemble ensemble(options);
  bool was_indexed = r.ReadBool();
  size_t n_items = r.ReadLength(3 * sizeof(uint64_t));
  ensemble.items_.reserve(n_items);
  for (size_t i = 0; i < n_items && r.status().ok(); ++i) {
    Item item;
    item.id = static_cast<ItemId>(r.ReadU64());
    item.set_size = r.ReadU64();
    item.signature = r.ReadU64Vector();
    // A short signature would make the banded rungs read out of bounds
    // when Index() replays the insertions below.
    if (r.status().ok() && item.signature.size() != options.signature_size) {
      r.MarkCorrupt("LshEnsemble signature size disagrees with its options");
      return LshEnsemble();
    }
    ensemble.items_.push_back(std::move(item));
  }
  if (r.status().ok() && was_indexed) ensemble.Index();
  return ensemble;
}

size_t LshEnsemble::MemoryUsage() const {
  size_t bytes = sizeof(LshEnsemble);
  for (const Item& i : items_) {
    bytes += sizeof(Item) + i.signature.size() * sizeof(uint64_t);
  }
  for (const Partition& p : partitions_) {
    for (const BandedLsh& rung : p.rungs) bytes += rung.MemoryUsage();
    bytes += p.member_indexes.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace d3l

#include "lsh/lsh_ensemble.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace d3l {

double ContainmentFromJaccard(double jaccard, size_t query_size, size_t set_size) {
  if (query_size == 0) return 0;
  double inter =
      jaccard / (1.0 + jaccard) * static_cast<double>(query_size + set_size);
  return std::clamp(inter / static_cast<double>(query_size), 0.0, 1.0);
}

LshEnsemble::LshEnsemble(LshEnsembleOptions options) : options_(options) {}

void LshEnsemble::Detach() {
  if (borrowed_sigs_ == nullptr) return;
  owned_sigs_.assign(borrowed_sigs_,
                     borrowed_sigs_ + ids_.size() * options_.signature_size);
  borrowed_sigs_ = nullptr;
  storage_.reset();
}

void LshEnsemble::Insert(ItemId id, const Signature& signature, size_t set_size) {
  assert(!indexed_);
  // The flat store has a fixed stride; a mis-sized signature would shift
  // every later item's values. Fail loudly in release builds too.
  if (signature.size() != options_.signature_size) {
    std::fprintf(stderr,
                 "LshEnsemble: signature has %zu values but options "
                 "signature_size = %zu\n",
                 signature.size(), options_.signature_size);
    std::abort();
  }
  Detach();
  ids_.push_back(id);
  set_sizes_.push_back(set_size);
  owned_sigs_.insert(owned_sigs_.end(), signature.begin(), signature.end());
}

void LshEnsemble::Index() {
  assert(!indexed_);
  indexed_ = true;
  if (ids_.empty()) return;

  // Order by cardinality; cut into near-equal partitions so each partition
  // has tight size bounds (the ensemble's skew fix).
  std::vector<size_t> order(ids_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (set_sizes_[a] != set_sizes_[b]) return set_sizes_[a] < set_sizes_[b];
    return ids_[a] < ids_[b];
  });

  size_t n_parts = std::max<size_t>(1, std::min(options_.num_partitions, ids_.size()));
  assert(!options_.threshold_ladder.empty());

  partitions_.clear();
  partitions_.reserve(n_parts);
  size_t per_part = (ids_.size() + n_parts - 1) / n_parts;
  for (size_t p = 0; p < n_parts; ++p) {
    size_t begin = p * per_part;
    if (begin >= ids_.size()) break;
    size_t end = std::min(ids_.size(), begin + per_part);
    Partition part;
    part.min_size = set_sizes_[order[begin]];
    part.max_size = set_sizes_[order[end - 1]];
    for (double rung_threshold : options_.threshold_ladder) {
      BandedLshOptions banded;
      banded.threshold = rung_threshold;
      banded.signature_size = options_.signature_size;
      part.rungs.emplace_back(banded);
    }
    for (size_t i = begin; i < end; ++i) {
      part.member_indexes.push_back(order[i]);
      for (BandedLsh& rung : part.rungs) {
        rung.Insert(static_cast<ItemId>(order[i]), SignatureOf(order[i]),
                    options_.signature_size);
      }
    }
    partitions_.push_back(std::move(part));
  }
}

std::vector<LshEnsemble::ItemId> LshEnsemble::QueryContainment(
    const Signature& query, size_t query_set_size, double threshold) const {
  assert(indexed_);
  std::vector<ItemId> out;
  if (query_set_size == 0) return out;
  assert(query.size() == options_.signature_size);

  for (const Partition& part : partitions_) {
    // Containment threshold t translates into the partition-specific
    // Jaccard lower bound using the *largest* member size (most permissive
    // within the partition): j >= t*|Q| / (|Q| + u - t*|Q|).
    double tq = threshold * static_cast<double>(query_set_size);
    double denom = static_cast<double>(query_set_size + part.max_size) - tq;
    double jaccard_bound = denom > 0 ? tq / denom : 1.0;

    // If even a maximal overlap in this partition cannot reach the
    // containment threshold, skip it entirely.
    double best_inter = static_cast<double>(std::min<size_t>(
        query_set_size, static_cast<size_t>(part.max_size)));
    if (best_inter / static_cast<double>(query_set_size) < threshold) continue;

    // Dynamic banding: probe the ladder rung tuned just below the bound.
    size_t rung_idx = 0;
    for (size_t r = 0; r < options_.threshold_ladder.size(); ++r) {
      if (options_.threshold_ladder[r] <= jaccard_bound) rung_idx = r;
    }

    for (ItemId idx : part.rungs[rung_idx].Query(query)) {
      double j = EstimateJaccard(query.data(), SignatureOf(idx),
                                 options_.signature_size);
      if (j + 1e-12 < jaccard_bound * 0.5) continue;  // clearly hopeless
      double c = ContainmentFromJaccard(j, query_set_size, set_sizes_[idx]);
      if (c >= threshold) out.push_back(ids_[idx]);
    }
  }
  return out;
}

double LshEnsemble::EstimateContainment(const Signature& query, size_t query_set_size,
                                        ItemId id) const {
  assert(query.size() == options_.signature_size);
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) {
      return ContainmentFromJaccard(
          EstimateJaccard(query.data(), SignatureOf(i), options_.signature_size),
          query_set_size, set_sizes_[i]);
    }
  }
  return 0;
}

void LshEnsemble::Save(io::Writer& w) const {
  w.WriteU64(options_.num_partitions);
  w.WriteU64(options_.signature_size);
  w.WriteDoubleVector(options_.threshold_ladder);
  w.WriteBool(indexed_);
  w.WriteU64(ids_.size());
  // Flat layout: the parallel arrays verbatim, the signature block 8-byte
  // aligned so a mapped reader serves it in place.
  w.WriteRawU32Array(ids_.data(), ids_.size());
  w.AlignTo(8);
  w.WriteRawU64Array(set_sizes_.data(), set_sizes_.size());
  w.WriteRawU64Array(ids_.empty() ? nullptr : SignatureOf(0),
                     ids_.size() * options_.signature_size);
}

LshEnsemble LshEnsemble::Load(io::Reader& r) {
  LshEnsembleOptions options;
  options.num_partitions = r.ReadU64();
  options.signature_size = r.ReadU64();
  options.threshold_ladder = r.ReadDoubleVector();
  // The bound keeps the per-item byte arithmetic below overflow-safe.
  if (r.status().ok() &&
      (options.threshold_ladder.empty() || options.num_partitions == 0 ||
       options.signature_size == 0 || options.signature_size > (1u << 20))) {
    r.MarkCorrupt("LshEnsemble options are degenerate");
    return LshEnsemble();
  }
  LshEnsemble ensemble(options);
  bool was_indexed = r.ReadBool();
  // Each item contributes an id (4), a set size (8) and a signature
  // (signature_size * 8) to the section, bounding the count.
  size_t n_items =
      r.ReadLength(sizeof(ItemId) + sizeof(uint64_t) +
                   options.signature_size * sizeof(uint64_t));
  if (!r.status().ok()) return LshEnsemble();
  {
    std::vector<uint32_t> owned_ids;
    const uint32_t* ids = r.ReadU32Span(n_items, &owned_ids);
    // Ids are always owned (they are mutated by nothing, but keeping one
    // borrow surface — the big signature block — keeps lifetime reasoning
    // simple and the savings negligible at 4 bytes per item).
    if (ids != nullptr) ensemble.ids_.assign(ids, ids + n_items);
  }
  r.AlignTo(8);
  {
    std::vector<uint64_t> owned_sizes;
    const uint64_t* sizes = r.ReadU64Span(n_items, &owned_sizes);
    if (sizes != nullptr) ensemble.set_sizes_.assign(sizes, sizes + n_items);
  }
  const uint64_t* sigs =
      r.ReadU64Span(n_items * options.signature_size, &ensemble.owned_sigs_);
  if (!r.status().ok()) return LshEnsemble();
  if (n_items > 0 && sigs != ensemble.owned_sigs_.data()) {
    ensemble.borrowed_sigs_ = sigs;
    ensemble.storage_ = r.mapping();
  }
  if (was_indexed) ensemble.Index();
  return ensemble;
}

size_t LshEnsemble::MemoryUsage() const {
  size_t bytes = sizeof(LshEnsemble);
  bytes += ids_.capacity() * sizeof(ItemId);
  bytes += set_sizes_.capacity() * sizeof(uint64_t);
  bytes += owned_sigs_.capacity() * sizeof(uint64_t);  // zero when borrowed
  for (const Partition& p : partitions_) {
    for (const BandedLsh& rung : p.rungs) bytes += rung.MemoryUsage();
    bytes += p.member_indexes.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace d3l

// Aurum (Fernandez et al., ICDE 2018), the paper's second baseline.
//
// Aurum profiles every column (name tokens, value MinHash, numeric ranges),
// then builds an enterprise knowledge graph (EKG) whose nodes are columns
// and whose edges link columns with high name or content similarity; graph
// construction — not profiling — dominates its indexing cost (Experiment
// 4). Queries are graph problems: the indexes are consulted once to map
// the target's columns onto graph nodes, then results come from traversal,
// which makes search time insensitive to the answer size k (Experiments
// 5-6). Ranking uses the *certainty* strategy: a table's score is the
// maximum similarity over its matched columns (footnote 4). Candidate
// PK/FK edges (high uniqueness + high containment) provide Aurum+J's join
// discovery (Experiments 8-11).
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "lsh/lsh_forest.h"
#include "lsh/minhash.h"
#include "table/lake.h"

namespace d3l::baselines {

struct AurumOptions {
  size_t minhash_size = 256;
  LshForestOptions forest;
  /// Extent cap; 0 = none (Aurum profiles full extents).
  size_t max_values = 0;
  /// Neighbours retrieved per node during EKG construction.
  size_t neighbours_per_node = 32;
  /// Minimum similarity for an EKG content/name edge.
  double edge_threshold = 0.5;
  /// PK/FK candidate thresholds.
  double fk_uniqueness = 0.85;
  double fk_containment = 0.6;
  /// Numeric columns: minimum range-overlap ratio for an edge.
  double numeric_overlap_threshold = 0.5;
  size_t candidates_per_attribute = 64;
  uint64_t seed = 0xa0a0;
};

struct AurumMatch {
  uint32_t table_index = 0;
  double score = 0;  ///< certainty: max column similarity (descending rank)
  struct Alignment {
    uint32_t target_column;
    uint32_t column;
    double score;
  };
  std::vector<Alignment> alignments;
};

struct AurumSearchResult {
  std::vector<AurumMatch> ranked;
  std::unordered_map<uint32_t, std::vector<AurumMatch::Alignment>> candidate_alignments;
};

struct AurumBuildStats {
  double profile_seconds = 0;
  double graph_seconds = 0;  ///< EKG construction (the dominant phase)
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_fk_edges = 0;
  size_t index_bytes = 0;
};

class AurumEngine {
 public:
  explicit AurumEngine(AurumOptions options = {});

  /// Profiles the lake and builds the EKG.
  Status BuildEkg(const DataLake& lake);

  /// Certainty-ranked top-k via one-shot index mapping + graph lookup.
  Result<AurumSearchResult> Search(const Table& target, size_t k) const;

  /// Tables reachable from `tables` through candidate PK/FK edges (up to
  /// `hops`), excluding the inputs — Aurum+J's join expansion.
  std::vector<uint32_t> JoinExpand(const std::vector<uint32_t>& tables,
                                   size_t hops = 2) const;

  /// Column alignments of one table discovered during a search are in the
  /// result; this maps a (table) to the per-column EKG neighbours used by
  /// the +J coverage evaluation.
  const AurumBuildStats& build_stats() const { return build_stats_; }
  const DataLake* lake() const { return lake_; }
  size_t MemoryUsage() const;
  size_t num_graph_edges() const { return num_edges_; }
  size_t num_fk_edges() const { return fk_edges_count_; }

 private:
  struct ColumnProfile {
    uint32_t table = 0;
    uint32_t column = 0;
    bool numeric = false;
    double uniqueness = 0;       ///< distinct / non-null
    double range_min = 0, range_max = 0;
    std::set<std::string> name_tokens;
    Signature name_sig;
    Signature value_sig;  ///< MinHash of value tokens (text columns)
    bool has_values = false;
  };
  struct EkgEdge {
    uint32_t to_node;
    double similarity;
    bool is_fk;
  };

  ColumnProfile ProfileColumn(const Table& table, size_t col) const;
  double NodeSimilarity(const ColumnProfile& a, const ColumnProfile& b) const;

  AurumOptions options_;
  MinHasher name_hasher_;
  MinHasher value_hasher_;
  LshForest name_forest_;
  LshForest value_forest_;
  std::vector<ColumnProfile> profiles_;
  std::vector<std::vector<EkgEdge>> graph_;
  const DataLake* lake_ = nullptr;
  AurumBuildStats build_stats_;
  size_t num_edges_ = 0;
  size_t fk_edges_count_ = 0;
};

}  // namespace d3l::baselines

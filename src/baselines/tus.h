// TUS — Table Union Search (Nargesian, Zhu, Pu, Miller; PVLDB 2018),
// reimplemented as the paper's first baseline (its implementation is not
// public; the D3L authors also reimplemented it, Section V-D).
//
// TUS measures attribute unionability from instance values only, with
// three measures: *set* unionability (value-token overlap), *semantic*
// unionability (overlap of YAGO class annotations of tokens), and
// *natural-language* unionability (word-embedding similarity). LSH indexes
// serve only as a blocking step: candidate pairs are exactly re-scored
// from the stored token/class sets (the "significant amount of computation
// ... before the unionability measurements are obtained" of Experiment 5).
// Scores are combined by taking the maximum (the ensemble's goodness), and
// a table is ranked by its best attribute alignment (max-score
// aggregation, contrasted with D3L's Eq. 1-3 in Experiment 2). Numeric
// attributes are ignored entirely (Experiment 6 relies on this).
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/yago_kb.h"
#include "common/status.h"
#include "embedding/subword_model.h"
#include "lsh/lsh_forest.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"
#include "table/lake.h"

namespace d3l::baselines {

struct TusOptions {
  size_t minhash_size = 256;
  size_t rp_bits = 256;
  size_t embedding_dim = 64;
  LshForestOptions forest;
  size_t candidates_per_attribute = 64;
  /// Extent cap; 0 = none. TUS processes full extents (sampling is a D3L
  /// design choice the paper credits for part of its indexing advantage).
  size_t max_values = 0;
  uint64_t seed = 0x705;
};

/// \brief One ranked candidate with its attribute alignments.
struct TusMatch {
  uint32_t table_index = 0;
  double score = 0;  ///< max attribute-pair unionability (descending rank)
  /// (target column, lake table, lake column, pair score)
  struct Alignment {
    uint32_t target_column;
    uint32_t column;
    double score;
  };
  std::vector<Alignment> alignments;
};

struct TusSearchResult {
  std::vector<TusMatch> ranked;
  /// Every candidate table touched, with alignments (for coverage eval).
  std::unordered_map<uint32_t, std::vector<TusMatch::Alignment>> candidate_alignments;
};

struct TusBuildStats {
  double index_seconds = 0;
  size_t num_attributes = 0;
  size_t index_bytes = 0;
  uint64_t kb_lookups = 0;
};

class TusEngine {
 public:
  /// The KB and WEM must outlive the engine.
  TusEngine(TusOptions options, const YagoKb* kb, const WordEmbeddingModel* wem);

  Status IndexLake(const DataLake& lake);
  Result<TusSearchResult> Search(const Table& target, size_t k) const;

  const TusBuildStats& build_stats() const { return build_stats_; }
  const DataLake* lake() const { return lake_; }
  size_t MemoryUsage() const;

 private:
  struct ColumnSketch {
    uint32_t table = 0;
    uint32_t column = 0;
    std::set<std::string> tokens;     ///< all value tokens (exact re-scoring)
    std::set<uint32_t> classes;       ///< YAGO class annotations
    Vec embedding;                    ///< mean token embedding
    bool has_embedding = false;
    Signature token_sig;              ///< MinHash of tokens
    Signature class_sig;              ///< MinHash of class ids
    BitSignature emb_sig;             ///< random projections of embedding
  };

  ColumnSketch SketchColumn(const Table& table, size_t col) const;
  // Exact unionability of a (target sketch, indexed sketch) pair:
  // max(set, semantic, natural-language).
  double ExactUnionability(const ColumnSketch& a, const ColumnSketch& b) const;

  TusOptions options_;
  const YagoKb* kb_;
  const WordEmbeddingModel* wem_;
  /// Word vectors are memoized, as a fastText table lookup would be; the
  /// per-token KB lookups are NOT cached (each annotation pays full cost,
  /// the behaviour the D3L paper attributes TUS's slowness to).
  mutable CachingEmbedder embed_cache_;
  MinHasher token_hasher_;
  MinHasher class_hasher_;
  RandomProjectionHasher rp_hasher_;
  LshForest token_forest_;
  LshForest class_forest_;
  LshForest emb_forest_;
  std::vector<ColumnSketch> sketches_;
  const DataLake* lake_ = nullptr;
  TusBuildStats build_stats_;
};

}  // namespace d3l::baselines

#include "baselines/tus.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "stats/descriptive.h"
#include "text/tokenizer.h"

namespace d3l::baselines {

namespace {
template <typename T>
double ExactJaccard(const std::set<T>& a, const std::set<T>& b) {
  if (a.empty() || b.empty()) return 0;
  size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return d3l::JaccardFromCounts(inter, a.size(), b.size());
}

}  // namespace

TusEngine::TusEngine(TusOptions options, const YagoKb* kb,
                     const WordEmbeddingModel* wem)
    : options_(options),
      kb_(kb),
      wem_(wem),
      embed_cache_(wem),
      token_hasher_(options.minhash_size, options.seed ^ 0x01),
      class_hasher_(options.minhash_size, options.seed ^ 0x02),
      rp_hasher_(options.embedding_dim, options.rp_bits, options.seed ^ 0x03),
      token_forest_(options.forest),
      class_forest_(options.forest),
      // The embedding forest indexes the byte sequence of the bit signature
      // (rp_bits / 8 values); unclamped keys would read past its end.
      emb_forest_(ClampForestToSignature(options.forest, options.rp_bits / 8)) {}

TusEngine::ColumnSketch TusEngine::SketchColumn(const Table& table, size_t col) const {
  const Column& c = table.column(col);
  ColumnSketch s;
  s.column = static_cast<uint32_t>(col);

  // TUS uses every token of every value (no informativeness filtering) and
  // annotates each token with its knowledge-base classes.
  Vec acc(wem_->dim(), 0.0f);
  size_t n_words = 0;
  size_t used = 0;
  const size_t cap = options_.max_values == 0 ? c.size() : options_.max_values;
  for (size_t r = 0; r < c.size() && used < cap; ++r) {
    const std::string& cell = c.cell(r);
    if (IsNullCell(cell)) continue;
    ++used;
    for (const std::string& tok : d3l::Tokenize(cell)) {
      s.tokens.insert(tok);
      for (uint32_t cls : kb_->ClassesOf(tok)) s.classes.insert(cls);
      AddInPlace(&acc, embed_cache_.Embed(tok));
      ++n_words;
    }
  }
  if (n_words > 0) {
    for (float& x : acc) x = static_cast<float>(x / static_cast<double>(n_words));
    s.embedding = std::move(acc);
    s.has_embedding = true;
  }
  s.token_sig = token_hasher_.Sign(s.tokens);
  {
    std::vector<uint64_t> class_hashes;
    class_hashes.reserve(s.classes.size());
    for (uint32_t cls : s.classes) class_hashes.push_back(d3l::Mix64(cls + 1));
    s.class_sig = class_hasher_.SignHashed(class_hashes);
  }
  if (s.has_embedding) s.emb_sig = rp_hasher_.Sign(s.embedding);
  return s;
}

Status TusEngine::IndexLake(const DataLake& lake) {
  if (lake_ != nullptr) return Status::InvalidArgument("IndexLake already called");
  lake_ = &lake;
  auto t0 = std::chrono::steady_clock::now();

  for (uint32_t ti = 0; ti < lake.size(); ++ti) {
    const Table& t = lake.table(ti);
    for (size_t c = 0; c < t.num_columns(); ++c) {
      // TUS considers only textual attributes.
      if (t.column(c).type() == ColumnType::kNumeric) continue;
      ColumnSketch s = SketchColumn(t, c);
      s.table = ti;
      uint32_t id = static_cast<uint32_t>(sketches_.size());
      token_forest_.Insert(id, s.token_sig);
      class_forest_.Insert(id, s.class_sig);
      if (s.has_embedding) {
        emb_forest_.Insert(id, rp_hasher_.SignatureAsHashSequence(s.emb_sig));
      }
      sketches_.push_back(std::move(s));
    }
  }
  token_forest_.Index();
  class_forest_.Index();
  emb_forest_.Index();

  build_stats_.index_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  build_stats_.num_attributes = sketches_.size();
  build_stats_.index_bytes = MemoryUsage();
  build_stats_.kb_lookups = kb_->lookup_count();
  return Status::OK();
}

double TusEngine::ExactUnionability(const ColumnSketch& a, const ColumnSketch& b) const {
  double set_u = ExactJaccard(a.tokens, b.tokens);
  double sem_u = ExactJaccard(a.classes, b.classes);
  double nl_u = 0;
  if (a.has_embedding && b.has_embedding) {
    nl_u = std::max(0.0, CosineSimilarity(a.embedding, b.embedding));
  }
  // Ensemble goodness: the maximum over the three measures.
  return std::max({set_u, sem_u, nl_u});
}

Result<TusSearchResult> TusEngine::Search(const Table& target, size_t k) const {
  if (lake_ == nullptr) return Status::InvalidArgument("IndexLake not called");
  TusSearchResult result;
  // Larger answers require more blocking candidates (and thus more exact
  // re-scoring), the k-dependence measured in Experiments 5-6.
  const size_t per_index_m = std::max(options_.candidates_per_attribute, k);

  // score per candidate table; alignment list per candidate table
  std::unordered_map<uint32_t, double> table_score;

  for (size_t c = 0; c < target.num_columns(); ++c) {
    if (target.column(c).type() == ColumnType::kNumeric) continue;
    ColumnSketch q = SketchColumn(target, c);

    std::unordered_set<uint32_t> candidates;
    for (uint32_t id : token_forest_.Query(q.token_sig, per_index_m)) {
      candidates.insert(id);
    }
    for (uint32_t id : class_forest_.Query(q.class_sig, per_index_m)) {
      candidates.insert(id);
    }
    if (q.has_embedding) {
      Signature seq = rp_hasher_.SignatureAsHashSequence(q.emb_sig);
      for (uint32_t id : emb_forest_.Query(seq, per_index_m)) {
        candidates.insert(id);
      }
    }

    // Exact re-scoring of every blocked candidate (the post-blocking
    // computation that dominates TUS's query time).
    for (uint32_t id : candidates) {
      const ColumnSketch& s = sketches_[id];
      double u = ExactUnionability(q, s);
      if (u <= 0) continue;
      auto& best = table_score[s.table];
      best = std::max(best, u);
      result.candidate_alignments[s.table].push_back(
          TusMatch::Alignment{static_cast<uint32_t>(c), s.column, u});
    }
  }

  std::vector<TusMatch> ranked;
  ranked.reserve(table_score.size());
  for (const auto& [ti, score] : table_score) {
    TusMatch m;
    m.table_index = ti;
    m.score = score;
    m.alignments = result.candidate_alignments[ti];
    ranked.push_back(std::move(m));
  }
  std::sort(ranked.begin(), ranked.end(), [](const TusMatch& a, const TusMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_index < b.table_index;
  });
  if (ranked.size() > k) ranked.resize(k);
  result.ranked = std::move(ranked);
  return result;
}

size_t TusEngine::MemoryUsage() const {
  size_t bytes = sizeof(TusEngine);
  bytes += token_forest_.MemoryUsage() + class_forest_.MemoryUsage() +
           emb_forest_.MemoryUsage();
  for (const ColumnSketch& s : sketches_) {
    bytes += sizeof(ColumnSketch);
    for (const auto& t : s.tokens) bytes += t.size() + 16;
    bytes += s.classes.size() * 8;
    bytes += s.embedding.capacity() * sizeof(float);
    bytes += (s.token_sig.capacity() + s.class_sig.capacity()) * sizeof(uint64_t);
    bytes += s.emb_sig.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace d3l::baselines

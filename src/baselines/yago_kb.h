// Synthetic YAGO-style knowledge base for the TUS baseline.
//
// SUBSTITUTION NOTE (DESIGN.md §4): TUS [Nargesian et al., PVLDB'18] maps
// every value token to YAGO classes at both index and query time, which the
// D3L paper identifies as TUS's dominant cost (Experiments 4-5). Shipping
// YAGO offline is impossible; we preserve the access pattern with a
// dictionary KB (token -> class ids, injectable, e.g. built from the
// benchmark domain vocabulary) plus deterministic hash-bucketed pseudo-
// classes for out-of-dictionary tokens — every token lookup does real work
// and returns plausible class sets, as YAGO lookups would.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace d3l::baselines {

class YagoKb {
 public:
  using Dictionary = std::unordered_map<std::string, std::vector<uint32_t>>;

  /// \param dictionary curated token -> class ids (class ids < 1000)
  /// \param fallback_classes number of pseudo-class buckets for unknown tokens
  explicit YagoKb(Dictionary dictionary, size_t fallback_classes = 4096,
                  uint64_t seed = 0x9a90);

  /// Classes of a token: the leaf classes (dictionary hit, or two pseudo-
  /// classes derived from stable hashes of the token and its 4-prefix, so
  /// orthographically close unknown tokens sometimes share a class) plus
  /// the transitive *type-hierarchy closure* of each leaf — TUS annotates
  /// tokens with all YAGO supertypes, and walking that hierarchy is part
  /// of the per-token cost the D3L paper measures in Experiments 4-5.
  std::vector<uint32_t> ClassesOf(const std::string& token) const;

  /// Supertype chain depth applied to every leaf class (default 4).
  size_t hierarchy_depth() const { return hierarchy_depth_; }

  size_t dictionary_size() const { return dictionary_.size(); }

  /// Total ClassesOf calls (instrumentation for the efficiency benches).
  uint64_t lookup_count() const { return lookups_.load(); }

 private:
  Dictionary dictionary_;
  size_t fallback_classes_;
  uint64_t seed_;
  size_t hierarchy_depth_ = 4;
  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace d3l::baselines

#include "baselines/yago_kb.h"

#include "common/hash.h"

namespace d3l::baselines {

YagoKb::YagoKb(Dictionary dictionary, size_t fallback_classes, uint64_t seed)
    : dictionary_(std::move(dictionary)),
      fallback_classes_(fallback_classes == 0 ? 1 : fallback_classes),
      seed_(seed) {}

std::vector<uint32_t> YagoKb::ClassesOf(const std::string& token) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint32_t> leaves;
  auto it = dictionary_.find(token);
  if (it != dictionary_.end()) {
    leaves = it->second;
  } else {
    // Pseudo-classes (offset past dictionary class-id space).
    leaves.push_back(static_cast<uint32_t>(
        1000 + HashString(token, seed_) % fallback_classes_));
    std::string prefix = token.substr(0, 4);
    leaves.push_back(static_cast<uint32_t>(1000 + fallback_classes_ +
                                           HashString(prefix, seed_ ^ 0x7e) %
                                               fallback_classes_));
  }
  // Transitive supertype closure: each leaf contributes its parent chain.
  // Parents converge quickly (chains are quotiented into ever-smaller id
  // spaces), mimicking YAGO's DAG narrowing toward owl:Thing.
  std::vector<uint32_t> classes = leaves;
  for (uint32_t leaf : leaves) {
    uint64_t node = leaf;
    uint64_t space = 1 << 16;
    for (size_t level = 0; level < hierarchy_depth_; ++level) {
      space = space > 64 ? space / 8 : 64;
      node = Mix64(node ^ (seed_ + level)) % space;
      classes.push_back(static_cast<uint32_t>(0x40000000u + (level << 20) +
                                              static_cast<uint32_t>(node)));
    }
  }
  return classes;
}

}  // namespace d3l::baselines

#include "baselines/aurum.h"

#include <algorithm>
#include <chrono>

#include "stats/descriptive.h"
#include "text/qgram.h"
#include "text/tokenizer.h"

namespace d3l::baselines {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

double RangeOverlap(double a_min, double a_max, double b_min, double b_max) {
  double inter = std::min(a_max, b_max) - std::max(a_min, b_min);
  double uni = std::max(a_max, b_max) - std::min(a_min, b_min);
  if (uni <= 0) return a_min == b_min ? 1.0 : 0.0;
  return std::max(0.0, inter) / uni;
}
}  // namespace

AurumEngine::AurumEngine(AurumOptions options)
    : options_(options),
      name_hasher_(options.minhash_size, options.seed ^ 0x11),
      value_hasher_(options.minhash_size, options.seed ^ 0x22),
      name_forest_(options.forest),
      value_forest_(options.forest) {}

AurumEngine::ColumnProfile AurumEngine::ProfileColumn(const Table& table,
                                                      size_t col) const {
  const Column& c = table.column(col);
  ColumnProfile p;
  p.column = static_cast<uint32_t>(col);
  p.numeric = c.type() == ColumnType::kNumeric;

  size_t non_null = c.size() - c.null_count();
  p.uniqueness = non_null > 0 ? static_cast<double>(c.distinct_count()) /
                                    static_cast<double>(non_null)
                              : 0;

  // Name profile: tokens of the attribute name (Aurum's schema signal).
  for (const std::string& tok : d3l::Tokenize(c.name())) p.name_tokens.insert(tok);
  // q-grams enrich short names, mirroring Aurum's fuzzy name matching.
  for (const std::string& g : d3l::QGrams(c.name(), 4)) p.name_tokens.insert(g);
  p.name_sig = name_hasher_.Sign(p.name_tokens);

  if (p.numeric) {
    std::vector<double> vals = c.NumericExtent();
    d3l::Summary s = d3l::Summarize(vals);
    p.range_min = s.min;
    p.range_max = s.max;
    return p;
  }

  std::set<std::string> tokens;
  size_t used = 0;
  const size_t cap = options_.max_values == 0 ? c.size() : options_.max_values;
  for (size_t r = 0; r < c.size() && used < cap; ++r) {
    if (IsNullCell(c.cell(r))) continue;
    ++used;
    for (const std::string& tok : d3l::Tokenize(c.cell(r))) tokens.insert(tok);
  }
  if (!tokens.empty()) {
    p.value_sig = value_hasher_.Sign(tokens);
    p.has_values = true;
  }
  return p;
}

double AurumEngine::NodeSimilarity(const ColumnProfile& a,
                                   const ColumnProfile& b) const {
  double name_sim = EstimateJaccard(a.name_sig, b.name_sig);
  double content_sim = 0;
  if (a.numeric && b.numeric) {
    content_sim = RangeOverlap(a.range_min, a.range_max, b.range_min, b.range_max);
    // Range overlap alone is weak evidence (any two age columns overlap);
    // damp it well below text overlap.
    content_sim *= 0.5;
  } else if (a.has_values && b.has_values) {
    content_sim = EstimateJaccard(a.value_sig, b.value_sig);
  }
  // Certainty semantics: the strongest signal wins.
  return std::max(name_sim, content_sim);
}

Status AurumEngine::BuildEkg(const DataLake& lake) {
  if (lake_ != nullptr) return Status::InvalidArgument("BuildEkg already called");
  lake_ = &lake;

  // Phase 1: profiling.
  auto t0 = std::chrono::steady_clock::now();
  for (uint32_t ti = 0; ti < lake.size(); ++ti) {
    const Table& t = lake.table(ti);
    for (size_t c = 0; c < t.num_columns(); ++c) {
      ColumnProfile p = ProfileColumn(t, c);
      p.table = ti;
      uint32_t id = static_cast<uint32_t>(profiles_.size());
      name_forest_.Insert(id, p.name_sig);
      if (p.has_values) value_forest_.Insert(id, p.value_sig);
      profiles_.push_back(std::move(p));
    }
  }
  name_forest_.Index();
  value_forest_.Index();
  build_stats_.profile_seconds = SecondsSince(t0);

  // Phase 2: EKG construction — the dominant indexing cost. Every node
  // queries the indexes for neighbours and keeps edges above threshold.
  t0 = std::chrono::steady_clock::now();
  graph_.resize(profiles_.size());
  for (uint32_t id = 0; id < profiles_.size(); ++id) {
    const ColumnProfile& p = profiles_[id];
    std::unordered_set<uint32_t> cands;
    for (uint32_t n : name_forest_.Query(p.name_sig, options_.neighbours_per_node)) {
      if (n != id) cands.insert(n);
    }
    if (p.has_values) {
      for (uint32_t n :
           value_forest_.Query(p.value_sig, options_.neighbours_per_node)) {
        if (n != id) cands.insert(n);
      }
    }
    for (uint32_t n : cands) {
      if (n < id) continue;  // add each undirected edge once
      const ColumnProfile& q = profiles_[n];
      double sim = NodeSimilarity(p, q);
      if (sim < options_.edge_threshold) continue;

      // Candidate PK/FK: one endpoint near-unique, high estimated
      // containment of the other endpoint's values.
      bool is_fk = false;
      if (p.has_values && q.has_values &&
          (p.uniqueness >= options_.fk_uniqueness ||
           q.uniqueness >= options_.fk_uniqueness)) {
        double j = EstimateJaccard(p.value_sig, q.value_sig);
        // Containment >= Jaccard; the Jaccard estimate is a conservative
        // proxy given only signatures.
        if (j / (1.0 + j) * 2.0 >= options_.fk_containment * 0.5 &&
            j >= options_.fk_containment * 0.4) {
          is_fk = true;
        }
      }
      graph_[id].push_back(EkgEdge{n, sim, is_fk});
      graph_[n].push_back(EkgEdge{id, sim, is_fk});
      ++num_edges_;
      if (is_fk) ++fk_edges_count_;
    }
  }
  build_stats_.graph_seconds = SecondsSince(t0);
  build_stats_.num_nodes = profiles_.size();
  build_stats_.num_edges = num_edges_;
  build_stats_.num_fk_edges = fk_edges_count_;
  build_stats_.index_bytes = MemoryUsage();
  return Status::OK();
}

Result<AurumSearchResult> AurumEngine::Search(const Table& target, size_t k) const {
  if (lake_ == nullptr) return Status::InvalidArgument("BuildEkg not called");
  AurumSearchResult result;
  std::unordered_map<uint32_t, double> table_score;

  for (size_t c = 0; c < target.num_columns(); ++c) {
    ColumnProfile q = ProfileColumn(target, c);

    // One-shot index consultation to map the target column onto EKG nodes.
    std::unordered_set<uint32_t> seeds;
    for (uint32_t id : name_forest_.Query(q.name_sig, options_.candidates_per_attribute)) {
      seeds.insert(id);
    }
    if (q.has_values) {
      for (uint32_t id :
           value_forest_.Query(q.value_sig, options_.candidates_per_attribute)) {
        seeds.insert(id);
      }
    }

    // Graph phase: score seeds, then expand one hop along EKG edges
    // (similarity damped by the edge weight).
    std::unordered_map<uint32_t, double> node_score;
    for (uint32_t id : seeds) {
      node_score[id] = std::max(node_score[id], NodeSimilarity(q, profiles_[id]));
    }
    for (uint32_t id : seeds) {
      double base = node_score[id];
      for (const EkgEdge& e : graph_[id]) {
        // Indirect evidence: damped by the edge weight and a constant
        // discount, so traversal broadens recall without letting 1-hop
        // neighbours outscore directly-matched columns.
        double propagated = base * e.similarity * 0.6;
        auto it = node_score.find(e.to_node);
        if (it == node_score.end() || it->second < propagated) {
          node_score[e.to_node] = propagated;
        }
      }
    }

    for (const auto& [id, score] : node_score) {
      if (score <= 0) continue;
      const ColumnProfile& p = profiles_[id];
      auto& best = table_score[p.table];
      best = std::max(best, score);
      result.candidate_alignments[p.table].push_back(
          AurumMatch::Alignment{static_cast<uint32_t>(c), p.column, score});
    }
  }

  std::vector<AurumMatch> ranked;
  ranked.reserve(table_score.size());
  for (const auto& [ti, score] : table_score) {
    AurumMatch m;
    m.table_index = ti;
    m.score = score;
    m.alignments = result.candidate_alignments[ti];
    ranked.push_back(std::move(m));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const AurumMatch& a, const AurumMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_index < b.table_index;
            });
  if (ranked.size() > k) ranked.resize(k);
  result.ranked = std::move(ranked);
  return result;
}

std::vector<uint32_t> AurumEngine::JoinExpand(const std::vector<uint32_t>& tables,
                                              size_t hops) const {
  std::unordered_set<uint32_t> start(tables.begin(), tables.end());
  std::unordered_set<uint32_t> reached;
  std::unordered_set<uint32_t> frontier_tables = start;
  for (size_t h = 0; h < hops; ++h) {
    std::unordered_set<uint32_t> next;
    for (uint32_t id = 0; id < profiles_.size(); ++id) {
      if (frontier_tables.count(profiles_[id].table) == 0) continue;
      for (const EkgEdge& e : graph_[id]) {
        if (!e.is_fk) continue;
        uint32_t tt = profiles_[e.to_node].table;
        if (start.count(tt) > 0 || reached.count(tt) > 0) continue;
        reached.insert(tt);
        next.insert(tt);
      }
    }
    if (next.empty()) break;
    frontier_tables = std::move(next);
  }
  return {reached.begin(), reached.end()};
}

size_t AurumEngine::MemoryUsage() const {
  size_t bytes = sizeof(AurumEngine);
  bytes += name_forest_.MemoryUsage() + value_forest_.MemoryUsage();
  for (const ColumnProfile& p : profiles_) {
    bytes += sizeof(ColumnProfile);
    for (const auto& t : p.name_tokens) bytes += t.size() + 16;
    bytes += (p.name_sig.capacity() + p.value_sig.capacity()) * sizeof(uint64_t);
  }
  for (const auto& edges : graph_) bytes += edges.capacity() * sizeof(EkgEdge);
  return bytes;
}

}  // namespace d3l::baselines

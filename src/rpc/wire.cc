#include "rpc/wire.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace d3l::rpc {

namespace {

/// Remaining milliseconds until `deadline`, clamped for poll(): at least 1
/// (0 would busy-spin as a pure readiness probe) and at most ~5s per wait
/// so enormous deadlines cannot overflow poll's int timeout.
int PollTimeoutMs(Deadline deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
  if (ms > 5000) return 5000;
  return static_cast<int>(ms) + 1;
}

Status WaitFor(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError(std::string("timed out ") + what);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll failed ") + what + ": " +
                             std::strerror(errno));
    }
    if (rc > 0) return Status::OK();
  }
}

uint32_t DecodeU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t DecodeU64(const unsigned char* p) {
  return static_cast<uint64_t>(DecodeU32(p)) |
         static_cast<uint64_t>(DecodeU32(p + 4)) << 32;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PatchU32(std::string* frame, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*frame)[offset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t FrameVersionWord(const std::string& frame) {
  return DecodeU32(reinterpret_cast<const unsigned char*>(frame.data()) + 8);
}

/// Flattened spans are bounded twice: TraceContext caps what one query can
/// record, and this cap bounds what a peer can make us decode.
constexpr size_t kMaxWireSpans = 4096;

}  // namespace

Status OpenFrame(io::Reader& r, Frame frame) {
  const uint32_t method = frame.method;
  D3L_RETURN_NOT_OK(r.OpenBuffer(std::move(frame.section)));
  return r.OpenSection(method);
}

Status SendAll(int fd, const void* data, size_t len, Deadline deadline) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed mid-send must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      D3L_RETURN_NOT_OK(WaitFor(fd, POLLOUT, deadline, "sending"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send failed: ") +
                           (n < 0 ? std::strerror(errno) : "connection closed"));
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t len, Deadline deadline) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-message");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      D3L_RETURN_NOT_OK(WaitFor(fd, POLLIN, deadline, "receiving"));
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status SendFrame(int fd, const std::string& frame, Deadline deadline) {
  return SendAll(fd, frame.data(), frame.size(), deadline);
}

Result<Frame> RecvFrame(int fd, Deadline deadline, bool* clean_eof,
                        bool allow_spans) {
  if (clean_eof != nullptr) *clean_eof = false;

  // Frame header, with the first byte read separately so a peer that
  // simply closed (no byte at all) is distinguishable from one truncated
  // mid-header.
  unsigned char header[kFrameHeaderBytes];
  {
    ssize_t n;
    for (;;) {
      n = recv(fd, header, 1, 0);
      if (n >= 0) break;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        D3L_RETURN_NOT_OK(WaitFor(fd, POLLIN, deadline, "receiving"));
        continue;
      }
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (clean_eof != nullptr) *clean_eof = true;
      return Status::IOError("connection closed");
    }
  }
  D3L_RETURN_NOT_OK(RecvAll(fd, header + 1, sizeof(header) - 1, deadline));
  if (std::memcmp(header, kMagic, 8) != 0) {
    return Status::InvalidArgument("not a D3L RPC stream (bad magic)");
  }
  const uint32_t word = DecodeU32(header + 8);
  const uint32_t version = word & kVersionMask;
  const uint32_t flags = word & ~kVersionMask;
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported RPC protocol version " + std::to_string(version) +
        " (this build speaks " + std::to_string(kProtocolVersion) + ")");
  }
  if ((flags & ~kKnownFlags) != 0) {
    return Status::InvalidArgument("unknown RPC header flags 0x" +
                                   std::to_string(flags >> 16));
  }
  // Only responses carry spans. Refusing the flag here (rather than
  // waiting for the claimed section) means a bit-flipped or hostile
  // request fails instantly instead of stalling a server worker until the
  // I/O deadline.
  if ((flags & kFlagSpans) != 0 && !allow_spans) {
    return Status::InvalidArgument(
        "span section flagged on a frame that may not carry one");
  }

  Frame frame;
  if ((flags & kFlagTraceId) != 0) {
    unsigned char id[8];
    D3L_RETURN_NOT_OK(RecvAll(fd, id, sizeof(id), deadline));
    frame.trace_id = DecodeU64(id);
  }

  // Section header: method fourcc + payload size. The size is validated
  // against the hard cap BEFORE the payload buffer is allocated.
  unsigned char section_header[kSectionHeaderBytes];
  D3L_RETURN_NOT_OK(RecvAll(fd, section_header, sizeof(section_header), deadline));
  const uint64_t payload_bytes = DecodeU64(section_header + 4);
  if (payload_bytes > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "RPC message claims a " + std::to_string(payload_bytes) +
        " byte payload, above the " + std::to_string(kMaxPayloadBytes) +
        " byte limit");
  }

  frame.method = DecodeU32(section_header);
  frame.section.resize(kSectionHeaderBytes + payload_bytes + 4);  // + crc32
  std::memcpy(frame.section.data(), section_header, kSectionHeaderBytes);
  D3L_RETURN_NOT_OK(RecvAll(fd, frame.section.data() + kSectionHeaderBytes,
                            payload_bytes + 4, deadline));

  if ((flags & kFlagSpans) != 0) {
    unsigned char spans_header[kSectionHeaderBytes];
    D3L_RETURN_NOT_OK(RecvAll(fd, spans_header, sizeof(spans_header), deadline));
    if (DecodeU32(spans_header) != kSectionTraceSpans) {
      return Status::InvalidArgument(
          "span-flagged frame's trailing section is not TRSP");
    }
    const uint64_t spans_bytes = DecodeU64(spans_header + 4);
    if (spans_bytes > kMaxSpansBytes) {
      return Status::InvalidArgument(
          "RPC span section claims " + std::to_string(spans_bytes) +
          " bytes, above the " + std::to_string(kMaxSpansBytes) + " byte limit");
    }
    frame.spans_section.resize(kSectionHeaderBytes + spans_bytes + 4);
    std::memcpy(frame.spans_section.data(), spans_header, kSectionHeaderBytes);
    D3L_RETURN_NOT_OK(RecvAll(fd, frame.spans_section.data() + kSectionHeaderBytes,
                              spans_bytes + 4, deadline));
  }
  return frame;
}

std::string WithTraceId(const std::string& frame, uint64_t trace_id) {
  if (trace_id == 0 || frame.size() < kFrameHeaderBytes) return frame;
  std::string out;
  out.reserve(frame.size() + 8);
  out.append(frame, 0, 8);
  AppendU32(&out, FrameVersionWord(frame) | kFlagTraceId);
  AppendU64(&out, trace_id);
  out.append(frame, kFrameHeaderBytes, std::string::npos);
  return out;
}

void AppendSpans(std::string* frame, const std::vector<obs::Span>& roots) {
  if (frame->size() < kFrameHeaderBytes) return;
  std::string section;
  io::Writer w;
  w.OpenBuffer(&section);
  w.BeginSection(kSectionTraceSpans);
  SaveSpans(w, roots);
  w.EndSection().CheckOK();  // buffer-mode writes cannot fail
  PatchU32(frame, 8, FrameVersionWord(*frame) | kFlagSpans);
  frame->append(section);
}

Result<std::vector<obs::Span>> DecodeSpans(const Frame& frame) {
  if (frame.spans_section.empty()) return std::vector<obs::Span>{};
  io::Reader r;
  D3L_RETURN_NOT_OK(r.OpenBuffer(frame.spans_section));
  D3L_RETURN_NOT_OK(r.OpenSection(kSectionTraceSpans));
  std::vector<obs::Span> roots = LoadSpans(r);
  D3L_RETURN_NOT_OK(r.status());
  D3L_RETURN_NOT_OK(r.EndSection());
  return roots;
}

void SaveSpans(io::Writer& w, const std::vector<obs::Span>& roots) {
  // Pre-order flatten with parent indices: children always serialize after
  // (and point back at) their parent, which is what lets the loader
  // rebuild bottom-up without recursion on untrusted depth.
  std::vector<std::pair<const obs::Span*, int32_t>> flat;
  std::vector<std::pair<const obs::Span*, int32_t>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(&*it, -1);
  }
  while (!stack.empty() && flat.size() < kMaxWireSpans) {
    const auto [span, parent] = stack.back();
    stack.pop_back();
    const int32_t index = static_cast<int32_t>(flat.size());
    flat.emplace_back(span, parent);
    for (auto it = span->children.rbegin(); it != span->children.rend(); ++it) {
      stack.emplace_back(&*it, index);
    }
  }
  w.WriteU64(flat.size());
  for (const auto& [span, parent] : flat) {
    w.WriteI32(parent);
    w.WriteU64(span->start_ns);
    w.WriteU64(span->duration_ns);
    w.WriteString(span->name);
  }
}

std::vector<obs::Span> LoadSpans(io::Reader& r) {
  std::vector<obs::Span> roots;
  const size_t n = r.ReadLength(4 + 8 + 8 + 8);  // parent + times + name length
  if (n > kMaxWireSpans) {
    r.MarkCorrupt("span list claims " + std::to_string(n) + " spans");
    return roots;
  }
  std::vector<obs::Span> nodes(n);
  std::vector<int32_t> parents(n, -1);
  std::vector<std::vector<size_t>> children(n);
  for (size_t i = 0; i < n && r.status().ok(); ++i) {
    const int32_t parent = r.ReadI32();
    if (parent != -1 &&
        (parent < 0 || static_cast<size_t>(parent) >= i)) {
      r.MarkCorrupt("span " + std::to_string(i) + " has invalid parent " +
                    std::to_string(parent));
      return roots;
    }
    parents[i] = parent;
    nodes[i].start_ns = r.ReadU64();
    nodes[i].duration_ns = r.ReadU64();
    nodes[i].name = r.ReadString();
    if (parent >= 0) children[static_cast<size_t>(parent)].push_back(i);
  }
  if (!r.status().ok()) return roots;
  for (size_t i = n; i-- > 0;) {
    for (size_t c : children[i]) nodes[i].children.push_back(std::move(nodes[c]));
  }
  for (size_t i = 0; i < n; ++i) {
    if (parents[i] == -1) roots.push_back(std::move(nodes[i]));
  }
  return roots;
}

void SaveWireStatus(io::Writer& w, const Status& s) {
  w.WriteU32(static_cast<uint32_t>(s.code()));
  w.WriteString(s.message());
}

Status LoadWireStatus(io::Reader& r) {
  const StatusCode code = StatusCodeFromWire(r.ReadU32());
  std::string message = r.ReadString();
  if (!r.status().ok()) return r.status();
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, std::move(message));
}

Result<std::unique_ptr<io::Reader>> OpenResponse(uint32_t method, Frame frame) {
  // kMethodError means the server could not parse the request well enough
  // to echo its method; the payload still carries the status explaining why.
  if (frame.method != method && frame.method != kMethodError) {
    return Status::IOError("RPC response method " + io::SectionName(frame.method) +
                           " does not match the request's " +
                           io::SectionName(method));
  }
  auto r = std::make_unique<io::Reader>();
  D3L_RETURN_NOT_OK(OpenFrame(*r, std::move(frame)));
  Status app = LoadWireStatus(*r);
  D3L_RETURN_NOT_OK(app);
  return r;
}

void SaveMask(io::Writer& w, const std::array<bool, core::kNumEvidence>& mask) {
  for (bool b : mask) w.WriteBool(b);
}

std::array<bool, core::kNumEvidence> LoadMask(io::Reader& r) {
  std::array<bool, core::kNumEvidence> mask{};
  for (size_t e = 0; e < core::kNumEvidence; ++e) mask[e] = r.ReadBool();
  return mask;
}

void SaveTable(io::Writer& w, const Table& table) {
  w.WriteString(table.name());
  w.WriteU64(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    w.WriteString(col.name());
    w.WriteStringRange(col.cells());
  }
}

Table LoadTable(io::Reader& r) {
  Table table(r.ReadString());
  const size_t n_cols = r.ReadLength(1);
  // Decode into temporaries first: Table::AddColumn refuses once any cell
  // exists, so the schema must be complete before the cells go in.
  std::vector<std::string> names(n_cols);
  std::vector<std::vector<std::string>> cells(n_cols);
  for (size_t c = 0; c < n_cols && r.status().ok(); ++c) {
    names[c] = r.ReadString();
    const size_t n_cells = r.ReadLength(1);
    cells[c].reserve(n_cells);
    for (size_t i = 0; i < n_cells && r.status().ok(); ++i) {
      cells[c].push_back(r.ReadString());
    }
    if (c > 0 && cells[c].size() != cells[0].size()) {
      r.MarkCorrupt("table columns have unequal lengths");
      return table;
    }
  }
  if (!r.status().ok()) return table;
  for (size_t c = 0; c < n_cols; ++c) {
    const Status added = table.AddColumn(std::move(names[c]));
    if (!added.ok()) {
      r.MarkCorrupt(added.message());
      return table;
    }
  }
  for (size_t c = 0; c < n_cols; ++c) {
    table.column(c).Reserve(cells[c].size());
    for (std::string& cell : cells[c]) table.column(c).Append(std::move(cell));
  }
  return table;
}

void SaveDepthCounts(io::Writer& w, const core::CandidateDepthCounts& counts) {
  w.WriteU64(counts.counts.size());
  for (const auto& per_evidence : counts.counts) {
    for (const std::vector<size_t>& depths : per_evidence) {
      w.WriteU64(depths.size());
      for (size_t v : depths) w.WriteU64(v);
    }
  }
}

core::CandidateDepthCounts LoadDepthCounts(io::Reader& r) {
  core::CandidateDepthCounts counts;
  const size_t n_cols = r.ReadLength(core::kNumEvidence * 8);
  counts.counts.resize(n_cols);
  for (size_t c = 0; c < n_cols && r.status().ok(); ++c) {
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      const size_t n = r.ReadLength(8);
      counts.counts[c][e].reserve(n);
      for (size_t i = 0; i < n && r.status().ok(); ++i) {
        counts.counts[c][e].push_back(static_cast<size_t>(r.ReadU64()));
      }
    }
  }
  return counts;
}

void SaveStopDepths(io::Writer& w, const core::CandidateStopDepths& stops) {
  w.WriteU64(stops.depths.size());
  for (const auto& per_evidence : stops.depths) {
    for (size_t d : per_evidence) w.WriteU64(d);
  }
}

core::CandidateStopDepths LoadStopDepths(io::Reader& r) {
  core::CandidateStopDepths stops;
  const size_t n_cols = r.ReadLength(core::kNumEvidence * 8);
  stops.depths.resize(n_cols);
  for (size_t c = 0; c < n_cols && r.status().ok(); ++c) {
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      stops.depths[c][e] = static_cast<size_t>(r.ReadU64());
    }
  }
  return stops;
}

void SaveCandidateLists(io::Writer& w, const core::CandidateLists& lists) {
  w.WriteU64(lists.ids.size());
  for (const auto& per_evidence : lists.ids) {
    for (const std::vector<uint32_t>& ids : per_evidence) {
      w.WriteU64(ids.size());
      for (uint32_t id : ids) w.WriteU32(id);
    }
  }
}

core::CandidateLists LoadCandidateLists(io::Reader& r) {
  core::CandidateLists lists;
  const size_t n_cols = r.ReadLength(core::kNumEvidence * 8);
  lists.ids.resize(n_cols);
  for (size_t c = 0; c < n_cols && r.status().ok(); ++c) {
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      const size_t n = r.ReadLength(4);
      lists.ids[c][e].reserve(n);
      for (size_t i = 0; i < n && r.status().ok(); ++i) {
        lists.ids[c][e].push_back(r.ReadU32());
      }
    }
  }
  return lists;
}

void SaveRows(io::Writer& w, const std::vector<core::PairDistances>& rows) {
  w.WriteU64(rows.size());
  for (const core::PairDistances& row : rows) {
    w.WriteU32(row.target_column);
    w.WriteU32(row.attribute_id);
    for (double d : row.d) w.WriteDouble(d);
  }
}

std::vector<core::PairDistances> LoadRows(io::Reader& r) {
  const size_t n = r.ReadLength(8 + core::kNumEvidence * 8);
  std::vector<core::PairDistances> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n && r.status().ok(); ++i) {
    core::PairDistances row;
    row.target_column = r.ReadU32();
    row.attribute_id = r.ReadU32();
    for (size_t e = 0; e < core::kNumEvidence; ++e) row.d[e] = r.ReadDouble();
    rows.push_back(row);
  }
  return rows;
}

void SaveServerInfo(io::Writer& w, const ServerInfo& info) {
  w.WriteU32(static_cast<uint32_t>(info.backend.kind));
  w.WriteU64(info.backend.num_tables);
  w.WriteU64(info.backend.num_attributes);
  w.WriteU64(info.backend.num_shards);
  w.WriteU64(info.backend.options_fingerprint);
  w.WriteU64(info.backend.index_fingerprint);
  w.WriteBool(info.serves_all);
  w.WriteU64Vector(info.served_shards);
  w.WriteU64(info.served_tables.size());
  for (const serving::ShardedEngine::ServedTable& t : info.served_tables) {
    w.WriteU32(t.global_id);
    w.WriteString(t.name);
    w.WriteU32(t.column_count);
  }
  core::SaveOptions(w, info.options);
}

ServerInfo LoadServerInfo(io::Reader& r) {
  ServerInfo info;
  const uint32_t kind = r.ReadU32();
  if (kind > static_cast<uint32_t>(serving::BackendKind::kRemote)) {
    r.MarkCorrupt("unknown backend kind " + std::to_string(kind));
    return info;
  }
  info.backend.kind = static_cast<serving::BackendKind>(kind);
  info.backend.num_tables = static_cast<size_t>(r.ReadU64());
  info.backend.num_attributes = static_cast<size_t>(r.ReadU64());
  info.backend.num_shards = static_cast<size_t>(r.ReadU64());
  info.backend.options_fingerprint = r.ReadU64();
  info.backend.index_fingerprint = r.ReadU64();
  info.serves_all = r.ReadBool();
  info.served_shards = r.ReadU64Vector();
  const size_t n_tables = r.ReadLength(1);
  info.served_tables.reserve(n_tables);
  for (size_t i = 0; i < n_tables && r.status().ok(); ++i) {
    serving::ShardedEngine::ServedTable t;
    t.global_id = r.ReadU32();
    t.name = r.ReadString();
    t.column_count = r.ReadU32();
    info.served_tables.push_back(std::move(t));
  }
  info.options = core::LoadOptions(r);
  return info;
}

}  // namespace d3l::rpc

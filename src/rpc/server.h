// The shard-serving RPC daemon core: a TCP accept loop + worker pool that
// answers the wire.h protocol over one ShardedEngine (full or subset).
//
// Lifecycle: Start() binds/listens (port 0 = kernel-assigned, read back via
// port()), spawns the accept thread and returns; Stop() (or destruction)
// closes the listen socket, shuts down every active connection and joins.
// Connections are served to completion by serving::ThreadPool workers, one
// connection at a time per worker, with each request's reads/writes under a
// per-message I/O deadline — a stalled or malicious peer times out with a
// clean Status instead of wedging a worker.
//
// Hot reload: the served engine is a swappable generation
// (shared_ptr<const ShardedEngine>, the hot_reload.h pattern). A RELD
// request invokes the reload hook the server was started with; in-flight
// requests keep their generation snapshot, so reload never races a query.
//
// Robustness contract (enforced by tests/rpc_test.cc): any byte stream —
// truncated frames, flipped bits, wrong versions, oversized length
// prefixes, mid-stream disconnects — yields a clean error response and/or
// a closed connection, never a crash; the next connection serves normally.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/status.h"
#include "rpc/wire.h"
#include "serving/sharded_engine.h"
#include "serving/thread_pool.h"

namespace d3l::rpc {

struct RpcServerOptions {
  /// Address to bind. The default only accepts local connections; a real
  /// deployment passes an interface address explicitly.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
  uint16_t port = 0;
  /// Connection-handler workers (floored at 1: with zero workers,
  /// ThreadPool::Post would run handlers inline on the accept thread and
  /// one connection would block all accepting).
  size_t num_workers = 4;
  /// Per-message I/O deadline on accepted connections: sending a response
  /// or reading the remainder of a started request must finish within this
  /// window. Waiting for the NEXT request on an idle connection does not
  /// count against it.
  double io_timeout_seconds = 30.0;
};

/// \brief TCP server speaking the wire.h protocol for one shard deployment.
class RpcServer {
 public:
  /// Produces the next engine generation on a RELD request; receives the
  /// current generation (e.g. for ShardedEngine::Open's replica reuse).
  using ReloadFn = std::function<Result<std::shared_ptr<const serving::ShardedEngine>>(
      const serving::ShardedEngine* current)>;

  /// Binds, listens and starts accepting. `engine` must be non-null; a
  /// null `reload` makes RELD requests fail with InvalidArgument.
  static Result<std::unique_ptr<RpcServer>> Start(
      std::shared_ptr<const serving::ShardedEngine> engine,
      RpcServerOptions options = {}, ReloadFn reload = nullptr);

  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, unblocks and closes every active connection, joins
  /// the accept thread. Idempotent; also run by the destructor.
  void Stop();

  /// The engine generation currently serving (tests; swaps on RELD).
  std::shared_ptr<const serving::ShardedEngine> engine() const;

  /// Requests answered since Start (any method, including error replies).
  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  RpcServer(RpcServerOptions options, size_t num_workers)
      : options_(std::move(options)), pool_(num_workers) {}

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Builds the response frame for one decoded request (never fails — all
  /// errors become wire-status responses).
  std::string HandleRequest(Frame request);

  RpcServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  mutable std::mutex engine_mu_;
  std::shared_ptr<const serving::ShardedEngine> engine_;
  ReloadFn reload_;
  /// Serializes RELD handling (the hook may be expensive; overlapping
  /// reloads would race their swaps in an arbitrary order).
  std::mutex reload_mu_;

  std::mutex conns_mu_;
  std::unordered_set<int> conns_;  ///< active connection fds (for Stop)

  serving::ThreadPool pool_;
  std::thread accept_thread_;
};

}  // namespace d3l::rpc

// The shard-serving RPC daemon core: a TCP accept loop + worker pool that
// answers the wire.h protocol over one ShardedEngine (full or subset).
//
// Lifecycle: Start() binds/listens (port 0 = kernel-assigned, read back via
// port()), spawns the accept thread and returns; Stop() (or destruction)
// closes the listen socket, shuts down every active connection and joins.
// Connections are served to completion by serving::ThreadPool workers, one
// connection at a time per worker, with each request's reads/writes under a
// per-message I/O deadline — a stalled or malicious peer times out with a
// clean Status instead of wedging a worker.
//
// Hot reload: the served engine is a swappable generation
// (shared_ptr<const ShardedEngine>, the hot_reload.h pattern). A RELD
// request invokes the reload hook the server was started with; in-flight
// requests keep their generation snapshot, so reload never races a query.
//
// Robustness contract (enforced by tests/rpc_test.cc): any byte stream —
// truncated frames, flipped bits, wrong versions, oversized length
// prefixes, mid-stream disconnects — yields a clean error response and/or
// a closed connection, never a crash; the next connection serves normally.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/wire.h"
#include "serving/sharded_engine.h"
#include "serving/thread_pool.h"

namespace d3l::rpc {

struct RpcServerOptions {
  /// Address to bind. The default only accepts local connections; a real
  /// deployment passes an interface address explicitly.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
  uint16_t port = 0;
  /// Connection-handler workers (floored at 1: with zero workers,
  /// ThreadPool::Post would run handlers inline on the accept thread and
  /// one connection would block all accepting).
  size_t num_workers = 4;
  /// Per-message I/O deadline on accepted connections: sending a response
  /// or reading the remainder of a started request must finish within this
  /// window. Waiting for the NEXT request on an idle connection does not
  /// count against it.
  double io_timeout_seconds = 30.0;
  /// Registry the server's metrics report into AND the one a STAT request
  /// exports (null = the process default) — so `shard_server --stats` sees
  /// the same series the daemon's own instruments feed.
  obs::MetricRegistry* registry = nullptr;
};

/// \brief TCP server speaking the wire.h protocol for one shard deployment.
class RpcServer {
 public:
  /// Produces the next engine generation on a RELD request; receives the
  /// current generation (e.g. for ShardedEngine::Open's replica reuse).
  using ReloadFn = std::function<Result<std::shared_ptr<const serving::ShardedEngine>>(
      const serving::ShardedEngine* current)>;

  /// Binds, listens and starts accepting. `engine` must be non-null; a
  /// null `reload` makes RELD requests fail with InvalidArgument.
  static Result<std::unique_ptr<RpcServer>> Start(
      std::shared_ptr<const serving::ShardedEngine> engine,
      RpcServerOptions options = {}, ReloadFn reload = nullptr);

  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, unblocks and closes every active connection, joins
  /// the accept thread. Idempotent; also run by the destructor.
  void Stop() D3L_EXCLUDES(conns_mu_);

  /// The engine generation currently serving (tests; swaps on RELD).
  std::shared_ptr<const serving::ShardedEngine> engine() const
      D3L_EXCLUDES(engine_mu_);

  /// Requests answered since Start (any method, including error replies).
  /// A thin view over the d3l_rpc_server_requests_total counter.
  uint64_t requests_served() const { return requests_served_->Value(); }

 private:
  struct VerbInstruments {
    std::shared_ptr<obs::Counter> requests;
    std::shared_ptr<obs::Histogram> latency;
  };

  RpcServer(RpcServerOptions options, size_t num_workers);

  void AcceptLoop() D3L_EXCLUDES(conns_mu_);
  void ServeConnection(int fd);
  /// Builds the response frame for one decoded request (never fails — all
  /// errors become wire-status responses). A trace-flagged request is
  /// handled under a fresh TraceContext carrying the client's id, and the
  /// recorded span tree rides back appended to the response.
  std::string HandleRequest(Frame request);
  /// The method dispatch inside HandleRequest (split out so the trace and
  /// per-verb timing wrap every arm uniformly).
  std::string Dispatch(Frame request) D3L_EXCLUDES(reload_mu_, engine_mu_);

  RpcServerOptions options_;
  obs::MetricRegistry* registry_ = nullptr;  ///< resolved, never null
  uint16_t port_ = 0;
  /// Atomic because Stop() (caller thread) retires the fd while
  /// AcceptLoop() (accept thread) is reading it between poll rounds.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};

  std::shared_ptr<obs::Counter> requests_served_;
  std::shared_ptr<obs::Counter> protocol_errors_;
  std::shared_ptr<obs::Counter> bytes_received_;
  std::shared_ptr<obs::Counter> bytes_sent_;
  /// Keyed by method fourcc, fully built in the constructor (lock-free
  /// lookup on the request path); unknown methods fall back to kMethodError.
  std::unordered_map<uint32_t, VerbInstruments> per_verb_;

  mutable Mutex engine_mu_;
  std::shared_ptr<const serving::ShardedEngine> engine_
      D3L_GUARDED_BY(engine_mu_);
  ReloadFn reload_;
  /// Serializes RELD handling (the hook may be expensive; overlapping
  /// reloads would race their swaps in an arbitrary order).
  Mutex reload_mu_;

  Mutex conns_mu_;
  /// Active connection fds (for Stop).
  std::unordered_set<int> conns_ D3L_GUARDED_BY(conns_mu_);

  serving::ThreadPool pool_;
  std::thread accept_thread_;
};

}  // namespace d3l::rpc

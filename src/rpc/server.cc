#include "rpc/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace d3l::rpc {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl failed: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

RpcServer::RpcServer(RpcServerOptions options, size_t num_workers)
    : options_(std::move(options)),
      registry_(options_.registry ? options_.registry
                                  : &obs::MetricRegistry::Default()),
      pool_(num_workers, "rpc_server", registry_) {
  requests_served_ =
      registry_->AddCounter("d3l_rpc_server_requests_total", {},
                            "Requests answered (including error replies)");
  protocol_errors_ = registry_->AddCounter(
      "d3l_rpc_server_protocol_errors_total", {},
      "Connections dropped on an unparseable or hostile request stream");
  bytes_received_ = registry_->AddCounter("d3l_rpc_server_bytes_received_total",
                                          {}, "Request bytes read off the wire");
  bytes_sent_ = registry_->AddCounter("d3l_rpc_server_bytes_sent_total", {},
                                      "Response bytes put on the wire");
  const uint32_t verbs[] = {kMethodInfo,       kMethodProfile,
                            kMethodSearch,     kMethodDepthCounts,
                            kMethodScoreAtStops, kMethodReload,
                            kMethodStat,       kMethodError};
  for (uint32_t verb : verbs) {
    const obs::LabelSet labels = {{"method", io::SectionName(verb)}};
    VerbInstruments vi;
    vi.requests = registry_->AddCounter("d3l_rpc_server_method_requests_total",
                                        labels, "Requests dispatched per verb");
    vi.latency = registry_->AddHistogram("d3l_rpc_server_handle_seconds",
                                         labels, "Request handling time");
    per_verb_.emplace(verb, std::move(vi));
  }
}

Result<std::unique_ptr<RpcServer>> RpcServer::Start(
    std::shared_ptr<const serving::ShardedEngine> engine, RpcServerOptions options,
    ReloadFn reload) {
  if (engine == nullptr) {
    return Status::InvalidArgument("RpcServer needs an engine");
  }
  const size_t workers = options.num_workers > 0 ? options.num_workers : 1;
  auto server =
      std::unique_ptr<RpcServer>(new RpcServer(std::move(options), workers));
  {
    // Start is a static factory, not the constructor: the guarded member
    // takes its lock even though the server is not yet shared.
    MutexLock lock(server->engine_mu_);
    server->engine_ = std::move(engine);
  }
  server->reload_ = std::move(reload);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse bind address '" +
                                   server->options_.host + "'");
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") + std::strerror(errno));
  }
  server->listen_fd_ = fd;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::IOError("cannot bind " + server->options_.host + ":" +
                           std::to_string(server->options_.port) + ": " +
                           std::strerror(errno));
  }
  if (listen(fd, 64) < 0) {
    return Status::IOError(std::string("listen failed: ") + std::strerror(errno));
  }
  // Read back the bound port (the kernel's pick under port 0).
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) < 0) {
    return Status::IOError(std::string("getsockname failed: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(addr.sin_port);
  D3L_RETURN_NOT_OK(SetNonBlocking(fd));

  server->accept_thread_ = std::thread([srv = server.get()] { srv->AcceptLoop(); });
  return server;
}

RpcServer::~RpcServer() { Stop(); }

void RpcServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Closing the listen fd makes the accept poll fail fast; shutting down
  // the active connections unblocks any worker waiting in recv/send so the
  // pool can drain (the fds themselves are closed by their handlers).
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) close(listen_fd);
  {
    MutexLock lock(conns_mu_);
    for (int fd : conns_) shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

std::shared_ptr<const serving::ShardedEngine> RpcServer::engine() const {
  MutexLock lock(engine_mu_);
  return engine_;
}

void RpcServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, 250);
    if (stopping_.load()) break;
    if (rc <= 0) continue;
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    if (!SetNonBlocking(conn).ok()) {
      close(conn);
      continue;
    }
    const int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      MutexLock lock(conns_mu_);
      conns_.insert(conn);
    }
    pool_.Post([this, conn] {
      ServeConnection(conn);
      {
        MutexLock lock(conns_mu_);
        conns_.erase(conn);
      }
      close(conn);
    });
  }
}

void RpcServer::ServeConnection(int fd) {
  while (!stopping_.load()) {
    // Idle wait for the next request, off the I/O deadline so persistent
    // connections may sit quietly between queries.
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, 250);
    if (stopping_.load()) return;
    if (rc < 0 && errno != EINTR) return;
    if (rc <= 0) continue;

    bool clean_eof = false;
    const Deadline deadline = After(options_.io_timeout_seconds);
    Result<Frame> frame = RecvFrame(fd, deadline, &clean_eof);
    if (!frame.ok()) {
      if (clean_eof) return;  // client finished its session
      // The stream is broken or hostile (bad magic/version, oversized
      // prefix, truncation): report why — best effort, the peer may be
      // gone — and drop the connection, since framing sync is lost.
      protocol_errors_->Increment();
      const std::string response =
          BuildFrame(kMethodError,
                     [&](io::Writer& w) { SaveWireStatus(w, frame.status()); });
      if (SendFrame(fd, response, After(options_.io_timeout_seconds)).ok()) {
        bytes_sent_->Increment(response.size());
      }
      requests_served_->Increment();
      return;
    }
    bytes_received_->Increment(kFrameHeaderBytes + frame->section.size() +
                               (frame->trace_id != 0 ? 8 : 0));

    const std::string response = HandleRequest(std::move(frame).ValueOrDie());
    requests_served_->Increment();
    if (!SendFrame(fd, response, After(options_.io_timeout_seconds)).ok()) {
      return;
    }
    bytes_sent_->Increment(response.size());
  }
}

std::string RpcServer::HandleRequest(Frame request) {
  const uint32_t method = request.method;
  const uint64_t trace_id = request.trace_id;
  auto verb = per_verb_.find(method);
  if (verb == per_verb_.end()) verb = per_verb_.find(kMethodError);
  verb->second.requests->Increment();

  const auto start = std::chrono::steady_clock::now();
  std::string response;
  std::shared_ptr<obs::TraceContext> trace;
  if (trace_id != 0) {
    // Record this server's handling under the CLIENT's trace id; the span
    // tree rides back on the response for the client to stitch in.
    trace = std::make_shared<obs::TraceContext>(trace_id);
    obs::ScopedSpan span(trace, "serve:" + io::SectionName(method));
    response = Dispatch(std::move(request));
  } else {
    response = Dispatch(std::move(request));
  }
  verb->second.latency->Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (trace != nullptr) AppendSpans(&response, trace->Snapshot().roots);
  return response;
}

std::string RpcServer::Dispatch(Frame request) {
  const uint32_t method = request.method;
  const std::shared_ptr<const serving::ShardedEngine> engine = this->engine();

  // One respond() shape for every arm: echo the method, lead with the wire
  // status, append the body only on success.
  const auto respond = [method](const Status& status,
                                const std::function<void(io::Writer&)>& body =
                                    nullptr) {
    return BuildFrame(method, [&](io::Writer& w) {
      SaveWireStatus(w, status);
      if (status.ok() && body) body(w);
    });
  };

  io::Reader r;
  {
    const Status opened = OpenFrame(r, std::move(request));
    if (!opened.ok()) return respond(opened);
  }
  // Decoded request fields must be fully read and intact before any engine
  // work: a short or corrupt payload answers with the reader's status.
  const auto decoded = [&r]() -> Status {
    D3L_RETURN_NOT_OK(r.status());
    return r.EndSection();
  };

  switch (method) {
    case kMethodInfo: {
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      ServerInfo info;
      info.backend = engine->Info();
      info.serves_all = engine->serves_all();
      for (size_t s : engine->served_shards()) info.served_shards.push_back(s);
      info.served_tables = engine->ServedTables();
      info.options = engine->options();
      return respond(Status::OK(), [&](io::Writer& w) { SaveServerInfo(w, info); });
    }
    case kMethodProfile: {
      Table target = LoadTable(r);
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      obs::ScopedSpan span("engine:profile");
      auto profiled = engine->Profile(target);
      if (!profiled.ok()) return respond(profiled.status());
      return respond(Status::OK(), [&](io::Writer& w) {
        core::SaveQueryTarget(w, *profiled);
      });
    }
    case kMethodSearch: {
      core::QueryTarget target = core::LoadQueryTarget(r);
      const size_t k = static_cast<size_t>(r.ReadU64());
      const std::array<bool, core::kNumEvidence> mask = LoadMask(r);
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      obs::ScopedSpan span("engine:search");
      auto result = engine->Search(std::move(target), k, mask);
      if (!result.ok()) return respond(result.status());
      return respond(Status::OK(), [&](io::Writer& w) {
        core::SaveSearchResult(w, *result);
      });
    }
    case kMethodDepthCounts: {
      core::QueryTarget target = core::LoadQueryTarget(r);
      const std::array<bool, core::kNumEvidence> mask = LoadMask(r);
      const size_t m = static_cast<size_t>(r.ReadU64());
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      obs::ScopedSpan span("engine:depth_counts");
      auto counts = engine->CollectDepthCounts(target, mask, m);
      if (!counts.ok()) return respond(counts.status());
      return respond(Status::OK(), [&](io::Writer& w) {
        SaveDepthCounts(w, *counts);
      });
    }
    case kMethodScoreAtStops: {
      core::QueryTarget target = core::LoadQueryTarget(r);
      core::CandidateStopDepths stops = LoadStopDepths(r);
      const size_t m = static_cast<size_t>(r.ReadU64());
      const std::array<bool, core::kNumEvidence> mask = LoadMask(r);
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      obs::ScopedSpan span("engine:score_at_stops");
      auto score = engine->ScoreAtStops(target, stops, m, mask);
      if (!score.ok()) return respond(score.status());
      return respond(Status::OK(), [&](io::Writer& w) {
        SaveCandidateLists(w, score->lists);
        SaveRows(w, score->rows);
      });
    }
    case kMethodReload: {
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      if (!reload_) {
        return respond(Status::InvalidArgument(
            "this server was started without a reload hook"));
      }
      MutexLock reload_lock(reload_mu_);
      auto next = reload_(this->engine().get());
      if (!next.ok()) return respond(next.status());
      {
        MutexLock lock(engine_mu_);
        engine_ = *next;
      }
      const std::shared_ptr<const serving::ShardedEngine> reloaded = *next;
      ServerInfo info;
      info.backend = reloaded->Info();
      info.serves_all = reloaded->serves_all();
      for (size_t s : reloaded->served_shards()) info.served_shards.push_back(s);
      info.served_tables = reloaded->ServedTables();
      info.options = reloaded->options();
      return respond(Status::OK(), [&](io::Writer& w) { SaveServerInfo(w, info); });
    }
    case kMethodStat: {
      {
        const Status ok = decoded();
        if (!ok.ok()) return respond(ok);
      }
      // The snapshot walks every live instrument; cheap enough that a
      // scrape never needs a cache, honest enough that it always reflects
      // the counters as of THIS request.
      const std::string text = registry_->ExportText();
      return respond(Status::OK(),
                     [&](io::Writer& w) { w.WriteString(text); });
    }
    default:
      return respond(Status::InvalidArgument("unknown RPC method " +
                                             io::SectionName(method)));
  }
}

}  // namespace d3l::rpc

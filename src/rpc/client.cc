#include "rpc/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace d3l::rpc {

namespace {

/// True when a kMethodError response carries the InvalidArgument an OLD
/// server (pre-flags protocol) answers a trace-flagged frame with — the
/// signal to drop tracing for this endpoint and retry plain.
bool IsVersionRejection(const Frame& response) {
  io::Reader r;
  if (!OpenFrame(r, response).ok()) return false;
  const Status wire = LoadWireStatus(r);
  return wire.IsInvalidArgument() &&
         wire.message().find("unsupported RPC protocol version") !=
             std::string::npos;
}

}  // namespace

RpcClient::RpcClient(std::string host, uint16_t port, RpcClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {
  obs::MetricRegistry& reg =
      options_.registry ? *options_.registry : obs::MetricRegistry::Default();
  const obs::LabelSet labels = {{"endpoint", endpoint()}};
  transport_failures_ = reg.AddCounter(
      "d3l_rpc_client_transport_failures_total", labels,
      "Failed call attempts (connect/send/recv/framing), before retries");
  backoff_sleeps_ = reg.AddCounter("d3l_rpc_client_backoff_sleeps_total",
                                   labels, "Retry backoff sleeps taken");
  unavailable_ = reg.AddCounter(
      "d3l_rpc_client_unavailable_total", labels,
      "Calls that exhausted every attempt and returned Unavailable");
  bytes_sent_ = reg.AddCounter("d3l_rpc_client_bytes_sent_total", labels,
                               "Request bytes put on the wire");
  bytes_received_ = reg.AddCounter("d3l_rpc_client_bytes_received_total",
                                   labels, "Response bytes read off the wire");
}

RpcClient::~RpcClient() {
  // No concurrent Call can exist at destruction, but CloseConnection
  // REQUIRES(mu_) — take the (uncontended) lock so the contract holds
  // everywhere instead of carving out a destructor exception.
  MutexLock lock(mu_);
  CloseConnection();
}

void RpcClient::CloseConnection() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RpcClient::EnsureConnected(Deadline deadline) {
  if (fd_ >= 0) return Status::OK();

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const int gai = getaddrinfo(host_.c_str(), std::to_string(port_).c_str(),
                              &hints, &addrs);
  if (gai != 0) {
    return Status::IOError("cannot resolve " + endpoint() + ": " +
                           gai_strerror(gai));
  }

  Status last = Status::IOError("no addresses for " + endpoint());
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(std::string("socket failed: ") + std::strerror(errno));
      continue;
    }
    // Non-blocking connect + poll: a dead host fails at OUR deadline, not
    // the kernel's (minutes-long) SYN retry budget.
    const Deadline connect_deadline =
        std::min(deadline, After(options_.connect_timeout_seconds));
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    if (errno != EINPROGRESS) {
      last = Status::IOError(std::string("connect failed: ") + std::strerror(errno));
      close(fd);
      continue;
    }
    bool connected = false;
    for (;;) {
      if (std::chrono::steady_clock::now() >= connect_deadline) {
        last = Status::IOError("connect to " + endpoint() + " timed out");
        break;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int rc = poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) {
        last = Status::IOError(std::string("poll failed: ") + std::strerror(errno));
        break;
      }
      if (rc <= 0) continue;
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        last = Status::IOError("connect to " + endpoint() + " failed: " +
                               std::strerror(err != 0 ? err : errno));
        break;
      }
      connected = true;
      break;
    }
    if (!connected) {
      close(fd);
      continue;
    }
    fd_ = fd;
    break;
  }
  freeaddrinfo(addrs);
  if (fd_ < 0) return last;
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

RpcClient::MethodInstruments& RpcClient::InstrumentsFor(uint32_t method) {
  auto it = per_method_.find(method);
  if (it != per_method_.end()) return it->second;
  obs::MetricRegistry& reg =
      options_.registry ? *options_.registry : obs::MetricRegistry::Default();
  const obs::LabelSet labels = {{"endpoint", endpoint()},
                                {"method", io::SectionName(method)}};
  MethodInstruments mi;
  mi.requests = reg.AddCounter("d3l_rpc_client_requests_total", labels,
                               "Calls issued (before retries)");
  mi.latency = reg.AddHistogram("d3l_rpc_client_call_seconds", labels,
                                "Full Call latency including retries");
  return per_method_.emplace(method, std::move(mi)).first->second;
}

Result<Frame> RpcClient::Call(uint32_t method, const std::string& frame) {
  MutexLock lock(mu_);
  MethodInstruments& mi = InstrumentsFor(method);
  mi.requests->Increment();
  // When the calling thread is tracing, this span covers the whole call
  // (retries included) and anchors the server's returned span subtree.
  obs::ScopedSpan span("rpc:" + io::SectionName(method) + " " + endpoint());
  const auto start = std::chrono::steady_clock::now();
  Result<Frame> result = CallLocked(method, frame, span.context(), span.index());
  mi.latency->Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (!result.ok()) unavailable_->Increment();
  return result;
}

Result<Frame> RpcClient::CallLocked(
    uint32_t method, const std::string& frame,
    const std::shared_ptr<obs::TraceContext>& trace, int span_index) {
  const uint64_t trace_id =
      (trace != nullptr && options_.propagate_trace) ? trace->trace_id() : 0;
  Status last = Status::OK();
  double backoff = options_.initial_backoff_seconds;
  const size_t attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;
  size_t attempt = 0;
  bool degraded_once = false;
  while (attempt < attempts) {
    const bool traced =
        trace_id != 0 && peer_supports_trace_.load(std::memory_order_relaxed);
    const Deadline deadline = After(options_.request_timeout_seconds);
    Status st = EnsureConnected(deadline);
    if (st.ok()) {
      const std::string* wire = &frame;
      std::string traced_frame;
      if (traced) {
        traced_frame = WithTraceId(frame, trace_id);
        wire = &traced_frame;
      }
      st = SendFrame(fd_, *wire, deadline);
      if (st.ok()) bytes_sent_->Increment(wire->size());
    }
    if (st.ok()) {
      Result<Frame> response =
          RecvFrame(fd_, deadline, nullptr, /*allow_spans=*/true);
      if (response.ok()) {
        bytes_received_->Increment(kFrameHeaderBytes + response->section.size() +
                                   response->spans_section.size());
        if (response->method == method) {
          if (trace != nullptr && !response->spans_section.empty()) {
            Result<std::vector<obs::Span>> roots = DecodeSpans(*response);
            if (roots.ok()) {
              for (obs::Span& root : *roots) {
                trace->Attach(span_index, std::move(root));
              }
            }
            // A torn spans section loses observability, not the call:
            // keep the perfectly good response.
          }
          return response;
        }
        if (response->method == kMethodError) {
          if (traced && !degraded_once && IsVersionRejection(*response)) {
            // An old server refused the flagged version word. Remember
            // that, drop the connection (the server treats the protocol
            // error as fatal for the stream) and retry untraced WITHOUT
            // consuming an attempt — tracing degrades to no server spans,
            // the call itself must not degrade at all.
            peer_supports_trace_.store(false, std::memory_order_relaxed);
            degraded_once = true;
            CloseConnection();
            continue;
          }
          return response;
        }
        // A response for a different method means the stream lost framing
        // sync — treat like any torn frame: reconnect and retry.
        st = Status::IOError("response method " +
                             io::SectionName(response->method) +
                             " does not match request " + io::SectionName(method));
      } else {
        st = response.status();
      }
    }
    // Anything that reached here is a transport/framing failure: the
    // connection state is unknown, so drop it and retry fresh.
    last = std::move(st);
    transport_failures_->Increment();
    CloseConnection();
    ++attempt;
    if (attempt < attempts) {
      backoff_sleeps_->Increment();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2;
    }
  }
  return Status::Unavailable("shard server " + endpoint() + " unreachable after " +
                             std::to_string(attempts) + " attempt" +
                             (attempts == 1 ? "" : "s") + ": " + last.message());
}

Result<std::unique_ptr<io::Reader>> RpcClient::CallChecked(
    uint32_t method, const std::string& frame) {
  D3L_ASSIGN_OR_RETURN(Frame response, Call(method, frame));
  return OpenResponse(method, std::move(response));
}

}  // namespace d3l::rpc

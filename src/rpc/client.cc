#include "rpc/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace d3l::rpc {

RpcClient::RpcClient(std::string host, uint16_t port, RpcClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

RpcClient::~RpcClient() { CloseConnection(); }

void RpcClient::CloseConnection() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RpcClient::EnsureConnected(Deadline deadline) {
  if (fd_ >= 0) return Status::OK();

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const int gai = getaddrinfo(host_.c_str(), std::to_string(port_).c_str(),
                              &hints, &addrs);
  if (gai != 0) {
    return Status::IOError("cannot resolve " + endpoint() + ": " +
                           gai_strerror(gai));
  }

  Status last = Status::IOError("no addresses for " + endpoint());
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(std::string("socket failed: ") + std::strerror(errno));
      continue;
    }
    // Non-blocking connect + poll: a dead host fails at OUR deadline, not
    // the kernel's (minutes-long) SYN retry budget.
    const Deadline connect_deadline =
        std::min(deadline, After(options_.connect_timeout_seconds));
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      fd_ = fd;
      break;
    }
    if (errno != EINPROGRESS) {
      last = Status::IOError(std::string("connect failed: ") + std::strerror(errno));
      close(fd);
      continue;
    }
    bool connected = false;
    for (;;) {
      if (std::chrono::steady_clock::now() >= connect_deadline) {
        last = Status::IOError("connect to " + endpoint() + " timed out");
        break;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int rc = poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) {
        last = Status::IOError(std::string("poll failed: ") + std::strerror(errno));
        break;
      }
      if (rc <= 0) continue;
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
        last = Status::IOError("connect to " + endpoint() + " failed: " +
                               std::strerror(err != 0 ? err : errno));
        break;
      }
      connected = true;
      break;
    }
    if (!connected) {
      close(fd);
      continue;
    }
    fd_ = fd;
    break;
  }
  freeaddrinfo(addrs);
  if (fd_ < 0) return last;
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Result<Frame> RpcClient::Call(uint32_t method, const std::string& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Status last = Status::OK();
  double backoff = options_.initial_backoff_seconds;
  const size_t attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2;
    }
    const Deadline deadline = After(options_.request_timeout_seconds);
    Status st = EnsureConnected(deadline);
    if (st.ok()) st = SendFrame(fd_, frame, deadline);
    if (st.ok()) {
      Result<Frame> response = RecvFrame(fd_, deadline);
      if (response.ok()) {
        if (response->method == method || response->method == kMethodError) {
          return response;
        }
        // A response for a different method means the stream lost framing
        // sync — treat like any torn frame: reconnect and retry.
        st = Status::IOError("response method " +
                             io::SectionName(response->method) +
                             " does not match request " + io::SectionName(method));
      } else {
        st = response.status();
      }
    }
    // Anything that reached here is a transport/framing failure: the
    // connection state is unknown, so drop it and retry fresh.
    last = std::move(st);
    CloseConnection();
  }
  return Status::Unavailable("shard server " + endpoint() + " unreachable after " +
                             std::to_string(attempts) + " attempt" +
                             (attempts == 1 ? "" : "s") + ": " + last.message());
}

Result<std::unique_ptr<io::Reader>> RpcClient::CallChecked(
    uint32_t method, const std::string& frame) {
  D3L_ASSIGN_OR_RETURN(Frame response, Call(method, frame));
  return OpenResponse(method, std::move(response));
}

}  // namespace d3l::rpc

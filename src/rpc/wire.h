// Wire format of the D3L remote-serving protocol: length-prefixed binary
// messages built from the SAME hardened serialization snapshots use.
//
// One message on the wire is
//
//   [magic: 8 bytes "D3LRPC1\n"] [protocol version: u32]
//   [method: u32 fourcc] [payload size: u64] [payload] [crc32: u32]
//
// i.e. a 12-byte frame header followed by exactly one io::Writer section
// whose id is the method fourcc. Requests and responses share the shape; a
// response's payload begins with the application Status (stable numeric
// code + message — see StatusCode's stability contract in common/status.h)
// and carries the method's result only when that status is OK. Reusing the
// io::Writer/io::Reader buffer mode means every guard the snapshot decoder
// grew — per-message CRC32, length-prefix validation before allocation,
// soft-fail primitive reads — applies verbatim to bytes from the network,
// which is what the protocol fuzz tests (tests/rpc_test.cc) lean on.
//
// Methods:
//   INFO  -> server identity: BackendInfo, served shards/tables, options
//   PROF  <- target table (cells) -> profiled QueryTarget
//   SRCH  <- QueryTarget, k, mask -> SearchResult (full servers only)
//   DCNT  <- QueryTarget, mask, m -> shard-summed candidate depth counts
//   SCOR  <- QueryTarget, stops, m, mask -> capped candidate lists + rows
//   RELD  -> reloads the server's deployment, returns the new identity
//   STAT  -> the server's live metrics (Prometheus text exposition)
//
// Tracing extension (backward compatible). The version word's low 16 bits
// carry the protocol version; the high bits are flags. kFlagTraceId marks
// an 8-byte trace id inserted between the frame header and the method
// section — a client propagating an obs::TraceContext sets it on requests,
// and the server records its handling under that id. kFlagSpans marks one
// extra "TRSP" section AFTER the method section holding the server's span
// tree; it appears only on responses to trace-flagged requests, so a
// client that never sends trace ids never sees a second section and an
// old client is never confused. An OLD server rejects the flagged version
// word with a clean InvalidArgument error response, which the client
// detects, remembers, and transparently retries untraced — tracing
// degrades to "no server spans" against old servers, it never breaks the
// call (see RpcClient).
//
// DCNT + SCOR are the two halves of the exact cross-server scatter-gather:
// the coordinator (serving::RemoteBackend) sums every server's depth
// counts, resolves the global stop depths once, and has each server
// retrieve + score at those depths — the same decomposition
// serving::ShardedEngine runs in-process, and byte-identical to a single
// engine for the same reasons (see sharded_engine.h).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "io/binary_io.h"
#include "obs/trace.h"
#include "serving/search_backend.h"
#include "serving/sharded_engine.h"
#include "table/table.h"

namespace d3l::rpc {

inline constexpr char kMagic[9] = "D3LRPC1\n";
inline constexpr uint32_t kProtocolVersion = 1;

/// The version word is [flags: high 16 bits][version: low 16 bits]. Flags
/// outside kKnownFlags reject the frame (a future peer must bump the
/// version instead of inventing flags old builds would ignore silently).
inline constexpr uint32_t kVersionMask = 0xFFFFu;
/// An 8-byte trace id follows the frame header.
inline constexpr uint32_t kFlagTraceId = 0x10000u;
/// A TRSP span-tree section follows the method section (responses only).
inline constexpr uint32_t kFlagSpans = 0x20000u;
inline constexpr uint32_t kKnownFlags = kFlagTraceId | kFlagSpans;

/// Frame header: 8 magic bytes + u32 protocol version.
inline constexpr size_t kFrameHeaderBytes = 12;
/// Section header inside a frame: u32 method fourcc + u64 payload size.
inline constexpr size_t kSectionHeaderBytes = 12;

/// Hard cap on a single message's payload, enforced BEFORE any allocation:
/// a corrupt or hostile length prefix must not let one frame reserve
/// arbitrary memory. Generous because PROF requests carry raw table cells.
inline constexpr uint64_t kMaxPayloadBytes = 256ull << 20;

// Method fourccs (doubling as the section id of the message payload).
inline constexpr uint32_t kMethodInfo = io::SectionId("INFO");
inline constexpr uint32_t kMethodProfile = io::SectionId("PROF");
inline constexpr uint32_t kMethodSearch = io::SectionId("SRCH");
inline constexpr uint32_t kMethodDepthCounts = io::SectionId("DCNT");
inline constexpr uint32_t kMethodScoreAtStops = io::SectionId("SCOR");
inline constexpr uint32_t kMethodReload = io::SectionId("RELD");
inline constexpr uint32_t kMethodStat = io::SectionId("STAT");
/// Response id when a request's frame was too broken to know its method.
inline constexpr uint32_t kMethodError = io::SectionId("ERR_");

/// Section id of the span-tree payload a kFlagSpans response appends.
inline constexpr uint32_t kSectionTraceSpans = io::SectionId("TRSP");
/// Span sections are tiny (span counts are capped); a larger claim is a
/// corrupt or hostile frame and is rejected before allocation.
inline constexpr uint64_t kMaxSpansBytes = 1ull << 20;

/// Absolute I/O deadline (steady clock, immune to wall-clock jumps).
using Deadline = std::chrono::steady_clock::time_point;
inline Deadline After(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// \brief One decoded frame: the method fourcc plus the full section bytes
/// (header + payload + crc), ready for io::Reader::OpenBuffer.
struct Frame {
  uint32_t method = 0;
  std::string section;
  /// Trace id from a kFlagTraceId header (0 = the peer sent none).
  uint64_t trace_id = 0;
  /// Raw TRSP section bytes from a kFlagSpans response (empty = none);
  /// decode with DecodeSpans.
  std::string spans_section;
};

/// \brief Serializes one complete message: frame header plus one section
/// whose payload `fill` writes. The returned bytes go on the wire as-is.
template <typename Fill>
std::string BuildFrame(uint32_t method, Fill&& fill) {
  std::string section;
  io::Writer w;
  w.OpenBuffer(&section);
  w.BeginSection(method);
  fill(w);
  w.EndSection().CheckOK();  // buffer-mode writes cannot fail
  std::string frame;
  frame.reserve(kFrameHeaderBytes + section.size());
  frame.append(kMagic, 8);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((kProtocolVersion >> (8 * i)) & 0xFF));
  }
  frame.append(section);
  return frame;
}

/// \brief Opens a received frame for typed reading: the reader takes the
/// section bytes and verifies the checksum. After the returned OK, read the
/// payload and then check r.status() / r.EndSection().
Status OpenFrame(io::Reader& r, Frame frame);

// -- Blocking socket I/O with absolute deadlines (poll-based, so a stalled
// -- peer fails with IOError("timed out ...") instead of hanging forever) --

/// Writes all of `data` to the connected socket `fd`.
Status SendAll(int fd, const void* data, size_t len, Deadline deadline);

/// Reads exactly `len` bytes. A clean close mid-read is IOError.
Status RecvAll(int fd, void* data, size_t len, Deadline deadline);

/// Sends one BuildFrame()-serialized message.
Status SendFrame(int fd, const std::string& frame, Deadline deadline);

/// Receives one message: validates the magic, protocol version and payload
/// cap, then reads the full section. All failures are clean Statuses —
/// garbage bytes, truncation, oversized prefixes and disconnects never
/// crash the caller. If `clean_eof` is non-null it is set when the peer
/// closed the connection before sending any byte (the normal end of a
/// client session, which callers usually want to treat as non-exceptional).
/// `allow_spans` gates the kFlagSpans extension: clients reading responses
/// pass true; servers keep the default so a request claiming to carry
/// spans (which only responses may) is rejected instantly instead of
/// waiting on payload bytes a confused or hostile peer never sends.
Result<Frame> RecvFrame(int fd, Deadline deadline, bool* clean_eof = nullptr,
                        bool allow_spans = false);

// -- Tracing header extension --

/// Returns `frame` (a BuildFrame()-serialized message) rewritten to carry
/// `trace_id`: sets kFlagTraceId in the version word and inserts the
/// 8-byte id after the frame header. With trace_id 0, returns `frame`
/// unchanged.
std::string WithTraceId(const std::string& frame, uint64_t trace_id);

/// Appends a span-tree TRSP section to a response frame and sets
/// kFlagSpans. Only meaningful on responses to trace-flagged requests.
void AppendSpans(std::string* frame, const std::vector<obs::Span>& roots);

/// Decodes the TRSP section captured in frame.spans_section (empty input
/// yields an empty forest).
Result<std::vector<obs::Span>> DecodeSpans(const Frame& frame);

/// Span forest (de)serialization within the current section: a flattened
/// pre-order list with parent indices, capped and validated on load.
void SaveSpans(io::Writer& w, const std::vector<obs::Span>& roots);
std::vector<obs::Span> LoadSpans(io::Reader& r);

// -- Application status over the wire --

/// Writes `[u32 stable code][message string]` (response payload prefix).
void SaveWireStatus(io::Writer& w, const Status& s);

/// Reads a status written by SaveWireStatus. Unknown codes from newer
/// peers degrade to kInternal (StatusCodeFromWire).
Status LoadWireStatus(io::Reader& r);

/// \brief Opens a response frame's section (which must carry `method`) and
/// consumes the leading wire status. Returns the positioned reader on an OK
/// wire status; propagates the server's error otherwise. The reader is
/// heap-allocated because io::Reader is not movable.
Result<std::unique_ptr<io::Reader>> OpenResponse(uint32_t method, Frame frame);

// -- Domain serializers (each reads/writes within the current section; on
// -- load, check the reader's status before trusting the value) --

void SaveMask(io::Writer& w, const std::array<bool, core::kNumEvidence>& mask);
std::array<bool, core::kNumEvidence> LoadMask(io::Reader& r);

/// Full table content (name + columns with cells) — the PROF request body.
void SaveTable(io::Writer& w, const Table& table);
Table LoadTable(io::Reader& r);

void SaveDepthCounts(io::Writer& w, const core::CandidateDepthCounts& counts);
core::CandidateDepthCounts LoadDepthCounts(io::Reader& r);

void SaveStopDepths(io::Writer& w, const core::CandidateStopDepths& stops);
core::CandidateStopDepths LoadStopDepths(io::Reader& r);

void SaveCandidateLists(io::Writer& w, const core::CandidateLists& lists);
core::CandidateLists LoadCandidateLists(io::Reader& r);

void SaveRows(io::Writer& w, const std::vector<core::PairDistances>& rows);
std::vector<core::PairDistances> LoadRows(io::Reader& r);

/// \brief Everything a coordinator must know about one shard server: the
/// backend identity (global totals + fingerprints), which manifest shards
/// it loaded, the tables it serves in the lake's global numbering, and the
/// engine options (so clients rank/cache without a local deployment).
struct ServerInfo {
  serving::BackendInfo backend;
  bool serves_all = false;
  std::vector<uint64_t> served_shards;
  std::vector<serving::ShardedEngine::ServedTable> served_tables;
  core::D3LOptions options;
};

void SaveServerInfo(io::Writer& w, const ServerInfo& info);
ServerInfo LoadServerInfo(io::Reader& r);

}  // namespace d3l::rpc

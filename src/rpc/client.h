// Blocking RPC client for the wire.h protocol: one TCP connection per
// server, reconnected lazily, with per-request deadlines and bounded
// transport retries.
//
// Error discipline — the part RemoteBackend's degradation contract rests
// on:
//
//   * TRANSPORT failures (connect refused/timed out, send/recv errors,
//     torn or unparseable response frames) are retried up to max_attempts
//     times with doubling backoff, reconnecting each time; exhaustion
//     yields Status::Unavailable naming the endpoint and the last error.
//     Every protocol method is a pure function of its request (RELD
//     included — reloading an already-current deployment is a no-op), so
//     a retry after a maybe-half-processed request is safe.
//   * APPLICATION errors (the wire status inside a well-formed response)
//     are returned as-is, never retried: the server answered; asking again
//     would give the same answer.
//
// Calls serialize on an internal mutex (one in-flight request per
// connection); concurrent fan-out uses one RpcClient per server, which is
// exactly how RemoteBackend holds them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/wire.h"

namespace d3l::rpc {

struct RpcClientOptions {
  double connect_timeout_seconds = 5.0;
  /// Deadline for one attempt's full round trip (send + server + receive).
  double request_timeout_seconds = 30.0;
  /// Total tries per Call on transport failure (1 = no retries).
  size_t max_attempts = 3;
  /// Sleep before the first retry; doubles per subsequent retry.
  double initial_backoff_seconds = 0.05;
  /// Registry the client's per-endpoint metrics report into (null = the
  /// process default). Every instrument carries an `endpoint` label, so a
  /// RemoteBackend's N clients stay distinguishable — the replica-health
  /// signal request routing will consume.
  obs::MetricRegistry* registry = nullptr;
  /// Send the calling thread's current trace id with each request and
  /// stitch the server's returned span tree under this call's span.
  bool propagate_trace = true;
};

/// \brief One server endpoint, one lazily-(re)connected TCP session.
class RpcClient {
 public:
  RpcClient(std::string host, uint16_t port, RpcClientOptions options = {});
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string endpoint() const { return host_ + ":" + std::to_string(port_); }

  /// One request/response round trip. `frame` is a BuildFrame()-serialized
  /// request whose method is `method`; the result is the response frame.
  /// Transport failures exhaust the retry budget and come back as
  /// Status::Unavailable; a well-formed response is returned whatever wire
  /// status it carries (decode it with OpenResponse).
  Result<Frame> Call(uint32_t method, const std::string& frame)
      D3L_EXCLUDES(mu_);

  /// Call + OpenResponse in one step: the reader is positioned after an OK
  /// wire status, ready for the method's response body.
  Result<std::unique_ptr<io::Reader>> CallChecked(uint32_t method,
                                                  const std::string& frame);

 private:
  struct MethodInstruments {
    std::shared_ptr<obs::Counter> requests;
    std::shared_ptr<obs::Histogram> latency;
  };

  Status EnsureConnected(Deadline deadline) D3L_REQUIRES(mu_);
  void CloseConnection() D3L_REQUIRES(mu_);
  /// The retry loop behind Call (mu_ held). `trace`/`span_index` anchor
  /// server-returned span trees; null/-1 when the caller is not tracing.
  Result<Frame> CallLocked(uint32_t method, const std::string& frame,
                           const std::shared_ptr<obs::TraceContext>& trace,
                           int span_index) D3L_REQUIRES(mu_);
  MethodInstruments& InstrumentsFor(uint32_t method) D3L_REQUIRES(mu_);

  const std::string host_;
  const uint16_t port_;
  const RpcClientOptions options_;

  // Per-endpoint instruments (labels: endpoint=host:port).
  std::shared_ptr<obs::Counter> transport_failures_;
  std::shared_ptr<obs::Counter> backoff_sleeps_;
  std::shared_ptr<obs::Counter> unavailable_;
  std::shared_ptr<obs::Counter> bytes_sent_;
  std::shared_ptr<obs::Counter> bytes_received_;
  std::unordered_map<uint32_t, MethodInstruments> per_method_
      D3L_GUARDED_BY(mu_);

  /// Cleared the first time this endpoint rejects a trace-flagged frame as
  /// an unsupported protocol version (an old server): later calls go out
  /// untraced immediately instead of paying a rejected round trip each.
  std::atomic<bool> peer_supports_trace_{true};

  Mutex mu_;  ///< serializes Call: one in-flight request per connection
  int fd_ D3L_GUARDED_BY(mu_) = -1;
};

}  // namespace d3l::rpc

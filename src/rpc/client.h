// Blocking RPC client for the wire.h protocol: one TCP connection per
// server, reconnected lazily, with per-request deadlines and bounded
// transport retries.
//
// Error discipline — the part RemoteBackend's degradation contract rests
// on:
//
//   * TRANSPORT failures (connect refused/timed out, send/recv errors,
//     torn or unparseable response frames) are retried up to max_attempts
//     times with doubling backoff, reconnecting each time; exhaustion
//     yields Status::Unavailable naming the endpoint and the last error.
//     Every protocol method is a pure function of its request (RELD
//     included — reloading an already-current deployment is a no-op), so
//     a retry after a maybe-half-processed request is safe.
//   * APPLICATION errors (the wire status inside a well-formed response)
//     are returned as-is, never retried: the server answered; asking again
//     would give the same answer.
//
// Calls serialize on an internal mutex (one in-flight request per
// connection); concurrent fan-out uses one RpcClient per server, which is
// exactly how RemoteBackend holds them.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "rpc/wire.h"

namespace d3l::rpc {

struct RpcClientOptions {
  double connect_timeout_seconds = 5.0;
  /// Deadline for one attempt's full round trip (send + server + receive).
  double request_timeout_seconds = 30.0;
  /// Total tries per Call on transport failure (1 = no retries).
  size_t max_attempts = 3;
  /// Sleep before the first retry; doubles per subsequent retry.
  double initial_backoff_seconds = 0.05;
};

/// \brief One server endpoint, one lazily-(re)connected TCP session.
class RpcClient {
 public:
  RpcClient(std::string host, uint16_t port, RpcClientOptions options = {});
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string endpoint() const { return host_ + ":" + std::to_string(port_); }

  /// One request/response round trip. `frame` is a BuildFrame()-serialized
  /// request whose method is `method`; the result is the response frame.
  /// Transport failures exhaust the retry budget and come back as
  /// Status::Unavailable; a well-formed response is returned whatever wire
  /// status it carries (decode it with OpenResponse).
  Result<Frame> Call(uint32_t method, const std::string& frame);

  /// Call + OpenResponse in one step: the reader is positioned after an OK
  /// wire status, ready for the method's response body.
  Result<std::unique_ptr<io::Reader>> CallChecked(uint32_t method,
                                                  const std::string& frame);

 private:
  Status EnsureConnected(Deadline deadline);
  void CloseConnection();

  const std::string host_;
  const uint16_t port_;
  const RpcClientOptions options_;

  std::mutex mu_;  ///< serializes Call: one in-flight request per connection
  int fd_ = -1;
};

}  // namespace d3l::rpc

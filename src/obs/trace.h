// Per-query distributed tracing: a TraceContext carries a 64-bit trace id
// and accumulates a span tree; ScopedSpan is the RAII timer that builds it.
//
// Spans nest through a thread-local cursor: a ScopedSpan parents itself
// under the innermost open span of the thread's current trace and becomes
// the parent for spans opened inside it. Crossing threads (ThreadPool
// fan-out) is explicit — capture CurrentTrace() before dispatch and install
// it in the worker with a TraceScope; the RemoteBackend scatter-gather
// lambdas do exactly this so per-server RPC spans land under the query's
// search span.
//
// Crossing PROCESSES rides on the RPC header (rpc/wire.h): RpcClient sends
// the current trace id with each request, the server records its handling
// into a fresh TraceContext under the SAME id and returns its span tree in
// the response, and the client Attach()es that subtree under its own RPC
// span — one stitched timeline per query, covering client queue/profile/
// cache/search time AND each server's handling, with the shared trace id
// proving they are one query.
//
// Span times are nanoseconds relative to the context's epoch (steady
// clock). A context can be built with an explicit past epoch so
// retrospective spans — e.g. DiscoveryService's queue wait, which ended
// before tracing of the execution began — slot in at their true offsets.
//
// Everything is safe for concurrent use; recording a span is one mutex-
// protected vector append (traces are per-query and spans are few, so this
// never contends the way metrics would — hot counters live in metrics.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace d3l::obs {

/// \brief One timed operation in a trace's tree.
struct Span {
  std::string name;
  uint64_t start_ns = 0;     ///< relative to the trace's epoch
  uint64_t duration_ns = 0;  ///< 0 while the span is still open
  std::vector<Span> children;
};

/// \brief A completed trace: the shared id plus the span forest.
struct Trace {
  uint64_t trace_id = 0;
  std::vector<Span> roots;
};

/// \brief Non-zero process-unique 64-bit trace id (random-seeded, mixed).
uint64_t NewTraceId();

/// \brief Collects the spans of one query (possibly across threads).
class TraceContext {
 public:
  /// Hard cap on recorded spans: a runaway loop degrades to dropped spans,
  /// never unbounded memory on the query path.
  static constexpr size_t kMaxSpans = 1024;

  explicit TraceContext(uint64_t trace_id = NewTraceId())
      : TraceContext(trace_id, std::chrono::steady_clock::now()) {}
  /// Explicit epoch: span offsets are measured from `epoch`, which may lie
  /// in the past (retrospective spans).
  TraceContext(uint64_t trace_id, std::chrono::steady_clock::time_point epoch);

  uint64_t trace_id() const { return trace_id_; }

  /// Nanoseconds since the epoch, clamped at 0 for pre-epoch instants.
  uint64_t NowNs() const;

  /// Opens a span (parent -1 = a root); returns its index, or -1 when the
  /// span cap is reached (callers pass -1 back to EndSpan harmlessly).
  int StartSpan(std::string name, int parent);
  void EndSpan(int index);

  /// Records an already-timed span (e.g. a queue wait measured before the
  /// context existed). Returns its index like StartSpan.
  int AddSpan(std::string name, int parent, uint64_t start_ns,
              uint64_t duration_ns);

  /// Stitches a foreign subtree (a server's span tree) under span `parent`
  /// (-1 = as a root). The subtree's times stay in ITS epoch — offsets
  /// within the subtree are meaningful, cross-process offsets are not
  /// (clocks differ), which FormatTrace renders accordingly.
  void Attach(int parent, Span subtree);

  /// Deep copy of the tree built so far (open spans report duration 0).
  Trace Snapshot() const;

  size_t span_count() const;

 private:
  struct SpanRecord {
    std::string name;
    int parent = -1;
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
    std::vector<Span> attached;  ///< foreign subtrees under this span
  };

  const uint64_t trace_id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<SpanRecord> records_ D3L_GUARDED_BY(mu_);
  std::vector<Span> attached_roots_ D3L_GUARDED_BY(mu_);
};

/// \brief The thread's position inside a trace: which context, and which
/// open span new child spans should parent under.
struct TraceHandle {
  std::shared_ptr<TraceContext> context;
  int parent = -1;

  explicit operator bool() const { return context != nullptr; }
};

/// \brief The calling thread's current handle (empty when not tracing).
TraceHandle CurrentTrace();

/// \brief Installs a handle as the thread's current trace for its scope —
/// the cross-thread propagation primitive (capture CurrentTrace() in the
/// dispatching thread, TraceScope it in the worker). An empty handle
/// installs "not tracing", which is how instrumented code paths are muted.
class TraceScope {
 public:
  explicit TraceScope(TraceHandle handle);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceHandle saved_;
};

/// \brief RAII span on the thread's current trace. A no-op (single branch)
/// when the thread is not tracing, so instrumentation sites stay
/// unconditional. While alive, the thread's spans parent under this one.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  /// Explicit-context form: also makes `context` the thread's current
  /// trace for the span's extent (used at trace roots).
  ScopedSpan(std::shared_ptr<TraceContext> context, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The span's index in its context (-1 when not tracing) — the Attach
  /// anchor for subtrees arriving from servers.
  int index() const { return index_; }
  /// The context this span records into (null when not tracing).
  const std::shared_ptr<TraceContext>& context() const { return context_; }

 private:
  TraceHandle saved_;
  std::shared_ptr<TraceContext> context_;
  int index_ = -1;
};

/// \brief Human-readable indented rendering of the span tree with start
/// offsets and durations — the slow-query log's payload.
std::string FormatTrace(const Trace& trace);

}  // namespace d3l::obs

// Process-wide metrics: named counters, gauges and log-bucketed latency
// histograms with label pairs, mergeable snapshots and Prometheus-text
// exposition — the telemetry substrate every serving layer reports into.
//
// Design:
//
//   * Instruments are lock-free on the hot path. Counter and Gauge are one
//     relaxed atomic each; Histogram is 256 atomic buckets (4 sub-buckets
//     per power of two, ~19% relative resolution over ~[1e-9, 1e10]) plus
//     an atomic count and CAS-accumulated sum. Recording a sample is a
//     handful of atomic adds — cheap enough to leave on in production and
//     in the bench-smoke throughput gate.
//
//   * Add*() creates a NEW instrument on every call and hands back shared
//     ownership; the registry keeps only a weak reference. Components
//     therefore own their instruments (a DiscoveryService's Stats() view
//     reads ITS counters, not a process-wide blend), instruments die with
//     their component, and Snapshot() merges live instruments that share a
//     (name, labels) identity into one exported series. Two caches in one
//     process export one `d3l_cache_hits_total` series per label set while
//     each still answers its own GetStats() exactly.
//
//   * Snapshots are plain data and merge associatively (counters/sums add,
//     histogram buckets add bucket-wise), so per-process snapshots can be
//     aggregated across a fleet by the same code path ExportText() uses
//     locally.
//
// Naming scheme (see README "Observability"): `d3l_<component>_<metric>`,
// cumulative counters end in `_total`, latency histograms in `_seconds`,
// sizes in `_bytes`; variable dimensions (endpoint, method, pool, phase)
// ride in labels, never in the metric name.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace d3l::obs {

/// \brief Label pairs attached to an instrument, e.g. {{"method","SRCH"}}.
/// Canonicalized (sorted by key) at registration.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotone event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed level (queue depth, cached bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Lock-free log-bucketed distribution of non-negative samples.
///
/// A sample v = m * 2^e (frexp, m in [0.5,1)) lands in bucket
/// (e - kMinExponent) * kSubBuckets + floor((m - 0.5) * 2 * kSubBuckets);
/// bucket upper bounds therefore grow geometrically with ratio <= 1.25, so
/// any quantile read from bucket bounds overestimates the true sample by at
/// most 25% (and usually ~12%). Samples below/above the covered range clamp
/// into the first/last bucket. NaN and negatives clamp to the first bucket
/// rather than poisoning the distribution.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;      ///< per power of two
  static constexpr int kMinExponent = -30;   ///< smallest covered octave (~1e-9)
  static constexpr int kNumOctaves = 64;     ///< covers up to ~1.7e10
  static constexpr int kNumBuckets = kNumOctaves * kSubBuckets;

  void Record(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Index of the bucket `v` records into (exposed for tests).
  static int BucketIndex(double v);
  /// Exclusive upper bound of bucket `index`.
  static double BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// \brief Instrument identity within a snapshot.
struct MetricInfo {
  std::string name;
  LabelSet labels;  ///< sorted by key
  std::string help;
};

struct CounterSnapshot {
  MetricInfo info;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  MetricInfo info;
  int64_t value = 0;
};

struct HistogramSnapshot {
  MetricInfo info;
  uint64_t count = 0;
  double sum = 0;
  /// Non-empty buckets only: (exclusive upper bound, count in bucket),
  /// ascending by bound. NOT cumulative (ExportText cumulates for the
  /// Prometheus `le` convention; merging adds bucket-wise).
  std::vector<std::pair<double, uint64_t>> buckets;

  /// Upper bound of the bucket where the cumulative count first reaches
  /// q * count (q in [0,1]); 0 with no samples. Overestimates the true
  /// quantile by at most one bucket's relative width (<= 25%).
  double Quantile(double q) const;
};

/// \brief Point-in-time view of a registry (or a merge of several).
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Folds `other` in: series with the same (name, labels) add (counters
  /// and gauges by value, histograms bucket-wise); new series append.
  /// Associative and commutative up to ordering, which ExportText
  /// canonicalizes anyway.
  void Merge(const RegistrySnapshot& other);

  /// Prometheus text exposition, deterministically ordered (by name, then
  /// label string). Histograms emit cumulative `le` buckets (non-empty ones
  /// plus "+Inf"), `_sum` and `_count`.
  std::string ExportText() const;
};

/// \brief Owner of instrument identities; instruments register weakly.
class MetricRegistry {
 public:
  /// The process-wide default registry every component reports into unless
  /// handed an explicit one (tests isolate by passing their own).
  static MetricRegistry& Default();

  /// Each Add* creates a fresh instrument (never deduplicates — see the
  /// header comment) and registers a weak reference under the canonical
  /// (name, sorted labels). The caller owns the instrument; it disappears
  /// from future snapshots when the last shared_ptr drops.
  std::shared_ptr<Counter> AddCounter(std::string name, LabelSet labels = {},
                                      std::string help = {});
  std::shared_ptr<Gauge> AddGauge(std::string name, LabelSet labels = {},
                                  std::string help = {});
  std::shared_ptr<Histogram> AddHistogram(std::string name, LabelSet labels = {},
                                          std::string help = {});

  /// Merged snapshot of every live instrument (same-identity instruments
  /// fold into one series); expired registrations are pruned as a side
  /// effect.
  RegistrySnapshot Snapshot() const;

  /// Snapshot().ExportText() in one call.
  std::string ExportText() const { return Snapshot().ExportText(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    MetricInfo info;
    Kind kind;
    std::weak_ptr<Counter> counter;
    std::weak_ptr<Gauge> gauge;
    std::weak_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  mutable std::vector<Entry> entries_ D3L_GUARDED_BY(mu_);
};

}  // namespace d3l::obs

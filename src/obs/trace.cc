#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <random>
#include <utility>

#include "common/hash.h"

namespace d3l::obs {

namespace {

thread_local TraceHandle t_current;

}  // namespace

uint64_t NewTraceId() {
  // Random per-process seed + a monotone counter, mixed: ids are unique
  // within the process by the counter and collide across processes with
  // ordinary birthday probability — good enough for correlating logs.
  static const uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = Mix64(seed ^ Mix64(counter.fetch_add(1) + 1));
  return id != 0 ? id : 1;  // 0 means "no trace" on the wire
}

TraceContext::TraceContext(uint64_t trace_id,
                           std::chrono::steady_clock::time_point epoch)
    : trace_id_(trace_id), epoch_(epoch) {}

uint64_t TraceContext::NowNs() const {
  const auto now = std::chrono::steady_clock::now();
  if (now <= epoch_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_).count());
}

int TraceContext::StartSpan(std::string name, int parent) {
  const uint64_t start = NowNs();
  MutexLock lk(mu_);
  if (records_.size() >= kMaxSpans) return -1;
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = parent;
  rec.start_ns = start;
  records_.push_back(std::move(rec));
  return static_cast<int>(records_.size()) - 1;
}

void TraceContext::EndSpan(int index) {
  const uint64_t now = NowNs();
  MutexLock lk(mu_);
  if (index < 0 || static_cast<size_t>(index) >= records_.size()) return;
  SpanRecord& rec = records_[static_cast<size_t>(index)];
  rec.duration_ns = now > rec.start_ns ? now - rec.start_ns : 0;
}

int TraceContext::AddSpan(std::string name, int parent, uint64_t start_ns,
                          uint64_t duration_ns) {
  MutexLock lk(mu_);
  if (records_.size() >= kMaxSpans) return -1;
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = parent;
  rec.start_ns = start_ns;
  rec.duration_ns = duration_ns;
  records_.push_back(std::move(rec));
  return static_cast<int>(records_.size()) - 1;
}

void TraceContext::Attach(int parent, Span subtree) {
  MutexLock lk(mu_);
  if (parent >= 0 && static_cast<size_t>(parent) < records_.size()) {
    records_[static_cast<size_t>(parent)].attached.push_back(std::move(subtree));
  } else {
    attached_roots_.push_back(std::move(subtree));
  }
}

Trace TraceContext::Snapshot() const {
  MutexLock lk(mu_);
  Trace trace;
  trace.trace_id = trace_id_;

  // Build bottom-up: a span's children always have a LARGER index (a child
  // starts after its parent), so walking indices in descending order moves
  // each completed subtree into its parent exactly once.
  const size_t n = records_.size();
  std::vector<Span> nodes(n);
  std::vector<std::vector<int>> children(n);
  for (size_t i = 0; i < n; ++i) {
    nodes[i].name = records_[i].name;
    nodes[i].start_ns = records_[i].start_ns;
    nodes[i].duration_ns = records_[i].duration_ns;
    nodes[i].children = records_[i].attached;  // foreign subtrees first
    const int p = records_[i].parent;
    if (p >= 0 && static_cast<size_t>(p) < i) {
      children[static_cast<size_t>(p)].push_back(static_cast<int>(i));
    }
  }
  for (size_t i = n; i-- > 0;) {
    for (int c : children[i]) nodes[i].children.push_back(std::move(nodes[c]));
  }
  for (size_t i = 0; i < n; ++i) {
    const int p = records_[i].parent;
    if (p < 0 || static_cast<size_t>(p) >= i) trace.roots.push_back(std::move(nodes[i]));
  }
  for (const Span& s : attached_roots_) trace.roots.push_back(s);
  return trace;
}

size_t TraceContext::span_count() const {
  MutexLock lk(mu_);
  return records_.size();
}

TraceHandle CurrentTrace() { return t_current; }

TraceScope::TraceScope(TraceHandle handle) : saved_(std::move(t_current)) {
  t_current = std::move(handle);
}

TraceScope::~TraceScope() { t_current = std::move(saved_); }

ScopedSpan::ScopedSpan(std::string name) {
  if (!t_current) return;
  context_ = t_current.context;
  index_ = context_->StartSpan(std::move(name), t_current.parent);
  saved_ = t_current;
  t_current.parent = index_;
}

ScopedSpan::ScopedSpan(std::shared_ptr<TraceContext> context, std::string name) {
  if (context == nullptr) return;
  context_ = std::move(context);
  const int parent =
      t_current.context == context_ ? t_current.parent : -1;
  index_ = context_->StartSpan(std::move(name), parent);
  saved_ = t_current;
  t_current = TraceHandle{context_, index_};
}

ScopedSpan::~ScopedSpan() {
  if (context_ == nullptr) return;
  context_->EndSpan(index_);
  t_current = std::move(saved_);
}

namespace {

void AppendSpanLines(const Span& span, int depth, std::string* out) {
  char line[160];
  std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms @ %.3f ms\n", depth * 2,
                "", 32 - depth * 2 > 0 ? 32 - depth * 2 : 1, span.name.c_str(),
                static_cast<double>(span.duration_ns) / 1e6,
                static_cast<double>(span.start_ns) / 1e6);
  *out += line;
  for (const Span& child : span.children) AppendSpanLines(child, depth + 1, out);
}

}  // namespace

std::string FormatTrace(const Trace& trace) {
  char header[64];
  std::snprintf(header, sizeof(header), "trace %016llx\n",
                static_cast<unsigned long long>(trace.trace_id));
  std::string out = header;
  for (const Span& root : trace.roots) AppendSpanLines(root, 1, &out);
  return out;
}

}  // namespace d3l::obs

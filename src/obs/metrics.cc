#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace d3l::obs {

namespace {

/// Canonical series identity: name + '\0' + rendered label string. The
/// label string is unambiguous because rendered values are escaped.
std::string LabelString(const LabelSet& labels);

std::string SeriesKey(const MetricInfo& info) {
  return info.name + '\0' + LabelString(info.labels);
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string LabelString(const LabelSet& labels) {
  if (labels.empty()) return std::string();
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

/// Renders a double compactly but with enough digits that bucket bounds
/// (exact binary fractions) round-trip, e.g. 0.0009765625.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

LabelSet Canonical(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

void Histogram::Record(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (!(v > 0)) return;  // NaN / non-positive samples count but add nothing
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0)) return 0;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1 - kMinExponent;  // exp-1: bucket by v's floor octave
  if (octave < 0) return 0;
  if (octave >= kNumOctaves) return kNumBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return octave * kSubBuckets + sub;
}

double Histogram::BucketUpperBound(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  // Bucket (octave, sub) holds v in [2^e * (0.5 + sub/8), 2^e * (0.5 +
  // (sub+1)/8)) with e = kMinExponent + octave + 1 (frexp exponent).
  return std::ldexp(0.5 + (sub + 1) * (0.5 / kSubBuckets),
                    kMinExponent + octave + 1);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (const auto& [bound, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return bound;
  }
  return buckets.empty() ? 0 : buckets.back().first;
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  std::map<std::string, size_t> counter_at, gauge_at, histogram_at;
  for (size_t i = 0; i < counters.size(); ++i) {
    counter_at[SeriesKey(counters[i].info)] = i;
  }
  for (size_t i = 0; i < gauges.size(); ++i) gauge_at[SeriesKey(gauges[i].info)] = i;
  for (size_t i = 0; i < histograms.size(); ++i) {
    histogram_at[SeriesKey(histograms[i].info)] = i;
  }

  for (const CounterSnapshot& c : other.counters) {
    const auto it = counter_at.find(SeriesKey(c.info));
    if (it == counter_at.end()) {
      counters.push_back(c);
    } else {
      counters[it->second].value += c.value;
      if (counters[it->second].info.help.empty()) {
        counters[it->second].info.help = c.info.help;
      }
    }
  }
  for (const GaugeSnapshot& g : other.gauges) {
    const auto it = gauge_at.find(SeriesKey(g.info));
    if (it == gauge_at.end()) {
      gauges.push_back(g);
    } else {
      gauges[it->second].value += g.value;
      if (gauges[it->second].info.help.empty()) {
        gauges[it->second].info.help = g.info.help;
      }
    }
  }
  for (const HistogramSnapshot& h : other.histograms) {
    const auto it = histogram_at.find(SeriesKey(h.info));
    if (it == histogram_at.end()) {
      histograms.push_back(h);
      continue;
    }
    HistogramSnapshot& mine = histograms[it->second];
    mine.count += h.count;
    mine.sum += h.sum;
    if (mine.info.help.empty()) mine.info.help = h.info.help;
    // Bucket-wise add on the (shared, global) bound grid: walk both sorted
    // bucket lists and merge.
    std::vector<std::pair<double, uint64_t>> merged;
    merged.reserve(mine.buckets.size() + h.buckets.size());
    size_t a = 0, b = 0;
    while (a < mine.buckets.size() || b < h.buckets.size()) {
      if (b >= h.buckets.size() ||
          (a < mine.buckets.size() && mine.buckets[a].first < h.buckets[b].first)) {
        merged.push_back(mine.buckets[a++]);
      } else if (a >= mine.buckets.size() ||
                 h.buckets[b].first < mine.buckets[a].first) {
        merged.push_back(h.buckets[b++]);
      } else {
        merged.emplace_back(mine.buckets[a].first,
                            mine.buckets[a].second + h.buckets[b].second);
        ++a;
        ++b;
      }
    }
    mine.buckets = std::move(merged);
  }
}

std::string RegistrySnapshot::ExportText() const {
  // One family per metric name; series within a family sorted by label
  // string so the output is deterministic (the golden test depends on it).
  struct Family {
    const char* type = "";
    std::string help;
    std::map<std::string, std::string> series;  ///< label string -> body lines
  };
  std::map<std::string, Family> families;

  for (const CounterSnapshot& c : counters) {
    Family& f = families[c.info.name];
    f.type = "counter";
    if (f.help.empty()) f.help = c.info.help;
    const std::string ls = LabelString(c.info.labels);
    f.series[ls] = c.info.name + ls + ' ' + std::to_string(c.value) + '\n';
  }
  for (const GaugeSnapshot& g : gauges) {
    Family& f = families[g.info.name];
    f.type = "gauge";
    if (f.help.empty()) f.help = g.info.help;
    const std::string ls = LabelString(g.info.labels);
    f.series[ls] = g.info.name + ls + ' ' + std::to_string(g.value) + '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    Family& f = families[h.info.name];
    f.type = "histogram";
    if (f.help.empty()) f.help = h.info.help;
    const std::string ls = LabelString(h.info.labels);
    std::string body;
    uint64_t cumulative = 0;
    for (const auto& [bound, n] : h.buckets) {
      cumulative += n;
      LabelSet with_le = h.info.labels;
      with_le.emplace_back("le", FormatDouble(bound));
      body += h.info.name + "_bucket" + LabelString(with_le) + ' ' +
              std::to_string(cumulative) + '\n';
    }
    LabelSet with_inf = h.info.labels;
    with_inf.emplace_back("le", "+Inf");
    body += h.info.name + "_bucket" + LabelString(with_inf) + ' ' +
            std::to_string(h.count) + '\n';
    body += h.info.name + "_sum" + ls + ' ' + FormatDouble(h.sum) + '\n';
    body += h.info.name + "_count" + ls + ' ' + std::to_string(h.count) + '\n';
    f.series[ls] = std::move(body);
  }

  std::string out;
  for (const auto& [name, family] : families) {
    if (!family.help.empty()) {
      out += "# HELP " + name + ' ' + family.help + '\n';
    }
    out += "# TYPE " + name + ' ' + family.type + '\n';
    for (const auto& [ls, body] : family.series) out += body;
  }
  return out;
}

MetricRegistry& MetricRegistry::Default() {
  // d3l-lint: allow(naked-new) -- intentional static leak: exit-time
  // destruction would race instrument threads still recording at shutdown.
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

std::shared_ptr<Counter> MetricRegistry::AddCounter(std::string name,
                                                    LabelSet labels,
                                                    std::string help) {
  auto counter = std::make_shared<Counter>();
  MutexLock lk(mu_);
  Entry e;
  e.info = {std::move(name), Canonical(std::move(labels)), std::move(help)};
  e.kind = Kind::kCounter;
  e.counter = counter;
  entries_.push_back(std::move(e));
  return counter;
}

std::shared_ptr<Gauge> MetricRegistry::AddGauge(std::string name, LabelSet labels,
                                                std::string help) {
  auto gauge = std::make_shared<Gauge>();
  MutexLock lk(mu_);
  Entry e;
  e.info = {std::move(name), Canonical(std::move(labels)), std::move(help)};
  e.kind = Kind::kGauge;
  e.gauge = gauge;
  entries_.push_back(std::move(e));
  return gauge;
}

std::shared_ptr<Histogram> MetricRegistry::AddHistogram(std::string name,
                                                        LabelSet labels,
                                                        std::string help) {
  auto histogram = std::make_shared<Histogram>();
  MutexLock lk(mu_);
  Entry e;
  e.info = {std::move(name), Canonical(std::move(labels)), std::move(help)};
  e.kind = Kind::kHistogram;
  e.histogram = histogram;
  entries_.push_back(std::move(e));
  return histogram;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot merged;
  MutexLock lk(mu_);
  size_t kept = 0;
  for (size_t idx = 0; idx < entries_.size(); ++idx) {
    Entry& e = entries_[idx];
    RegistrySnapshot one;
    bool live = false;
    switch (e.kind) {
      case Kind::kCounter: {
        if (auto c = e.counter.lock()) {
          live = true;
          one.counters.push_back({e.info, c->Value()});
        }
        break;
      }
      case Kind::kGauge: {
        if (auto g = e.gauge.lock()) {
          live = true;
          one.gauges.push_back({e.info, g->Value()});
        }
        break;
      }
      case Kind::kHistogram: {
        if (auto h = e.histogram.lock()) {
          live = true;
          HistogramSnapshot hs;
          hs.info = e.info;
          hs.count = h->Count();
          hs.sum = h->Sum();
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            const uint64_t n = h->BucketCount(i);
            if (n > 0) hs.buckets.emplace_back(Histogram::BucketUpperBound(i), n);
          }
          one.histograms.push_back(std::move(hs));
        }
        break;
      }
    }
    if (live) {
      merged.Merge(one);
      if (kept != idx) entries_[kept] = std::move(e);  // prune expired entries
      ++kept;
    }
  }
  entries_.resize(kept);
  return merged;
}

}  // namespace d3l::obs

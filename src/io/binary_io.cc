#include "io/binary_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

namespace d3l::io {

namespace {

/// Lazily built table for the reflected CRC-32 (polynomial 0xEDB88320).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendLittleEndian(std::string* out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

Status WriteAll(std::FILE* f, const void* data, size_t len, const char* what) {
  if (len > 0 && std::fwrite(data, 1, len, f) != len) {
    return Status::IOError(std::string("short write of ") + what);
  }
  return Status::OK();
}

constexpr bool kHostLittleEndian = std::endian::native == std::endian::little;

}  // namespace

void Crc32Accumulator::Update(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state_ = table[(state_ ^ p[i]) & 0xff] ^ (state_ >> 8);
  }
}

uint32_t Crc32(const void* data, size_t len) {
  Crc32Accumulator acc;
  acc.Update(data, len);
  return acc.Finish();
}

// ------------------------------------------------------------ MappedFile

Result<std::shared_ptr<MappedFile>> MappedFile::Map(const std::string& path) {
  // Test/ops hook: force the buffered fallback without touching the caller.
  const char* disabled = std::getenv("D3L_DISABLE_MMAP");
  if (disabled != nullptr && disabled[0] != '\0') {
    return Status::Unavailable("mmap disabled by D3L_DISABLE_MMAP");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return Status::Unavailable("cannot mmap " + path);
    }
  }
  ::close(fd);  // the mapping keeps the pages; the fd is not needed
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

// ------------------------------------------------------------ inspection

Result<FileInfo> InspectFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  // Ownership: closed on every return path below.
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  FileInfo info;
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8) {
    return Status::IOError(path + ": too short for a container header");
  }
  info.magic.assign(magic, 8);
  unsigned char vb[4];
  if (std::fread(vb, 1, 4, f) != 4) {
    return Status::IOError(path + ": truncated header");
  }
  info.version = static_cast<uint32_t>(vb[0]) | static_cast<uint32_t>(vb[1]) << 8 |
                 static_cast<uint32_t>(vb[2]) << 16 | static_cast<uint32_t>(vb[3]) << 24;
  info.file_bytes = 12;

  for (;;) {
    unsigned char header[12];
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean end of file
    if (got != sizeof(header)) {
      return Status::IOError(path + ": truncated section header");
    }
    SectionInfo section;
    section.id = static_cast<uint32_t>(header[0]) | static_cast<uint32_t>(header[1]) << 8 |
                 static_cast<uint32_t>(header[2]) << 16 |
                 static_cast<uint32_t>(header[3]) << 24;
    for (size_t i = 0; i < 8; ++i) {
      section.payload_bytes |= static_cast<uint64_t>(header[4 + i]) << (8 * i);
    }
    section.payload_offset = info.file_bytes + 12;
    // Stream the payload through the CRC in bounded chunks so inspection
    // never allocates proportionally to section size.
    Crc32Accumulator acc;
    uint64_t remaining = section.payload_bytes;
    unsigned char buf[1 << 16];
    while (remaining > 0) {
      size_t want = remaining < sizeof(buf) ? static_cast<size_t>(remaining) : sizeof(buf);
      if (std::fread(buf, 1, want, f) != want) {
        return Status::IOError(path + ": section payload cut short");
      }
      acc.Update(buf, want);
      remaining -= want;
    }
    const uint32_t crc = acc.Finish();
    unsigned char cb[4];
    if (std::fread(cb, 1, 4, f) != 4) {
      return Status::IOError(path + ": missing section checksum");
    }
    uint32_t file_crc = static_cast<uint32_t>(cb[0]) | static_cast<uint32_t>(cb[1]) << 8 |
                        static_cast<uint32_t>(cb[2]) << 16 |
                        static_cast<uint32_t>(cb[3]) << 24;
    section.crc_ok = (file_crc == crc);
    info.file_bytes += 12 + section.payload_bytes + 4;
    info.sections.push_back(section);
  }
  return info;
}

Result<std::pair<uint64_t, uint32_t>> FileIdentity(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  // File size up front: payload lengths are untrusted, so every skip below
  // is validated against the bytes actually remaining (a corrupt length
  // must yield a clean Status, never a backwards or past-end seek).
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError(path + ": cannot seek");
  }
  const long end = std::ftell(f);
  if (end < 0) return Status::IOError(path + ": cannot seek");
  const uint64_t file_size = static_cast<uint64_t>(end);
  std::rewind(f);

  Crc32Accumulator digest;
  unsigned char header[12];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::IOError(path + ": too short for a container header");
  }
  digest.Update(header, sizeof(header));
  uint64_t pos = 12;

  for (;;) {
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean end of file
    if (got != sizeof(header)) {
      return Status::IOError(path + ": truncated section header");
    }
    digest.Update(header, sizeof(header));
    pos += sizeof(header);
    uint64_t payload = 0;
    for (size_t i = 0; i < 8; ++i) {
      payload |= static_cast<uint64_t>(header[4 + i]) << (8 * i);
    }
    if (payload > file_size - pos || file_size - pos - payload < 4) {
      return Status::IOError(path + ": section payload cut short");
    }
    // Skip the payload in bounded forward steps (portable even where long
    // is 32-bit, and immune to a sign flip from a huge decoded length).
    for (uint64_t remaining = payload; remaining > 0;) {
      const long step =
          static_cast<long>(std::min<uint64_t>(remaining, 1u << 30));
      if (std::fseek(f, step, SEEK_CUR) != 0) {
        return Status::IOError(path + ": section payload cut short");
      }
      remaining -= static_cast<uint64_t>(step);
    }
    pos += payload;
    unsigned char crc[4];
    if (std::fread(crc, 1, 4, f) != 4) {
      return Status::IOError(path + ": missing section checksum");
    }
    digest.Update(crc, 4);
    pos += 4;
  }
  return std::make_pair(pos, digest.Finish());
}

std::string SectionName(uint32_t id) {
  std::string name;
  for (int shift = 0; shift < 32; shift += 8) {
    char c = static_cast<char>((id >> shift) & 0xff);
    name.push_back((c >= 0x20 && c < 0x7f) ? c : '?');
  }
  return name;
}

// ---------------------------------------------------------------- Writer

Writer::~Writer() {
  if (file_ != nullptr) {
    // Abandoned write (error path, or the caller never reached Finish):
    // drop the temp file so the target keeps its previous contents and no
    // half-written ".tmp" litters the directory.
    std::fclose(file_);
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

Status Writer::Open(const std::string& path, const char (&magic)[9], uint32_t version) {
  if (file_ != nullptr || buffer_ != nullptr) {
    return Status::InvalidArgument("Writer already open");
  }
  final_path_ = path;
  tmp_path_ = path + ".tmp";
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create " + tmp_path_);
  }
  D3L_RETURN_NOT_OK(WriteAll(file_, magic, 8, "magic"));
  std::string header;
  AppendLittleEndian(&header, version, 4);
  flushed_offset_ = 12;
  return WriteAll(file_, header.data(), header.size(), "version");
}

void Writer::OpenBuffer(std::string* out) {
  // Precondition, not a recoverable state: a double open is a programming
  // error, latched so it surfaces at Finish() like other Writer misuse.
  if ((file_ != nullptr || buffer_ != nullptr) && status_.ok()) {
    status_ = Status::Internal("Writer already open");
    return;
  }
  buffer_ = out;
  // Buffer framing carries no magic/version header, but AlignTo still
  // behaves as if one existed so buffer-written sections are byte-identical
  // to their file-written counterparts.
  flushed_offset_ = 12 + out->size();
}

void Writer::BeginSection(uint32_t id) {
  // A Begin without End is a programming error; latch it rather than abort
  // so the caller sees it at Finish().
  if (in_section_ && status_.ok()) {
    status_ = Status::Internal("BeginSection inside an open section");
  }
  in_section_ = true;
  section_id_ = id;
  section_.clear();
}

Status Writer::EndSection() {
  if (!status_.ok()) return status_;
  if (!in_section_) return Status::Internal("EndSection without BeginSection");
  if (file_ == nullptr && buffer_ == nullptr) return Status::Internal("Writer not open");
  std::string header;
  AppendLittleEndian(&header, section_id_, 4);
  AppendLittleEndian(&header, section_.size(), 8);
  std::string crc;
  AppendLittleEndian(&crc, Crc32(section_.data(), section_.size()), 4);
  if (buffer_ != nullptr) {
    buffer_->append(header);
    buffer_->append(section_);
    buffer_->append(crc);
  } else {
    D3L_RETURN_NOT_OK(WriteAll(file_, header.data(), header.size(), "section header"));
    D3L_RETURN_NOT_OK(
        WriteAll(file_, section_.data(), section_.size(), "section payload"));
    D3L_RETURN_NOT_OK(WriteAll(file_, crc.data(), crc.size(), "section checksum"));
  }
  flushed_offset_ += 12 + section_.size() + 4;
  in_section_ = false;
  section_.clear();
  return Status::OK();
}

Status Writer::Finish() {
  if (in_section_) D3L_RETURN_NOT_OK(EndSection());
  D3L_RETURN_NOT_OK(status_);
  if (buffer_ != nullptr) {
    buffer_ = nullptr;
    return Status::OK();
  }
  if (file_ == nullptr) return Status::Internal("Writer not open");
  // The temp file's data must be durable BEFORE the rename is: journaling
  // filesystems may commit the rename ahead of the data blocks, and a
  // power cut in that window would publish a truncated file over the
  // previously good one — exactly what this protocol exists to prevent.
  const bool synced = std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (!synced || rc != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
    return Status::IOError("cannot sync/close " + tmp_path_);
  }
  // Atomic publish: the complete temp file replaces the target in one
  // rename, so a concurrent or post-crash reader sees either the old file
  // or the new one — never a truncated in-between.
  std::error_code ec;
  std::filesystem::rename(tmp_path_, final_path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_path_, ec);
    return Status::IOError("cannot rename " + tmp_path_ + " to " + final_path_);
  }
  // Make the rename itself durable: the directory entry lives in the
  // parent directory's data.
  const std::string dir = std::filesystem::path(final_path_).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: some filesystems refuse directory fsync
    ::close(dir_fd);
  }
  return Status::OK();
}

void Writer::WriteU8(uint8_t v) { section_.push_back(static_cast<char>(v)); }
void Writer::WriteU32(uint32_t v) { AppendLittleEndian(&section_, v, 4); }
void Writer::WriteU64(uint64_t v) { AppendLittleEndian(&section_, v, 8); }
void Writer::WriteDouble(double v) { WriteU64(std::bit_cast<uint64_t>(v)); }

void Writer::WriteString(const std::string& s) {
  WriteU64(s.size());
  section_.append(s);
}

void Writer::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  for (uint64_t x : v) WriteU64(x);
}

void Writer::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void Writer::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  for (float x : v) WriteU32(std::bit_cast<uint32_t>(x));
}

void Writer::AlignTo(size_t alignment) {
  if (alignment == 0) return;
  // The next payload byte's file offset: everything flushed, plus this
  // section's 12-byte header, plus the payload built so far.
  const uint64_t offset = flushed_offset_ + 12 + section_.size();
  const uint64_t pad = (alignment - offset % alignment) % alignment;
  section_.append(static_cast<size_t>(pad), '\0');
}

void Writer::WriteRawU64Array(const uint64_t* values, size_t n) {
  if (n == 0) return;
  if constexpr (kHostLittleEndian) {
    section_.append(reinterpret_cast<const char*>(values), n * sizeof(uint64_t));
  } else {
    for (size_t i = 0; i < n; ++i) AppendLittleEndian(&section_, values[i], 8);
  }
}

void Writer::WriteRawU32Array(const uint32_t* values, size_t n) {
  if (n == 0) return;
  if constexpr (kHostLittleEndian) {
    section_.append(reinterpret_cast<const char*>(values), n * sizeof(uint32_t));
  } else {
    for (size_t i = 0; i < n; ++i) AppendLittleEndian(&section_, values[i], 4);
  }
}

// ---------------------------------------------------------------- Reader

Reader::~Reader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Reader::Open(const std::string& path, const char (&magic)[9], uint32_t version) {
  uint32_t found = 0;
  return Open(path, magic, version, version, &found);
}

Status Reader::OpenBuffer(std::string data) {
  if (file_ != nullptr || buffer_mode_ || mapping_ != nullptr) {
    return Status::InvalidArgument("Reader already open");
  }
  buffer_mode_ = true;
  input_ = std::move(data);
  frame_data_ = input_.data();
  frame_size_ = input_.size();
  frame_cursor_ = 0;
  // Mirror Writer::OpenBuffer: alignment pretends a 12-byte header exists.
  stream_offset_ = 12;
  return Status::OK();
}

Status Reader::Open(const std::string& path, const char (&magic)[9], uint32_t min_version,
                    uint32_t max_version, uint32_t* version_out, ReadMode mode) {
  if (file_ != nullptr || buffer_mode_ || mapping_ != nullptr) {
    return Status::InvalidArgument("Reader already open");
  }
  if (mode == ReadMode::kMapped) {
    auto mapped = MappedFile::Map(path);
    if (mapped.ok()) {
      mapping_ = std::move(mapped).ValueOrDie();
      frame_data_ = mapping_->data();
      frame_size_ = mapping_->size();
      frame_cursor_ = 0;
    } else if (!mapped.status().IsUnavailable()) {
      return mapped.status();  // hard error (e.g. file missing)
    }
    // Unavailable: mapping disabled or impossible here — fall back to the
    // buffered file path below, which serves identical bytes.
  }
  if (mapping_ == nullptr) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::NotFound("cannot open " + path);
    }
  }
  char got[8];
  if (!ReadFrame(got, 8) || std::memcmp(got, magic, 8) != 0) {
    return Status::InvalidArgument(path + " is not a " + std::string(magic, 7) +
                                   " file (bad magic)");
  }
  unsigned char vb[4];
  if (!ReadFrame(vb, 4)) {
    return Status::IOError(path + ": truncated header");
  }
  uint32_t got_version = static_cast<uint32_t>(vb[0]) | static_cast<uint32_t>(vb[1]) << 8 |
                         static_cast<uint32_t>(vb[2]) << 16 |
                         static_cast<uint32_t>(vb[3]) << 24;
  if (got_version < min_version || got_version > max_version) {
    std::string want = "v";
    want += std::to_string(min_version);
    if (min_version != max_version) {
      want += "..v";
      want += std::to_string(max_version);
    }
    return Status::InvalidArgument("format version mismatch: file has v" +
                                   std::to_string(got_version) + ", reader expects " +
                                   want);
  }
  if (version_out != nullptr) *version_out = got_version;
  stream_offset_ = 12;
  return Status::OK();
}

bool Reader::ReadFrame(void* out, size_t n) {
  if (frame_data_ != nullptr) {
    if (frame_cursor_ + n > frame_size_) return false;
    std::memcpy(out, frame_data_ + frame_cursor_, n);
    frame_cursor_ += n;
    return true;
  }
  return std::fread(out, 1, n, file_) == n;
}

Status Reader::OpenSection(uint32_t id) {
  D3L_RETURN_NOT_OK(status_);
  if (file_ == nullptr && frame_data_ == nullptr) {
    return Status::Internal("Reader not open");
  }
  unsigned char header[12];
  if (!ReadFrame(header, sizeof(header))) {
    return Status::IOError("truncated file: missing section header");
  }
  uint32_t got_id = static_cast<uint32_t>(header[0]) |
                    static_cast<uint32_t>(header[1]) << 8 |
                    static_cast<uint32_t>(header[2]) << 16 |
                    static_cast<uint32_t>(header[3]) << 24;
  uint64_t size = 0;
  for (size_t i = 0; i < 8; ++i) {
    size |= static_cast<uint64_t>(header[4 + i]) << (8 * i);
  }
  if (got_id != id) {
    char want[5] = {static_cast<char>(id), static_cast<char>(id >> 8),
                    static_cast<char>(id >> 16), static_cast<char>(id >> 24), 0};
    char got[5] = {static_cast<char>(got_id), static_cast<char>(got_id >> 8),
                   static_cast<char>(got_id >> 16), static_cast<char>(got_id >> 24), 0};
    return Status::InvalidArgument(std::string("expected section '") + want +
                                   "', found '" + got + "'");
  }
  payload_offset_ = stream_offset_ + 12;
  if (frame_data_ != nullptr) {
    // In-memory framing (buffer or mapping): the remaining input bounds the
    // payload, so a corrupt length is rejected BEFORE anything allocates
    // for it (network frames are untrusted input; see src/rpc) — and the
    // payload is served in place, no copy.
    if (size > frame_size_ - frame_cursor_) {
      return Status::IOError("truncated file: section payload cut short");
    }
    sec_data_ = frame_data_ + frame_cursor_;
    sec_size_ = static_cast<size_t>(size);
    frame_cursor_ += sec_size_;
  } else {
    section_.resize(size);
    if (size > 0 && !ReadFrame(section_.data(), size)) {
      return Status::IOError("truncated file: section payload cut short");
    }
    sec_data_ = section_.data();
    sec_size_ = section_.size();
  }
  cursor_ = 0;
  unsigned char cb[4];
  if (!ReadFrame(cb, 4)) {
    return Status::IOError("truncated file: missing section checksum");
  }
  stream_offset_ += 12 + size + 4;
  uint32_t got_crc = static_cast<uint32_t>(cb[0]) | static_cast<uint32_t>(cb[1]) << 8 |
                     static_cast<uint32_t>(cb[2]) << 16 |
                     static_cast<uint32_t>(cb[3]) << 24;
  uint32_t want_crc = Crc32(sec_data_, sec_size_);
  if (got_crc != want_crc) {
    return Status::IOError("corrupt file: section checksum mismatch");
  }
  return Status::OK();
}

Status Reader::EndSection() {
  D3L_RETURN_NOT_OK(status_);
  if (cursor_ != sec_size_) {
    return Status::Internal("section has " + std::to_string(sec_size_ - cursor_) +
                            " unread bytes");
  }
  return Status::OK();
}

void Reader::Fail(Status s) {
  if (status_.ok()) status_ = std::move(s);
}

bool Reader::TakeBytes(void* out, size_t n) {
  if (!status_.ok()) return false;
  if (cursor_ + n > sec_size_) {
    Fail(Status::OutOfRange("read past end of section payload"));
    return false;
  }
  std::memcpy(out, sec_data_ + cursor_, n);
  cursor_ += n;
  return true;
}

const char* Reader::TakeView(size_t n) {
  if (!status_.ok()) return nullptr;
  if (cursor_ + n > sec_size_) {
    Fail(Status::OutOfRange("read past end of section payload"));
    return nullptr;
  }
  const char* p = sec_data_ + cursor_;
  cursor_ += n;
  return p;
}

uint8_t Reader::ReadU8() {
  unsigned char b = 0;
  TakeBytes(&b, 1);
  return b;
}

uint32_t Reader::ReadU32() {
  unsigned char b[4] = {0, 0, 0, 0};
  if (!TakeBytes(b, 4)) return 0;
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

uint64_t Reader::ReadU64() {
  unsigned char b[8] = {0};
  if (!TakeBytes(b, 8)) return 0;
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

double Reader::ReadDouble() { return std::bit_cast<double>(ReadU64()); }

size_t Reader::ReadLength(size_t elem_size) {
  uint64_t n = ReadU64();
  if (!status_.ok()) return 0;
  size_t remaining = sec_size_ - cursor_;
  if (elem_size == 0) elem_size = 1;
  if (n > remaining / elem_size) {
    Fail(Status::OutOfRange("corrupt length prefix exceeds section payload"));
    return 0;
  }
  return static_cast<size_t>(n);
}

void Reader::AlignTo(size_t alignment) {
  if (alignment == 0 || !status_.ok()) return;
  const uint64_t offset = payload_offset_ + cursor_;
  const uint64_t pad = (alignment - offset % alignment) % alignment;
  if (pad == 0) return;
  if (TakeView(static_cast<size_t>(pad)) != nullptr) {
    pad_bytes_ += pad;
  }
}

const uint64_t* Reader::ReadU64Span(size_t n, std::vector<uint64_t>* owned) {
  owned->clear();
  const size_t bytes = n * sizeof(uint64_t);
  const char* view = TakeView(bytes);
  if (view == nullptr) return nullptr;
  if (kHostLittleEndian && mapped() &&
      reinterpret_cast<uintptr_t>(view) % alignof(uint64_t) == 0) {
    return reinterpret_cast<const uint64_t*>(view);
  }
  owned->resize(n);
  if constexpr (kHostLittleEndian) {
    std::memcpy(owned->data(), view, bytes);
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      for (size_t b = 0; b < 8; ++b) {
        v |= static_cast<uint64_t>(static_cast<unsigned char>(view[8 * i + b])) << (8 * b);
      }
      (*owned)[i] = v;
    }
  }
  return owned->data();
}

const uint32_t* Reader::ReadU32Span(size_t n, std::vector<uint32_t>* owned) {
  owned->clear();
  const size_t bytes = n * sizeof(uint32_t);
  const char* view = TakeView(bytes);
  if (view == nullptr) return nullptr;
  if (kHostLittleEndian && mapped() &&
      reinterpret_cast<uintptr_t>(view) % alignof(uint32_t) == 0) {
    return reinterpret_cast<const uint32_t*>(view);
  }
  owned->resize(n);
  if constexpr (kHostLittleEndian) {
    std::memcpy(owned->data(), view, bytes);
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint32_t v = 0;
      for (size_t b = 0; b < 4; ++b) {
        v |= static_cast<uint32_t>(static_cast<unsigned char>(view[4 * i + b])) << (8 * b);
      }
      (*owned)[i] = v;
    }
  }
  return owned->data();
}

std::string Reader::ReadString() {
  size_t n = ReadLength(1);
  std::string s;
  if (n == 0 || !status_.ok()) return s;
  s.resize(n);
  TakeBytes(s.data(), n);
  return s;
}

std::vector<uint64_t> Reader::ReadU64Vector() {
  size_t n = ReadLength(8);
  std::vector<uint64_t> v;
  v.reserve(n);
  for (size_t i = 0; i < n && status_.ok(); ++i) v.push_back(ReadU64());
  return v;
}

std::vector<double> Reader::ReadDoubleVector() {
  size_t n = ReadLength(8);
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n && status_.ok(); ++i) v.push_back(ReadDouble());
  return v;
}

std::vector<float> Reader::ReadFloatVector() {
  size_t n = ReadLength(4);
  std::vector<float> v;
  v.reserve(n);
  for (size_t i = 0; i < n && status_.ok(); ++i) {
    v.push_back(std::bit_cast<float>(ReadU32()));
  }
  return v;
}

}  // namespace d3l::io

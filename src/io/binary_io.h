// Versioned binary snapshot I/O: little-endian Writer/Reader with
// per-section CRC32 checksums.
//
// A snapshot file is
//
//   [magic: 8 bytes] [format version: u32]
//   repeated sections, each
//     [section id: u32 fourcc] [payload size: u64] [payload] [crc32: u32]
//
// The Writer buffers one section at a time in memory and flushes it with
// its checksum on EndSection(); the Reader loads a whole section, verifies
// its checksum, then serves typed reads from the buffer. Primitive reads
// use soft-fail semantics (a failed read returns a zero value and latches
// an error into status()); callers check status() once per loaded object
// instead of after every field, mirroring Chromium's Pickle. All multi-byte
// values are little-endian regardless of host byte order, so snapshots are
// portable across machines.
//
// Zero-copy loads: Writer::AlignTo lets a format place fixed-width arrays
// at 8-byte-aligned FILE offsets (zero padding inside the section payload,
// mirrored by Reader::AlignTo). A Reader opened in ReadMode::kMapped mmaps
// the whole file; because mappings are page-aligned, file-offset alignment
// equals in-memory alignment, and ReadU64Span/ReadU32Span then return
// pointers straight into the mapping instead of copying — the loaded
// structure borrows the mapping (keep it alive via mapping()). When the map
// cannot be established (or D3L_DISABLE_MMAP is set), kMapped silently
// falls back to the buffered path and the span reads copy.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace d3l::io {

/// \brief CRC-32 (IEEE 802.3 polynomial, as in zlib) of a byte range.
uint32_t Crc32(const void* data, size_t len);

/// \brief Incremental CRC-32 over a stream of chunks; Finish() of all
/// chunks equals Crc32() of their concatenation. Lets callers checksum
/// arbitrarily large files through a bounded buffer.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t len);
  uint32_t Finish() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// \brief A read-only memory mapping of a whole file (RAII: unmapped on
/// destruction). Loaded structures that borrow spans of the mapping hold
/// the shared_ptr so the pages outlive every borrower. Map() fails with
/// Unavailable when the environment variable D3L_DISABLE_MMAP is set to a
/// non-empty value — the hook the mmap-fallback tests use.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Map(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

 private:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}
  void* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Raw shape of one section as found on disk.
struct SectionInfo {
  uint32_t id = 0;            ///< fourcc
  uint64_t payload_bytes = 0;
  uint64_t payload_offset = 0;  ///< file offset of the first payload byte
  bool crc_ok = false;
};

/// \brief Container-level view of any Writer-produced file: magic, format
/// version and the section table (no typed decoding).
struct FileInfo {
  std::string magic;    ///< the 8 magic bytes as written
  uint32_t version = 0;
  uint64_t file_bytes = 0;
  std::vector<SectionInfo> sections;
};

/// \brief Walks a snapshot/manifest container without decoding payloads:
/// reads the header, then each section's id, size, offset and checksum.
/// Works for ANY magic (the caller dispatches on FileInfo::magic), so
/// `d3l_snapshot info` can describe engine snapshots and shard manifests
/// alike. Fails on files too short for a header or with truncated sections.
Result<FileInfo> InspectFile(const std::string& path);

/// \brief Cheap content identity of a container file: (file size, CRC32
/// over the header and every section's id/size/STORED checksum), gathered
/// by seeking over the payloads — O(sections) reads regardless of file
/// size. The stored checksums are folded, not re-verified: callers that
/// load the file get full verification from the Reader anyway, so this is
/// an identity (cache invalidation, fingerprints), not an integrity check.
Result<std::pair<uint64_t, uint32_t>> FileIdentity(const std::string& path);

/// \brief Renders a fourcc section id as printable text (e.g. "OPTS").
std::string SectionName(uint32_t id);

/// \brief Builds a section id from four characters, e.g. SectionId("OPTS").
constexpr uint32_t SectionId(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// \brief How a Reader backs its section payloads.
enum class ReadMode {
  kBuffered,  ///< read sections into an owned buffer (always works)
  kMapped,    ///< mmap the file; falls back to kBuffered when mapping fails
};

/// \brief Streams sections of little-endian primitives to a file.
///
/// Writes are crash-safe: Open() streams into `path + ".tmp"` and Finish()
/// renames it over `path` (atomic on POSIX), so a crash or error mid-write
/// leaves any previous file at `path` untouched and readers never observe a
/// half-written snapshot or manifest. An abandoned Writer (destroyed
/// without a successful Finish) removes its temp file.
class Writer {
 public:
  Writer() = default;
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Starts an atomic write of `path`: creates/truncates `path + ".tmp"`
  /// and writes the magic + format version header. The target file is only
  /// replaced by Finish().
  Status Open(const std::string& path, const char (&magic)[9], uint32_t version);

  /// Opens the writer over an in-memory buffer instead of a file: sections
  /// are framed exactly as on disk (id, size, payload, crc32) and appended
  /// to `*out`, with no magic/version header. This is the canonical-bytes
  /// sink behind fingerprinting (core::OptionsFingerprint and the serving
  /// result-cache keys): anything with a Save(Writer&) method can be
  /// reduced to a deterministic byte string without touching disk. `out`
  /// must outlive the writer. For AlignTo, the buffer is treated as if it
  /// began right after a 12-byte container header, matching file mode.
  void OpenBuffer(std::string* out);

  /// Starts buffering a new section. A section must be ended before the
  /// next begins.
  void BeginSection(uint32_t id);

  /// Flushes the buffered section: header, payload, checksum.
  Status EndSection();

  /// Ends any open section, closes the temp file and renames it over the
  /// target path. Must be called to obtain the final write status (close
  /// and rename errors surface here); without it the target is untouched.
  Status Finish();

  // -- primitives (append to the current section buffer) --
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteU64Vector(const std::vector<uint64_t>& v);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteFloatVector(const std::vector<float>& v);

  /// Pads the current section with zero bytes until the next payload byte's
  /// FILE offset is a multiple of `alignment` (a power of two). Because
  /// mmap bases are page-aligned, a file-offset-aligned array is also
  /// memory-aligned inside a mapping — the precondition for serving it as
  /// an in-place uint64_t/uint32_t span. Reader::AlignTo skips the same pad.
  void AlignTo(size_t alignment);

  /// Appends `n` values verbatim as little-endian u64s, with no length
  /// prefix (the caller's format carries the count). Combined with
  /// AlignTo(8) this produces a mappable in-place array.
  void WriteRawU64Array(const uint64_t* values, size_t n);

  /// Appends `n` values verbatim as little-endian u32s (no length prefix).
  void WriteRawU32Array(const uint32_t* values, size_t n);

  /// Writes any forward range of std::string (vector, set) as count + items.
  template <typename Range>
  void WriteStringRange(const Range& r) {
    WriteU64(static_cast<uint64_t>(r.size()));
    for (const std::string& s : r) WriteString(s);
  }

 private:
  std::FILE* file_ = nullptr;
  std::string* buffer_ = nullptr;  ///< in-memory sink (OpenBuffer mode)
  std::string final_path_;         ///< rename destination (file mode)
  std::string tmp_path_;           ///< the file actually being written
  std::string section_;  ///< payload of the section being built
  uint32_t section_id_ = 0;
  uint64_t flushed_offset_ = 0;  ///< file offset just past everything flushed
  bool in_section_ = false;
  Status status_;
};

/// \brief Reads sections written by Writer, verifying checksums.
class Reader {
 public:
  Reader() = default;
  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Opens `path` and validates the magic and format version. A magic
  /// mismatch yields InvalidArgument ("not a … file"); a version mismatch
  /// names both versions so callers can report upgrade paths.
  Status Open(const std::string& path, const char (&magic)[9], uint32_t version);

  /// Version-range form for formats with backward-compatible readers: the
  /// file's version must lie in [min_version, max_version]; the version
  /// actually found is stored into `*version_out` (may be null) so the
  /// caller can branch its field decoding on it. `mode` selects the
  /// payload backing;
  /// ReadMode::kMapped falls back to buffered reads when the file cannot
  /// be mapped (check mapped() to see which one you got).
  Status Open(const std::string& path, const char (&magic)[9], uint32_t min_version,
              uint32_t max_version, uint32_t* version_out,
              ReadMode mode = ReadMode::kBuffered);

  /// Opens the reader over in-memory bytes produced by Writer::OpenBuffer
  /// (framed sections, no magic/version header — the mirror of the writer's
  /// buffer mode). OpenSection and the typed reads then work exactly as in
  /// file mode, including checksum verification and the length-prefix
  /// guards, which is what lets the RPC layer parse network frames with
  /// the same hardened decoding path snapshots use.
  Status OpenBuffer(std::string data);

  /// Loads the next section, which must have id `id`, and verifies its
  /// checksum. Truncated payloads yield IOError; checksum mismatches
  /// IOError ("corrupt"); an unexpected id InvalidArgument.
  Status OpenSection(uint32_t id);

  /// Verifies the just-read section was fully consumed (a guard against
  /// format drift between Save and Load code paths).
  Status EndSection();

  /// True when section payloads live in an established memory mapping
  /// (ReadMode::kMapped that did not fall back): span reads can borrow.
  bool mapped() const { return mapping_ != nullptr; }

  /// The mapping backing this reader (null unless mapped()). Structures
  /// that borrow spans hold this to keep the pages alive.
  const std::shared_ptr<MappedFile>& mapping() const { return mapping_; }

  /// Total zero-pad bytes skipped by AlignTo so far (diagnostics).
  uint64_t pad_bytes() const { return pad_bytes_; }

  /// First error latched by any failed read (OutOfRange on exhausted
  /// section payloads), or OK.
  const Status& status() const { return status_; }

  /// Latches an IOError into status(); Load() implementations use this
  /// when decoded values violate structural invariants (e.g. an impossible
  /// key shape) even though the bytes themselves were readable.
  void MarkCorrupt(std::string what) {
    Fail(Status::IOError("corrupt file: " + std::move(what)));
  }

  // -- primitives (soft-fail: return 0/empty and latch status on error) --
  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  bool ReadBool() { return ReadU8() != 0; }
  double ReadDouble();
  std::string ReadString();
  std::vector<uint64_t> ReadU64Vector();
  std::vector<double> ReadDoubleVector();
  std::vector<float> ReadFloatVector();

  /// Reads a count written by WriteU64 that prefixes `elem_size`-byte
  /// elements, validating it against the bytes remaining in the section so
  /// corrupt counts cannot trigger huge allocations.
  size_t ReadLength(size_t elem_size);

  /// Skips the zero padding Writer::AlignTo produced for the same
  /// alignment. Must mirror the writer call for call: the two sides agree
  /// on the pad length because they agree on the absolute payload offset.
  void AlignTo(size_t alignment);

  /// Reads `n` u64 values written by WriteRawU64Array. When the payload is
  /// mapped, the host is little-endian and the in-file array is 8-byte
  /// aligned (the writer's AlignTo guarantees it), returns a pointer
  /// straight into the mapping and leaves `*owned` empty — the caller must
  /// keep mapping() alive for the lifetime of the span. Otherwise decodes
  /// into `*owned` and returns owned->data(). Returns nullptr (with
  /// status() latched) on a short section.
  const uint64_t* ReadU64Span(size_t n, std::vector<uint64_t>* owned);

  /// ReadU64Span's u32 counterpart (4-byte alignment).
  const uint32_t* ReadU32Span(size_t n, std::vector<uint32_t>* owned);

 private:
  bool TakeBytes(void* out, size_t n);
  void Fail(Status s);
  /// Reads `n` bytes of the framing stream (file, buffer or mapping) into
  /// `out`; false at end of stream or on a short read.
  bool ReadFrame(void* out, size_t n);
  /// Borrows `n` bytes of the current section payload (bounds-checked
  /// cursor advance) without copying; nullptr + latched status on overrun.
  const char* TakeView(size_t n);

  std::FILE* file_ = nullptr;
  std::string input_;       ///< framing bytes (OpenBuffer mode)
  std::shared_ptr<MappedFile> mapping_;  ///< framing bytes (mapped mode)
  const char* frame_data_ = nullptr;  ///< in-memory framing (buffer/mapped)
  size_t frame_size_ = 0;
  size_t frame_cursor_ = 0;
  bool buffer_mode_ = false;
  std::string section_;  ///< owned payload (file mode)
  const char* sec_data_ = nullptr;  ///< current section payload view
  size_t sec_size_ = 0;
  size_t cursor_ = 0;
  uint64_t payload_offset_ = 0;  ///< file offset of the current payload
  uint64_t stream_offset_ = 0;   ///< file offset just past consumed frames
  uint64_t pad_bytes_ = 0;
  Status status_;
};

}  // namespace d3l::io

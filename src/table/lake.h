// The data lake: a flat collection of tables with name lookup and
// aggregate statistics (Fig. 2 of the paper).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/binary_io.h"
#include "table/csv.h"
#include "table/table.h"

namespace d3l {

/// \brief Aggregate shape statistics of a lake (paper Fig. 2).
struct LakeStats {
  size_t num_tables = 0;
  size_t num_attributes = 0;
  size_t num_numeric_attributes = 0;
  double avg_arity = 0;
  double max_arity = 0;
  double avg_cardinality = 0;
  double max_cardinality = 0;
  double numeric_ratio = 0;  ///< numeric attributes / all attributes
  size_t total_bytes = 0;    ///< approximate in-memory footprint
};

/// \brief A repository of datasets with no inter-dataset metadata.
class DataLake {
 public:
  DataLake() = default;

  size_t size() const { return tables_.size(); }
  const Table& table(size_t i) const { return tables_[i]; }
  Table& table(size_t i) { return tables_[i]; }
  const std::vector<Table>& tables() const { return tables_; }

  /// Index of a table by name, or -1.
  int TableIndex(const std::string& name) const;

  /// Adds a table; fails on duplicate name.
  Status AddTable(Table table);

  /// Loads every *.csv file in a directory (non-recursive).
  Status LoadDirectory(const std::string& dir, const CsvOptions& options = {});

  /// Computes aggregate statistics over the current contents.
  LakeStats Stats() const;

  /// Writes every table's metadata (schema only, no cells) into the
  /// writer's current section.
  void SaveMetadata(io::Writer& w) const;

  /// Appends schema-only tables written by SaveMetadata(). The lake must
  /// be empty (metadata snapshots describe a whole lake, not a delta).
  Status LoadMetadata(io::Reader& r);

 private:
  std::vector<Table> tables_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace d3l

// Column-major in-memory tables: the unit of storage in a data lake.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/binary_io.h"
#include "table/value.h"

namespace d3l {

/// \brief One attribute (column) of a table: a name plus raw textual cells.
class Column {
 public:
  Column() = default;
  explicit Column(std::string name) : name_(std::move(name)) {}

  // The stats mutex is per-instance state, not data: copies/moves transfer
  // the cells and cached stats only, taking the source's stats lock so a
  // copy racing a concurrent const reader (whose accessor may lazily
  // compute stats) never observes half-written stats. Mutation (Append)
  // must still be externally serialized against copies, as for the std
  // containers inside.
  Column(const Column& other) { CopyFieldsFrom(other); }
  Column& operator=(const Column& other) {
    if (this != &other) CopyFieldsFrom(other);
    return *this;
  }
  Column(Column&& other) noexcept { MoveFieldsFrom(std::move(other)); }
  Column& operator=(Column&& other) noexcept {
    if (this != &other) MoveFieldsFrom(std::move(other));
    return *this;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return cells_.size(); }
  const std::string& cell(size_t row) const { return cells_[row]; }
  const std::vector<std::string>& cells() const { return cells_; }

  void Append(std::string cell) {
    {
      // Uncontended in the single-writer contract below, but dirty_ is
      // guarded state: the lock keeps the invalidation visible to any
      // reader that computed stats concurrently with the (buggy) mutation.
      MutexLock lk(stats_mu_);
      dirty_ = true;
    }
    cells_.push_back(std::move(cell));
  }
  void Reserve(size_t n) { cells_.reserve(n); }

  /// Inferred coarse type: numeric iff >= 75% of non-null cells parse as
  /// numbers (and there is at least one non-null cell). Cached; the lazy
  /// computation is synchronized, so concurrent readers (e.g. several
  /// service queries profiling the same target table) are safe. Mutation
  /// (Append) must still be externally serialized against reads.
  ColumnType type() const;

  /// Number of NULL cells (see IsNullCell).
  size_t null_count() const;

  /// Number of distinct non-null cell strings.
  size_t distinct_count() const;

  /// Parsed values of all numeric non-null cells, in row order.
  std::vector<double> NumericExtent() const;

  /// All non-null cell strings, in row order (duplicates preserved).
  std::vector<std::string> TextExtent() const;

  /// Approximate heap footprint in bytes (used by the space-overhead bench).
  size_t MemoryUsage() const;

 private:
  /// The lazy computation; the caller holds stats_mu_.
  void ComputeStatsLocked() const D3L_REQUIRES(stats_mu_);
  /// Cached-stats transfer for copies/moves: the source's snapshot is taken
  /// under ITS lock, then written under OURS — sequential, never nested, so
  /// no lock-order edge between two columns exists.
  struct StatsSnapshot {
    bool dirty;
    ColumnType type;
    size_t null_count;
    size_t distinct_count;
  };
  StatsSnapshot SnapshotStats() const D3L_EXCLUDES(stats_mu_) {
    MutexLock lk(stats_mu_);
    return {dirty_, type_, null_count_, distinct_count_};
  }
  void CopyFieldsFrom(const Column& other) {
    name_ = other.name_;
    cells_ = other.cells_;
    const StatsSnapshot snap = other.SnapshotStats();
    MutexLock lk(stats_mu_);
    dirty_ = snap.dirty;
    type_ = snap.type;
    null_count_ = snap.null_count;
    distinct_count_ = snap.distinct_count;
  }
  void MoveFieldsFrom(Column&& other) noexcept {
    name_ = std::move(other.name_);
    cells_ = std::move(other.cells_);
    const StatsSnapshot snap = other.SnapshotStats();
    MutexLock lk(stats_mu_);
    dirty_ = snap.dirty;
    type_ = snap.type;
    null_count_ = snap.null_count;
    distinct_count_ = snap.distinct_count;
  }

  std::string name_;
  std::vector<std::string> cells_;

  // Lazily computed statistics. Accessors compute them on first use and
  // read them under stats_mu_, so stats are data-race-free for any number
  // of concurrent readers.
  mutable Mutex stats_mu_;
  mutable bool dirty_ D3L_GUARDED_BY(stats_mu_) = true;
  mutable ColumnType type_ D3L_GUARDED_BY(stats_mu_) = ColumnType::kString;
  mutable size_t null_count_ D3L_GUARDED_BY(stats_mu_) = 0;
  mutable size_t distinct_count_ D3L_GUARDED_BY(stats_mu_) = 0;
};

/// \brief Identity of the file a table was loaded from, captured at load
/// time (io::FileIdentity-style size + CRC32 of the raw bytes). Incremental
/// shard rebuilds diff these against the sources a manifest recorded at
/// build time to find added/removed/content-changed tables without
/// re-profiling anything.
struct TableSource {
  std::string file;    ///< source filename without directory, e.g. "gp.csv"
  uint64_t bytes = 0;  ///< raw file size at load time
  uint32_t crc32 = 0;  ///< CRC32 of the raw file bytes

  bool valid() const { return !file.empty(); }
  bool operator==(const TableSource&) const = default;
};

/// \brief A named table: a list of columns of equal length.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Source-file identity (set by ReadCsvFile; invalid for in-memory
  /// tables, for which builders derive a content-based stand-in).
  /// Mutating the table (AddColumn/AddRow) clears it: the identity
  /// certifies the load-time bytes, and a diverged copy must diff as
  /// changed, not as its pristine source. Callers editing cells through
  /// the mutable column() accessor must clear or reset it themselves.
  const TableSource& source() const { return source_; }
  void set_source(TableSource source) { source_ = std::move(source); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Adds an empty column. Fails if rows already exist or name duplicates.
  Status AddColumn(std::string name);

  /// Appends a row; must match num_columns().
  Status AddRow(const std::vector<std::string>& cells);

  /// Builds a table in one call (used heavily by tests and examples).
  static Result<Table> FromRows(std::string name, std::vector<std::string> column_names,
                                std::vector<std::vector<std::string>> rows);

  /// Returns a new table with only the given columns (projection).
  Table Project(const std::vector<size_t>& column_indices, std::string new_name) const;

  /// Returns a new table with only the given rows (selection).
  Table SelectRows(const std::vector<size_t>& row_indices, std::string new_name) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const;

  /// Writes the table's metadata — name, row count, column names — into
  /// the writer's current section. Cell data is NOT written: snapshot
  /// serving only needs the schema to label query results.
  void SaveMetadata(io::Writer& w) const;

  /// Reads metadata written by SaveMetadata() into a schema-only table
  /// (named columns, zero rows). Check the reader's status() before use.
  static Table LoadMetadata(io::Reader& r);

 private:
  std::string name_;
  TableSource source_;
  std::vector<Column> columns_;
};

}  // namespace d3l

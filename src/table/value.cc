#include "table/value.h"

#include "common/string_util.h"

namespace d3l {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kNumeric:
      return "numeric";
  }
  return "?";
}

bool IsNullCell(std::string_view cell) {
  std::string_view t = TrimView(cell);
  if (t.empty()) return true;
  if (t == "-" || t == "--" || t == "?") return true;
  if (t.size() <= 4) {
    std::string lower = ToLower(t);
    if (lower == "na" || lower == "n/a" || lower == "null" || lower == "none" ||
        lower == "nan") {
      return true;
    }
  }
  return false;
}

std::optional<double> CellAsNumber(std::string_view cell) {
  if (IsNullCell(cell)) return std::nullopt;
  return ParseDouble(cell);
}

}  // namespace d3l

// RFC-4180-style CSV reading and writing (quoted fields, embedded commas,
// quotes and newlines). The first record is taken as the header row.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "table/table.h"

namespace d3l {

struct CsvOptions {
  char delimiter = ',';
  /// If true, rows whose arity differs from the header are skipped rather
  /// than failing the whole file (common in scraped open data).
  bool skip_malformed_rows = false;
};

/// \brief Parses CSV text into a Table. The table name must be supplied by
/// the caller (usually the file stem).
Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options = {});

/// \brief Reads a CSV file; the table is named after the file stem.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// \brief Serializes a table as CSV (header + rows), quoting when needed.
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace d3l

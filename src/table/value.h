// Cell values and coarse (domain-independent) type inference.
//
// D3L assumes no metadata beyond attribute names and coarse types (string vs
// numeric), so cells are kept in their raw textual form and numeric parsing
// happens on demand.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace d3l {

/// \brief Domain-independent column types, the only typing D3L assumes.
enum class ColumnType {
  kString = 0,
  kNumeric = 1,
};

const char* ColumnTypeToString(ColumnType t);

/// \brief True if the cell should be treated as NULL (empty or a common
/// missing-value marker such as "-", "n/a", "null").
bool IsNullCell(std::string_view cell);

/// \brief Parses a cell as a number; respects null markers.
std::optional<double> CellAsNumber(std::string_view cell);

}  // namespace d3l

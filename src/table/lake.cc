#include "table/lake.h"

#include <algorithm>
#include <filesystem>

namespace d3l {

int DataLake::TableIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

Status DataLake::AddTable(Table table) {
  if (by_name_.count(table.name()) > 0) {
    return Status::AlreadyExists("table '" + table.name() + "' already in lake");
  }
  by_name_[table.name()] = tables_.size();
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status DataLake::LoadDirectory(const std::string& dir, const CsvOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError("'" + dir + "' is not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Status::IOError("error listing '" + dir + "': " + ec.message());
  std::sort(paths.begin(), paths.end());  // deterministic load order
  for (const std::string& p : paths) {
    D3L_ASSIGN_OR_RETURN(Table t, ReadCsvFile(p, options));
    D3L_RETURN_NOT_OK(AddTable(std::move(t)));
  }
  return Status::OK();
}

LakeStats DataLake::Stats() const {
  LakeStats s;
  s.num_tables = tables_.size();
  for (const Table& t : tables_) {
    s.num_attributes += t.num_columns();
    s.avg_arity += static_cast<double>(t.num_columns());
    s.max_arity = std::max(s.max_arity, static_cast<double>(t.num_columns()));
    s.avg_cardinality += static_cast<double>(t.num_rows());
    s.max_cardinality = std::max(s.max_cardinality, static_cast<double>(t.num_rows()));
    s.total_bytes += t.MemoryUsage();
    for (const Column& c : t.columns()) {
      if (c.type() == ColumnType::kNumeric) ++s.num_numeric_attributes;
    }
  }
  if (!tables_.empty()) {
    s.avg_arity /= static_cast<double>(tables_.size());
    s.avg_cardinality /= static_cast<double>(tables_.size());
  }
  if (s.num_attributes > 0) {
    s.numeric_ratio =
        static_cast<double>(s.num_numeric_attributes) / static_cast<double>(s.num_attributes);
  }
  return s;
}

void DataLake::SaveMetadata(io::Writer& w) const {
  w.WriteU64(tables_.size());
  for (const Table& t : tables_) t.SaveMetadata(w);
}

Status DataLake::LoadMetadata(io::Reader& r) {
  if (!tables_.empty()) {
    return Status::InvalidArgument("LoadMetadata requires an empty lake");
  }
  size_t n = r.ReadLength(1);
  for (size_t i = 0; i < n && r.status().ok(); ++i) {
    D3L_RETURN_NOT_OK(AddTable(Table::LoadMetadata(r)));
  }
  return r.status();
}

}  // namespace d3l

#include "table/table.h"

#include <unordered_set>

#include "common/string_util.h"

namespace d3l {

void Column::ComputeStatsLocked() const {
  // Runs under stats_mu_ (the accessor's lock); late arrivals see
  // dirty_ == false and return with the cached stats.
  if (!dirty_) return;
  size_t nulls = 0;
  size_t numeric = 0;
  size_t non_null = 0;
  std::unordered_set<std::string_view> distinct;
  distinct.reserve(cells_.size());
  for (const std::string& c : cells_) {
    if (IsNullCell(c)) {
      ++nulls;
      continue;
    }
    ++non_null;
    distinct.insert(c);
    if (LooksNumeric(c)) ++numeric;
  }
  null_count_ = nulls;
  distinct_count_ = distinct.size();
  type_ = (non_null > 0 && numeric * 4 >= non_null * 3) ? ColumnType::kNumeric
                                                        : ColumnType::kString;
  dirty_ = false;
}

ColumnType Column::type() const {
  MutexLock lk(stats_mu_);
  ComputeStatsLocked();
  return type_;
}

size_t Column::null_count() const {
  MutexLock lk(stats_mu_);
  ComputeStatsLocked();
  return null_count_;
}

size_t Column::distinct_count() const {
  MutexLock lk(stats_mu_);
  ComputeStatsLocked();
  return distinct_count_;
}

std::vector<double> Column::NumericExtent() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const std::string& c : cells_) {
    if (auto v = CellAsNumber(c)) out.push_back(*v);
  }
  return out;
}

std::vector<std::string> Column::TextExtent() const {
  std::vector<std::string> out;
  out.reserve(cells_.size());
  for (const std::string& c : cells_) {
    if (!IsNullCell(c)) out.push_back(c);
  }
  return out;
}

size_t Column::MemoryUsage() const {
  size_t bytes = sizeof(Column) + name_.capacity();
  bytes += cells_.capacity() * sizeof(std::string);
  for (const std::string& c : cells_) {
    if (c.capacity() > sizeof(std::string)) bytes += c.capacity();
  }
  return bytes;
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::AddColumn(std::string name) {
  if (num_rows() > 0) {
    return Status::InvalidArgument("cannot add column '" + name +
                                   "' after rows were inserted");
  }
  if (ColumnIndex(name) >= 0) {
    return Status::AlreadyExists("duplicate column name '" + name + "' in table '" +
                                 name_ + "'");
  }
  columns_.emplace_back(std::move(name));
  source_ = {};  // the table no longer matches its load-time source bytes
  return Status::OK();
}

Status Table::AddRow(const std::vector<std::string>& cells) {
  if (cells.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(cells.size()) + " does not match table arity " +
        std::to_string(columns_.size()) + " in table '" + name_ + "'");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    columns_[i].Append(cells[i]);
  }
  source_ = {};  // the table no longer matches its load-time source bytes
  return Status::OK();
}

Result<Table> Table::FromRows(std::string name, std::vector<std::string> column_names,
                              std::vector<std::vector<std::string>> rows) {
  Table t(std::move(name));
  for (auto& cn : column_names) {
    D3L_RETURN_NOT_OK(t.AddColumn(std::move(cn)));
  }
  for (auto& r : rows) {
    D3L_RETURN_NOT_OK(t.AddRow(r));
  }
  return t;
}

Table Table::Project(const std::vector<size_t>& column_indices,
                     std::string new_name) const {
  Table out(std::move(new_name));
  for (size_t ci : column_indices) {
    out.columns_.push_back(columns_[ci]);
  }
  return out;
}

Table Table::SelectRows(const std::vector<size_t>& row_indices,
                        std::string new_name) const {
  Table out(std::move(new_name));
  for (const Column& col : columns_) {
    Column nc(col.name());
    nc.Reserve(row_indices.size());
    for (size_t ri : row_indices) {
      nc.Append(col.cell(ri));
    }
    out.columns_.push_back(std::move(nc));
  }
  return out;
}

size_t Table::MemoryUsage() const {
  size_t bytes = sizeof(Table) + name_.capacity();
  for (const Column& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

void Table::SaveMetadata(io::Writer& w) const {
  w.WriteString(name_);
  w.WriteU64(num_rows());
  w.WriteU64(columns_.size());
  for (const Column& c : columns_) w.WriteString(c.name());
}

Table Table::LoadMetadata(io::Reader& r) {
  Table t(r.ReadString());
  r.ReadU64();  // row count: informational, not representable without cells
  size_t n_cols = r.ReadLength(1);
  for (size_t i = 0; i < n_cols && r.status().ok(); ++i) {
    t.columns_.emplace_back(r.ReadString());
  }
  return t;
}

}  // namespace d3l

#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace d3l {

namespace {

// Incremental RFC-4180 parser over a string.
class CsvParser {
 public:
  CsvParser(std::string_view text, char delim) : text_(text), delim_(delim) {}

  bool AtEnd() const { return pos_ >= text_.size(); }

  // Parses one record (handles quoted fields spanning newlines).
  Result<std::vector<std::string>> NextRecord() {
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;
    for (;;) {
      if (pos_ >= text_.size()) {
        if (in_quotes) {
          return Status::IOError("unterminated quoted field at end of input");
        }
        fields.push_back(std::move(field));
        return fields;
      }
      char c = text_[pos_];
      if (in_quotes) {
        if (c == '"') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
            field += '"';
            pos_ += 2;
          } else {
            in_quotes = false;
            ++pos_;
          }
        } else {
          field += c;
          ++pos_;
        }
        continue;
      }
      if (c == '"' && field.empty() && !field_was_quoted) {
        in_quotes = true;
        field_was_quoted = true;
        ++pos_;
      } else if (c == delim_) {
        fields.push_back(std::move(field));
        field.clear();
        field_was_quoted = false;
        ++pos_;
      } else if (c == '\r') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') ++pos_;
        ++pos_;
        fields.push_back(std::move(field));
        return fields;
      } else if (c == '\n') {
        ++pos_;
        fields.push_back(std::move(field));
        return fields;
      } else {
        field += c;
        ++pos_;
      }
    }
  }

 private:
  std::string_view text_;
  char delim_;
  size_t pos_ = 0;
};

bool NeedsQuoting(const std::string& field, char delim) {
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& field, char delim) {
  if (!NeedsQuoting(field, delim)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

std::string FileName(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return (slash == std::string::npos) ? path : path.substr(slash + 1);
}

std::string FileStem(const std::string& path) {
  std::string base = FileName(path);
  size_t dot = base.find_last_of('.');
  return (dot == std::string::npos) ? base : base.substr(0, dot);
}

}  // namespace

Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options) {
  CsvParser parser(text, options.delimiter);
  if (parser.AtEnd()) {
    return Status::IOError("empty CSV input for table '" + table_name + "'");
  }
  D3L_ASSIGN_OR_RETURN(std::vector<std::string> header, parser.NextRecord());
  Table t(std::move(table_name));
  for (size_t i = 0; i < header.size(); ++i) {
    std::string name = Trim(header[i]);
    if (name.empty()) name = "col_" + std::to_string(i);
    // De-duplicate repeated header names rather than failing the load.
    std::string unique = name;
    int suffix = 2;
    while (t.ColumnIndex(unique) >= 0) {
      unique = name + "_" + std::to_string(suffix++);
    }
    D3L_RETURN_NOT_OK(t.AddColumn(std::move(unique)));
  }
  size_t line = 1;
  while (!parser.AtEnd()) {
    D3L_ASSIGN_OR_RETURN(std::vector<std::string> rec, parser.NextRecord());
    ++line;
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    if (rec.size() != t.num_columns()) {
      if (options.skip_malformed_rows) continue;
      return Status::IOError("record " + std::to_string(line) + " has arity " +
                             std::to_string(rec.size()) + ", expected " +
                             std::to_string(t.num_columns()));
    }
    D3L_RETURN_NOT_OK(t.AddRow(rec));
  }
  return t;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  D3L_ASSIGN_OR_RETURN(Table table, ReadCsvString(text, FileStem(path), options));
  // Capture the raw file's identity at load time: this is what lets
  // incremental shard rebuilds (serving::UpdateShards) detect a changed
  // CSV by size/checksum without re-profiling it.
  table.set_source(
      {FileName(path), static_cast<uint64_t>(text.size()), io::Crc32(text.data(), text.size())});
  return table;
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += options.delimiter;
    AppendField(&out, table.column(c).name(), options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      AppendField(&out, table.column(c).cell(r), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, options);
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace d3l

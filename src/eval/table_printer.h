// Fixed-width console tables: every bench prints its paper exhibit with
// this so outputs line up and are easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace d3l::eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int decimals = 3);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace d3l::eval

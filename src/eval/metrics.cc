#include "eval/metrics.h"

#include <map>

namespace d3l::eval {

TopKEval EvaluateTopK(const std::vector<std::string>& ranked_names,
                      const std::string& target_name,
                      const benchdata::GroundTruth& truth) {
  TopKEval e;
  std::unordered_set<std::string> returned;
  for (const std::string& name : ranked_names) {
    if (name == target_name) continue;
    returned.insert(name);
    if (truth.TablesRelated(target_name, name)) {
      ++e.tp;
    } else {
      ++e.fp;
    }
  }
  // FN: related tables not returned. RelatedCount counts all related lake
  // members; subtract the related ones we did return.
  size_t related_total = truth.RelatedCount(target_name);
  e.fn = related_total >= e.tp ? related_total - e.tp : 0;
  e.precision = (e.tp + e.fp) > 0
                    ? static_cast<double>(e.tp) / static_cast<double>(e.tp + e.fp)
                    : 0;
  e.recall = (e.tp + e.fn) > 0
                 ? static_cast<double>(e.tp) / static_cast<double>(e.tp + e.fn)
                 : 0;
  return e;
}

double CoverageOf(const RankedTable& source, size_t target_arity) {
  if (target_arity == 0) return 0;
  std::unordered_set<uint32_t> covered;
  for (const Alignment& a : source.alignments) covered.insert(a.target_column);
  return static_cast<double>(covered.size()) / static_cast<double>(target_arity);
}

double JoinCoverageOf(const RankedTable& start,
                      const std::vector<RankedTable>& join_tables,
                      size_t target_arity) {
  if (target_arity == 0) return 0;
  std::unordered_set<uint32_t> covered;
  for (const Alignment& a : start.alignments) covered.insert(a.target_column);
  for (const RankedTable& t : join_tables) {
    for (const Alignment& a : t.alignments) covered.insert(a.target_column);
  }
  return static_cast<double>(covered.size()) / static_cast<double>(target_arity);
}

double AverageCoverage(const std::vector<RankedTable>& top_k, size_t target_arity) {
  if (top_k.empty()) return 0;
  double sum = 0;
  for (const RankedTable& t : top_k) sum += CoverageOf(t, target_arity);
  return sum / static_cast<double>(top_k.size());
}

double AverageJoinCoverage(
    const std::vector<RankedTable>& top_k,
    const std::vector<std::vector<RankedTable>>& join_tables_per_start,
    size_t target_arity) {
  if (top_k.empty()) return 0;
  double sum = 0;
  for (size_t i = 0; i < top_k.size(); ++i) {
    const auto& joins = i < join_tables_per_start.size() ? join_tables_per_start[i]
                                                         : std::vector<RankedTable>{};
    sum += JoinCoverageOf(top_k[i], joins, target_arity);
  }
  return sum / static_cast<double>(top_k.size());
}

double AverageAttributePrecision(const std::vector<RankedTable>& top_k,
                                 const std::string& target_name,
                                 const benchdata::GroundTruth& truth) {
  double sum = 0;
  size_t counted = 0;
  for (const RankedTable& t : top_k) {
    if (t.alignments.empty()) continue;
    size_t tp = 0;
    for (const Alignment& a : t.alignments) {
      if (truth.AttributesRelated(target_name, a.target_column, t.name,
                                  a.source_column)) {
        ++tp;
      }
    }
    sum += static_cast<double>(tp) / static_cast<double>(t.alignments.size());
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0;
}

double AverageJoinAttributePrecision(
    const std::vector<RankedTable>& top_k,
    const std::vector<std::vector<RankedTable>>& join_tables_per_start,
    const std::string& target_name, const benchdata::GroundTruth& truth) {
  double sum = 0;
  size_t counted = 0;
  for (size_t i = 0; i < top_k.size(); ++i) {
    // Group all alignments (start + join-path datasets) by target column.
    // A group is a TP if any member alignment is correct (Section V-E).
    std::map<uint32_t, bool> group_correct;
    auto absorb = [&](const RankedTable& t) {
      for (const Alignment& a : t.alignments) {
        bool ok = truth.AttributesRelated(target_name, a.target_column, t.name,
                                          a.source_column);
        auto [it, inserted] = group_correct.emplace(a.target_column, ok);
        if (!inserted) it->second = it->second || ok;
      }
    };
    absorb(top_k[i]);
    if (i < join_tables_per_start.size()) {
      for (const RankedTable& t : join_tables_per_start[i]) absorb(t);
    }
    if (group_correct.empty()) continue;
    size_t tp = 0;
    for (const auto& [col, ok] : group_correct) {
      if (ok) ++tp;
    }
    sum += static_cast<double>(tp) / static_cast<double>(group_correct.size());
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0;
}

}  // namespace d3l::eval

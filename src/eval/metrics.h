// Evaluation metrics as defined in Section V of the paper.
//
// Table-level precision/recall at k (Section V-A's TP/FP/FN definitions),
// target coverage (Eq. 4-5) and attribute precision (Section V-E), all
// computed against generated ground truth. Metrics operate on a
// system-agnostic alignment representation so D3L, TUS and Aurum results
// evaluate identically.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "benchdata/ground_truth.h"

namespace d3l::eval {

/// \brief One attribute alignment claimed by a discovery system.
struct Alignment {
  uint32_t target_column = 0;
  uint32_t source_column = 0;
};

/// \brief One returned table with its claimed alignments.
struct RankedTable {
  std::string name;
  std::vector<Alignment> alignments;
};

/// \brief Table-level precision/recall at k (Section V-A).
///
/// TP: returned table related to the target in the ground truth. FP:
/// returned but unrelated. FN: related in the ground truth but missing from
/// the top-k. The target itself is not counted in either direction.
struct TopKEval {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  double precision = 0;
  double recall = 0;
};

TopKEval EvaluateTopK(const std::vector<std::string>& ranked_names,
                      const std::string& target_name,
                      const benchdata::GroundTruth& truth);

/// \brief Eq. 4: coverage of one source on the target — the fraction of
/// target columns that appear in the source's claimed alignments.
double CoverageOf(const RankedTable& source, size_t target_arity);

/// \brief Eq. 5 for one start table: combined coverage of the start table
/// plus all datasets reachable on its join paths.
double JoinCoverageOf(const RankedTable& start,
                      const std::vector<RankedTable>& join_tables,
                      size_t target_arity);

/// \brief Average Eq. 4 coverage over the top-k tables.
double AverageCoverage(const std::vector<RankedTable>& top_k, size_t target_arity);

/// \brief Average Eq. 5 coverage; join_tables_per_start[i] holds the
/// datasets on join paths starting at top_k[i].
double AverageJoinCoverage(const std::vector<RankedTable>& top_k,
                           const std::vector<std::vector<RankedTable>>& join_tables_per_start,
                           size_t target_arity);

/// \brief Attribute precision without joins (Section V-E): per source, an
/// alignment is a TP iff the ground truth relates the two attributes;
/// returns the average per-source precision (sources with no alignments
/// are skipped).
double AverageAttributePrecision(const std::vector<RankedTable>& top_k,
                                 const std::string& target_name,
                                 const benchdata::GroundTruth& truth);

/// \brief Attribute precision with joins: per start table, the alignments
/// of all join-path datasets (start included) are grouped by target
/// column; a group is a TP iff at least one of its alignments is correct.
double AverageJoinAttributePrecision(
    const std::vector<RankedTable>& top_k,
    const std::vector<std::vector<RankedTable>>& join_tables_per_start,
    const std::string& target_name, const benchdata::GroundTruth& truth);

}  // namespace d3l::eval

#include "eval/table_printer.h"

#include <cassert>
#include <cstdio>

namespace d3l::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { fputs(ToString().c_str(), stdout); }

}  // namespace d3l::eval

#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace d3l::eval {

std::vector<uint32_t> SampleTargets(const DataLake& lake, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> idx = rng.SampleIndices(lake.size(), n);
  std::vector<uint32_t> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(static_cast<uint32_t>(i));
  return out;
}

Result<double> ParseScale(int argc, char** argv, double default_scale) {
  double scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      const double v = std::atof(a + 8);
      if (v <= 0) {
        return Status::InvalidArgument(std::string("non-positive scale '") + a +
                                       "'");
      }
      scale = v;
    } else {
      return Status::InvalidArgument(std::string("unrecognized argument '") +
                                     a + "' (expected --scale=X)");
    }
  }
  return scale;
}

double ParseScaleArg(int argc, char** argv, double default_scale) {
  Result<double> scale = ParseScale(argc, argv, default_scale);
  if (!scale.ok()) {
    std::fprintf(stderr, "%s\n", scale.status().ToString().c_str());
    std::exit(2);
  }
  return *scale;
}

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(base) * scale));
}

}  // namespace d3l::eval

// Small experiment-harness helpers: wall-clock timing and target sampling.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/lake.h"

namespace d3l::eval {

/// \brief Steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Samples `n` distinct table indices from a lake to serve as
/// targets (the paper draws 100 random targets per experiment point).
std::vector<uint32_t> SampleTargets(const DataLake& lake, size_t n, uint64_t seed);

/// \brief Parses a "--scale=<float>" argument from argv (1.0 if absent);
/// benches use it to grow/shrink workload sizes.
double ParseScaleArg(int argc, char** argv, double default_scale = 1.0);

/// \brief Scales a count by the bench scale factor (minimum 1).
size_t Scaled(size_t base, double scale);

}  // namespace d3l::eval

// Small experiment-harness helpers: wall-clock timing and target sampling.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "table/lake.h"

namespace d3l::eval {

/// \brief Steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Samples `n` distinct table indices from a lake to serve as
/// targets (the paper draws 100 random targets per experiment point).
std::vector<uint32_t> SampleTargets(const DataLake& lake, size_t n, uint64_t seed);

/// \brief Parses a "--scale=<float>" argument from argv (`default_scale`
/// if absent). A non-positive/unparsable scale or an unrecognized argument
/// is an InvalidArgument — NOT a warning: a mistyped flag must not silently
/// run the default workload and publish its numbers as if configured.
Result<double> ParseScale(int argc, char** argv, double default_scale = 1.0);

/// \brief ParseScale for bench main()s: prints the error and exits with
/// status 2 on a bad command line, so CI fails instead of mislabeling runs.
double ParseScaleArg(int argc, char** argv, double default_scale = 1.0);

/// \brief Scales a count by the bench scale factor (minimum 1).
size_t Scaled(size_t base, double scale);

}  // namespace d3l::eval

// Basic descriptive statistics used by profiling and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace d3l {

struct Summary {
  size_t count = 0;
  double mean = 0;
  double variance = 0;  ///< population variance
  double stddev = 0;
  double min = 0;
  double max = 0;
};

/// \brief One-pass summary of a sample (all zeros if empty).
Summary Summarize(const std::vector<double>& xs);

/// \brief Arithmetic mean (0 if empty).
double Mean(const std::vector<double>& xs);

/// \brief Jaccard similarity of two sets given their sizes and the size of
/// their intersection.
double JaccardFromCounts(size_t intersection, size_t size_a, size_t size_b);

/// \brief Overlap coefficient |A∩B| / min(|A|,|B|) from counts (Section IV).
double OverlapCoefficientFromCounts(size_t intersection, size_t size_a, size_t size_b);

}  // namespace d3l

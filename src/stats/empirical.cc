#include "stats/empirical.h"

#include <algorithm>
#include <cassert>

namespace d3l {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::Cdf(double x) const {
  if (sorted_.empty()) return 0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::Ccdf(double x) const {
  if (sorted_.empty()) return 1.0;
  return 1.0 - Cdf(x);
}

double EmpiricalDistribution::Quantile(double q) const {
  assert(!sorted_.empty());
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_.size()));
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

double EmpiricalDistribution::min() const {
  assert(!sorted_.empty());
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  assert(!sorted_.empty());
  return sorted_.back();
}

}  // namespace d3l

#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace d3l {

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) {
    double d = x - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(xs.size());
  s.stddev = std::sqrt(s.variance);
  return s;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double JaccardFromCounts(size_t intersection, size_t size_a, size_t size_b) {
  size_t uni = size_a + size_b - intersection;
  if (uni == 0) return 0;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double OverlapCoefficientFromCounts(size_t intersection, size_t size_a, size_t size_b) {
  size_t mn = std::min(size_a, size_b);
  if (mn == 0) return 0;
  return static_cast<double>(intersection) / static_cast<double>(mn);
}

}  // namespace d3l

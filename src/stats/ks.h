// Two-sample Kolmogorov-Smirnov statistic (evidence type D, Section III-C).
#pragma once

#include <cstddef>
#include <vector>

namespace d3l {

/// \brief Computes the two-sample KS statistic sup_x |F1(x) - F2(x)|.
///
/// Inputs are extents of numeric attributes understood as samples of their
/// originating domains. Returns 1.0 (maximal distance) if either sample is
/// empty. Inputs need not be sorted.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// \brief Asymptotic two-sample KS p-value for statistic d with sample
/// sizes n and m (Kolmogorov distribution tail). Used in tests to sanity-
/// check same-distribution behaviour.
double KsPValue(double d, size_t n, size_t m);

}  // namespace d3l

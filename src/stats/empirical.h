// Empirical distribution over observed distances; provides the CCDF used
// for the Eq. 2 weighting scheme.
#pragma once

#include <cstddef>
#include <vector>

namespace d3l {

/// \brief Immutable empirical distribution of a sample of real values.
class EmpiricalDistribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> sample);

  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// P(X <= x) over the sample.
  double Cdf(double x) const;

  /// 1 - P(X <= x): Eq. 2's w = 1 - P(d <= D). The smallest observed value
  /// gets the largest weight. Returns 1 on an empty sample.
  double Ccdf(double x) const;

  /// q-quantile (0 <= q <= 1), nearest-rank.
  double Quantile(double q) const;

  double min() const;
  double max() const;

 private:
  std::vector<double> sorted_;
};

}  // namespace d3l

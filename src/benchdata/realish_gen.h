// The Smaller-Real-like repository: dirty, topically clustered open-data
// tables (Section V's Smaller Real, ~700 UK open-government tables), and a
// scaled-up Larger-Real-like variant for efficiency experiments.
//
// Structure: the lake is a set of topic clusters. Each cluster has an
// entity domain (its subject-attribute domain) with a shared pool of entity
// instances, plus several property domains. Tables of a cluster take a
// subset of the cluster's domains and draw their entity values from the
// shared pool — giving real joinability through subject attributes — while
// representation variants, synonym column names and character-level dirt
// (see dirt.h) make the same entities inconsistently represented, the
// dirtiness mode the paper emphasizes for real lakes. Generic domains are
// shared across clusters, giving cross-cluster relatedness.
#pragma once

#include "benchdata/dirt.h"
#include "benchdata/synthetic_gen.h"  // GeneratedLake

namespace d3l::benchdata {

struct RealishOptions {
  size_t num_clusters = 40;
  size_t tables_per_cluster_min = 4;
  size_t tables_per_cluster_max = 12;
  size_t rows_min = 60;
  size_t rows_max = 250;
  size_t cluster_domains_min = 4;
  size_t cluster_domains_max = 8;
  /// Fraction of a cluster's non-entity domains that are numeric (paper
  /// Fig. 2c: Smaller Real is noticeably more numeric than Synthetic).
  double numeric_domain_ratio = 0.45;
  /// Size of the per-cluster entity instance pool.
  size_t entity_pool_size = 150;
  /// Chance a table keeps the cluster's entity domain (subject attribute).
  double entity_domain_prob = 0.85;
  DirtOptions dirt;
  uint64_t seed = 7;
};

/// \brief Generates the Smaller-Real-like repository with ground truth.
Result<GeneratedLake> GenerateRealish(const RealishOptions& options = {});

/// \brief Options for a Larger-Real-like lake of roughly `num_tables`
/// tables (more clusters, same per-cluster structure). Used by the
/// efficiency experiments, where ground truth is not needed.
RealishOptions LargerRealOptions(size_t num_tables, uint64_t seed = 11);

}  // namespace d3l::benchdata

#include "benchdata/domains.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "text/tokenizer.h"

namespace d3l::benchdata {

namespace {

// ---------------------------------------------------------------------------
// Word pools. Sizes are modest; distinct values come from composition.
// ---------------------------------------------------------------------------

const std::vector<std::string> kFirstNames = {
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph",
    "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Nancy",
    "Daniel", "Lisa", "Matthew", "Margaret", "Anthony", "Betty", "Donald",
    "Sandra", "Mark", "Ashley", "Paul", "Dorothy", "Steven", "Kimberly", "Andrew",
    "Emily", "Kenneth", "Donna", "George", "Michelle", "Joshua", "Carol", "Kevin",
    "Amanda", "Brian", "Melissa", "Edward", "Deborah", "Ronald", "Stephanie",
    "Timothy", "Rebecca", "Jason", "Laura", "Jeffrey", "Helen", "Ryan", "Sharon",
    "Gareth", "Siobhan", "Callum", "Aisling"};

const std::vector<std::string> kSurnames = {
    "Smith", "Jones", "Taylor", "Brown", "Williams", "Wilson", "Johnson", "Davies",
    "Robinson", "Wright", "Thompson", "Evans", "Walker", "White", "Roberts",
    "Green", "Hall", "Wood", "Jackson", "Clarke", "Patel", "Khan", "Lewis",
    "James", "Phillips", "Mason", "Mitchell", "Rose", "Davis", "Rodgers", "Parker",
    "Price", "Bennett", "Young", "Griffiths", "Edwards", "Collins", "Morris",
    "Hughes", "Watson", "Carter", "Bell", "Murphy", "Bailey", "Cooper", "Richardson",
    "Cox", "Turner", "Ward", "Gray", "Stewart", "Harrison", "Fletcher", "Shaw",
    "Begum", "Ali", "Kaur", "Singh", "OBrien", "McCarthy", "Doyle", "Walsh"};

const std::vector<std::string> kStreetNames = {
    "High", "Church", "Station", "Victoria", "Green", "Park", "Mill", "London",
    "Main", "Chapel", "School", "Queens", "Kings", "New", "Grange", "Manor",
    "Springfield", "York", "Windsor", "Albert", "Richmond", "Oxford", "Portland",
    "Botanic", "Mirabel", "Rupert", "Cambridge", "Stanley", "Alexandra", "Derby",
    "Clarence", "Warwick"};

const std::vector<std::string> kStreetSuffixFull = {"Street", "Road", "Avenue",
                                                    "Lane", "Drive", "Close",
                                                    "Court", "Gardens"};
const std::vector<std::string> kStreetSuffixAbbrev = {"St", "Rd", "Ave", "Ln",
                                                      "Dr", "Cl", "Ct", "Gdns"};

const std::vector<std::string> kCities = {
    "Manchester", "London", "Birmingham", "Leeds", "Glasgow", "Sheffield",
    "Bradford", "Liverpool", "Edinburgh", "Bristol", "Cardiff", "Belfast",
    "Leicester", "Coventry", "Nottingham", "Newcastle", "Sunderland", "Brighton",
    "Hull", "Plymouth", "Stoke", "Wolverhampton", "Derby", "Swansea",
    "Southampton", "Salford", "Aberdeen", "Bolton", "Norwich", "Luton", "Swindon",
    "Dundee", "Oxford", "Cambridge", "York", "Exeter", "Gloucester", "Bath",
    "Preston", "Blackpool", "Middlesbrough", "Huddersfield", "Ipswich", "Reading",
    "Northampton", "Warrington", "Stockport", "Rochdale", "Oldham", "Bury",
    "Wigan", "Doncaster", "Rotherham", "Barnsley", "Wakefield", "Halifax"};

const std::vector<std::string> kCounties = {
    "Greater Manchester", "West Midlands", "Merseyside", "South Yorkshire",
    "West Yorkshire", "Tyne and Wear", "Lancashire", "Cheshire", "Kent", "Essex",
    "Surrey", "Hampshire", "Devon", "Norfolk", "Suffolk", "Somerset",
    "Derbyshire", "Nottinghamshire", "Lincolnshire", "Cumbria", "Durham",
    "Cornwall", "Dorset", "Wiltshire"};

const std::vector<std::string> kCountries = {
    "United Kingdom", "Ireland", "France", "Germany", "Spain", "Italy", "Portugal",
    "Netherlands", "Belgium", "Denmark", "Sweden", "Norway", "Finland", "Poland",
    "Austria", "Switzerland", "Greece", "Hungary", "Romania", "Bulgaria",
    "Croatia", "Slovenia", "Slovakia", "Estonia", "Latvia", "Lithuania", "Malta",
    "Cyprus", "Iceland", "Luxembourg", "Canada", "Australia"};

const std::vector<std::string> kColors = {
    "Red", "Blue", "Green", "Yellow", "Purple", "Orange", "Black", "White",
    "Grey", "Brown", "Pink", "Cyan", "Magenta", "Teal", "Maroon", "Navy",
    "Olive", "Silver", "Gold", "Crimson"};

const std::vector<std::string> kAdjectives = {
    "Swift", "Bright", "Silent", "Golden", "Rapid", "Crystal", "Solar", "Lunar",
    "Prime", "Apex", "Noble", "Vivid", "Amber", "Cobalt", "Emerald", "Scarlet",
    "Sterling", "Summit", "Atlas", "Beacon", "Cedar", "Delta", "Echo", "Falcon",
    "Granite", "Harbor", "Ivory", "Jade"};

const std::vector<std::string> kNouns = {
    "Engine", "Widget", "Panel", "Bracket", "Sensor", "Module", "Valve", "Filter",
    "Router", "Switch", "Cable", "Monitor", "Keyboard", "Printer", "Scanner",
    "Battery", "Charger", "Adapter", "Speaker", "Camera", "Tablet", "Drone",
    "Compass", "Lantern", "Kettle", "Blender", "Toaster", "Heater"};

const std::vector<std::string> kJobTitles = {
    "Software Engineer", "Data Analyst", "Project Manager", "Nurse", "Teacher",
    "Accountant", "Pharmacist", "Electrician", "Plumber", "Architect", "Surveyor",
    "Paramedic", "Librarian", "Chef", "Journalist", "Solicitor", "Radiographer",
    "Physiotherapist", "Midwife", "Optometrist", "Economist", "Statistician",
    "Receptionist", "Caretaker"};

const std::vector<std::string> kDepartments = {
    "Cardiology", "Oncology", "Radiology", "Paediatrics", "Neurology",
    "Orthopaedics", "Dermatology", "Haematology", "Finance", "Procurement",
    "Human Resources", "Estates", "Pathology", "Pharmacy", "Outpatients",
    "Emergency", "Maternity", "Psychiatry"};

const std::vector<std::string> kCompanyWords = {
    "Northern", "United", "Global", "Pennine", "Mersey", "Thames", "Avon",
    "Consolidated", "Allied", "Regional", "Central", "Metro", "Civic", "Anchor",
    "Crown", "Heritage", "Pioneer", "Quantum", "Vertex", "Zenith", "Horizon",
    "Cascade", "Momentum", "Synergy"};

const std::vector<std::string> kCompanySuffix = {"Ltd", "Limited", "PLC", "LLP",
                                                 "Group", "Holdings"};

const std::vector<std::string> kEmailDomains = {
    "example.com", "mail.co.uk",  "inbox.org",   "post.net",  "webmail.io",
    "corp.co.uk",  "company.com", "service.org", "office.net", "contact.uk"};

const std::vector<std::string> kSchoolKinds = {"Primary School", "High School",
                                               "Academy", "Grammar School",
                                               "Community College", "Infant School"};

const std::vector<std::string> kDrugSyllablesA = {"Ami", "Beta", "Cefa", "Doxa",
                                                  "Epi",  "Fluo", "Gaba", "Hydro",
                                                  "Iso",  "Keto", "Lora", "Meto"};
const std::vector<std::string> kDrugSyllablesB = {"cillin", "zepam", "statin",
                                                  "prazole", "olol",  "micin",
                                                  "dipine", "sartan", "floxacin",
                                                  "tidine"};

// Syllable-composed proper nouns: real lakes carry tens of thousands of
// distinct surnames/street/brand tokens, far more than any fixed pool. The
// cross product below yields ~5,800 distinct capitalized words, keeping
// token inventories realistically diverse across independent datasets.
const std::vector<std::string> kSyllA = {
    "Whit", "Har",  "Pem",  "Ash",  "Bro",   "Cald", "Dun",  "Fair",
    "Gra",  "Hol",  "Kirk", "Lang", "Mar",   "Nor",  "Okes", "Pres",
    "Quin", "Rad",  "Stan", "Thorn", "Win",  "Wal",  "Yate", "Bex"};
const std::vector<std::string> kSyllB = {
    "comb", "ring", "ber",   "field", "ley",  "ston", "wick", "bourn",
    "ford", "gate", "hurst", "mead",  "pool", "shaw", "worth", "den",
    "low",  "mark", "sett",  "ton"};
const std::vector<std::string> kSyllC = {"",    "e",   "s",    "er",
                                         "by",  "ham", "wood", "side",
                                         "well", "croft", "dale", "moor"};

std::string SyllableWord(Rng* rng) {
  return rng->Pick(kSyllA) + rng->Pick(kSyllB) + rng->Pick(kSyllC);
}

// ---------------------------------------------------------------------------
// Generator helpers.
// ---------------------------------------------------------------------------

std::string TwoDigits(int64_t v) {
  char buf[8];
  snprintf(buf, sizeof(buf), "%02d", static_cast<int>(v));
  return buf;
}

std::string GeneratePostcode(Rng* rng, size_t variant) {
  static const std::string kAreas = "BLMSWNEGC";
  std::string pc;
  pc += kAreas[rng->Uniform(kAreas.size())];
  if (rng->Chance(0.5)) pc += static_cast<char>('A' + rng->Uniform(26));
  pc += std::to_string(rng->UniformInt(1, 28));
  std::string inward = std::to_string(rng->UniformInt(0, 9));
  inward += static_cast<char>('A' + rng->Uniform(26));
  inward += static_cast<char>('A' + rng->Uniform(26));
  if (variant == 1) {
    // Lowercase, no space — a common dirty representation.
    std::string out = pc + inward;
    for (char& c : out) c = static_cast<char>(std::tolower(c));
    return out;
  }
  return pc + " " + inward;
}

std::string GenerateDate(Rng* rng, size_t variant) {
  static const std::vector<std::string> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                   "May", "Jun", "Jul", "Aug",
                                                   "Sep", "Oct", "Nov", "Dec"};
  int64_t y = rng->UniformInt(1995, 2025);
  int64_t m = rng->UniformInt(1, 12);
  int64_t d = rng->UniformInt(1, 28);
  switch (variant) {
    case 1:
      return TwoDigits(d) + "/" + TwoDigits(m) + "/" + std::to_string(y);
    case 2:
      return std::to_string(d) + " " + kMonths[static_cast<size_t>(m - 1)] + " " +
             std::to_string(y);
    default:
      return std::to_string(y) + "-" + TwoDigits(m) + "-" + TwoDigits(d);
  }
}

std::string GenerateTimeRange(Rng* rng, size_t variant) {
  int64_t open = rng->UniformInt(6, 10);
  int64_t close = rng->UniformInt(16, 21);
  if (variant == 1) {
    return std::to_string(open) + "am-" + std::to_string(close - 12) + "pm";
  }
  return TwoDigits(open) + ":00-" + TwoDigits(close) + ":00";
}

std::string GeneratePhone(Rng* rng, size_t variant) {
  int64_t area = rng->UniformInt(113, 199);
  int64_t mid = rng->UniformInt(200, 999);
  int64_t tail = rng->UniformInt(0, 9999);
  char buf[32];
  switch (variant) {
    case 1:
      snprintf(buf, sizeof(buf), "0%d-%d-%04d", static_cast<int>(area),
               static_cast<int>(mid), static_cast<int>(tail));
      break;
    case 2:
      snprintf(buf, sizeof(buf), "(0%d) %d%04d", static_cast<int>(area),
               static_cast<int>(mid), static_cast<int>(tail));
      break;
    default:
      snprintf(buf, sizeof(buf), "0%d %d %04d", static_cast<int>(area),
               static_cast<int>(mid), static_cast<int>(tail));
  }
  return buf;
}

std::string FormatFixed(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace

DomainRegistry::DomainRegistry() {
  auto add = [this](std::string name, DomainKind kind,
                    std::vector<std::string> synonyms, size_t variants,
                    bool entity) {
    DomainSpec s;
    s.id = static_cast<uint32_t>(specs_.size());
    s.name = std::move(name);
    s.kind = kind;
    s.name_synonyms = std::move(synonyms);
    s.num_variants = variants;
    s.entity_like = entity;
    specs_.push_back(std::move(s));
  };

  // --- text domains -------------------------------------------------------
  add("person_name", DomainKind::kText,
      {"Name", "Full Name", "Person", "Contact Name", "Employee"}, 3, true);
  add("gp_practice", DomainKind::kText,
      {"Practice Name", "Practice", "GP", "Surgery", "Provider"}, 2, true);
  add("company", DomainKind::kText,
      {"Company", "Organisation", "Business Name", "Supplier", "Employer"}, 2, true);
  add("product", DomainKind::kText,
      {"Product", "Item", "Product Name", "Article", "Model"}, 2, true);
  add("school", DomainKind::kText,
      {"School", "School Name", "Institution", "Establishment"}, 2, true);
  add("drug", DomainKind::kText,
      {"Drug", "Medication", "Drug Name", "Medicine", "Prescription"}, 2, true);
  add("street_address", DomainKind::kText,
      {"Address", "Street", "Address Line 1", "Location", "Street Address"}, 2,
      false);
  add("city", DomainKind::kText, {"City", "Town", "City Name", "Settlement"}, 2,
      false);
  add("county", DomainKind::kText, {"County", "Region", "Area", "District"}, 1,
      false);
  add("postcode", DomainKind::kText,
      {"Postcode", "Post Code", "Postal Code", "Zip"}, 2, false);
  add("email", DomainKind::kText, {"Email", "E-mail", "Email Address", "Contact"},
      2, false);
  add("phone", DomainKind::kText,
      {"Phone", "Telephone", "Phone Number", "Tel", "Contact Number"}, 3, false);
  add("date", DomainKind::kText,
      {"Date", "Start Date", "Recorded Date", "Updated", "Effective Date"}, 3,
      false);
  add("time_range", DomainKind::kText,
      {"Hours", "Opening hours", "Open Times", "Operating Hours"}, 2, false);
  add("url", DomainKind::kText, {"Website", "URL", "Web Address", "Homepage"}, 2,
      false);
  add("country", DomainKind::kText, {"Country", "Nation", "Country Name"}, 1,
      false);
  add("color", DomainKind::kText, {"Colour", "Color", "Shade"}, 1, false);
  add("job_title", DomainKind::kText, {"Job Title", "Role", "Occupation",
                                       "Position"},
      1, false);
  add("department", DomainKind::kText,
      {"Department", "Dept", "Division", "Unit", "Specialty"}, 1, false);
  add("id_code", DomainKind::kText,
      {"ID", "Code", "Reference", "Record ID", "Identifier"}, 2, false);

  // --- numeric domains (distinct distributions for KS signal) -------------
  add("money", DomainKind::kNumeric,
      {"Payment", "Amount", "Cost", "Funding", "Spend"}, 2, false);
  add("age", DomainKind::kNumeric, {"Age", "Age Years", "Patient Age"}, 1, false);
  add("percentage", DomainKind::kNumeric,
      {"Percentage", "Percent", "Rate", "Proportion"}, 1, false);
  add("patient_count", DomainKind::kNumeric,
      {"Patients", "Patient Count", "Registered Patients", "List Size"}, 1,
      false);
  add("population", DomainKind::kNumeric,
      {"Population", "Residents", "Inhabitants"}, 1, false);
  add("year", DomainKind::kNumeric, {"Year", "Calendar Year", "YR"}, 1, false);
  add("rating", DomainKind::kNumeric, {"Rating", "Score", "Stars", "Grade"}, 1,
      false);
  add("weight", DomainKind::kNumeric, {"Weight", "Weight Kg", "Mass"}, 1, false);
  add("latitude", DomainKind::kNumeric, {"Latitude", "Lat"}, 1, false);
  add("longitude", DomainKind::kNumeric, {"Longitude", "Lng", "Lon"}, 1, false);
  add("price", DomainKind::kNumeric, {"Price", "Unit Price", "RRP"}, 2, false);
}

const DomainRegistry& DomainRegistry::Instance() {
  // d3l-lint: allow(naked-new) -- intentional static leak (never destroyed),
  // so generator threads can touch the registry during program teardown.
  static const DomainRegistry* kInstance = new DomainRegistry();
  return *kInstance;
}

std::vector<uint32_t> DomainRegistry::EntityDomains() const {
  std::vector<uint32_t> out;
  for (const DomainSpec& s : specs_) {
    if (s.entity_like) out.push_back(s.id);
  }
  return out;
}

std::vector<uint32_t> DomainRegistry::TextDomains() const {
  std::vector<uint32_t> out;
  for (const DomainSpec& s : specs_) {
    if (s.kind == DomainKind::kText) out.push_back(s.id);
  }
  return out;
}

std::vector<uint32_t> DomainRegistry::NumericDomains() const {
  std::vector<uint32_t> out;
  for (const DomainSpec& s : specs_) {
    if (s.kind == DomainKind::kNumeric) out.push_back(s.id);
  }
  return out;
}

uint32_t DomainRegistry::IdOf(const std::string& name) const {
  for (const DomainSpec& s : specs_) {
    if (s.name == name) return s.id;
  }
  fprintf(stderr, "unknown domain '%s'\n", name.c_str());
  abort();
}

std::string DomainRegistry::PickAttributeName(uint32_t id, Rng* rng) const {
  return rng->Pick(spec(id).name_synonyms);
}

std::string DomainRegistry::GenerateValue(uint32_t id, size_t variant,
                                          Rng* rng) const {
  const DomainSpec& s = spec(id);
  assert(variant < s.num_variants);
  const std::string& n = s.name;

  // Entity surnames/brand words mix a realistic fixed pool with syllable-
  // composed words so distinct datasets have distinct token inventories.
  auto surname = [&rng]() {
    return rng->Chance(0.75) ? SyllableWord(rng) : rng->Pick(kSurnames);
  };
  if (n == "person_name") {
    const std::string& f = rng->Pick(kFirstNames);
    std::string l = surname();
    if (variant == 1) return l + ", " + f;
    if (variant == 2) return std::string(1, f[0]) + ". " + l;
    return f + " " + l;
  }
  if (n == "gp_practice") {
    if (variant == 1) {
      return "Dr " + std::string(1, 'A' + static_cast<char>(rng->Uniform(26))) + " " +
             surname();
    }
    static const std::vector<std::string> kPracticeKinds = {
        "Medical Practice", "Health Centre", "Surgery", "Medical Centre",
        "Family Practice"};
    return surname() + " " + rng->Pick(kPracticeKinds);
  }
  if (n == "company") {
    std::string word = rng->Chance(0.6) ? SyllableWord(rng) : rng->Pick(kCompanyWords);
    std::string base = word + " " + rng->Pick(kNouns);
    return base + " " + (variant == 1 ? kCompanySuffix[0] : rng->Pick(kCompanySuffix));
  }
  if (n == "product") {
    std::string adj = rng->Chance(0.5) ? SyllableWord(rng) : rng->Pick(kAdjectives);
    std::string base = adj + " " + rng->Pick(kNouns);
    if (variant == 1) base += " " + std::to_string(rng->UniformInt(100, 999));
    return base;
  }
  if (n == "school") {
    std::string place = rng->Chance(0.6) ? SyllableWord(rng) : rng->Pick(kCities);
    if (variant == 1) place = surname();
    return place + " " + rng->Pick(kSchoolKinds);
  }
  if (n == "drug") {
    std::string base = rng->Pick(kDrugSyllablesA) + rng->Pick(kDrugSyllablesB);
    if (variant == 1) base += " " + std::to_string(rng->UniformInt(1, 8) * 25) + "mg";
    return base;
  }
  if (n == "street_address") {
    const auto& suffixes = variant == 1 ? kStreetSuffixAbbrev : kStreetSuffixFull;
    size_t si = rng->Uniform(suffixes.size());
    std::string street =
        rng->Chance(0.6) ? SyllableWord(rng) : rng->Pick(kStreetNames);
    return std::to_string(rng->UniformInt(1, 180)) + " " + street + " " + suffixes[si];
  }
  if (n == "city") {
    std::string c = rng->Pick(kCities);
    if (variant == 1) {
      for (char& ch : c) ch = static_cast<char>(std::toupper(ch));
    }
    return c;
  }
  if (n == "county") return rng->Pick(kCounties);
  if (n == "postcode") return GeneratePostcode(rng, variant);
  if (n == "email") {
    std::string f = rng->Pick(kFirstNames);
    std::string l = rng->Pick(kSurnames);
    for (char& c : f) c = static_cast<char>(std::tolower(c));
    for (char& c : l) c = static_cast<char>(std::tolower(c));
    if (variant == 1) return f.substr(0, 1) + l + "@" + rng->Pick(kEmailDomains);
    return f + "." + l + "@" + rng->Pick(kEmailDomains);
  }
  if (n == "phone") return GeneratePhone(rng, variant);
  if (n == "date") return GenerateDate(rng, variant);
  if (n == "time_range") return GenerateTimeRange(rng, variant);
  if (n == "url") {
    std::string w = rng->Pick(kCompanyWords);
    for (char& c : w) c = static_cast<char>(std::tolower(c));
    if (variant == 1) return "www." + w + ".org";
    return "https://www." + w + ".co.uk";
  }
  if (n == "country") return rng->Pick(kCountries);
  if (n == "color") return rng->Pick(kColors);
  if (n == "job_title") return rng->Pick(kJobTitles);
  if (n == "department") return rng->Pick(kDepartments);
  if (n == "id_code") {
    std::string code;
    for (int i = 0; i < 3; ++i) code += static_cast<char>('A' + rng->Uniform(26));
    std::string digits = std::to_string(rng->UniformInt(1000, 9999));
    return variant == 1 ? code + digits : code + "-" + digits;
  }

  // Numeric domains.
  if (n == "money") {
    double v = std::exp(rng->Gaussian(8.0, 1.2));
    return variant == 1 ? std::to_string(static_cast<int64_t>(v)) : FormatFixed(v, 2);
  }
  if (n == "age") return std::to_string(rng->UniformInt(0, 99));
  if (n == "percentage") return FormatFixed(rng->UniformDouble(0, 100), 1);
  if (n == "patient_count") {
    return std::to_string(static_cast<int64_t>(std::exp(rng->Gaussian(7.6, 0.5))));
  }
  if (n == "population") return std::to_string(rng->UniformInt(1200, 9000000));
  if (n == "year") return std::to_string(rng->UniformInt(1950, 2025));
  if (n == "rating") return std::to_string(rng->UniformInt(1, 5));
  if (n == "weight") return FormatFixed(rng->Gaussian(75, 15), 1);
  if (n == "latitude") return FormatFixed(rng->UniformDouble(49.9, 60.8), 5);
  if (n == "longitude") return FormatFixed(rng->UniformDouble(-8.2, 1.8), 5);
  if (n == "price") {
    double v = rng->UniformDouble(0.5, 120.0);
    return variant == 1 ? FormatFixed(v, 0) : FormatFixed(v, 2);
  }

  fprintf(stderr, "GenerateValue: unhandled domain '%s'\n", n.c_str());
  abort();
}

std::unordered_map<std::string, std::vector<uint32_t>>
DomainRegistry::BuildKbVocabulary() const {
  std::unordered_map<std::string, std::vector<uint32_t>> vocab;
  auto add_tokens = [&vocab](const std::vector<std::string>& pool, uint32_t id) {
    for (const std::string& entry : pool) {
      for (const std::string& tok : Tokenize(entry)) {
        auto& classes = vocab[tok];
        bool present = false;
        for (uint32_t c : classes) {
          if (c == id) {
            present = true;
            break;
          }
        }
        if (!present) classes.push_back(id);
      }
    }
  };
  add_tokens(kFirstNames, IdOf("person_name"));
  add_tokens(kSurnames, IdOf("person_name"));
  add_tokens(kSurnames, IdOf("gp_practice"));
  add_tokens(kCompanyWords, IdOf("company"));
  add_tokens(kCompanySuffix, IdOf("company"));
  add_tokens(kAdjectives, IdOf("product"));
  add_tokens(kNouns, IdOf("product"));
  add_tokens(kCities, IdOf("city"));
  add_tokens(kCities, IdOf("school"));
  add_tokens(kSchoolKinds, IdOf("school"));
  add_tokens(kCounties, IdOf("county"));
  add_tokens(kCountries, IdOf("country"));
  add_tokens(kColors, IdOf("color"));
  add_tokens(kJobTitles, IdOf("job_title"));
  add_tokens(kDepartments, IdOf("department"));
  add_tokens(kStreetNames, IdOf("street_address"));
  add_tokens(kStreetSuffixFull, IdOf("street_address"));
  add_tokens(kStreetSuffixAbbrev, IdOf("street_address"));
  add_tokens(kEmailDomains, IdOf("email"));
  return vocab;
}

}  // namespace d3l::benchdata

// The Synthetic repository: the TUS-benchmark recipe (Section V).
//
// "~5,000 tables synthetically derived from 32 base tables containing
// Canadian open government data using random projections and selections on
// the base tables." We generate base tables from the domain registry (each
// base table draws its values from a base-specific sub-pool, mimicking
// distinct source datasets that happen to share domains), then derive
// tables by random column projections and row selections. Ground truth:
// derived tables of the same base are related; attribute labels identify
// the originating base column.
#pragma once

#include <cstdint>

#include "benchdata/ground_truth.h"
#include "common/status.h"
#include "table/lake.h"

namespace d3l::benchdata {

struct SyntheticOptions {
  size_t num_base_tables = 30;   ///< paper: 32
  size_t derived_per_base = 29;  ///< total tables = base * (1 + derived)
  size_t base_rows_min = 150;
  size_t base_rows_max = 400;
  size_t base_cols_min = 4;
  size_t base_cols_max = 9;
  /// A derived table keeps at least this fraction of columns / rows.
  double min_col_fraction = 0.4;
  double min_row_fraction = 0.25;
  /// Chance that a projected column is renamed to a domain synonym.
  double rename_prob = 0.10;
  /// Fraction of numeric columns targeted per base table (paper Fig. 2c:
  /// Synthetic has a lower numeric ratio than Smaller Real).
  double numeric_col_ratio = 0.2;
  uint64_t seed = 42;
};

struct GeneratedLake {
  DataLake lake;
  GroundTruth truth;
};

/// \brief Generates the synthetic repository with its ground truth.
Result<GeneratedLake> GenerateSynthetic(const SyntheticOptions& options = {});

}  // namespace d3l::benchdata

#include "benchdata/ground_truth.h"

namespace d3l::benchdata {

void GroundTruth::SetTableLabels(const std::string& table,
                                 std::vector<uint64_t> labels) {
  std::unordered_set<uint64_t> set;
  for (uint64_t l : labels) {
    if (l != 0) set.insert(l);
  }
  label_sets_[table] = std::move(set);
  labels_[table] = std::move(labels);
}

const std::vector<uint64_t>* GroundTruth::Labels(const std::string& table) const {
  auto it = labels_.find(table);
  return it == labels_.end() ? nullptr : &it->second;
}

uint64_t GroundTruth::LabelOf(const std::string& table, uint32_t col) const {
  const auto* l = Labels(table);
  if (l == nullptr || col >= l->size()) return 0;
  return (*l)[col];
}

bool GroundTruth::AttributesRelated(const std::string& t1, uint32_t c1,
                                    const std::string& t2, uint32_t c2) const {
  uint64_t a = LabelOf(t1, c1);
  uint64_t b = LabelOf(t2, c2);
  return a != 0 && a == b;
}

bool GroundTruth::TablesRelated(const std::string& t1, const std::string& t2) const {
  auto it1 = label_sets_.find(t1);
  auto it2 = label_sets_.find(t2);
  if (it1 == label_sets_.end() || it2 == label_sets_.end()) return false;
  const auto& small = it1->second.size() <= it2->second.size() ? it1->second
                                                               : it2->second;
  const auto& large = it1->second.size() <= it2->second.size() ? it2->second
                                                               : it1->second;
  for (uint64_t l : small) {
    if (large.count(l) > 0) return true;
  }
  return false;
}

size_t GroundTruth::RelatedCount(const std::string& table) const {
  size_t n = 0;
  for (const auto& [other, set] : label_sets_) {
    if (other == table) continue;
    if (TablesRelated(table, other)) ++n;
  }
  return n;
}

std::vector<uint32_t> GroundTruth::CoveredColumns(const std::string& target,
                                                  const std::string& source) const {
  std::vector<uint32_t> covered;
  const auto* tl = Labels(target);
  auto its = label_sets_.find(source);
  if (tl == nullptr || its == label_sets_.end()) return covered;
  for (uint32_t c = 0; c < tl->size(); ++c) {
    uint64_t l = (*tl)[c];
    if (l != 0 && its->second.count(l) > 0) covered.push_back(c);
  }
  return covered;
}

double GroundTruth::AverageAnswerSize() const {
  if (labels_.empty()) return 0;
  double sum = 0;
  for (const auto& [table, l] : labels_) {
    sum += static_cast<double>(RelatedCount(table));
  }
  return sum / static_cast<double>(labels_.size());
}

}  // namespace d3l::benchdata

#include "benchdata/dirt.h"

#include <cctype>
#include <vector>

namespace d3l::benchdata {

std::string ApplyTypo(std::string s, Rng* rng) {
  if (s.size() < 3) return s;
  size_t i = 1 + rng->Uniform(s.size() - 2);
  switch (rng->Uniform(3)) {
    case 0:  // adjacent swap
      std::swap(s[i], s[i - 1]);
      break;
    case 1:  // drop
      s.erase(i, 1);
      break;
    default:  // duplicate
      s.insert(i, 1, s[i]);
  }
  return s;
}

std::string AbbreviateWord(std::string s, Rng* rng) {
  // Find word boundaries; abbreviate one word of length >= 5.
  std::vector<std::pair<size_t, size_t>> words;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || !std::isalpha(static_cast<unsigned char>(s[i]))) {
      if (i - start >= 5) words.emplace_back(start, i - start);
      start = i + 1;
    }
  }
  if (words.empty()) return s;
  auto [pos, len] = words[rng->Uniform(words.size())];
  return s.substr(0, pos + 3) + "." + s.substr(pos + len);
}

std::string DirtyValue(std::string value, const DirtOptions& options, Rng* rng) {
  if (rng->Chance(options.null_prob)) {
    static const std::vector<std::string> kNulls = {"", "-", "N/A", "null"};
    return kNulls[rng->Uniform(kNulls.size())];
  }
  if (rng->Chance(options.abbrev_prob)) value = AbbreviateWord(std::move(value), rng);
  if (rng->Chance(options.typo_prob)) value = ApplyTypo(std::move(value), rng);
  if (rng->Chance(options.case_prob)) {
    if (rng->Chance(0.5)) {
      for (char& c : value) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return value;
}

std::string DirtyAttributeName(std::string name, const DirtOptions& options,
                               Rng* rng) {
  if (rng->Chance(options.name_typo_prob)) return ApplyTypo(std::move(name), rng);
  return name;
}

}  // namespace d3l::benchdata

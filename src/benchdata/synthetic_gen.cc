#include "benchdata/synthetic_gen.h"

#include <algorithm>

#include "benchdata/domains.h"

namespace d3l::benchdata {

namespace {

// Attribute label: identifies the originating base-table column.
uint64_t BaseColumnLabel(size_t base_id, size_t col) {
  return (static_cast<uint64_t>(base_id) << 16) | (col + 1);
}

// The TUS benchmark derives from distinct real open-data tables whose
// columns rarely coincide wholesale across bases. Domains whose value pool
// is tiny (a few dozen cities/colors/roles) would make *every* pair of
// same-domain columns near-identical, a pathology absent from the original
// benchmark — so the synthetic generator sticks to high-cardinality
// domains.
bool IsHighCardinalityDomain(const DomainRegistry& reg, uint32_t id) {
  const std::string& n = reg.spec(id).name;
  return !(n == "city" || n == "county" || n == "country" || n == "color" ||
           n == "job_title" || n == "department" || n == "time_range" ||
           n == "rating");
}

// Per-base attribute-name qualifiers: open-data columns carry dataset-
// specific phrasing ("Patient Age" vs "Staff Age"), which keeps cross-base
// name collisions realistic rather than systematic.
const char* kBaseQualifiers[] = {
    "Patient", "Provider", "Site",    "Branch",  "Region",  "Service",
    "Client",  "Vendor",   "Project", "Staff",   "Store",   "Unit",
    "School",  "Clinic",   "Route",   "Account", "Member",  "Asset",
    "Event",   "Order",    "Case",    "Permit",  "Survey",  "Grant",
    "Fleet",   "Parcel",   "Booking", "Claim",   "Licence", "Tenant"};

}  // namespace

Result<GeneratedLake> GenerateSynthetic(const SyntheticOptions& options) {
  if (options.num_base_tables == 0) {
    return Status::InvalidArgument("num_base_tables must be positive");
  }
  const DomainRegistry& reg = DomainRegistry::Instance();
  Rng rng(options.seed);
  GeneratedLake out;

  std::vector<uint32_t> text_domains;
  for (uint32_t d : reg.TextDomains()) {
    if (IsHighCardinalityDomain(reg, d)) text_domains.push_back(d);
  }
  std::vector<uint32_t> numeric_domains;
  for (uint32_t d : reg.NumericDomains()) {
    if (IsHighCardinalityDomain(reg, d)) numeric_domains.push_back(d);
  }

  for (size_t base_id = 0; base_id < options.num_base_tables; ++base_id) {
    // --- base table schema: distinct domains per column ------------------
    size_t n_cols = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.base_cols_min),
        static_cast<int64_t>(options.base_cols_max)));
    size_t n_numeric = static_cast<size_t>(
        static_cast<double>(n_cols) * options.numeric_col_ratio + 0.5);
    n_numeric = std::min(n_numeric, numeric_domains.size());

    std::vector<uint32_t> cols;
    {
      std::vector<size_t> ti = rng.SampleIndices(text_domains.size(), n_cols - n_numeric);
      for (size_t i : ti) cols.push_back(text_domains[i]);
      std::vector<size_t> ni = rng.SampleIndices(numeric_domains.size(), n_numeric);
      for (size_t i : ni) cols.push_back(numeric_domains[i]);
      rng.Shuffle(&cols);
    }
    n_cols = cols.size();

    // Base-specific value sub-pools are emulated by seeding a dedicated RNG
    // per (base, column): different bases sharing a domain still draw
    // different value streams, like distinct source datasets would.
    std::string base_name = "synth_base_" + std::to_string(base_id);
    const char* qualifier = kBaseQualifiers[base_id % std::size(kBaseQualifiers)];
    Table base(base_name);
    std::vector<uint64_t> base_labels;
    for (size_t c = 0; c < n_cols; ++c) {
      std::string name = reg.PickAttributeName(cols[c], &rng);
      if (rng.Chance(0.6)) name = std::string(qualifier) + " " + name;
      // Ensure unique column names within the table.
      std::string unique = name;
      int suffix = 2;
      while (base.ColumnIndex(unique) >= 0) {
        unique = name + " " + std::to_string(suffix++);
      }
      D3L_RETURN_NOT_OK(base.AddColumn(unique));
      base_labels.push_back(BaseColumnLabel(base_id, c));
    }

    size_t n_rows = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.base_rows_min),
        static_cast<int64_t>(options.base_rows_max)));
    // Per-column generation keeps a bounded pool of values per base column
    // so that projections of the same base overlap heavily on values.
    std::vector<std::vector<std::string>> pools(n_cols);
    for (size_t c = 0; c < n_cols; ++c) {
      Rng pool_rng(Mix64(options.seed ^ (base_id * 1315423911ULL + c)));
      size_t pool_size = std::max<size_t>(24, n_rows / 2);
      pools[c].reserve(pool_size);
      for (size_t i = 0; i < pool_size; ++i) {
        pools[c].push_back(reg.GenerateValue(cols[c], 0, &pool_rng));
      }
    }
    for (size_t r = 0; r < n_rows; ++r) {
      std::vector<std::string> row;
      row.reserve(n_cols);
      for (size_t c = 0; c < n_cols; ++c) row.push_back(rng.Pick(pools[c]));
      D3L_RETURN_NOT_OK(base.AddRow(row));
    }

    out.truth.SetTableLabels(base_name, base_labels);

    // --- derived tables: random projections + selections ----------------
    size_t min_cols = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(n_cols) * options.min_col_fraction));
    size_t min_rows = std::max<size_t>(
        10, static_cast<size_t>(static_cast<double>(n_rows) * options.min_row_fraction));

    for (size_t d = 0; d < options.derived_per_base; ++d) {
      size_t keep_cols =
          static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(min_cols),
                                             static_cast<int64_t>(n_cols)));
      std::vector<size_t> col_idx = rng.SampleIndices(n_cols, keep_cols);
      std::sort(col_idx.begin(), col_idx.end());

      size_t keep_rows =
          static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(min_rows),
                                             static_cast<int64_t>(n_rows)));
      std::vector<size_t> row_idx = rng.SampleIndices(n_rows, keep_rows);
      std::sort(row_idx.begin(), row_idx.end());

      std::string name =
          "synth_" + std::to_string(base_id) + "_" + std::to_string(d);
      Table derived = base.Project(col_idx, name).SelectRows(row_idx, name);

      std::vector<uint64_t> labels;
      labels.reserve(col_idx.size());
      for (size_t ci : col_idx) labels.push_back(base_labels[ci]);

      // Occasional renames to a different synonym of the same domain.
      for (size_t c = 0; c < derived.num_columns(); ++c) {
        if (rng.Chance(options.rename_prob)) {
          std::string renamed = reg.PickAttributeName(cols[col_idx[c]], &rng);
          // Only rename if it stays unique within the table.
          bool clash = false;
          for (size_t c2 = 0; c2 < derived.num_columns(); ++c2) {
            if (c2 != c && derived.column(c2).name() == renamed) clash = true;
          }
          if (!clash) derived.column(c).set_name(renamed);
        }
      }

      out.truth.SetTableLabels(name, labels);
      D3L_RETURN_NOT_OK(out.lake.AddTable(std::move(derived)));
    }
    D3L_RETURN_NOT_OK(out.lake.AddTable(std::move(base)));
  }
  return out;
}

}  // namespace d3l::benchdata

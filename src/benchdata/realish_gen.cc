#include "benchdata/realish_gen.h"

#include <algorithm>

#include "benchdata/domains.h"

namespace d3l::benchdata {

namespace {

// Realish attribute labels implement Definition 1 (same domain => related)
// with per-cluster domain refinement: two clusters using the "company"
// domain hold *different* companies, and their payments/dates/contact
// details describe different underlying domains, so those attributes are
// NOT from the same domain. Only truly generic domains (places, colors,
// roles) are shared lake-wide — this reproduces the Smaller Real ground
// truth's answer-size ratio (~16% of the lake per target, Section V).
uint64_t DomainLabel(uint32_t domain_id) { return 0x100 + domain_id; }
uint64_t ClusterEntityLabel(uint32_t domain_id, size_t cluster) {
  return 0x10000 + (static_cast<uint64_t>(cluster) << 8) + domain_id;
}
uint64_t ClusterScopedLabel(uint32_t domain_id, size_t cluster) {
  return 0x2000000 + (static_cast<uint64_t>(cluster) << 8) + domain_id;
}

// Domains whose values denote lake-wide shared concepts; every other
// property domain is scoped to its topic cluster.
bool IsGenericDomain(const DomainRegistry& reg, uint32_t id) {
  const std::string& n = reg.spec(id).name;
  return n == "city" || n == "county" || n == "country" || n == "color" ||
         n == "job_title" || n == "department";
}

}  // namespace

Result<GeneratedLake> GenerateRealish(const RealishOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  const DomainRegistry& reg = DomainRegistry::Instance();
  Rng rng(options.seed);
  GeneratedLake out;

  std::vector<uint32_t> entity_domains = reg.EntityDomains();
  std::vector<uint32_t> text_domains;
  for (uint32_t d : reg.TextDomains()) {
    if (!reg.spec(d).entity_like) text_domains.push_back(d);
  }
  std::vector<uint32_t> numeric_domains = reg.NumericDomains();

  size_t table_counter = 0;
  for (size_t cl = 0; cl < options.num_clusters; ++cl) {
    // --- cluster schema ---------------------------------------------------
    uint32_t entity_domain = entity_domains[rng.Uniform(entity_domains.size())];

    size_t n_domains = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.cluster_domains_min),
                       static_cast<int64_t>(options.cluster_domains_max)));
    size_t n_numeric = static_cast<size_t>(
        static_cast<double>(n_domains) * options.numeric_domain_ratio + 0.5);
    n_numeric = std::min(n_numeric, numeric_domains.size());
    size_t n_text = n_domains > n_numeric ? n_domains - n_numeric : 1;
    n_text = std::min(n_text, text_domains.size());

    std::vector<uint32_t> cluster_domains;
    for (size_t i : rng.SampleIndices(text_domains.size(), n_text)) {
      cluster_domains.push_back(text_domains[i]);
    }
    for (size_t i : rng.SampleIndices(numeric_domains.size(), n_numeric)) {
      cluster_domains.push_back(numeric_domains[i]);
    }

    // Shared entity instance pool: the glue that makes cluster tables
    // joinable through their subject attributes.
    std::vector<std::string> entity_pool;
    entity_pool.reserve(options.entity_pool_size);
    {
      Rng pool_rng(Mix64(options.seed ^ (cl * 2654435761ULL)));
      for (size_t i = 0; i < options.entity_pool_size; ++i) {
        entity_pool.push_back(reg.GenerateValue(entity_domain, 0, &pool_rng));
      }
      std::sort(entity_pool.begin(), entity_pool.end());
      entity_pool.erase(std::unique(entity_pool.begin(), entity_pool.end()),
                        entity_pool.end());
    }

    size_t n_tables = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.tables_per_cluster_min),
                       static_cast<int64_t>(options.tables_per_cluster_max)));

    for (size_t tb = 0; tb < n_tables; ++tb) {
      // --- table schema: entity domain (usually) + property subset -------
      bool has_entity = rng.Chance(options.entity_domain_prob);
      size_t n_props = std::max<size_t>(
          2, static_cast<size_t>(rng.UniformInt(
                 2, static_cast<int64_t>(cluster_domains.size()))));
      std::vector<size_t> prop_idx = rng.SampleIndices(cluster_domains.size(), n_props);

      std::vector<uint32_t> col_domains;
      std::vector<bool> col_is_entity;
      if (has_entity) {
        col_domains.push_back(entity_domain);
        col_is_entity.push_back(true);
      }
      for (size_t pi : prop_idx) {
        col_domains.push_back(cluster_domains[pi]);
        col_is_entity.push_back(false);
      }

      std::string table_name = "real_" + std::to_string(cl) + "_" +
                               std::to_string(table_counter++);
      Table table(table_name);
      std::vector<uint64_t> labels;
      std::vector<size_t> col_variants;
      for (size_t c = 0; c < col_domains.size(); ++c) {
        std::string name = reg.PickAttributeName(col_domains[c], &rng);
        name = DirtyAttributeName(std::move(name), options.dirt, &rng);
        std::string unique = name;
        int suffix = 2;
        while (table.ColumnIndex(unique) >= 0) {
          unique = name + " " + std::to_string(suffix++);
        }
        D3L_RETURN_NOT_OK(table.AddColumn(unique));
        if (col_is_entity[c]) {
          labels.push_back(ClusterEntityLabel(col_domains[c], cl));
        } else if (IsGenericDomain(reg, col_domains[c])) {
          labels.push_back(DomainLabel(col_domains[c]));
        } else {
          labels.push_back(ClusterScopedLabel(col_domains[c], cl));
        }
        // Each column commits to one representation variant; the variant
        // differs across tables, the inconsistency D3L's F evidence targets.
        col_variants.push_back(rng.Uniform(reg.spec(col_domains[c]).num_variants));
      }

      size_t n_rows = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(options.rows_min),
                         static_cast<int64_t>(options.rows_max)));
      // Sample entity rows without replacement where possible (subject
      // attributes are near-unique in real data).
      std::vector<size_t> entity_rows = rng.SampleIndices(
          entity_pool.size(), std::max(n_rows, entity_pool.size()));
      for (size_t r = 0; r < n_rows; ++r) {
        std::vector<std::string> row;
        row.reserve(col_domains.size());
        for (size_t c = 0; c < col_domains.size(); ++c) {
          std::string v;
          if (col_is_entity[c]) {
            v = entity_pool[entity_rows[r % entity_rows.size()]];
          } else {
            v = reg.GenerateValue(col_domains[c], col_variants[c], &rng);
          }
          row.push_back(DirtyValue(std::move(v), options.dirt, &rng));
        }
        D3L_RETURN_NOT_OK(table.AddRow(row));
      }

      out.truth.SetTableLabels(table_name, labels);
      D3L_RETURN_NOT_OK(out.lake.AddTable(std::move(table)));
    }
  }
  return out;
}

RealishOptions LargerRealOptions(size_t num_tables, uint64_t seed) {
  RealishOptions o;
  // Average tables per cluster is (min+max)/2 = 8.
  o.num_clusters = std::max<size_t>(1, num_tables / 8);
  // The 12 GB NHS crawl has dataset cardinalities in the hundreds-to-
  // thousands; these ranges exercise D3L's extent sampling against the
  // baselines' full-extent profiling, as in Experiment 4.
  o.rows_min = 150;
  o.rows_max = 1200;
  o.entity_pool_size = 800;
  o.seed = seed;
  return o;
}

}  // namespace d3l::benchdata

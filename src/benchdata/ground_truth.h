// Ground-truth bookkeeping for generated lakes.
//
// Both generators label every attribute with the identity of its
// originating domain (realish) or base-table column (synthetic); per
// Definition 1, two attributes are related iff they carry the same label,
// and two tables are related iff they share at least one attribute label.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace d3l::benchdata {

class GroundTruth {
 public:
  /// Registers a table's per-column labels (0 = unlabeled; unlabeled
  /// attributes are related to nothing).
  void SetTableLabels(const std::string& table, std::vector<uint64_t> labels);

  bool HasTable(const std::string& table) const { return labels_.count(table) > 0; }

  /// Definition-1 attribute relatedness: same non-zero label.
  bool AttributesRelated(const std::string& t1, uint32_t c1, const std::string& t2,
                         uint32_t c2) const;

  /// Table relatedness: at least one shared attribute label.
  bool TablesRelated(const std::string& t1, const std::string& t2) const;

  /// Label of one attribute (0 if unknown).
  uint64_t LabelOf(const std::string& table, uint32_t col) const;

  /// Number of lake tables related to `table` (the table itself excluded).
  size_t RelatedCount(const std::string& table) const;

  /// Target-attribute coverage support: which columns of `target` share a
  /// label with any column of `source`.
  std::vector<uint32_t> CoveredColumns(const std::string& target,
                                       const std::string& source) const;

  /// Mean RelatedCount over all tables (the paper's "average answer size").
  double AverageAnswerSize() const;

  size_t num_tables() const { return labels_.size(); }

 private:
  const std::vector<uint64_t>* Labels(const std::string& table) const;

  std::unordered_map<std::string, std::vector<uint64_t>> labels_;
  std::unordered_map<std::string, std::unordered_set<uint64_t>> label_sets_;
};

}  // namespace d3l::benchdata

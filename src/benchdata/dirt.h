// Cell-level dirtiness transforms for the real-world-like generator.
//
// The paper motivates D3L with lakes where "attributes may have names or
// values that denote the same real-world entity but are represented
// differently". Structural representation variance is produced by the
// per-column *variant* mechanism in DomainRegistry; this module adds
// character-level noise: typos, abbreviations, case changes and nulls.
#pragma once

#include <string>

#include "common/random.h"

namespace d3l::benchdata {

struct DirtOptions {
  double typo_prob = 0.07;        ///< per-cell chance of a character typo
  double abbrev_prob = 0.10;      ///< per-cell chance of word abbreviation
  double case_prob = 0.08;        ///< per-cell chance of case mangling
  double null_prob = 0.04;        ///< per-cell chance of a null marker
  double name_typo_prob = 0.12;   ///< per-attribute-name chance of a typo
};

/// \brief Applies character-level noise to a clean value.
std::string DirtyValue(std::string value, const DirtOptions& options, Rng* rng);

/// \brief Applies a typo to an attribute name with the configured chance.
std::string DirtyAttributeName(std::string name, const DirtOptions& options, Rng* rng);

/// \brief One random character-level typo (swap, drop or duplicate).
std::string ApplyTypo(std::string s, Rng* rng);

/// \brief Abbreviates one multi-character word ("Street" -> "Str.").
std::string AbbreviateWord(std::string s, Rng* rng);

}  // namespace d3l::benchdata

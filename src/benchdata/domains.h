// Built-in value domains used by the benchmark data generators.
//
// DESIGN.md §4: the paper's repositories are crawled UK/Canadian open-data
// CSVs; we replace them with seeded generators whose domains reproduce the
// statistical shape the paper reports (Fig. 2) — names, addresses,
// postcodes, dates, codes, plus numeric domains with distinct
// distributions so the Kolmogorov-Smirnov evidence has signal.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace d3l::benchdata {

enum class DomainKind { kText, kNumeric };

/// \brief Static description of one value domain.
struct DomainSpec {
  uint32_t id = 0;
  std::string name;                        ///< e.g. "city"
  DomainKind kind = DomainKind::kText;
  std::vector<std::string> name_synonyms;  ///< attribute-name choices
  size_t num_variants = 1;                 ///< representation variants
  bool entity_like = false;  ///< suitable as a subject attribute domain
};

/// \brief The registry of built-in domains and their value generators.
class DomainRegistry {
 public:
  /// The process-wide registry (immutable).
  static const DomainRegistry& Instance();

  const std::vector<DomainSpec>& domains() const { return specs_; }
  const DomainSpec& spec(uint32_t id) const { return specs_[id]; }
  size_t size() const { return specs_.size(); }

  /// Domain ids with entity_like = true (candidate subject domains).
  std::vector<uint32_t> EntityDomains() const;
  /// Domain ids by kind.
  std::vector<uint32_t> TextDomains() const;
  std::vector<uint32_t> NumericDomains() const;

  /// Generates one clean value of the domain in the given representation
  /// variant (0 <= variant < spec.num_variants). Deterministic given rng.
  std::string GenerateValue(uint32_t id, size_t variant, Rng* rng) const;

  /// Picks an attribute name for the domain (a synonym), deterministically.
  std::string PickAttributeName(uint32_t id, Rng* rng) const;

  /// Token -> domain-id mapping over the registry's text vocabulary; used
  /// to build the synthetic YAGO knowledge base for the TUS baseline.
  std::unordered_map<std::string, std::vector<uint32_t>> BuildKbVocabulary() const;

  /// Id of a domain by name; aborts if unknown (programming error).
  uint32_t IdOf(const std::string& name) const;

 private:
  DomainRegistry();

  std::vector<DomainSpec> specs_;
};

}  // namespace d3l::benchdata

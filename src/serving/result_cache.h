// A sharded LRU cache of SearchResults, keyed by 128-bit query
// fingerprints — the "repeated queries skip retrieval entirely" layer of
// DiscoveryService.
//
// Keys are two independent 64-bit hashes of the same canonical byte string
// (backend identity + options fingerprint + serialized target profiles and
// signatures + k + evidence mask; see discovery_service.h), making an
// accidental collision between distinct queries vanishingly unlikely
// (~2^-128 per pair) while keeping the stored entries small. The cache is
// split into independently locked shards selected by key bits, so
// concurrent Submit() storms contend only when they hash to the same
// shard. Each shard runs exact LRU over its own capacity slice.
//
// Hits return deep copies: a cached SearchResult is byte-identical to the
// result a fresh retrieval would produce (asserted by tests/service_test.cc)
// and the cache never hands out references into mutable internal state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/query.h"

namespace d3l::serving {

/// \brief 128-bit cache key: two independent hashes of the canonical query
/// byte string.
struct CacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const CacheKey&) const = default;
};

/// \brief Sharded LRU map from CacheKey to SearchResult.
class ResultCache {
 public:
  /// Point-in-time counters (monotone except `entries`).
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    size_t entries = 0;   ///< currently cached results
    size_t capacity = 0;  ///< total across shards
  };

  /// A cache holding at most `capacity` results across `num_shards`
  /// independently locked shards (each gets an equal slice, at least 1).
  /// `capacity` 0 disables caching: Lookup always misses, Insert is a
  /// no-op. `num_shards` is clamped to [1, capacity] so no shard sits
  /// permanently empty.
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  /// On hit, deep-copies the cached result into `*out`, marks the entry
  /// most-recently-used and returns true. On miss returns false.
  bool Lookup(const CacheKey& key, core::SearchResult* out);

  /// Inserts (or refreshes) a result, evicting the shard's least recently
  /// used entry when its slice is full.
  void Insert(const CacheKey& key, core::SearchResult result);

  /// Drops every entry (counters are kept).
  void Clear();

  size_t capacity() const { return capacity_; }
  Stats GetStats() const;

 private:
  struct KeyHash {
    size_t operator()(const CacheKey& k) const {
      // lo alone is already a high-quality 64-bit hash of the query bytes.
      return static_cast<size_t>(k.lo);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    /// Most-recently-used at the front. The map owns iterators into it.
    /// Results are held by shared_ptr so a hit can take a reference under
    /// the lock and deep-copy OUTSIDE it — the copy of a large result must
    /// not serialize every other hit on this shard.
    std::list<std::pair<CacheKey, std::shared_ptr<const core::SearchResult>>> lru;
    std::unordered_map<CacheKey, decltype(lru)::iterator, KeyHash> index;
    size_t capacity = 0;
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    // hi selects the shard, lo buckets within it: the two dimensions use
    // independent hash bits.
    return shards_[key.hi % shards_.size()];
  }

  size_t capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace d3l::serving

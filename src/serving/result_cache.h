// A sharded LRU cache of SearchResults, keyed by 128-bit query
// fingerprints — the "repeated queries skip retrieval entirely" layer of
// DiscoveryService.
//
// Keys are two independent 64-bit hashes of the same canonical byte string
// (backend identity + options fingerprint + serialized target profiles and
// signatures + k + evidence mask; see discovery_service.h), making an
// accidental collision between distinct queries vanishingly unlikely
// (~2^-128 per pair) while keeping the stored entries small. The cache is
// split into independently locked shards selected by key bits, so
// concurrent Submit() storms contend only when they hash to the same
// shard. Each shard runs exact LRU over its own capacity slice.
//
// Eviction is bounded two ways: an entry-count capacity and an optional
// byte budget over the (approximate) deep size of the cached results —
// a few huge SearchResults can no longer blow past the memory the
// operator provisioned. Each shard always retains at least the entry it
// just admitted, so a single oversized result still serves repeats.
//
// Targets that retrieve nothing are remembered too: a negative entry
// records "this key produced an empty ranking" without storing the heavy
// profile payload, and the front-end reconstructs the empty result from
// the target it just profiled. Negative entries live in the same LRU and
// are invalidated by the same index-fingerprint keying as positive ones.
//
// Hits return deep copies: a cached SearchResult is byte-identical to the
// result a fresh retrieval would produce (asserted by tests/service_test.cc)
// and the cache never hands out references into mutable internal state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/query.h"
#include "obs/metrics.h"

namespace d3l::serving {

/// \brief 128-bit cache key: two independent hashes of the canonical query
/// byte string.
struct CacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const CacheKey&) const = default;
};

/// \brief Approximate deep size of a SearchResult (ranked matches, pair
/// rows, candidate alignments, target profiles and signatures) — the unit
/// the cache's byte budget is accounted in.
size_t ApproxResultBytes(const core::SearchResult& result);

/// \brief What a cache probe found.
enum class CacheLookup {
  kMiss,      ///< nothing cached for this key
  kHit,       ///< a full result was copied out
  kNegative,  ///< the key is known to produce an empty ranking
};

/// \brief Sharded LRU map from CacheKey to SearchResult.
class ResultCache {
 public:
  /// Point-in-time counters (monotone except `entries`/`bytes`). A thin
  /// view over the cache's registry instruments — GetStats() reads the same
  /// series a STAT scrape exports, there is no second bookkeeping to drift.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t negative_hits = 0;  ///< probes answered by a negative entry
    size_t insertions = 0;
    size_t evictions = 0;
    size_t entries = 0;           ///< currently cached results (both kinds)
    size_t negative_entries = 0;  ///< subset of `entries` that are negative
    size_t capacity = 0;          ///< entry budget across shards
    size_t bytes = 0;             ///< accounted bytes currently cached
    size_t max_bytes = 0;         ///< byte budget (0 = unbounded)
  };

  /// A cache holding at most `capacity` results across `num_shards`
  /// independently locked shards (each gets an equal slice, at least 1).
  /// `max_bytes`, when non-zero, additionally bounds the summed
  /// ApproxResultBytes of the cached entries (also sliced per shard).
  /// `capacity` 0 disables caching: Lookup always misses, Insert is a
  /// no-op. `num_shards` is clamped to [1, capacity] so no shard sits
  /// permanently empty. Counters and occupancy gauges report into
  /// `registry` (null = the process default) as d3l_result_cache_* series.
  explicit ResultCache(size_t capacity, size_t num_shards = 8,
                       size_t max_bytes = 0,
                       obs::MetricRegistry* registry = nullptr);

  /// On a hit, deep-copies the cached result into `*out` and marks the
  /// entry most-recently-used. A negative hit touches recency but leaves
  /// `*out` alone — the caller reconstructs the empty result itself.
  CacheLookup Lookup(const CacheKey& key, core::SearchResult* out);

  /// Inserts (or refreshes) a result, evicting the shard's least recently
  /// used entries while its slice exceeds the entry or byte budget (the
  /// newly admitted entry itself is never evicted).
  void Insert(const CacheKey& key, core::SearchResult result);

  /// Records that `key` produces an empty ranking (no candidates). Stored
  /// in the same LRU as full results, at a fixed small accounting size.
  void InsertNegative(const CacheKey& key);

  /// Drops every entry (counters are kept).
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t max_bytes() const { return max_bytes_; }
  Stats GetStats() const;

 private:
  struct KeyHash {
    size_t operator()(const CacheKey& k) const {
      // lo alone is already a high-quality 64-bit hash of the query bytes.
      return static_cast<size_t>(k.lo);
    }
  };

  /// One cached outcome: a full result, or a negative marker (null).
  struct Entry {
    CacheKey key;
    /// Held by shared_ptr so a hit can take a reference under the lock and
    /// deep-copy OUTSIDE it — the copy of a large result must not
    /// serialize every other hit on this shard. Null for negative entries.
    std::shared_ptr<const core::SearchResult> result;
    size_t bytes = 0;  ///< accounted size at insertion time
  };

  struct Shard {
    mutable Mutex mu;
    /// Most-recently-used at the front. The map owns iterators into it.
    std::list<Entry> lru D3L_GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index
        D3L_GUARDED_BY(mu);
    // The budgets are set once in the ResultCache constructor (before any
    // concurrent access) and read-only afterwards — deliberately unguarded.
    size_t capacity = 0;
    size_t byte_budget = 0;  ///< 0 = unbounded
    // Occupancy the EVICTION logic needs under this shard's lock; the
    // outcome counters live directly on the registry instruments below
    // (atomic — no reason to shard them).
    size_t bytes_used D3L_GUARDED_BY(mu) = 0;
    size_t negative_entries D3L_GUARDED_BY(mu) = 0;
  };

  void InsertEntry(const CacheKey& key,
                   std::shared_ptr<const core::SearchResult> result, size_t bytes);

  Shard& ShardFor(const CacheKey& key) {
    // hi selects the shard, lo buckets within it: the two dimensions use
    // independent hash bits.
    return shards_[key.hi % shards_.size()];
  }

  size_t capacity_ = 0;
  size_t max_bytes_ = 0;

  // Registry instruments: counters for probe/insert outcomes, gauges for
  // current occupancy (updated under the owning shard's lock).
  std::shared_ptr<obs::Counter> hits_;
  std::shared_ptr<obs::Counter> misses_;
  std::shared_ptr<obs::Counter> negative_hits_;
  std::shared_ptr<obs::Counter> insertions_;
  std::shared_ptr<obs::Counter> evictions_;
  std::shared_ptr<obs::Gauge> entries_gauge_;
  std::shared_ptr<obs::Gauge> negative_entries_gauge_;
  std::shared_ptr<obs::Gauge> bytes_gauge_;

  std::vector<Shard> shards_;
};

}  // namespace d3l::serving

#include "serving/result_cache.h"

#include <algorithm>

namespace d3l::serving {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity),
      shards_(std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, capacity)))) {
  // Distribute the capacity as evenly as possible; the first
  // `capacity % shards` shards take the remainder.
  const size_t base = capacity_ / shards_.size();
  size_t remainder = capacity_ % shards_.size();
  for (Shard& shard : shards_) {
    shard.capacity = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
  }
}

bool ResultCache::Lookup(const CacheKey& key, core::SearchResult* out) {
  if (capacity_ == 0) return false;
  Shard& shard = ShardFor(key);
  std::shared_ptr<const core::SearchResult> result;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return false;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    result = it->second->second;
  }
  // Deep copy outside the lock: concurrent hits on this shard only
  // serialize on the pointer grab above, not on copying whole results.
  // (The shared_ptr keeps the entry's bytes alive even if it is evicted
  // or refreshed between unlock and copy.)
  *out = *result;
  return true;
}

void ResultCache::Insert(const CacheKey& key, core::SearchResult result) {
  if (capacity_ == 0) return;
  auto entry = std::make_shared<const core::SearchResult>(std::move(result));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  ++shard.insertions;  // refreshes count too: one per Insert call
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: identical key means identical bytes, but overwrite anyway so
    // a refresh behaves like an insert (and bump recency).
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // The constructor clamps the shard count so every shard's slice is >= 1;
  // evicting from the tail therefore always leaves room for the insert.
  while (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  stats.capacity = capacity_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace d3l::serving

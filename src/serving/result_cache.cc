#include "serving/result_cache.h"

#include <algorithm>

namespace d3l::serving {

namespace {
/// Accounting size of a negative entry: the Entry bookkeeping plus the
/// hash-map node around it. Small but non-zero, so a flood of negative
/// inserts still respects the byte budget.
constexpr size_t kNegativeEntryBytes = 96;

/// Per-node overhead of an unordered_map / list entry (two pointers, hash,
/// allocator rounding) — a deliberate estimate, not an ABI promise.
constexpr size_t kNodeOverhead = 48;
}  // namespace

size_t ApproxResultBytes(const core::SearchResult& result) {
  size_t bytes = sizeof(core::SearchResult);
  for (const core::TableMatch& m : result.ranked) {
    bytes += sizeof(core::TableMatch) + m.pairs.size() * sizeof(core::PairDistances);
  }
  for (const auto& [table, aligns] : result.candidate_alignments) {
    (void)table;
    bytes += kNodeOverhead + aligns.size() * sizeof(std::pair<uint32_t, uint32_t>);
  }
  for (const core::AttributeProfile& p : result.target_profiles) {
    bytes += p.MemoryUsage();
  }
  for (const core::AttributeSignatures& s : result.target_sigs) {
    bytes += sizeof(core::AttributeSignatures);
    bytes += (s.name_sig.size() + s.value_sig.size() + s.format_sig.size() +
              s.emb_sig.words.size()) *
             sizeof(uint64_t);
  }
  return bytes;
}

ResultCache::ResultCache(size_t capacity, size_t num_shards, size_t max_bytes,
                         obs::MetricRegistry* registry)
    : capacity_(capacity),
      max_bytes_(max_bytes),
      shards_(std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, capacity)))) {
  obs::MetricRegistry& reg =
      registry ? *registry : obs::MetricRegistry::Default();
  hits_ = reg.AddCounter("d3l_result_cache_hits_total", {},
                         "Probes answered by a cached full result");
  misses_ = reg.AddCounter("d3l_result_cache_misses_total", {},
                           "Probes that found nothing cached");
  negative_hits_ = reg.AddCounter("d3l_result_cache_negative_hits_total", {},
                                  "Probes answered by a negative entry");
  insertions_ = reg.AddCounter("d3l_result_cache_insertions_total", {},
                               "Inserts including refreshes of existing keys");
  evictions_ = reg.AddCounter("d3l_result_cache_evictions_total", {},
                              "Entries evicted by the LRU budgets");
  entries_gauge_ = reg.AddGauge("d3l_result_cache_entries", {},
                                "Currently cached entries (both kinds)");
  negative_entries_gauge_ = reg.AddGauge("d3l_result_cache_negative_entries",
                                         {}, "Currently cached negative entries");
  bytes_gauge_ = reg.AddGauge("d3l_result_cache_bytes", {},
                              "Accounted bytes currently cached");
  // Distribute the budgets as evenly as possible; the first
  // `capacity % shards` shards take the remainder.
  const size_t base = capacity_ / shards_.size();
  size_t remainder = capacity_ % shards_.size();
  const size_t byte_base = max_bytes_ / shards_.size();
  size_t byte_remainder = max_bytes_ % shards_.size();
  for (Shard& shard : shards_) {
    shard.capacity = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    if (max_bytes_ > 0) {
      shard.byte_budget = byte_base + (byte_remainder > 0 ? 1 : 0);
      if (byte_remainder > 0) --byte_remainder;
      // A rounding-starved shard must still admit entries (the >= 1-entry
      // guarantee works in entries, not bytes).
      shard.byte_budget = std::max<size_t>(1, shard.byte_budget);
    }
  }
}

CacheLookup ResultCache::Lookup(const CacheKey& key, core::SearchResult* out) {
  if (capacity_ == 0) return CacheLookup::kMiss;
  Shard& shard = ShardFor(key);
  std::shared_ptr<const core::SearchResult> result;
  {
    MutexLock lk(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_->Increment();
      return CacheLookup::kMiss;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (it->second->result == nullptr) {
      negative_hits_->Increment();
      return CacheLookup::kNegative;
    }
    hits_->Increment();
    result = it->second->result;
  }
  // Deep copy outside the lock: concurrent hits on this shard only
  // serialize on the pointer grab above, not on copying whole results.
  // (The shared_ptr keeps the entry's bytes alive even if it is evicted
  // or refreshed between unlock and copy.)
  *out = *result;
  return CacheLookup::kHit;
}

void ResultCache::Insert(const CacheKey& key, core::SearchResult result) {
  if (capacity_ == 0) return;
  const size_t bytes = ApproxResultBytes(result);
  InsertEntry(key, std::make_shared<const core::SearchResult>(std::move(result)), bytes);
}

void ResultCache::InsertNegative(const CacheKey& key) {
  if (capacity_ == 0) return;
  InsertEntry(key, nullptr, kNegativeEntryBytes);
}

void ResultCache::InsertEntry(const CacheKey& key,
                              std::shared_ptr<const core::SearchResult> result,
                              size_t bytes) {
  Shard& shard = ShardFor(key);
  MutexLock lk(shard.mu);
  insertions_->Increment();  // refreshes count too: one per Insert call
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: identical key means identical outcome, but overwrite anyway
    // so a refresh behaves like an insert (and bump recency). The entry
    // kind can flip (a once-negative key re-inserted positively after a
    // k/mask-collision-free recompute never happens in practice, but the
    // accounting must stay consistent regardless).
    shard.bytes_used -= it->second->bytes;
    bytes_gauge_->Add(-static_cast<int64_t>(it->second->bytes));
    if (it->second->result == nullptr) {
      --shard.negative_entries;
      negative_entries_gauge_->Add(-1);
    }
    it->second->result = std::move(result);
    it->second->bytes = bytes;
    shard.bytes_used += bytes;
    bytes_gauge_->Add(static_cast<int64_t>(bytes));
    if (it->second->result == nullptr) {
      ++shard.negative_entries;
      negative_entries_gauge_->Add(1);
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (result == nullptr) {
      ++shard.negative_entries;
      negative_entries_gauge_->Add(1);
    }
    shard.lru.push_front(Entry{key, std::move(result), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes_used += bytes;
    bytes_gauge_->Add(static_cast<int64_t>(bytes));
    entries_gauge_->Add(1);
  }
  // Trim to both budgets, never evicting the entry just admitted: a single
  // result larger than the whole byte slice still caches (and serves
  // repeats) as its shard's only entry.
  while (shard.lru.size() > 1 &&
         (shard.lru.size() > shard.capacity ||
          (shard.byte_budget > 0 && shard.bytes_used > shard.byte_budget))) {
    const Entry& victim = shard.lru.back();
    shard.bytes_used -= victim.bytes;
    bytes_gauge_->Add(-static_cast<int64_t>(victim.bytes));
    if (victim.result == nullptr) {
      --shard.negative_entries;
      negative_entries_gauge_->Add(-1);
    }
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    entries_gauge_->Add(-1);
    evictions_->Increment();
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    entries_gauge_->Add(-static_cast<int64_t>(shard.lru.size()));
    negative_entries_gauge_->Add(-static_cast<int64_t>(shard.negative_entries));
    bytes_gauge_->Add(-static_cast<int64_t>(shard.bytes_used));
    shard.lru.clear();
    shard.index.clear();
    shard.bytes_used = 0;
    shard.negative_entries = 0;
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  // A read of this cache's OWN instruments (other caches in the process
  // feed separate instrument instances even when the exported series
  // merge), so the struct stays exact per cache.
  Stats stats;
  stats.capacity = capacity_;
  stats.max_bytes = max_bytes_;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.negative_hits = negative_hits_->Value();
  stats.insertions = insertions_->Value();
  stats.evictions = evictions_->Value();
  stats.entries = static_cast<size_t>(entries_gauge_->Value());
  stats.negative_entries =
      static_cast<size_t>(negative_entries_gauge_->Value());
  stats.bytes = static_cast<size_t>(bytes_gauge_->Value());
  return stats;
}

}  // namespace d3l::serving

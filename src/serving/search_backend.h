// The unified query API every D3L serving deployment speaks.
//
// A SearchBackend is anything that can profile a target table into a
// QueryTarget and answer top-k relatedness queries from it: a single
// in-process D3LEngine (EngineBackend below), a scatter-gather
// ShardedEngine (sharded_engine.h), and — because the interface is
// polymorphic — whatever comes next (remote replicas, tiered indexes)
// without the front-ends changing. Profile and Search are split on purpose:
//
//   * a front-end profiles ONCE and may fan the QueryTarget out to several
//     backends, or fingerprint it for a result cache, before any retrieval
//     work happens (profiles depend only on the engine options, never on
//     the indexed lake);
//   * Search(target, k, mask) is then a pure function of the profiled
//     target and the backend's indexed data — which is what makes cached
//     results byte-identical to recomputed ones.
//
// Info() describes the backend's identity: table/attribute counts plus two
// fingerprints — the canonical options fingerprint (core::OptionsFingerprint)
// and an index fingerprint derived from the snapshot/manifest checksums the
// backend was opened from. DiscoveryService mixes both into its cache keys,
// so results cached against one index can never be served from another.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/query.h"
#include "table/lake.h"

namespace d3l::serving {

/// \brief What is actually answering queries behind a SearchBackend.
///
/// Typed (rather than the free-form string it once was) because the kind is
/// carried over the RPC wire and branched on by front-ends; the numeric
/// values are stable for the same reason StatusCode's are.
enum class BackendKind : uint32_t {
  kEngine = 0,   ///< one in-process core::D3LEngine
  kSharded = 1,  ///< scatter-gather over local shard snapshots
  kRemote = 2,   ///< scatter-gather over remote shard servers (RPC)
};

/// \brief Display name of a BackendKind: "engine" / "sharded" / "remote".
const char* BackendKindName(BackendKind kind);

/// \brief Inverse of BackendKindName; fails on unknown names.
Result<BackendKind> ParseBackendKind(const std::string& name);

/// \brief Identity and shape of a SearchBackend (the `Info()` view).
struct BackendInfo {
  BackendKind kind = BackendKind::kEngine;
  size_t num_tables = 0;      ///< datasets served
  size_t num_attributes = 0;  ///< attributes indexed
  size_t num_shards = 1;      ///< index partitions behind this backend
  /// core::OptionsFingerprint of the backend's options: backends agree
  /// exactly when they rank identically over identical data.
  uint64_t options_fingerprint = 0;
  /// Content identity of the indexed data. For snapshot/manifest-opened
  /// backends this is derived from the file checksums already maintained
  /// by src/io — reindexing or swapping the underlying files changes it,
  /// which is what invalidates result-cache entries across restarts.
  uint64_t index_fingerprint = 0;
};

/// \brief Abstract top-k dataset discovery backend (the tentpole API).
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// Profiles a target table into the backend-independent QueryTarget
  /// (per-column profiles + signatures + subject column). Fails on a
  /// table with no columns.
  virtual Result<core::QueryTarget> Profile(const Table& target) const = 0;

  /// Top-k datasets related to an already-profiled target, with an
  /// explicit evidence mask. Deterministic: equal (target, k, mask) against
  /// equal indexed data yields byte-identical SearchResults. Takes the
  /// target by value — the profiles/signatures end up inside the returned
  /// result — so callers done with a target move it in; callers keeping it
  /// (e.g. to fan one target out to several backends) pass a copy.
  virtual Result<core::SearchResult> Search(
      core::QueryTarget target, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask) const = 0;

  /// Convenience: Profile + Search with the backend options' evidence mask.
  Result<core::SearchResult> Search(const Table& target, size_t k) const;

  /// The (uniform) engine options behind this backend.
  virtual const core::D3LOptions& options() const = 0;

  /// Identity/shape metadata (cache keying, diagnostics).
  virtual BackendInfo Info() const = 0;

  /// Display name of a served dataset (SearchResult table indexes).
  virtual std::string table_name(uint32_t table_index) const = 0;
};

/// \brief SearchBackend adapter over a single in-process core::D3LEngine.
///
/// Non-owning by default: the engine and the lake it was built over must
/// outlive the backend. FromSnapshot() instead loads and owns an engine
/// from a .d3l file, with the index fingerprint tied to the file's size and
/// CRC32 (the checksums src/io already maintains).
class EngineBackend : public SearchBackend {
 public:
  /// Wraps a built engine. `index_fingerprint` pins the cache identity of
  /// the indexed data; pass 0 to derive one from the lake's schema
  /// fingerprint, attribute count, and each table's recorded source
  /// identity (file + size + CRC32, when present). Two backends swapped
  /// through a running service (DiscoveryService::SwapBackend) must not
  /// share a fingerprint unless their results are byte-identical — tables
  /// without a load-time source contribute only their schema here, so
  /// in-memory deployments should pass an explicit fingerprint or prefer
  /// FromSnapshot's checksum-derived identity, which guarantees it.
  EngineBackend(const core::D3LEngine* engine, const DataLake* lake,
                uint64_t index_fingerprint = 0);

  /// Loads a snapshot written by D3LEngine::SaveSnapshot and serves it,
  /// owning the engine and its schema metadata. The index fingerprint is
  /// derived from the snapshot's size and section checksums
  /// (io::FileIdentity — O(sections), no second full-file read). `mode`
  /// defaults to mapped loading (zero-copy index arrays where the format
  /// and platform allow it; silent buffered fallback otherwise).
  static Result<std::unique_ptr<EngineBackend>> FromSnapshot(
      const std::string& path,
      core::SnapshotLoadMode mode = core::SnapshotLoadMode::kMapped);

  using SearchBackend::Search;  // the Profile+Search convenience overload

  Result<core::QueryTarget> Profile(const Table& target) const override;
  Result<core::SearchResult> Search(
      core::QueryTarget target, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask) const override;
  const core::D3LOptions& options() const override { return engine_->options(); }
  BackendInfo Info() const override;
  std::string table_name(uint32_t table_index) const override;

  const core::D3LEngine& engine() const { return *engine_; }

 private:
  EngineBackend() = default;

  const core::D3LEngine* engine_ = nullptr;
  const DataLake* lake_ = nullptr;
  uint64_t index_fingerprint_ = 0;
  /// FromSnapshot ownership (declaration order: the lake must outlive the
  /// engine loaded over it, so it is destroyed last).
  std::unique_ptr<DataLake> owned_lake_;
  std::unique_ptr<core::D3LEngine> owned_engine_;
};

}  // namespace d3l::serving

// Scatter-gather query serving over a sharded lake.
//
// A ShardedEngine opens a manifest (see manifest.h), loads every shard's
// snapshot into its own D3LEngine replica and serves top-k discovery
// queries by fanning each query phase out across a fixed thread pool:
//
//   profile target        (once — signatures are shard-independent)
//   depth counts          (per shard)        \  summed at the coordinator,
//   resolve stop depths   (coordinator)       ) exactly reproducing the
//   collect candidates    (per shard)        /  single-engine stop rule
//   select first-m ids    (coordinator — the canonical id-order cap)
//   score candidates      (per shard)
//   gather + rank         (coordinator)
//
// Because shards index disjoint attribute sets, per-shard depth counts add
// into exactly the whole-lake counts, per-shard candidate lists merge into
// exactly the whole-lake id-order first-m, and per-candidate rows are pure
// functions of (query, candidate). After remapping shard-local ids onto the
// original lake's table/attribute numbering, the merged ranking is
// byte-identical to a single unsharded engine's — distances, evidence
// vectors, tie order and all (asserted by tests/serving_test.cc).
//
// ShardedEngine implements serving::SearchBackend, so front-ends
// (DiscoveryService, the CLI) address it and a single-engine deployment
// through one API: Profile(table) -> QueryTarget, then
// Search(target, k, mask) -> SearchResult.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "serving/manifest.h"
#include "serving/search_backend.h"
#include "serving/thread_pool.h"
#include "table/lake.h"

namespace d3l::serving {

struct ShardedEngineOptions {
  /// Worker threads in the query pool (0 = hardware concurrency). The
  /// calling thread always participates, so 0 workers would still serve.
  size_t num_threads = 0;
  /// Verify each shard file's size and CRC32 against the manifest before
  /// loading (catches torn copies and bit rot at open time).
  bool verify_checksums = true;
  /// How shard snapshots are loaded. kMapped (the default) borrows the
  /// index arrays straight out of the mapped file — replicas open faster
  /// and share page cache across processes; falls back to buffered reads
  /// where mmap is unavailable. kCopied forces the buffered path.
  core::SnapshotLoadMode load_mode = core::SnapshotLoadMode::kMapped;
  /// Manifest shard indices to actually load and serve; empty means all.
  /// A SUBSET engine is the building block of a remote deployment (one
  /// shard_server process per subset): it keeps the whole lake's GLOBAL
  /// numbering — reconstructed from the manifest's per-table column counts,
  /// so the manifest must be v3 — but answers only the phase API
  /// (CollectDepthCounts / ScoreAtStops) for its shards. Whole-lake
  /// Search/Execute on a subset engine fails with InvalidArgument, because
  /// stop depths resolved from a subset's counts alone would differ from
  /// the single-engine stop rule.
  std::vector<size_t> serve_shards;
};

/// \brief A batch of targets served together: M targets fan out into M x N
/// shard tasks per phase, amortizing pool scheduling and keeping every
/// worker busy even when single queries are cheap.
struct QueryBatch {
  std::vector<const Table*> targets;
  size_t k = 10;
};

/// \brief Parallel scatter-gather SearchBackend over N shard replicas.
class ShardedEngine : public SearchBackend {
 public:
  /// Loads every shard named by the manifest (eagerly). Fails with a clean
  /// Status on a missing shard file, a checksum/size mismatch, shards whose
  /// contents contradict the manifest, or shards built with diverging
  /// engine options (compared by core::OptionsFingerprint).
  ///
  /// `reuse` (optional) is the previous generation of the same deployment:
  /// shards whose manifest identity (file bytes, file CRC32, schema
  /// fingerprint) is unchanged share the previous engine's already-loaded
  /// replica instead of re-reading and re-indexing the snapshot, so a
  /// reload after an incremental UpdateShards pays only for the rebuilt
  /// shards. Shared replicas are read-only and reference-counted — the old
  /// generation may be destroyed first, in-flight queries included.
  static Result<std::unique_ptr<ShardedEngine>> Open(
      const std::string& manifest_path, ShardedEngineOptions options = {},
      const ShardedEngine* reuse = nullptr);

  size_t num_shards() const { return shards_.size(); }
  /// Shards adopted from the `reuse` engine rather than loaded from disk.
  size_t reused_replicas() const { return reused_replicas_; }
  size_t num_tables() const { return table_names_.size(); }
  size_t num_attributes() const { return attr_table_.size(); }
  const ShardManifest& manifest() const { return manifest_; }
  const core::D3LEngine& shard(size_t s) const { return *shards_[s]; }

  /// The manifest shard indices this engine loaded (ascending; every shard
  /// unless ShardedEngineOptions::serve_shards restricted the set).
  const std::vector<size_t>& served_shards() const { return served_; }
  bool serves_all() const { return served_.size() == manifest_.shards.size(); }

  /// One table this engine serves, in the lake's global numbering — what a
  /// shard server reports so a remote coordinator can stitch the partition
  /// back together.
  struct ServedTable {
    uint32_t global_id = 0;
    std::string name;
    uint32_t column_count = 0;
  };
  /// Every served table, ascending by global id.
  std::vector<ServedTable> ServedTables() const;

  // -- Phase API (remote scatter-gather building blocks) --
  //
  // A whole-lake query over N servers runs: every server sums depth counts
  // over its shards (CollectDepthCounts); the coordinator Add()s them and
  // resolves the stop depths once (core::D3LEngine::ResolveStopDepths, the
  // global stop rule); every server then retrieves + scores at those depths
  // (ScoreAtStops); the coordinator merges the returned global-id candidate
  // lists, re-caps at m, filters the rows to the selected per-column unions
  // and ranks. Byte-identical to one engine over the unsharded lake for the
  // same reasons the in-process scatter-gather is (see file header).

  /// Summed candidate depth counts over the served shards. `m` is the
  /// per-index early-termination budget (max(candidates_per_attribute, k)).
  Result<core::CandidateDepthCounts> CollectDepthCounts(
      const core::QueryTarget& target,
      const std::array<bool, core::kNumEvidence>& enabled_mask, size_t m) const;

  /// ScoreAtStops output: the served shards' contribution to one query.
  struct ShardScore {
    /// Per (column, evidence) candidate ids in GLOBAL numbering, ascending,
    /// merged across the served shards and capped at the m smallest — the
    /// coordinator re-merges these across servers and re-caps at m, which
    /// yields exactly the whole-lake first-m (an id in the global first-m
    /// owned by this server is necessarily in this server's first-m).
    core::CandidateLists lists;
    /// Scored rows for this server's per-column candidate unions, attribute
    /// ids in GLOBAL numbering. Rows are pure functions of (query,
    /// candidate); the coordinator drops rows for candidates that fall out
    /// of the global first-m after the cross-server merge.
    std::vector<core::PairDistances> rows;
  };

  /// Retrieval + scoring at externally resolved stop depths.
  Result<ShardScore> ScoreAtStops(
      const core::QueryTarget& target, const core::CandidateStopDepths& stops,
      size_t m, const std::array<bool, core::kNumEvidence>& enabled_mask) const;

  // -- SearchBackend --
  using SearchBackend::Search;  // the Profile+Search convenience overload

  /// Profiles a target once for all shards (signatures depend only on the
  /// uniform engine options, so any replica produces the same QueryTarget).
  Result<core::QueryTarget> Profile(const Table& target) const override;

  /// Top-k search from a profiled target over the whole sharded lake.
  /// TableMatch::table_index and the attribute ids inside
  /// pairs/candidate_alignments are GLOBAL (the original lake's numbering),
  /// so results read exactly like a single engine's over the unsharded lake.
  Result<core::SearchResult> Search(
      core::QueryTarget target, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask) const override;

  /// The (uniform) options every shard engine was built with.
  const core::D3LOptions& options() const override {
    return shards_[served_.front()]->options();
  }

  /// Backend identity: the index fingerprint folds every manifest entry's
  /// file and schema checksums, so rebuilding or swapping any shard file
  /// yields a different identity (and invalidates cached results).
  BackendInfo Info() const override;

  std::string table_name(uint32_t table_index) const override {
    return table_names_[table_index];
  }

  /// Batched execution: results[i] corresponds to batch.targets[i]. A bad
  /// target (null, or without columns) fails only its own slot. Targets
  /// are profiled in parallel and duplicates (same Table pointer) are
  /// profiled/scattered once.
  std::vector<Result<core::SearchResult>> Execute(const QueryBatch& batch) const;

 private:
  ShardedEngine(ShardManifest manifest, size_t num_threads);

  /// One batch slot after the profiling phase: failed, a duplicate of an
  /// earlier slot, or a profiled target ready for the scatter phases.
  struct ProfiledSlot {
    Status error;
    size_t dup_of = SIZE_MAX;  ///< earlier slot with the same profiled table
    core::QueryTarget qt;
  };

  /// Phases 2-5 (scatter depth counts, resolve, scatter candidates, score,
  /// gather/rank) for already-profiled slots — the shared engine behind
  /// both Search(QueryTarget) and Execute(QueryBatch).
  std::vector<Result<core::SearchResult>> ExecuteProfiled(
      std::vector<ProfiledSlot> slots, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask) const;

  ShardManifest manifest_;
  /// Schema-only metadata backing each loaded engine (must outlive it).
  /// shared_ptr (not unique_ptr) so an unchanged replica can be shared by
  /// consecutive reload generations; const because replicas are immutable
  /// once loaded — that immutability is what makes sharing race-free.
  std::vector<std::shared_ptr<const DataLake>> shard_lakes_;
  std::vector<std::shared_ptr<const core::D3LEngine>> shards_;
  size_t reused_replicas_ = 0;
  /// Loaded shard indices, ascending. Vectors above stay sized to the full
  /// manifest with null entries for unserved shards, so shard indices keep
  /// meaning manifest indices everywhere.
  std::vector<size_t> served_;

  std::vector<std::string> table_names_;          ///< [global table] -> name
  std::vector<uint32_t> attr_table_;              ///< [global attr] -> global table
  /// [shard][local attr] -> global attr. Strictly increasing in the local
  /// id (shards keep their tables in ascending global order), which is what
  /// lets per-shard candidate lists merge into the global id-order first-m.
  std::vector<std::vector<uint32_t>> attr_global_;
  std::vector<uint32_t> attr_shard_;              ///< [global attr] -> owning shard
  std::vector<uint32_t> attr_local_;              ///< [global attr] -> local attr id
  uint64_t index_fingerprint_ = 0;                ///< manifest checksum digest

  mutable ThreadPool pool_;
};

}  // namespace d3l::serving

#include "serving/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/thread_annotations.h"

namespace d3l::serving {

ThreadPool::ThreadPool(size_t num_workers, const char* name,
                       obs::MetricRegistry* registry) {
  if (name != nullptr) {
    obs::MetricRegistry& reg =
        registry ? *registry : obs::MetricRegistry::Default();
    const obs::LabelSet labels = {{"pool", name}};
    queue_depth_ = reg.AddGauge("d3l_thread_pool_queue_depth", labels,
                                "Posted tasks waiting for a worker");
    tasks_total_ = reg.AddCounter("d3l_thread_pool_tasks_total", labels,
                                  "Posted tasks run to completion");
    task_seconds_ = reg.AddHistogram("d3l_thread_pool_task_seconds", labels,
                                     "Posted task run time");
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(m_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  // Workers exit as soon as they observe stop_, possibly leaving queued
  // tasks behind; run them inline so no posted task (and no future backed
  // by one) is ever abandoned.
  DrainTasks();
}

size_t ThreadPool::DefaultThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::Drain() {
  for (;;) {
    size_t i;
    const std::function<void(size_t)>* fn;
    {
      MutexLock lk(m_);
      if (fn_ == nullptr || next_ >= n_) return;
      fn = fn_;
      i = next_++;
    }
    (*fn)(i);
    {
      MutexLock lk(m_);
      if (++completed_ == n_) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::DrainTasks() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(m_);
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      // Inside the lock so the gauge moves with the queue it describes
      // (outside, a concurrent pop could briefly read as a negative depth).
      if (queue_depth_) queue_depth_->Add(-1);
    }
    RunContained(task);
  }
}

void ThreadPool::RunContained(const std::function<void()>& task) {
  const auto start = task_seconds_ ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point();
  try {
    task();
  } catch (...) {
    // A throw here would std::terminate the worker (and with it the whole
    // process), silently abandoning every queued task. Contain it instead;
    // the task's own promise (if any) is the task's responsibility.
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (task_seconds_) {
    task_seconds_->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    tasks_total_->Increment();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      MutexLock lk(m_);
      while (!(stop_ || !tasks_.empty() ||
               (fn_ != nullptr && epoch_ != seen_epoch && next_ < n_))) {
        wake_cv_.Wait(lk);
      }
      if (stop_) return;
      seen_epoch = epoch_;
    }
    Drain();       // batches first: they are a blocked caller's inner loop
    DrainTasks();  // then any queued service work
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One batch owns the pool at a time; a second caller queues here.
  MutexLock batch(batch_mutex_);
  {
    MutexLock lk(m_);
    fn_ = &fn;
    n_ = n;
    next_ = 0;
    completed_ = 0;
    ++epoch_;
  }
  wake_cv_.NotifyAll();
  Drain();  // the caller works too — correct even with zero workers
  MutexLock lk(m_);
  while (completed_ != n_) done_cv_.Wait(lk);
  fn_ = nullptr;
}

void ThreadPool::Post(std::function<void()> fn) {
  if (workers_.empty()) {
    RunContained(fn);  // no one would ever pick it up; run inline
    return;
  }
  {
    MutexLock lk(m_);
    tasks_.push_back(std::move(fn));
    if (queue_depth_) queue_depth_->Add(1);
  }
  wake_cv_.NotifyOne();
}

}  // namespace d3l::serving

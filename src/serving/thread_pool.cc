#include "serving/thread_pool.h"

#include <algorithm>
#include <utility>

namespace d3l::serving {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers exit as soon as they observe stop_, possibly leaving queued
  // tasks behind; run them inline so no posted task (and no future backed
  // by one) is ever abandoned.
  DrainTasks();
}

size_t ThreadPool::DefaultThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::Drain() {
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (fn_ == nullptr || next_ >= n_) return;
      i = next_++;
    }
    (*fn_)(i);
    {
      std::lock_guard<std::mutex> lk(m_);
      if (++completed_ == n_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::DrainTasks() {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    RunContained(task);
  }
}

void ThreadPool::RunContained(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    // A throw here would std::terminate the worker (and with it the whole
    // process), silently abandoning every queued task. Contain it instead;
    // the task's own promise (if any) is the task's responsibility.
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      wake_cv_.wait(lk, [&] {
        return stop_ || !tasks_.empty() ||
               (fn_ != nullptr && epoch_ != seen_epoch && next_ < n_);
      });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    Drain();       // batches first: they are a blocked caller's inner loop
    DrainTasks();  // then any queued service work
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // One batch owns the pool at a time; a second caller queues here.
  std::lock_guard<std::mutex> batch(batch_mutex_);
  {
    std::lock_guard<std::mutex> lk(m_);
    fn_ = &fn;
    n_ = n;
    next_ = 0;
    completed_ = 0;
    ++epoch_;
  }
  wake_cv_.notify_all();
  Drain();  // the caller works too — correct even with zero workers
  std::unique_lock<std::mutex> lk(m_);
  done_cv_.wait(lk, [&] { return completed_ == n_; });
  fn_ = nullptr;
}

void ThreadPool::Post(std::function<void()> fn) {
  if (workers_.empty()) {
    RunContained(fn);  // no one would ever pick it up; run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    tasks_.push_back(std::move(fn));
  }
  wake_cv_.notify_one();
}

}  // namespace d3l::serving

// The shard planner/builder: partitions a DataLake into N disjoint table
// subsets, indexes each subset with its own D3LEngine and persists the
// result as N snapshot files plus a manifest (see manifest.h).
//
// Every shard engine is built with the SAME options (hashers, seeds,
// profile settings), which is the precondition for ShardedEngine's exact
// scatter-gather: identical options make target signatures and pairwise
// distances shard-independent, so only candidate stop depths and the Eq. 2
// distributions need global coordination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "serving/manifest.h"
#include "table/lake.h"

namespace d3l::serving {

struct ShardingOptions {
  size_t num_shards = 2;

  enum class Balance {
    kRoundRobin,     ///< table i goes to shard i % N
    kSizeBalanced,   ///< greedy LPT on cell counts (rows * columns)
  };
  Balance balance = Balance::kSizeBalanced;

  /// Options for every shard engine (must be uniform across shards).
  core::D3LOptions engine;
};

/// \brief A partition of the lake: plan[s] holds the global table ids of
/// shard s, in shard-local order (ascending, so local relative order
/// matches the lake's).
using ShardPlan = std::vector<std::vector<uint32_t>>;

/// \brief Plans the partition without building anything. Fails when
/// num_shards is 0 or exceeds the table count.
Result<ShardPlan> PlanShards(const DataLake& lake, const ShardingOptions& options);

/// \brief What BuildShards produced.
struct ShardBuildReport {
  std::string manifest_path;
  std::vector<std::string> shard_paths;
  ShardPlan plan;
  double build_seconds = 0;  ///< total profiling + indexing + writing
};

/// \brief Plans, indexes and persists a sharded deployment rooted at
/// `out_base`: writes `<out_base>.shard<i>.d3l` per shard and
/// `<out_base>.manifest`. Existing files are overwritten.
Result<ShardBuildReport> BuildShards(const DataLake& lake,
                                     const ShardingOptions& options,
                                     const std::string& out_base);

}  // namespace d3l::serving

// The shard planner/builder: partitions a DataLake into N disjoint table
// subsets, indexes each subset with its own D3LEngine and persists the
// result as N snapshot files plus a manifest (see manifest.h).
//
// Every shard engine is built with the SAME options (hashers, seeds,
// profile settings), which is the precondition for ShardedEngine's exact
// scatter-gather: identical options make target signatures and pairwise
// distances shard-independent, so only candidate stop depths and the Eq. 2
// distributions need global coordination.
//
// Deployments built here are incrementally rebuildable: the v2 manifest
// records every table's source identity, and UpdateShards() diffs a
// current lake against it to re-profile only the shards whose tables were
// added, removed or content-changed — with the guarantee that the updated
// deployment answers Search byte-identically to a from-scratch BuildShards
// over the new lake at the same placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "serving/manifest.h"
#include "table/lake.h"

namespace d3l::serving {

struct ShardingOptions {
  size_t num_shards = 2;

  enum class Balance {
    kRoundRobin,     ///< table i goes to shard i % N
    kSizeBalanced,   ///< greedy LPT on cell counts (rows * columns)
  };
  Balance balance = Balance::kSizeBalanced;

  /// Options for every shard engine (must be uniform across shards).
  core::D3LOptions engine;
};

/// \brief A partition of the lake: plan[s] holds the global table ids of
/// shard s, in shard-local order (ascending, so local relative order
/// matches the lake's).
using ShardPlan = std::vector<std::vector<uint32_t>>;

/// \brief Plans the partition without building anything. Fails when
/// num_shards is 0 or exceeds the table count.
Result<ShardPlan> PlanShards(const DataLake& lake, const ShardingOptions& options);

/// \brief What BuildShards produced.
struct ShardBuildReport {
  std::string manifest_path;
  std::vector<std::string> shard_paths;
  ShardPlan plan;
  double build_seconds = 0;  ///< total profiling + indexing + writing
};

/// \brief Plans, indexes and persists a sharded deployment rooted at
/// `out_base`: writes `<out_base>.shard<i>.d3l` per shard and
/// `<out_base>.manifest`. Existing files are replaced atomically (each
/// write goes to a temp file renamed into place on success).
///
/// A non-null `plan` overrides the planner — the partition is used as
/// given after validation (exact cover of the lake, every shard non-empty
/// and ascending). This is how a caller reproduces a known placement, e.g.
/// to verify an incremental update against a from-scratch build.
Result<ShardBuildReport> BuildShards(const DataLake& lake,
                                     const ShardingOptions& options,
                                     const std::string& out_base,
                                     const ShardPlan* plan = nullptr);

/// \brief What UpdateShards changed, per the diff of the lake against the
/// previous manifest.
struct ShardUpdateReport {
  std::string manifest_path;
  std::vector<std::string> shard_paths;  ///< every shard, new layout
  ShardPlan plan;                        ///< the updated placement
  std::vector<size_t> rebuilt_shards;    ///< shard indices re-profiled
  size_t shards_reused = 0;              ///< snapshots kept as-is
  std::vector<std::string> added;        ///< source files new to the lake
  std::vector<std::string> removed;      ///< source files no longer present
  std::vector<std::string> changed;      ///< source files with new bytes/crc
  double build_seconds = 0;              ///< re-profiling + writing only
};

/// \brief Incrementally rebuilds the deployment at `out_base` to serve
/// `lake`: diffs the lake's table sources against the existing (v2)
/// manifest, keeps the placement of unchanged tables, assigns added tables
/// by the deployment's recorded balance policy, re-profiles ONLY the
/// affected shards and rewrites the manifest. Rebuilt shards are written
/// to staged paths (StagedShardPath) and committed — renamed onto the
/// final paths, then the manifest saved last — only after every rebuild
/// succeeded, so a mid-update failure returns the error with the OLD
/// deployment intact and still serveable; a crash inside the narrow
/// commit window leaves a manifest whose checksums reject the mixed shard
/// set, repaired by rerunning.
///
/// The deployed configuration wins over the caller's: the shard count and
/// balance policy stay the manifest's (`options.num_shards` and
/// `options.balance` are ignored), and `options.engine` must
/// fingerprint-match the deployed shards' options — a drift would make
/// reused and rebuilt shards rank differently, so it fails loudly instead.
/// Fails when a shard would end up empty or the manifest lacks source
/// identities (v1): both need a full BuildShards.
///
/// Equivalence guarantee: the updated deployment's Search results are
/// byte-identical to a from-scratch BuildShards over `lake` with the
/// reported plan (asserted by tests/incremental_test.cc).
Result<ShardUpdateReport> UpdateShards(const DataLake& lake,
                                       const ShardingOptions& options,
                                       const std::string& out_base);

}  // namespace d3l::serving

#include "serving/search_backend.h"

#include <utility>

#include "common/hash.h"
#include "serving/manifest.h"

namespace d3l::serving {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kEngine:
      return "engine";
    case BackendKind::kSharded:
      return "sharded";
    case BackendKind::kRemote:
      return "remote";
  }
  return "unknown";
}

Result<BackendKind> ParseBackendKind(const std::string& name) {
  if (name == "engine") return BackendKind::kEngine;
  if (name == "sharded") return BackendKind::kSharded;
  if (name == "remote") return BackendKind::kRemote;
  return Status::InvalidArgument("unknown backend kind '" + name + "'");
}

Result<core::SearchResult> SearchBackend::Search(const Table& target,
                                                 size_t k) const {
  D3L_ASSIGN_OR_RETURN(core::QueryTarget qt, Profile(target));
  return Search(std::move(qt), k, options().enabled);
}

EngineBackend::EngineBackend(const core::D3LEngine* engine, const DataLake* lake,
                             uint64_t index_fingerprint)
    : engine_(engine), lake_(lake), index_fingerprint_(index_fingerprint) {
  if (index_fingerprint_ == 0) {
    // Derived identity for in-process engines. The schema fingerprint alone
    // collides for two lakes with identical table/column names but
    // different cells (e.g. a CSV directory re-loaded after an edit), and
    // swapping such backends through DiscoveryService::SwapBackend would
    // then serve stale cached results — so fold in the per-table SOURCE
    // identities (file + size + CRC32) wherever the lake records them.
    // Remaining caveat: tables built purely in memory carry no source, so
    // two in-memory lakes with equal schemas but different cells still
    // collide; such deployments should pass an explicit fingerprint or
    // serve via FromSnapshot, whose identity covers the full content.
    index_fingerprint_ = HashCombine(
        HashCombine(SchemaFingerprint(*lake), engine_->indexes().num_attributes()),
        core::OptionsFingerprint(engine_->options()));
    for (size_t t = 0; t < lake->size(); ++t) {
      const TableSource& src = lake->table(t).source();
      if (!src.valid()) continue;
      index_fingerprint_ = HashCombine(
          index_fingerprint_,
          HashCombine(HashBytes(src.file.data(), src.file.size(), src.bytes),
                      src.crc32));
    }
  }
}

Result<std::unique_ptr<EngineBackend>> EngineBackend::FromSnapshot(
    const std::string& path, core::SnapshotLoadMode mode) {
  auto backend = std::unique_ptr<EngineBackend>(new EngineBackend());
  // Identity from the container's section table (size + stored section
  // CRCs, payloads seeked over): O(sections) I/O, while LoadSnapshot below
  // fully verifies the payload checksums it reads.
  D3L_ASSIGN_OR_RETURN(auto size_crc, io::FileIdentity(path));
  backend->owned_lake_ = std::make_unique<DataLake>();
  auto loaded = core::D3LEngine::LoadSnapshot(path, backend->owned_lake_.get(), mode);
  if (!loaded.ok()) return loaded.status();
  backend->owned_engine_ = std::move(loaded).ValueOrDie();
  backend->engine_ = backend->owned_engine_.get();
  backend->lake_ = backend->owned_lake_.get();
  backend->index_fingerprint_ = HashCombine(size_crc.first, size_crc.second);
  return backend;
}

Result<core::QueryTarget> EngineBackend::Profile(const Table& target) const {
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  return engine_->ProfileTarget(target);
}

Result<core::SearchResult> EngineBackend::Search(
    core::QueryTarget target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  return engine_->SearchTarget(std::move(target), k, enabled_mask);
}

BackendInfo EngineBackend::Info() const {
  BackendInfo info;
  info.kind = BackendKind::kEngine;
  info.num_tables = lake_->size();
  info.num_attributes = engine_->indexes().num_attributes();
  info.num_shards = 1;
  info.options_fingerprint = core::OptionsFingerprint(engine_->options());
  info.index_fingerprint = index_fingerprint_;
  return info;
}

std::string EngineBackend::table_name(uint32_t table_index) const {
  return lake_->table(table_index).name();
}

}  // namespace d3l::serving

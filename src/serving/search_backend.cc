#include "serving/search_backend.h"

#include <utility>

#include "common/hash.h"
#include "serving/manifest.h"

namespace d3l::serving {

Result<core::SearchResult> SearchBackend::Search(const Table& target,
                                                 size_t k) const {
  D3L_ASSIGN_OR_RETURN(core::QueryTarget qt, Profile(target));
  return Search(std::move(qt), k, options().enabled);
}

EngineBackend::EngineBackend(const core::D3LEngine* engine, const DataLake* lake,
                             uint64_t index_fingerprint)
    : engine_(engine), lake_(lake), index_fingerprint_(index_fingerprint) {
  if (index_fingerprint_ == 0) {
    // Schema-derived identity for in-process engines: distinguishes lakes
    // by their table/column names and size. Content-level identity (bit
    // rot, re-generated data under identical schemas) is only guaranteed
    // by the checksum-derived fingerprints of FromSnapshot / manifests.
    index_fingerprint_ = HashCombine(
        HashCombine(SchemaFingerprint(*lake), engine_->indexes().num_attributes()),
        core::OptionsFingerprint(engine_->options()));
  }
}

Result<std::unique_ptr<EngineBackend>> EngineBackend::FromSnapshot(
    const std::string& path) {
  auto backend = std::unique_ptr<EngineBackend>(new EngineBackend());
  // Identity from the container's section table (size + stored section
  // CRCs, payloads seeked over): O(sections) I/O, while LoadSnapshot below
  // fully verifies the payload checksums it reads.
  D3L_ASSIGN_OR_RETURN(auto size_crc, io::FileIdentity(path));
  backend->owned_lake_ = std::make_unique<DataLake>();
  auto loaded = core::D3LEngine::LoadSnapshot(path, backend->owned_lake_.get());
  if (!loaded.ok()) return loaded.status();
  backend->owned_engine_ = std::move(loaded).ValueOrDie();
  backend->engine_ = backend->owned_engine_.get();
  backend->lake_ = backend->owned_lake_.get();
  backend->index_fingerprint_ = HashCombine(size_crc.first, size_crc.second);
  return backend;
}

Result<core::QueryTarget> EngineBackend::Profile(const Table& target) const {
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  return engine_->ProfileTarget(target);
}

Result<core::SearchResult> EngineBackend::Search(
    core::QueryTarget target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  return engine_->SearchTarget(std::move(target), k, enabled_mask);
}

BackendInfo EngineBackend::Info() const {
  BackendInfo info;
  info.kind = "engine";
  info.num_tables = lake_->size();
  info.num_attributes = engine_->indexes().num_attributes();
  info.num_shards = 1;
  info.options_fingerprint = core::OptionsFingerprint(engine_->options());
  info.index_fingerprint = index_fingerprint_;
  return info;
}

std::string EngineBackend::table_name(uint32_t table_index) const {
  return lake_->table(table_index).name();
}

}  // namespace d3l::serving

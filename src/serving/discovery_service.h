// The asynchronous query front-end over any SearchBackend.
//
// DiscoveryService turns a backend (single engine or sharded) into a
// concurrent service: Submit(QueryRequest) enqueues the query on the
// service's ThreadPool and returns a std::future<QueryResponse>
// immediately; SubmitBatch amortizes that for request vectors. Each query
// runs
//
//   profile target  ->  cache lookup  ->  [hit: copy cached result]
//                                         [miss: backend Search + insert]
//
// with per-phase wall-clock stats recorded into the response. Queries that
// retrieve nothing are cached too — as lightweight negative entries whose
// hits reconstruct the empty result from the freshly profiled target — so
// a hot target with no candidates stops re-running retrieval.
//
// Result-cache keying. The 128-bit key is two seeded hashes of a canonical
// byte string: the backend's index fingerprint (snapshot/manifest
// checksums), its options fingerprint, the serialized target profiles +
// signatures (core::CanonicalTargetBytes), k, and the evidence mask. Two
// submissions collide exactly when nothing downstream of profiling could
// distinguish them — the same table text against the same index under the
// same options — so a hit may copy the stored result instead of
// re-retrieving, byte for byte. Opening a different snapshot (or a
// re-built one) changes the index fingerprint and thereby every key:
// invalidation across restarts rides on the checksums src/io already
// maintains, with no explicit flush protocol.
//
// Shutdown is graceful: the destructor (or Shutdown()) stops accepting new
// queries, then blocks until every in-flight and queued query has fulfilled
// its future — no future returned by Submit is ever broken.
//
// Hot reload. The backend is held as one immutable Generation (backend
// pointer + its BackendInfo) published through a shared_ptr; SwapBackend
// installs a replacement without pausing service. Each query captures
// exactly one generation snapshot when it starts executing and threads it
// through profile, cache keying, search, and cache insertion — so a query
// racing a swap runs entirely against the old generation and caches its
// result under the OLD index fingerprint, never under a key the new
// generation would read. In-flight queries keep the old backend alive via
// the snapshot's reference; it is destroyed when the last of them drains.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "core/query.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/result_cache.h"
#include "serving/search_backend.h"
#include "serving/thread_pool.h"

namespace d3l::serving {

struct DiscoveryServiceOptions {
  /// Worker threads executing queries (0 = hardware concurrency). With
  /// explicit 0 via `inline_execution`, see below.
  size_t num_threads = 0;
  /// Results cached across queries (0 disables caching entirely).
  size_t cache_capacity = 256;
  /// Lock shards inside the result cache (clamped to the capacity).
  size_t cache_shards = 8;
  /// Byte budget over the cached results' approximate deep sizes (0 =
  /// entry-count bound only). Bounded by default: a handful of huge
  /// SearchResults must not grow the cache past what was provisioned.
  size_t cache_max_bytes = 256ull << 20;
  /// When true the service runs every query inline on the Submit caller
  /// (no worker threads): deterministic single-threaded execution for
  /// tests and benchmarks; futures are ready when Submit returns.
  bool inline_execution = false;
  /// Registry the service's counters and phase histograms report into
  /// (null = the process default). Also handed to the ResultCache and the
  /// worker pool, so one Snapshot covers all three layers.
  obs::MetricRegistry* registry = nullptr;
  /// Record a span tree per query (queue wait, profile, cache, search —
  /// plus the per-server RPC spans a RemoteBackend stitches in). The trace
  /// rides back on QueryStats::trace. Off, queries skip every tracing
  /// branch and QueryStats::trace stays null.
  bool trace_queries = true;
  /// When > 0, a completed query whose total time reaches this threshold
  /// logs its full span tree at WARNING (needs trace_queries). 0 = off.
  double slow_query_seconds = 0;
};

/// \brief One discovery query: target table, k, optional evidence mask.
struct QueryRequest {
  const Table* target = nullptr;
  size_t k = 10;
  /// Evidence mask; defaults to the backend options' enabled set.
  std::optional<std::array<bool, core::kNumEvidence>> enabled;
  /// Skip cache lookup AND insertion for this query (always recompute).
  bool bypass_cache = false;
};

/// \brief Per-query execution metrics.
struct QueryStats {
  bool cache_hit = false;
  /// The hit was a negative entry: the backend was known to retrieve no
  /// candidates for this key, and the empty result was reconstructed from
  /// the freshly profiled target (byte-identical to recomputation).
  bool negative_hit = false;
  double queue_seconds = 0;    ///< Submit() to execution start
  double profile_seconds = 0;  ///< ProfileTarget
  double search_seconds = 0;   ///< backend retrieval+ranking (0 on a hit)
  double total_seconds = 0;    ///< Submit() to response ready
  /// Index fingerprint of the generation this query executed against —
  /// lets callers attribute a response to a reload generation.
  uint64_t index_fingerprint = 0;
  /// The query's span tree (null when tracing is off): queue/profile/
  /// cache/search phases, with any remote servers' handling stitched in
  /// under the same trace id. Render with obs::FormatTrace.
  std::shared_ptr<const obs::Trace> trace;
};

/// \brief The outcome a Submit future resolves to.
struct QueryResponse {
  Result<core::SearchResult> result;
  QueryStats stats;

  QueryResponse() : result(Status::Internal("query not executed")) {}
};

/// \brief Aggregate service counters (all queries since construction) — a
/// thin view over the service's registry instruments (the same series a
/// STAT scrape exports). Invariant once the service is quiescent:
/// submitted == completed + rejected (+ in-flight work while running).
struct ServiceStats {
  size_t submitted = 0;
  size_t completed = 0;
  size_t rejected = 0;     ///< refused at Submit (service shut down)
  size_t failed = 0;       ///< completed with a non-OK result
  size_t cache_hits = 0;     ///< includes negative hits
  size_t negative_hits = 0;  ///< empty-result queries answered by the cache
  size_t cache_misses = 0;   ///< executed queries that went to the backend
  ResultCache::Stats cache;
  double profile_seconds = 0;  ///< summed across queries
  double search_seconds = 0;
};

/// \brief Async top-k discovery serving with a result cache.
class DiscoveryService {
 public:
  /// Non-owning: the backend must outlive the service (and any SwapBackend
  /// that replaces it must happen-before its destruction).
  explicit DiscoveryService(const SearchBackend* backend,
                            DiscoveryServiceOptions options = {});

  /// Owning: the service keeps the backend alive as long as any in-flight
  /// query references its generation. This is the hot-reload constructor.
  explicit DiscoveryService(std::shared_ptr<const SearchBackend> backend,
                            DiscoveryServiceOptions options = {});

  /// Blocks until every accepted query has completed (idempotent; also run
  /// by the destructor). Queries submitted after Shutdown fail fast with
  /// an InvalidArgument response — their futures still resolve.
  ~DiscoveryService();
  void Shutdown() D3L_EXCLUDES(mu_);

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Enqueues one query; the future resolves to its response. Never
  /// blocks on query execution (inline_execution mode aside).
  std::future<QueryResponse> Submit(QueryRequest request) D3L_EXCLUDES(mu_);

  /// Enqueues a vector of queries; futures[i] corresponds to requests[i].
  std::vector<std::future<QueryResponse>> SubmitBatch(
      std::vector<QueryRequest> requests);

  /// Convenience: Submit + wait.
  QueryResponse Query(const QueryRequest& request);

  /// Atomically publishes a new backend generation. Returns immediately:
  /// queries already executing finish against the generation they captured
  /// (which stays alive through their snapshot reference); queries that
  /// start executing afterwards see the new one. The ResultCache needs no
  /// flush — the new generation's index fingerprint changes every key, so
  /// old entries can never hit and age out by LRU.
  void SwapBackend(std::shared_ptr<const SearchBackend> backend)
      D3L_EXCLUDES(gen_mu_);

  /// The currently published backend (a new Submit would run against it).
  std::shared_ptr<const SearchBackend> backend() const;
  /// The currently published generation's BackendInfo.
  BackendInfo Info() const;
  ServiceStats Stats() const;

  /// The cache key Submit would use for a profiled target against the
  /// CURRENT generation — exposed so tests and diagnostics can reason
  /// about hit/miss behavior directly.
  CacheKey KeyFor(const core::QueryTarget& target, size_t k,
                  const std::array<bool, core::kNumEvidence>& enabled_mask) const;

 private:
  /// One published backend: pointer + the BackendInfo captured at publish
  /// time. Immutable after construction; shared by every query that
  /// snapshots it.
  struct Generation {
    std::shared_ptr<const SearchBackend> backend;
    BackendInfo info;
  };

  std::shared_ptr<const Generation> CurrentGeneration() const
      D3L_EXCLUDES(gen_mu_);
  static CacheKey KeyForGeneration(
      const BackendInfo& info, const core::QueryTarget& target, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask);
  void Execute(const QueryRequest& request,
               std::chrono::steady_clock::time_point submitted,
               std::shared_ptr<std::promise<QueryResponse>> promise);
  void RunQuery(const Generation& gen, const QueryRequest& request,
                QueryResponse& response, bool& hit, bool& negative,
                bool& searched);

  DiscoveryServiceOptions options_;
  /// Resolved registry, never null. Declared before cache_ and pool_: both
  /// register their instruments into it during construction.
  obs::MetricRegistry* registry_;
  ResultCache cache_;
  ThreadPool pool_;

  mutable Mutex gen_mu_;  ///< guards only the generation_ pointer swap
  std::shared_ptr<const Generation> generation_ D3L_GUARDED_BY(gen_mu_);

  mutable Mutex mu_;
  CondVar idle_cv_;
  bool accepting_ D3L_GUARDED_BY(mu_) = true;
  size_t in_flight_ D3L_GUARDED_BY(mu_) = 0;

  // Aggregate instruments. Incremented inside the mu_ critical sections
  // that used to own plain counters, preserving the ordering Stats()
  // documents (a query is booked before its future resolves); phase sums
  // come from the histograms' Sum(), so ServiceStats needs no second
  // bookkeeping.
  std::shared_ptr<obs::Counter> submitted_;
  std::shared_ptr<obs::Counter> completed_;
  std::shared_ptr<obs::Counter> rejected_;
  std::shared_ptr<obs::Counter> failed_;
  std::shared_ptr<obs::Counter> cache_hits_;
  std::shared_ptr<obs::Counter> negative_hits_;
  std::shared_ptr<obs::Counter> cache_misses_;
  std::shared_ptr<obs::Counter> slow_queries_;
  std::shared_ptr<obs::Histogram> queue_seconds_;
  std::shared_ptr<obs::Histogram> profile_seconds_;
  std::shared_ptr<obs::Histogram> search_seconds_;
  std::shared_ptr<obs::Histogram> total_seconds_;
};

}  // namespace d3l::serving

#include "serving/discovery_service.h"

#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "io/binary_io.h"

namespace d3l::serving {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Seeds for the two independent halves of the 128-bit cache key.
constexpr uint64_t kKeySeedLo = 0x8f1ef1a6d3a5c3b1ULL;
constexpr uint64_t kKeySeedHi = 0x2b7e151628aed2a6ULL;

// A non-owning shared_ptr: the aliasing constructor with an empty owner
// yields a pointer whose destruction is a no-op, so the raw-pointer
// constructor keeps its "caller guarantees lifetime" contract while the
// rest of the service uniformly handles shared_ptr generations.
std::shared_ptr<const SearchBackend> Unowned(const SearchBackend* backend) {
  return std::shared_ptr<const SearchBackend>(std::shared_ptr<const void>(),
                                              backend);
}

}  // namespace

DiscoveryService::DiscoveryService(const SearchBackend* backend,
                                   DiscoveryServiceOptions options)
    : DiscoveryService(Unowned(backend), options) {}

DiscoveryService::DiscoveryService(std::shared_ptr<const SearchBackend> backend,
                                   DiscoveryServiceOptions options)
    : options_(options),
      registry_(options.registry ? options.registry
                                 : &obs::MetricRegistry::Default()),
      cache_(options.cache_capacity, options.cache_shards,
             options.cache_max_bytes, registry_),
      pool_(options.inline_execution
                ? 0
                : (options.num_threads > 0 ? options.num_threads
                                           : ThreadPool::DefaultThreads()),
            "discovery_service", registry_) {
  submitted_ = registry_->AddCounter("d3l_service_queries_submitted_total", {},
                                     "Queries accepted or rejected at Submit");
  completed_ = registry_->AddCounter("d3l_service_queries_completed_total", {},
                                     "Queries whose future resolved");
  rejected_ = registry_->AddCounter("d3l_service_queries_rejected_total", {},
                                    "Queries refused after shutdown");
  failed_ = registry_->AddCounter("d3l_service_queries_failed_total", {},
                                  "Completed queries with a non-OK result");
  cache_hits_ = registry_->AddCounter("d3l_service_cache_hits_total", {},
                                      "Queries answered by the result cache");
  negative_hits_ =
      registry_->AddCounter("d3l_service_negative_hits_total", {},
                            "Cache hits answered by a negative entry");
  cache_misses_ = registry_->AddCounter(
      "d3l_service_cache_misses_total", {},
      "Executed queries that went to the backend's search");
  slow_queries_ = registry_->AddCounter(
      "d3l_service_slow_queries_total", {},
      "Queries at or over the slow-query log threshold");
  const auto phase_hist = [this](const char* phase, const char* help) {
    return registry_->AddHistogram("d3l_service_phase_seconds",
                                   {{"phase", phase}}, help);
  };
  queue_seconds_ = phase_hist("queue", "Submit to execution start");
  profile_seconds_ = phase_hist("profile", "Target profiling");
  search_seconds_ = phase_hist("search", "Backend retrieval and ranking");
  total_seconds_ = phase_hist("total", "Submit to response ready");

  auto gen = std::make_shared<Generation>();
  gen->info = backend->Info();
  gen->backend = std::move(backend);
  generation_ = std::move(gen);
}

DiscoveryService::~DiscoveryService() { Shutdown(); }

void DiscoveryService::Shutdown() {
  MutexLock lk(mu_);
  accepting_ = false;
  while (in_flight_ != 0) idle_cv_.Wait(lk);
}

void DiscoveryService::SwapBackend(std::shared_ptr<const SearchBackend> backend) {
  auto gen = std::make_shared<Generation>();
  gen->info = backend->Info();
  gen->backend = std::move(backend);
  MutexLock lk(gen_mu_);
  generation_ = std::move(gen);
}

std::shared_ptr<const DiscoveryService::Generation>
DiscoveryService::CurrentGeneration() const {
  // A plain mutex (not std::atomic<shared_ptr>) keeps the copy wait-free
  // enough: the critical section is one refcount increment, and the swap
  // path is rare. Copying the shared_ptr is the RCU read-side "lock".
  MutexLock lk(gen_mu_);
  return generation_;
}

std::shared_ptr<const SearchBackend> DiscoveryService::backend() const {
  return CurrentGeneration()->backend;
}

BackendInfo DiscoveryService::Info() const { return CurrentGeneration()->info; }

CacheKey DiscoveryService::KeyForGeneration(
    const BackendInfo& info, const core::QueryTarget& target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) {
  // Canonical query bytes: backend identity, options, serialized target,
  // k, mask. The target serializes once; the two key halves hash the same
  // bytes under independent seeds.
  uint64_t mask_bits = 0;
  for (size_t e = 0; e < core::kNumEvidence; ++e) {
    if (enabled_mask[e]) mask_bits |= uint64_t{1} << e;
  }
  const std::string target_bytes = core::CanonicalTargetBytes(target);
  CacheKey key;
  key.lo = HashCombine(
      HashCombine(info.index_fingerprint, info.options_fingerprint),
      HashCombine(HashBytes(target_bytes.data(), target_bytes.size(), kKeySeedLo),
                  HashCombine(k, mask_bits)));
  key.hi = HashCombine(
      HashCombine(info.options_fingerprint, info.index_fingerprint),
      HashCombine(HashBytes(target_bytes.data(), target_bytes.size(), kKeySeedHi),
                  HashCombine(mask_bits, k)));
  return key;
}

CacheKey DiscoveryService::KeyFor(
    const core::QueryTarget& target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  return KeyForGeneration(CurrentGeneration()->info, target, k, enabled_mask);
}

std::future<QueryResponse> DiscoveryService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  const auto submitted = std::chrono::steady_clock::now();
  {
    MutexLock lk(mu_);
    submitted_->Increment();
    if (!accepting_) {
      rejected_->Increment();  // keeps submitted == completed + rejected + in-flight
      QueryResponse response;
      response.result = Status::InvalidArgument("service is shut down");
      promise->set_value(std::move(response));
      return future;
    }
    ++in_flight_;
  }
  pool_.Post([this, request = std::move(request), submitted,
              promise = std::move(promise)] {
    Execute(request, submitted, promise);
  });
  return future;
}

std::vector<std::future<QueryResponse>> DiscoveryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

QueryResponse DiscoveryService::Query(const QueryRequest& request) {
  return Submit(request).get();
}

void DiscoveryService::RunQuery(const Generation& gen,
                                const QueryRequest& request,
                                QueryResponse& response, bool& hit,
                                bool& negative, bool& searched) {
  const SearchBackend& backend = *gen.backend;
  const std::array<bool, core::kNumEvidence> mask =
      request.enabled.value_or(backend.options().enabled);

  if (request.target == nullptr) {
    response.result = Status::InvalidArgument("query target is null");
    return;
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<core::QueryTarget> profiled = [&] {
    obs::ScopedSpan span("profile");
    return backend.Profile(*request.target);
  }();
  response.stats.profile_seconds = SecondsSince(t0);
  if (!profiled.ok()) {
    response.result = profiled.status();
    return;
  }
  const bool use_cache = !request.bypass_cache && cache_.capacity() > 0;
  CacheKey key;
  core::SearchResult cached;
  CacheLookup looked = CacheLookup::kMiss;
  if (use_cache) {
    obs::ScopedSpan span("cache:lookup");
    // Keyed with the fingerprints of THIS query's generation snapshot: a
    // query racing a swap both looks up and inserts under the generation
    // whose backend actually answers it, so a swap can never alias an old
    // result onto a new-generation key (the stale-hit window this keying
    // closes).
    key = KeyForGeneration(gen.info, *profiled, request.k, mask);
    looked = cache_.Lookup(key, &cached);
  }
  if (looked == CacheLookup::kHit) {
    hit = true;
    response.result = std::move(cached);
    response.stats.cache_hit = true;
  } else if (looked == CacheLookup::kNegative) {
    // The backend is known to retrieve nothing for this key:
    // reconstruct the empty result from the target we just profiled —
    // byte-identical to what SearchTarget would return, since an empty
    // retrieval only moves the profiles/signatures into the result.
    hit = true;
    negative = true;
    core::SearchResult empty;
    empty.target_profiles = std::move(profiled->profiles);
    empty.target_sigs = std::move(profiled->sigs);
    response.result = std::move(empty);
    response.stats.cache_hit = true;
    response.stats.negative_hit = true;
  } else {
    searched = true;
    t0 = std::chrono::steady_clock::now();
    {
      obs::ScopedSpan span("search");
      response.result = backend.Search(std::move(*profiled), request.k, mask);
    }
    response.stats.search_seconds = SecondsSince(t0);
    if (use_cache && response.result.ok()) {
      obs::ScopedSpan span("cache:insert");
      if (response.result->ranked.empty() &&
          response.result->candidate_alignments.empty()) {
        cache_.InsertNegative(key);  // remember the emptiness, not the bytes
      } else {
        cache_.Insert(key, *response.result);  // deep copy into the cache
      }
    }
  }
}

void DiscoveryService::Execute(const QueryRequest& request,
                               std::chrono::steady_clock::time_point submitted,
                               std::shared_ptr<std::promise<QueryResponse>> promise) {
  QueryResponse response;
  response.stats.queue_seconds = SecondsSince(submitted);

  // ONE generation snapshot per query: every phase below — profile, cache
  // key, search, insert — sees this backend and this fingerprint, however
  // many SwapBackend calls land while we run. The shared_ptr copy also
  // keeps the old backend alive until the query drains.
  const std::shared_ptr<const Generation> gen = CurrentGeneration();
  response.stats.index_fingerprint = gen->info.index_fingerprint;

  std::shared_ptr<obs::TraceContext> trace;
  if (options_.trace_queries) {
    // Epoch = submit time, so the queue wait — which ended before this
    // context existed — slots in retrospectively at its true offset.
    trace = std::make_shared<obs::TraceContext>(obs::NewTraceId(), submitted);
    trace->AddSpan(
        "queue", -1, 0,
        static_cast<uint64_t>(response.stats.queue_seconds * 1e9));
  }

  bool hit = false;
  bool negative = false;
  bool searched = false;  ///< the query reached the backend's Search
  {
    // The execute span is the trace root every phase span nests under; the
    // optional keeps the untraced path free of even a TLS install.
    std::optional<obs::ScopedSpan> exec_span;
    if (trace != nullptr) exec_span.emplace(trace, "execute");
    try {
      RunQuery(*gen, request, response, hit, negative, searched);
    } catch (const std::exception& e) {
      // The codebase speaks Status, not exceptions — but a throw must not
      // escape into the pool (it would strand every queued future). Convert
      // it so THIS caller gets a failed response and everyone else proceeds.
      response.result = Status::Internal(std::string("query threw: ") + e.what());
    } catch (...) {
      response.result = Status::Internal("query threw a non-std exception");
    }
  }
  response.stats.total_seconds = SecondsSince(submitted);

  queue_seconds_->Record(response.stats.queue_seconds);
  profile_seconds_->Record(response.stats.profile_seconds);
  if (searched) search_seconds_->Record(response.stats.search_seconds);
  total_seconds_->Record(response.stats.total_seconds);

  if (trace != nullptr) {
    response.stats.trace = std::make_shared<const obs::Trace>(trace->Snapshot());
    if (options_.slow_query_seconds > 0 &&
        response.stats.total_seconds >= options_.slow_query_seconds) {
      slow_queries_->Increment();
      D3L_LOG_WARNING << "slow query ("
                      << response.stats.total_seconds << "s >= "
                      << options_.slow_query_seconds << "s threshold):\n"
                      << obs::FormatTrace(*response.stats.trace);
    }
  }

  // Book the counters BEFORE fulfilling the future: a caller that wakes
  // from future.get() must already see this query in Stats().
  {
    MutexLock lk(mu_);
    completed_->Increment();
    if (!response.result.ok()) failed_->Increment();
    if (hit) {
      cache_hits_->Increment();
      if (negative) negative_hits_->Increment();
    } else if (searched) {
      // Failed-before-retrieval queries count only in failed_.
      cache_misses_->Increment();
    }
    if (--in_flight_ == 0) idle_cv_.NotifyAll();
  }
  // Safe after in_flight_ hits zero: the promise is owned by this task, and
  // pool destruction joins the worker running it before the service dies.
  promise->set_value(std::move(response));
}

ServiceStats DiscoveryService::Stats() const {
  // Thin view over this service's own instruments. mu_ still orders the
  // reads against the booking sections above: a caller woken by
  // future.get() takes the lock after the booking released it, so the
  // completed query is already visible here.
  ServiceStats stats;
  {
    MutexLock lk(mu_);
    stats.submitted = submitted_->Value();
    stats.completed = completed_->Value();
    stats.rejected = rejected_->Value();
    stats.failed = failed_->Value();
    stats.cache_hits = cache_hits_->Value();
    stats.negative_hits = negative_hits_->Value();
    stats.cache_misses = cache_misses_->Value();
    stats.profile_seconds = profile_seconds_->Sum();
    stats.search_seconds = search_seconds_->Sum();
  }
  stats.cache = cache_.GetStats();
  return stats;
}

}  // namespace d3l::serving

// SearchBackend over N remote shard servers: the scatter-gather coordinator
// of a distributed D3L deployment.
//
// Each endpoint is a shard_server process (examples/shard_server.cc —
// rpc::RpcServer over a full or subset ShardedEngine of ONE deployment).
// Connect() fetches every server's identity, verifies they agree (same
// options and index fingerprints, i.e. the same manifest generation) and
// that their served tables form an exact partition of the lake, then
// stitches the global numbering the servers report back into local
// table-name/attribute maps.
//
// Search runs the same exact decomposition ShardedEngine runs in-process,
// with one extra round trip because the stop rule is GLOBAL:
//
//   1. DCNT to every server -> Add() the disjoint counts -> resolve the
//      stop depths once (core::D3LEngine::ResolveStopDepths);
//   2. SCOR (target, stops, m, mask) to every server -> merge the returned
//      m-capped global-id candidate lists, re-cap at m, build per-column
//      unions, keep only rows whose candidate survived the merge -> rank.
//
// An id in the global first-m owned by server S is necessarily in S's
// first-m (it has fewer than m smaller ids globally, hence fewer within
// S), so the merged lists equal the whole-lake lists; rows are pure
// functions of (query, candidate); RankRows canonically re-sorts. The
// result is therefore byte-identical to a single engine over the unsharded
// lake — distances, tie order, candidate alignments and all (asserted by
// tests/remote_test.cc). A deployment of ONE server that serves every
// shard skips the decomposition and sends SRCH.
//
// Degradation: a killed or unreachable server surfaces as
// Status::Unavailable after the client's bounded retries — Search fails
// cleanly (partial answers would silently violate the exactness contract)
// and DiscoveryService::Submit futures resolve with the error instead of
// hanging.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "rpc/client.h"
#include "rpc/wire.h"
#include "serving/search_backend.h"
#include "serving/thread_pool.h"

namespace d3l::serving {

struct RemoteBackendOptions {
  /// Per-server connection/retry behavior (timeouts, attempts, backoff).
  rpc::RpcClientOptions client;
  /// Fan-out worker threads; 0 sizes the pool to the server count.
  size_t num_threads = 0;
};

/// \brief Scatter-gather SearchBackend over remote shard servers.
class RemoteBackend : public SearchBackend {
 public:
  /// Connects to every `host:port` endpoint, fetches identities, verifies
  /// the servers form one coherent deployment (exact table partition,
  /// uniform fingerprints) and builds the global numbering. Fails with
  /// Unavailable if any server cannot be reached.
  static Result<std::unique_ptr<RemoteBackend>> Connect(
      std::vector<std::string> endpoints, RemoteBackendOptions options = {});

  using SearchBackend::Search;  // the Profile+Search convenience overload

  /// Profiles on the first reachable server (profiles depend only on the
  /// uniform options, so any server gives the identical QueryTarget).
  Result<core::QueryTarget> Profile(const Table& target) const override;

  /// Exact whole-lake top-k via the two-phase protocol (header comment).
  Result<core::SearchResult> Search(
      core::QueryTarget target, size_t k,
      const std::array<bool, core::kNumEvidence>& enabled_mask) const override;

  /// The deployment's engine options, as reported (uniformly) by the
  /// servers. Not safe to call concurrently with Reload().
  const core::D3LOptions& options() const override { return options_; }

  /// kind = kRemote; totals/fingerprints are the whole deployment's — the
  /// index fingerprint equals the local ShardedEngine's over the same
  /// manifest, so result caches warmed locally stay valid remotely.
  BackendInfo Info() const override;

  std::string table_name(uint32_t table_index) const override;

  /// Asks every server to reload its deployment (the RELD RPC), then
  /// re-verifies coherence and re-stitches the global numbering from the
  /// reloaded identities. In-flight Search calls keep the old numbering.
  Status Reload() D3L_EXCLUDES(state_mu_);

  size_t num_servers() const { return clients_.size(); }

 private:
  /// Immutable stitched view of the deployment — swapped wholesale on
  /// Reload (RCU), so Search snapshots one coherent generation.
  struct Stitched {
    std::vector<std::string> table_names;  ///< [global table] -> name
    std::vector<uint32_t> attr_table;      ///< [global attr] -> global table
    size_t num_shards = 0;                 ///< across all servers
    uint64_t options_fingerprint = 0;
    uint64_t index_fingerprint = 0;
    bool single_full_server = false;       ///< SRCH fast path applies
  };

  explicit RemoteBackend(size_t num_threads)
      : pool_(num_threads, "remote_backend") {}

  static Result<Stitched> Stitch(const std::vector<rpc::ServerInfo>& infos,
                                 const std::vector<std::string>& endpoints);

  std::shared_ptr<const Stitched> state() const D3L_EXCLUDES(state_mu_) {
    MutexLock lock(state_mu_);
    return state_;
  }

  std::vector<std::unique_ptr<rpc::RpcClient>> clients_;
  core::D3LOptions options_;

  mutable Mutex state_mu_;
  std::shared_ptr<const Stitched> state_ D3L_GUARDED_BY(state_mu_);

  mutable ThreadPool pool_;
};

}  // namespace d3l::serving

#include "serving/hot_reload.h"

#include <chrono>
#include <filesystem>
#include <utility>

namespace d3l::serving {

namespace fs = std::filesystem;

HotReloader::HotReloader(std::string csv_dir, std::string out_base,
                         HotReloaderOptions options)
    : csv_dir_(std::move(csv_dir)),
      out_base_(std::move(out_base)),
      options_(std::move(options)) {
  // Same registry the service options carry, so a STAT scrape of the
  // daemon sees reload health next to query metrics.
  obs::MetricRegistry& reg = options_.service.registry
                                 ? *options_.service.registry
                                 : obs::MetricRegistry::Default();
  reloads_ = reg.AddCounter("d3l_hot_reload_swaps_total", {},
                            "Reloads that published a new generation");
  noop_reloads_ = reg.AddCounter("d3l_hot_reload_noops_total", {},
                                 "Reloads that found nothing to rebuild");
  failed_reloads_ = reg.AddCounter("d3l_hot_reload_failures_total", {},
                                   "Reloads that returned an error");
  watch_polls_ = reg.AddCounter("d3l_hot_reload_watch_polls_total", {},
                                "Freshness checks run by the watcher");
}

Result<std::unique_ptr<HotReloader>> HotReloader::Open(
    std::string csv_dir, std::string out_base, HotReloaderOptions options) {
  auto reloader = std::unique_ptr<HotReloader>(
      new HotReloader(std::move(csv_dir), std::move(out_base), std::move(options)));

  const std::string manifest_path = ManifestPath(reloader->out_base_);
  std::error_code ec;
  if (!fs::exists(manifest_path, ec)) {
    if (!reloader->options_.build_if_missing) {
      return Status::NotFound("no deployment at " + manifest_path +
                              " (build_if_missing is off)");
    }
    DataLake lake;
    D3L_RETURN_NOT_OK(lake.LoadDirectory(reloader->csv_dir_));
    D3L_RETURN_NOT_OK(BuildShards(lake, reloader->options_.sharding,
                                  reloader->out_base_)
                          .status());
  }

  D3L_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedEngine> engine,
      ShardedEngine::Open(manifest_path, reloader->options_.engine));
  // Open is a static factory, not the constructor, so guarded members take
  // their lock even though the object is not yet shared.
  std::shared_ptr<const ShardedEngine> current(std::move(engine));
  {
    MutexLock lk(reloader->mu_);
    reloader->current_ = current;
  }
  reloader->service_ = std::make_unique<DiscoveryService>(
      std::move(current), reloader->options_.service);
  return reloader;
}

HotReloader::~HotReloader() {
  StopWatching();
  // service_ (declared last) shuts down next, draining in-flight queries;
  // each holds its generation alive through its snapshot reference.
}

std::shared_ptr<const ShardedEngine> HotReloader::engine() const {
  MutexLock lk(mu_);
  return current_;
}

Result<ReloadReport> HotReloader::Reload() {
  // One rebuild at a time. Queries never take this lock — during the
  // whole body they keep executing against the generation the service
  // currently publishes.
  MutexLock reload_lk(reload_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  auto seconds_since = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto fail = [this](Status status) -> Result<ReloadReport> {
    failed_reloads_->Increment();
    return status;
  };

  DataLake lake;
  Status loaded = lake.LoadDirectory(csv_dir_);
  if (!loaded.ok()) return fail(std::move(loaded));

  auto update = UpdateShards(lake, options_.sharding, out_base_);
  if (!update.ok()) return fail(update.status());

  ReloadReport report;
  if (update->rebuilt_shards.empty() && update->added.empty() &&
      update->removed.empty() && update->changed.empty()) {
    // The directory already matches the deployment (poll raced a reload,
    // or an edit was reverted): nothing was rebuilt, so the serving
    // generation is already exact — skip the open+swap entirely.
    MutexLock lk(mu_);
    noop_reloads_->Increment();
    report.index_fingerprint = current_->Info().index_fingerprint;
    report.replicas_reused = current_->num_shards();
    report.seconds = seconds_since();
    return report;
  }

  // Open the updated deployment, sharing every unchanged replica with the
  // generation still serving. On failure the old generation keeps serving
  // untouched.
  std::shared_ptr<const ShardedEngine> previous = engine();
  auto opened =
      ShardedEngine::Open(ManifestPath(out_base_), options_.engine, previous.get());
  if (!opened.ok()) return fail(opened.status());
  std::shared_ptr<const ShardedEngine> next(std::move(opened).ValueOrDie());

  // Publish: new queries run against `next` from here on; in-flight ones
  // finish on whatever generation they snapshotted.
  service_->SwapBackend(next);
  report.swapped = true;
  report.index_fingerprint = next->Info().index_fingerprint;
  report.shards_rebuilt = update->rebuilt_shards.size();
  report.replicas_reused = next->reused_replicas();
  {
    MutexLock lk(mu_);
    current_ = std::move(next);
  }
  reloads_->Increment();
  report.seconds = seconds_since();
  return report;
}

void HotReloader::StartWatching() {
  MutexLock lk(watch_mu_);
  if (watcher_.joinable()) return;
  watch_stop_ = false;
  watcher_ = std::thread([this] { WatchLoop(); });
}

void HotReloader::StopWatching() {
  {
    MutexLock lk(watch_mu_);
    if (!watcher_.joinable()) return;
    watch_stop_ = true;
  }
  watch_cv_.NotifyAll();
  watcher_.join();
}

void HotReloader::WatchLoop() {
  const auto interval = std::chrono::milliseconds(options_.watch_interval_ms);
  for (;;) {
    {
      MutexLock lk(watch_mu_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!watch_stop_) {
        if (watch_cv_.WaitUntil(lk, deadline) == std::cv_status::timeout) break;
      }
      if (watch_stop_) return;
    }
    watch_polls_->Increment();
    // Staleness is judged by the recorded source identities alone — a
    // checksum pass over the CSVs, no parsing. Only a detected diff pays
    // for a reload.
    std::shared_ptr<const ShardedEngine> gen = engine();
    auto freshness = CheckFreshness(gen->manifest(), csv_dir_);
    if (!freshness.ok()) continue;  // transient (e.g. directory mid-rewrite)
    bool stale = !freshness->new_files.empty();
    for (const ShardFreshness& shard : freshness->shards) {
      stale = stale || !shard.fresh();
    }
    if (!stale) continue;
    D3L_IGNORE_STATUS(
        Reload(),
        "watch-loop reload failures are counted in failed_reloads and retried "
        "on the next poll; the old generation keeps serving throughout");
  }
}

ReloadStats HotReloader::Stats() const {
  ReloadStats stats;
  stats.reloads = reloads_->Value();
  stats.noop_reloads = noop_reloads_->Value();
  stats.failed_reloads = failed_reloads_->Value();
  stats.watch_polls = watch_polls_->Value();
  MutexLock lk(mu_);
  stats.index_fingerprint = current_->Info().index_fingerprint;
  return stats;
}

}  // namespace d3l::serving

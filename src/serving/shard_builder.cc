#include "serving/shard_builder.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <numeric>

namespace d3l::serving {

namespace {

const char* BalanceName(ShardingOptions::Balance b) {
  switch (b) {
    case ShardingOptions::Balance::kRoundRobin:
      return "round-robin";
    case ShardingOptions::Balance::kSizeBalanced:
      return "size-balanced";
  }
  return "unknown";
}

}  // namespace

Result<ShardPlan> PlanShards(const DataLake& lake, const ShardingOptions& options) {
  const size_t n_shards = options.num_shards;
  const size_t n_tables = lake.size();
  if (n_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (n_shards > n_tables) {
    return Status::InvalidArgument("cannot split " + std::to_string(n_tables) +
                                   " tables into " + std::to_string(n_shards) +
                                   " shards");
  }

  ShardPlan plan(n_shards);
  switch (options.balance) {
    case ShardingOptions::Balance::kRoundRobin:
      for (size_t t = 0; t < n_tables; ++t) {
        plan[t % n_shards].push_back(static_cast<uint32_t>(t));
      }
      break;
    case ShardingOptions::Balance::kSizeBalanced: {
      // Greedy LPT on cell counts: biggest table first onto the lightest
      // shard. Ties break on table id / shard index for determinism.
      std::vector<uint32_t> order(n_tables);
      std::iota(order.begin(), order.end(), 0);
      auto cells = [&lake](uint32_t t) {
        return lake.table(t).num_rows() * lake.table(t).num_columns();
      };
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (cells(a) != cells(b)) return cells(a) > cells(b);
        return a < b;
      });
      std::vector<size_t> load(n_shards, 0);
      for (uint32_t t : order) {
        size_t lightest = 0;
        for (size_t s = 1; s < n_shards; ++s) {
          if (load[s] < load[lightest]) lightest = s;
        }
        plan[lightest].push_back(t);
        load[lightest] += cells(t);
      }
      // Local order = ascending global id, so a table's attributes keep
      // their relative order between the shard and the whole-lake registry.
      for (auto& shard : plan) std::sort(shard.begin(), shard.end());
      break;
    }
  }
  return plan;
}

Result<ShardBuildReport> BuildShards(const DataLake& lake,
                                     const ShardingOptions& options,
                                     const std::string& out_base) {
  auto t0 = std::chrono::steady_clock::now();
  ShardBuildReport report;
  D3L_ASSIGN_OR_RETURN(report.plan, PlanShards(lake, options));

  ShardManifest manifest;
  manifest.total_tables = lake.size();
  manifest.total_attributes = 0;
  manifest.balance = BalanceName(options.balance);

  const std::string base_name = std::filesystem::path(out_base).filename().string();
  for (size_t s = 0; s < report.plan.size(); ++s) {
    DataLake shard_lake;
    for (uint32_t g : report.plan[s]) {
      D3L_RETURN_NOT_OK(shard_lake.AddTable(lake.table(g)));
    }

    core::D3LEngine engine(options.engine);
    D3L_RETURN_NOT_OK(engine.IndexLake(shard_lake));
    const std::string shard_path = ShardPath(out_base, s);
    D3L_RETURN_NOT_OK(engine.SaveSnapshot(shard_path));

    ShardManifestEntry entry;
    entry.file = ShardPath(base_name, s);  // manifest-relative: just the filename
    D3L_ASSIGN_OR_RETURN(auto size_crc, FileSizeAndCrc32(shard_path));
    entry.file_bytes = size_crc.first;
    entry.file_crc32 = size_crc.second;
    entry.schema_crc32 = SchemaFingerprint(shard_lake);
    entry.num_tables = shard_lake.size();
    entry.num_attributes = engine.indexes().num_attributes();
    entry.global_tables = report.plan[s];
    manifest.total_attributes += entry.num_attributes;
    manifest.shards.push_back(std::move(entry));
    report.shard_paths.push_back(shard_path);
  }

  report.manifest_path = ManifestPath(out_base);
  D3L_RETURN_NOT_OK(manifest.Save(report.manifest_path));
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace d3l::serving

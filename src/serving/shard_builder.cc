#include "serving/shard_builder.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <unordered_map>
#include <utility>

namespace d3l::serving {

namespace {

const char* BalanceName(ShardingOptions::Balance b) {
  switch (b) {
    case ShardingOptions::Balance::kRoundRobin:
      return "round-robin";
    case ShardingOptions::Balance::kSizeBalanced:
      return "size-balanced";
  }
  return "unknown";
}

/// Inverse of BalanceName, for updates that must honor the policy the
/// deployment was built with rather than the caller's default.
Result<ShardingOptions::Balance> BalanceFromName(const std::string& name) {
  if (name == "round-robin") return ShardingOptions::Balance::kRoundRobin;
  if (name == "size-balanced") return ShardingOptions::Balance::kSizeBalanced;
  return Status::InvalidArgument("manifest records unknown balance policy '" + name +
                                 "'; run a full shard build");
}

/// The fingerprint the shard engines will actually carry: the D3LEngine
/// constructor folds index.embedding_dim into the embedding-model options,
/// so the raw caller-supplied options must be canonicalized the same way
/// before comparing against a deployed snapshot's.
uint64_t EngineOptionsFingerprint(const core::D3LOptions& options) {
  core::D3LOptions canonical = options;
  canonical.wem.dim = canonical.index.embedding_dim;
  return core::OptionsFingerprint(canonical);
}

/// An explicit plan must be exactly what PlanShards would guarantee: a
/// partition of [0, lake.size()) into non-empty ascending shard lists.
Status ValidatePlan(const DataLake& lake, const ShardPlan& plan) {
  if (plan.empty()) return Status::InvalidArgument("plan has no shards");
  std::vector<bool> covered(lake.size(), false);
  for (size_t s = 0; s < plan.size(); ++s) {
    if (plan[s].empty()) {
      return Status::InvalidArgument("plan shard " + std::to_string(s) + " is empty");
    }
    uint32_t prev = 0;
    for (size_t i = 0; i < plan[s].size(); ++i) {
      const uint32_t g = plan[s][i];
      if (g >= lake.size() || covered[g] || (i > 0 && g <= prev)) {
        return Status::InvalidArgument(
            "plan is not an ascending exact partition of the lake");
      }
      covered[g] = true;
      prev = g;
    }
  }
  for (size_t g = 0; g < lake.size(); ++g) {
    if (!covered[g]) {
      return Status::InvalidArgument("plan misses table id " + std::to_string(g));
    }
  }
  return Status::OK();
}

/// Profiles + indexes one shard's tables and persists its snapshot to
/// `write_path` (atomically, via io::Writer's temp + rename), returning
/// the filled manifest entry. `write_path` need not be the shard's final
/// path: UpdateShards builds replacements at a staged path and renames
/// them into place only once every rebuild has succeeded, so the entry's
/// recorded filename is always the FINAL name while the checksums are
/// taken from the bytes actually written.
Result<ShardManifestEntry> BuildOneShard(const DataLake& lake,
                                         const std::vector<uint32_t>& tables,
                                         const core::D3LOptions& engine_options,
                                         const std::string& out_base, size_t s,
                                         const std::string& write_path) {
  DataLake shard_lake;
  for (uint32_t g : tables) {
    D3L_RETURN_NOT_OK(shard_lake.AddTable(lake.table(g)));
  }

  core::D3LEngine engine(engine_options);
  D3L_RETURN_NOT_OK(engine.IndexLake(shard_lake));
  D3L_RETURN_NOT_OK(engine.SaveSnapshot(write_path));

  const std::string base_name = std::filesystem::path(out_base).filename().string();
  ShardManifestEntry entry;
  entry.file = ShardPath(base_name, s);  // manifest-relative: just the filename
  D3L_ASSIGN_OR_RETURN(auto size_crc, FileSizeAndCrc32(write_path));
  entry.file_bytes = size_crc.first;
  entry.file_crc32 = size_crc.second;
  entry.schema_crc32 = SchemaFingerprint(shard_lake);
  entry.num_tables = shard_lake.size();
  entry.num_attributes = engine.indexes().num_attributes();
  entry.global_tables = tables;
  entry.sources.reserve(tables.size());
  for (uint32_t g : tables) entry.sources.push_back(SourceOf(lake.table(g)));
  entry.column_counts.reserve(tables.size());
  for (uint32_t g : tables) {
    entry.column_counts.push_back(static_cast<uint32_t>(lake.table(g).num_columns()));
  }
  return entry;
}

}  // namespace

Result<ShardPlan> PlanShards(const DataLake& lake, const ShardingOptions& options) {
  const size_t n_shards = options.num_shards;
  const size_t n_tables = lake.size();
  if (n_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (n_shards > n_tables) {
    return Status::InvalidArgument("cannot split " + std::to_string(n_tables) +
                                   " tables into " + std::to_string(n_shards) +
                                   " shards");
  }

  ShardPlan plan(n_shards);
  switch (options.balance) {
    case ShardingOptions::Balance::kRoundRobin:
      for (size_t t = 0; t < n_tables; ++t) {
        plan[t % n_shards].push_back(static_cast<uint32_t>(t));
      }
      break;
    case ShardingOptions::Balance::kSizeBalanced: {
      // Greedy LPT on cell counts: biggest table first onto the lightest
      // shard. Ties break on table id / shard index for determinism.
      std::vector<uint32_t> order(n_tables);
      std::iota(order.begin(), order.end(), 0);
      auto cells = [&lake](uint32_t t) {
        return lake.table(t).num_rows() * lake.table(t).num_columns();
      };
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (cells(a) != cells(b)) return cells(a) > cells(b);
        return a < b;
      });
      std::vector<size_t> load(n_shards, 0);
      for (uint32_t t : order) {
        size_t lightest = 0;
        for (size_t s = 1; s < n_shards; ++s) {
          if (load[s] < load[lightest]) lightest = s;
        }
        plan[lightest].push_back(t);
        load[lightest] += cells(t);
      }
      // Local order = ascending global id, so a table's attributes keep
      // their relative order between the shard and the whole-lake registry.
      for (auto& shard : plan) std::sort(shard.begin(), shard.end());
      break;
    }
  }
  return plan;
}

Result<ShardBuildReport> BuildShards(const DataLake& lake,
                                     const ShardingOptions& options,
                                     const std::string& out_base,
                                     const ShardPlan* plan) {
  auto t0 = std::chrono::steady_clock::now();
  ShardBuildReport report;
  if (plan != nullptr) {
    D3L_RETURN_NOT_OK(ValidatePlan(lake, *plan));
    report.plan = *plan;
  } else {
    D3L_ASSIGN_OR_RETURN(report.plan, PlanShards(lake, options));
  }

  ShardManifest manifest;
  manifest.total_tables = lake.size();
  manifest.total_attributes = 0;
  manifest.balance = BalanceName(options.balance);

  for (size_t s = 0; s < report.plan.size(); ++s) {
    D3L_ASSIGN_OR_RETURN(
        ShardManifestEntry entry,
        BuildOneShard(lake, report.plan[s], options.engine, out_base, s,
                      ShardPath(out_base, s)));
    manifest.total_attributes += entry.num_attributes;
    manifest.shards.push_back(std::move(entry));
    report.shard_paths.push_back(ShardPath(out_base, s));
  }

  report.manifest_path = ManifestPath(out_base);
  D3L_RETURN_NOT_OK(manifest.Save(report.manifest_path));
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

Result<ShardUpdateReport> UpdateShards(const DataLake& lake,
                                       const ShardingOptions& options,
                                       const std::string& out_base) {
  auto t0 = std::chrono::steady_clock::now();
  ShardUpdateReport report;
  report.manifest_path = ManifestPath(out_base);
  D3L_ASSIGN_OR_RETURN(ShardManifest old, ShardManifest::Load(report.manifest_path));
  if (!old.has_source_identity()) {
    return Status::InvalidArgument(
        "manifest records no table sources (built by an older version); "
        "incremental update needs a full shard build first");
  }
  const size_t n_shards = old.shards.size();
  // The deployment's configuration wins over the caller's: an update keeps
  // the recorded balance policy (like the shard count) so repeated updates
  // cannot silently drift a round-robin deployment into a size-balanced
  // one. Changing policy is a full BuildShards.
  D3L_ASSIGN_OR_RETURN(const ShardingOptions::Balance balance,
                       BalanceFromName(old.balance));

  // Index the deployed sources: file -> (owning shard, identity at build).
  std::unordered_map<std::string, std::pair<size_t, const TableSource*>> deployed;
  for (size_t s = 0; s < n_shards; ++s) {
    for (const TableSource& src : old.shards[s].sources) {
      if (!deployed.emplace(src.file, std::make_pair(s, &src)).second) {
        return Status::IOError("manifest lists source '" + src.file +
                               "' in more than one table");
      }
    }
  }

  // Current lake identities. Diffing is keyed on the source file, so two
  // tables sharing one are indistinguishable — refuse up front.
  std::vector<TableSource> current(lake.size());
  std::unordered_map<std::string, uint32_t> current_by_file;
  for (size_t g = 0; g < lake.size(); ++g) {
    current[g] = SourceOf(lake.table(g));
    if (!current_by_file.emplace(current[g].file, static_cast<uint32_t>(g)).second) {
      return Status::InvalidArgument("two lake tables share source file '" +
                                     current[g].file + "'");
    }
  }

  // Diff: keep unchanged/changed tables on their deployed shard; collect
  // additions for policy placement; removals only dirty their old shard.
  std::vector<int> shard_of(lake.size(), -1);
  std::vector<bool> dirty(n_shards, false);
  std::vector<uint32_t> added_ids;
  for (size_t g = 0; g < lake.size(); ++g) {
    auto it = deployed.find(current[g].file);
    if (it == deployed.end()) {
      report.added.push_back(current[g].file);
      added_ids.push_back(static_cast<uint32_t>(g));
      continue;
    }
    shard_of[g] = static_cast<int>(it->second.first);
    if (it->second.second->bytes != current[g].bytes ||
        it->second.second->crc32 != current[g].crc32) {
      report.changed.push_back(current[g].file);
      dirty[it->second.first] = true;
    }
  }
  for (const auto& [file, where] : deployed) {
    if (current_by_file.count(file) == 0) {
      report.removed.push_back(file);
      dirty[where.first] = true;
    }
  }
  std::sort(report.added.begin(), report.added.end());
  std::sort(report.removed.begin(), report.removed.end());
  std::sort(report.changed.begin(), report.changed.end());

  // Place added tables by the configured policy over the kept placement.
  auto cells = [&lake](uint32_t t) {
    return lake.table(t).num_rows() * lake.table(t).num_columns();
  };
  if (balance == ShardingOptions::Balance::kSizeBalanced) {
    // Greedy LPT over the kept shard loads, mirroring PlanShards.
    std::vector<size_t> load(n_shards, 0);
    for (size_t g = 0; g < lake.size(); ++g) {
      if (shard_of[g] >= 0) load[shard_of[g]] += cells(static_cast<uint32_t>(g));
    }
    std::vector<uint32_t> order = added_ids;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (cells(a) != cells(b)) return cells(a) > cells(b);
      return a < b;
    });
    for (uint32_t g : order) {
      size_t lightest = 0;
      for (size_t s = 1; s < n_shards; ++s) {
        if (load[s] < load[lightest]) lightest = s;
      }
      shard_of[g] = static_cast<int>(lightest);
      load[lightest] += cells(g);
      dirty[lightest] = true;
    }
  } else {
    // Round-robin spirit without renumbering history: each new table goes
    // to the shard currently serving the fewest tables.
    std::vector<size_t> count(n_shards, 0);
    for (size_t g = 0; g < lake.size(); ++g) {
      if (shard_of[g] >= 0) ++count[shard_of[g]];
    }
    for (uint32_t g : added_ids) {
      size_t fewest = 0;
      for (size_t s = 1; s < n_shards; ++s) {
        if (count[s] < count[fewest]) fewest = s;
      }
      shard_of[g] = static_cast<int>(fewest);
      ++count[fewest];
      dirty[fewest] = true;
    }
  }

  report.plan.assign(n_shards, {});
  for (size_t g = 0; g < lake.size(); ++g) {
    report.plan[shard_of[g]].push_back(static_cast<uint32_t>(g));
  }
  for (size_t s = 0; s < n_shards; ++s) {
    if (report.plan[s].empty()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " would serve no tables after this update; run a full shard build");
    }
  }

  // A reused snapshot's table order must still match the manifest's: local
  // ids are assigned in ascending-global order, so if the kept tables'
  // relative order shifted (an in-memory lake reordered, say), the old
  // snapshot's local numbering no longer lines up — rebuild that shard.
  for (size_t s = 0; s < n_shards; ++s) {
    if (dirty[s]) continue;
    const std::vector<TableSource>& recorded = old.shards[s].sources;
    if (recorded.size() != report.plan[s].size()) {
      dirty[s] = true;
      continue;
    }
    for (size_t i = 0; i < recorded.size(); ++i) {
      if (recorded[i].file != current[report.plan[s][i]].file) {
        dirty[s] = true;
        break;
      }
    }
  }

  // Reusing a snapshot is only sound when the caller's engine options
  // match the deployed ones — otherwise rebuilt and reused shards would
  // sign and rank differently and Open would (rightly) refuse the mix.
  const bool any_reused =
      std::any_of(dirty.begin(), dirty.end(), [](bool d) { return !d; });
  if (any_reused) {
    const size_t first_clean =
        std::find(dirty.begin(), dirty.end(), false) - dirty.begin();
    const std::string path =
        ResolveRelative(report.manifest_path, old.shards[first_clean].file);
    D3L_ASSIGN_OR_RETURN(core::D3LEngine::SnapshotInfo info,
                         core::D3LEngine::ReadSnapshotInfo(path));
    if (core::OptionsFingerprint(info.options) !=
        EngineOptionsFingerprint(options.engine)) {
      return Status::InvalidArgument(
          "engine options differ from the deployed shards'; an options "
          "change requires a full shard build");
    }
  }

  // Rebuild the dirty shards at STAGED paths first: the deployed files
  // and the manifest that checksums them stay untouched until every
  // replacement exists, so a failed rebuild (disk full, a poisoned table)
  // aborts with the old deployment fully serveable. Only then are the
  // staged files renamed onto the final paths and the manifest saved last
  // — a crash in the narrow rename window leaves a manifest whose
  // checksums reject the half-updated shard set instead of serving it,
  // repaired by rerunning.
  ShardManifest manifest;
  manifest.total_tables = lake.size();
  manifest.total_attributes = 0;
  manifest.balance = old.balance;
  manifest.shards.resize(n_shards);
  std::vector<std::string> staged;  // staged files awaiting commit
  staged.reserve(n_shards);
  auto discard_staged = [&staged] {
    std::error_code ec;
    for (const std::string& path : staged) std::filesystem::remove(path, ec);
  };
  for (size_t s = 0; s < n_shards; ++s) {
    if (dirty[s]) {
      const std::string staged_path = StagedShardPath(out_base, s);
      auto entry = BuildOneShard(lake, report.plan[s], options.engine,
                                 out_base, s, staged_path);
      if (!entry.ok()) {
        discard_staged();
        return entry.status();
      }
      staged.push_back(staged_path);
      manifest.shards[s] = std::move(entry).ValueOrDie();
      report.rebuilt_shards.push_back(s);
    } else {
      manifest.shards[s] = old.shards[s];
      manifest.shards[s].global_tables = report.plan[s];  // renumbered lake
      // A reused shard's tables are byte-identical to the lake's, so the
      // current column counts are the snapshot's — filling them here
      // upgrades a v2 deployment to full v3 metadata on its next update.
      manifest.shards[s].column_counts.clear();
      manifest.shards[s].column_counts.reserve(report.plan[s].size());
      for (uint32_t g : report.plan[s]) {
        manifest.shards[s].column_counts.push_back(
            static_cast<uint32_t>(lake.table(g).num_columns()));
      }
      ++report.shards_reused;
    }
    manifest.total_attributes += manifest.shards[s].num_attributes;
    report.shard_paths.push_back(ShardPath(out_base, s));
  }
  // Commit: every replacement exists, so rename them into place (same
  // directory, so each rename is atomic) and write the manifest last.
  for (size_t i = 0; i < report.rebuilt_shards.size(); ++i) {
    const size_t s = report.rebuilt_shards[i];
    std::error_code ec;
    std::filesystem::rename(StagedShardPath(out_base, s), ShardPath(out_base, s), ec);
    if (ec) {
      discard_staged();
      return Status::IOError("cannot commit rebuilt shard " + std::to_string(s) +
                             ": " + ec.message());
    }
  }
  {
    Status saved = manifest.Save(report.manifest_path);
    if (!saved.ok()) return saved;
  }
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace d3l::serving

// One spelling for "where my SearchBackend lives", and one factory that
// opens it — so every front-end (d3l_snapshot, csv_lake, DiscoveryService
// setups, tests) stops growing bespoke snapshot-vs-manifest-vs-remote
// plumbing.
//
// A backend reference is a string:
//
//   snapshot:<path>             one engine snapshot (EngineBackend)
//   manifest:<path>             local scatter-gather over a shard manifest
//                               (ShardedEngine)
//   tcp:<host:port>[,host:port...]   remote scatter-gather over shard
//                               servers (RemoteBackend)
//   <path>                      bare path: sniffed by file magic — D3LSNAP
//                               opens as a snapshot, D3LSHRD as a manifest
//
// BackendRef::Parse validates the spelling; OpenBackend turns a ref (or a
// raw spec string) into a ready unique_ptr<SearchBackend>.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/remote_backend.h"
#include "serving/search_backend.h"
#include "serving/sharded_engine.h"

namespace d3l::serving {

/// \brief A parsed backend location.
struct BackendRef {
  enum class Kind {
    kSnapshot,  ///< one engine snapshot file
    kManifest,  ///< a shard manifest (local scatter-gather)
    kRemote,    ///< shard server endpoints (remote scatter-gather)
  };

  Kind kind = Kind::kSnapshot;
  /// Snapshot or manifest path (kSnapshot / kManifest).
  std::string path;
  /// host:port endpoints, in spec order (kRemote).
  std::vector<std::string> endpoints;

  /// Parses a spec string (header comment). `snapshot:`/`manifest:` accept
  /// any path; `tcp:` requires at least one host:port; a bare spec is
  /// resolved by reading the file's magic, so the file must exist.
  static Result<BackendRef> Parse(const std::string& spec);

  /// The canonical spec string this ref parses back from.
  std::string ToString() const;
};

/// \brief Knobs forwarded to whichever backend the ref selects (the
/// irrelevant ones are ignored).
struct OpenBackendOptions {
  ShardedEngineOptions sharded;  ///< kManifest
  RemoteBackendOptions remote;   ///< kRemote
};

/// \brief Opens the backend a ref points at: FromSnapshot, ShardedEngine::
/// Open or RemoteBackend::Connect. The returned backend owns everything it
/// needs.
Result<std::unique_ptr<SearchBackend>> OpenBackend(
    const BackendRef& ref, const OpenBackendOptions& options = {});

/// \brief Parse + OpenBackend in one step.
Result<std::unique_ptr<SearchBackend>> OpenBackend(
    const std::string& spec, const OpenBackendOptions& options = {});

}  // namespace d3l::serving

// Hot reload: keeps a sharded deployment serving while the lake changes.
//
// A HotReloader owns the full serving stack for one CSV directory — the
// on-disk deployment (<out_base>.manifest + shards), the current
// ShardedEngine generation, and a DiscoveryService front-end — and adds
// the one operation a long-running server needs: Reload(), which brings
// the deployment up to date with the directory WITHOUT pausing queries.
//
// A reload is three steps, each leaving the serving path untouched until
// the last:
//
//   1. UpdateShards: diff the reloaded lake against the manifest and
//      rebuild only the shards whose tables were added/removed/changed
//      (all writes atomic; see shard_builder.h). Queries keep running
//      against the OLD in-memory generation the whole time — the rebuild
//      touches disk, not the engine.
//   2. ShardedEngine::Open with the old generation as `reuse`: unchanged
//      shards share the already-loaded replicas, so only the rebuilt
//      shards are read back and re-indexed.
//   3. DiscoveryService::SwapBackend: RCU-style publication. In-flight
//      queries hold their generation snapshot and finish on the old
//      engine (kept alive by their shared_ptr references); new queries
//      see the new one. The new generation's index fingerprint differs,
//      so every result-cache key changes — stale entries can never hit
//      and simply age out.
//
// A failed reload (unreadable CSVs, a failed shard rebuild, a torn shard
// file) leaves the old generation serving and returns the error; the
// deployment on disk is likewise intact (UpdateShards commits shard files
// before the manifest, each atomically).
//
// Watch mode runs Reload() from a background thread whenever the recorded
// source identities go stale against the directory (CheckFreshness — a
// cheap checksum pass, no CSV parsing). Polling, not inotify: portable,
// and reload cost is bounded by the real diff anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serving/discovery_service.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"

namespace d3l::serving {

struct HotReloaderOptions {
  /// Shard count / balance / engine options. The shard count and balance
  /// only matter when Open builds the deployment from scratch; afterwards
  /// the deployed configuration wins (UpdateShards semantics). The engine
  /// options must always match the deployment.
  ShardingOptions sharding;
  /// Passed through to every ShardedEngine generation.
  ShardedEngineOptions engine;
  /// Passed through to the DiscoveryService front-end.
  DiscoveryServiceOptions service;
  /// Build <out_base> from the CSV directory when no manifest exists yet
  /// (otherwise Open fails on a missing deployment).
  bool build_if_missing = true;
  /// Watch-mode poll interval.
  size_t watch_interval_ms = 500;
};

/// \brief What one Reload() did.
struct ReloadReport {
  /// False when the directory matched the deployment and nothing was
  /// rebuilt or swapped (the common case for a poll-driven reload race).
  bool swapped = false;
  uint64_t index_fingerprint = 0;  ///< generation now serving
  size_t shards_rebuilt = 0;
  size_t replicas_reused = 0;  ///< in-memory replicas shared from the old generation
  double seconds = 0;          ///< lake load + rebuild + open + swap
};

/// \brief Aggregate reload counters (all since Open) — a thin view over
/// the reloader's d3l_hot_reload_* registry instruments (it reports into
/// the registry the service options carry).
struct ReloadStats {
  size_t reloads = 0;         ///< Reload() calls that swapped a generation
  size_t noop_reloads = 0;    ///< Reload() calls that found nothing to do
  size_t failed_reloads = 0;  ///< Reload() calls that returned an error
  size_t watch_polls = 0;     ///< freshness checks run by the watcher
  uint64_t index_fingerprint = 0;  ///< generation currently serving
};

/// \brief A self-reloading sharded discovery server over one CSV directory.
class HotReloader {
 public:
  /// Opens (or, with build_if_missing, builds) the deployment at
  /// `out_base` from `csv_dir` and starts serving. The watcher does NOT
  /// start automatically — call StartWatching(), or drive Reload()
  /// explicitly.
  static Result<std::unique_ptr<HotReloader>> Open(std::string csv_dir,
                                                   std::string out_base,
                                                   HotReloaderOptions options = {});

  /// Stops the watcher, then drains the service (DiscoveryService
  /// shutdown semantics: every accepted future still resolves).
  ~HotReloader();
  HotReloader(const HotReloader&) = delete;
  HotReloader& operator=(const HotReloader&) = delete;

  /// Brings the deployment and the serving generation up to date with the
  /// CSV directory. Thread-safe (concurrent calls serialize); queries are
  /// never blocked — they either run on the old generation or, after the
  /// swap, on the new one. On error the old generation keeps serving.
  Result<ReloadReport> Reload() D3L_EXCLUDES(reload_mu_, mu_);

  /// Starts / stops the background freshness poller (idempotent).
  void StartWatching() D3L_EXCLUDES(watch_mu_);
  void StopWatching() D3L_EXCLUDES(watch_mu_);

  /// The query front-end. Submit from any thread.
  DiscoveryService& service() { return *service_; }
  /// The currently serving generation.
  std::shared_ptr<const ShardedEngine> engine() const D3L_EXCLUDES(mu_);

  ReloadStats Stats() const;

 private:
  HotReloader(std::string csv_dir, std::string out_base, HotReloaderOptions options);
  void WatchLoop();

  const std::string csv_dir_;
  const std::string out_base_;
  const HotReloaderOptions options_;

  /// Serializes Reload() bodies: one rebuild at a time, never blocking
  /// queries (which only touch current_ / the service's generation).
  Mutex reload_mu_;

  mutable Mutex mu_;  ///< guards current_
  std::shared_ptr<const ShardedEngine> current_ D3L_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> reloads_;
  std::shared_ptr<obs::Counter> noop_reloads_;
  std::shared_ptr<obs::Counter> failed_reloads_;
  std::shared_ptr<obs::Counter> watch_polls_;

  Mutex watch_mu_;
  CondVar watch_cv_;
  bool watch_stop_ D3L_GUARDED_BY(watch_mu_) = false;
  /// Not guarded: StartWatching/StopWatching decide ownership under
  /// watch_mu_ (the joinable check), but join() must happen unlocked —
  /// the watcher takes watch_mu_ on its way out.
  std::thread watcher_;

  /// Declared last: destroyed first, draining in-flight queries while the
  /// generations they reference are still reachable (each query holds its
  /// own shared_ptr anyway; the order just keeps teardown obviously safe).
  std::unique_ptr<DiscoveryService> service_;
};

}  // namespace d3l::serving

#include "serving/sharded_engine.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/hash.h"

namespace d3l::serving {

ShardedEngine::ShardedEngine(ShardManifest manifest, size_t num_threads)
    : manifest_(std::move(manifest)),
      pool_(num_threads > 0 ? num_threads : ThreadPool::DefaultThreads()) {}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& manifest_path, ShardedEngineOptions options,
    const ShardedEngine* reuse) {
  D3L_ASSIGN_OR_RETURN(ShardManifest manifest, ShardManifest::Load(manifest_path));
  auto engine = std::unique_ptr<ShardedEngine>(
      new ShardedEngine(std::move(manifest), options.num_threads));
  const ShardManifest& m = engine->manifest_;
  const size_t n_shards = m.shards.size();

  // Which manifest shards this process loads and serves.
  if (options.serve_shards.empty()) {
    engine->served_.resize(n_shards);
    std::iota(engine->served_.begin(), engine->served_.end(), 0);
  } else {
    if (!m.has_column_counts()) {
      return Status::InvalidArgument(
          "manifest records no per-table column counts (v1/v2 format); "
          "serving a shard subset needs the global attribute numbering, so "
          "rebuild or incrementally update the deployment first");
    }
    std::vector<size_t> served = options.serve_shards;
    std::sort(served.begin(), served.end());
    served.erase(std::unique(served.begin(), served.end()), served.end());
    if (served.back() >= n_shards) {
      return Status::InvalidArgument(
          "serve_shards names shard " + std::to_string(served.back()) +
          " but the manifest has only " + std::to_string(n_shards));
    }
    engine->served_ = std::move(served);
  }

  // The backend's index identity: every shard file's size/CRC32 and schema
  // fingerprint — plus, for v2 manifests, every table's recorded source
  // identity — folded in manifest order. Any rebuilt, swapped or
  // re-partitioned shard set digests differently (an incremental
  // UpdateShards rewrites the dirty shards' checksums and sources), which
  // is what ties result-cache invalidation to the manifest checksums.
  // Deliberately folded over the FULL manifest even when serve_shards
  // restricts loading: every subset server of one deployment then reports
  // the same identity as an in-process engine over all of it, so a remote
  // coordinator can verify its servers agree — and cached results keyed on
  // the local fingerprint stay valid for the remote deployment.
  engine->index_fingerprint_ = HashCombine(m.total_tables, m.total_attributes);
  for (const ShardManifestEntry& entry : m.shards) {
    engine->index_fingerprint_ = HashCombine(
        engine->index_fingerprint_,
        HashCombine(HashCombine(entry.file_bytes, entry.file_crc32),
                    entry.schema_crc32));
    for (const TableSource& src : entry.sources) {
      engine->index_fingerprint_ = HashCombine(
          engine->index_fingerprint_,
          HashCombine(HashBytes(src.file.data(), src.file.size(), src.bytes),
                      src.crc32));
    }
  }

  // Match unchanged shards against the previous generation by content
  // identity (file bytes + CRC32 + schema fingerprint): the checksums
  // pin the exact snapshot bytes, so a matching replica already holds the
  // byte-identical index and can be shared instead of reloaded. This is
  // what makes a hot reload after an incremental UpdateShards cost only
  // the rebuilt shards.
  const size_t n_prev = reuse == nullptr ? 0 : reuse->shards_.size();
  std::vector<size_t> reuse_from(n_shards, SIZE_MAX);
  for (size_t s : engine->served_) {
    if (n_prev == 0) break;
    const ShardManifestEntry& entry = m.shards[s];
    for (size_t j = 0; j < n_prev; ++j) {
      if (reuse->shards_[j] == nullptr) continue;  // unserved in prev generation
      const ShardManifestEntry& prev = reuse->manifest_.shards[j];
      if (prev.file_bytes == entry.file_bytes &&
          prev.file_crc32 == entry.file_crc32 &&
          prev.schema_crc32 == entry.schema_crc32) {
        reuse_from[s] = j;
        ++engine->reused_replicas_;
        break;
      }
    }
  }

  // Load every shard replica, in parallel on the query pool (the banded
  // indexes are rebuilt from signatures at load time, which is the bulk of
  // the open cost for big shard sets).
  engine->shard_lakes_.resize(n_shards);
  engine->shards_.resize(n_shards);
  std::vector<Status> load_status(n_shards);
  engine->pool_.ParallelFor(engine->served_.size(), [&](size_t j) {
    const size_t s = engine->served_[j];
    if (reuse_from[s] != SIZE_MAX) {
      // The previous generation verified these bytes when it loaded them;
      // sharing the replica skips both the disk read and the checksum pass.
      engine->shard_lakes_[s] = reuse->shard_lakes_[reuse_from[s]];
      engine->shards_[s] = reuse->shards_[reuse_from[s]];
      return;
    }
    const ShardManifestEntry& entry = m.shards[s];
    const std::string path = ResolveRelative(manifest_path, entry.file);
    if (options.verify_checksums) {
      auto size_crc = FileSizeAndCrc32(path);
      if (!size_crc.ok()) {
        load_status[s] = size_crc.status();
        return;
      }
      if (size_crc->first != entry.file_bytes || size_crc->second != entry.file_crc32) {
        load_status[s] = Status::IOError("shard file " + entry.file +
                                         " does not match its manifest checksum");
        return;
      }
    }
    auto lake = std::make_unique<DataLake>();
    auto loaded = core::D3LEngine::LoadSnapshot(path, lake.get(), options.load_mode);
    if (!loaded.ok()) {
      load_status[s] = loaded.status();
      return;
    }
    engine->shard_lakes_[s] = std::move(lake);
    engine->shards_[s] = std::move(loaded).ValueOrDie();
  });
  for (size_t s = 0; s < n_shards; ++s) {
    D3L_RETURN_NOT_OK(load_status[s]);
  }

  // Cross-check shard contents against the manifest and each other.
  const size_t first_served = engine->served_.front();
  const uint64_t shard0_options_fp =
      core::OptionsFingerprint(engine->shards_[first_served]->options());
  for (size_t s : engine->served_) {
    const ShardManifestEntry& entry = m.shards[s];
    if (engine->shard_lakes_[s]->size() != entry.num_tables ||
        engine->shards_[s]->indexes().num_attributes() != entry.num_attributes) {
      return Status::IOError("shard file " + entry.file +
                             " disagrees with the manifest table/attribute counts");
    }
    // Schema fingerprint catches a valid snapshot sitting in the wrong
    // entry's slot (same-shaped shards swapped on disk, stale rebuilds)
    // even when file-level checksum verification is off.
    if (SchemaFingerprint(*engine->shard_lakes_[s]) != entry.schema_crc32) {
      return Status::IOError("shard file " + entry.file +
                             " does not contain the tables the manifest "
                             "assigns to it");
    }
    // Options uniformity across shards: everything that influences
    // signatures, distances or ranking must match. The canonical options
    // fingerprint covers exactly that set (num_threads — build-time
    // parallelism only — is excluded by construction).
    if (s != first_served &&
        core::OptionsFingerprint(engine->shards_[s]->options()) !=
            shard0_options_fp) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " was built with different engine options than shard " +
          std::to_string(first_served) +
          "; sharded serving requires uniform options");
    }
  }

  // Global numbering: table names, per-table attribute id bases (attributes
  // are assigned densely in table order, then column order, exactly as a
  // single engine's IndexLake would) and the shard-local -> global maps.
  // The column counts of UNSERVED tables — without which the bases of
  // everything after them are unknown — come from the v3 manifest; a full
  // engine reads them off its loaded lakes (and cross-checks the manifest
  // where it records them).
  engine->table_names_.assign(m.total_tables, "");
  std::vector<size_t> cols_of(m.total_tables, 0);
  if (m.has_column_counts()) {
    for (size_t s = 0; s < n_shards; ++s) {
      for (size_t lt = 0; lt < m.shards[s].global_tables.size(); ++lt) {
        cols_of[m.shards[s].global_tables[lt]] = m.shards[s].column_counts[lt];
      }
    }
  }
  for (size_t s : engine->served_) {
    const DataLake& lake = *engine->shard_lakes_[s];
    for (size_t lt = 0; lt < lake.size(); ++lt) {
      const uint32_t g = m.shards[s].global_tables[lt];
      engine->table_names_[g] = lake.table(lt).name();
      if (m.has_column_counts() && cols_of[g] != lake.table(lt).num_columns()) {
        return Status::IOError("shard file " + m.shards[s].file +
                               " disagrees with the manifest column counts");
      }
      cols_of[g] = lake.table(lt).num_columns();
    }
  }
  std::vector<uint32_t> base(m.total_tables, 0);
  uint32_t next_attr = 0;
  for (size_t g = 0; g < m.total_tables; ++g) {
    base[g] = next_attr;
    next_attr += static_cast<uint32_t>(cols_of[g]);
  }
  if (next_attr != m.total_attributes) {
    return Status::IOError(
        "shard schemas disagree with the manifest attribute total");
  }
  engine->attr_table_.resize(next_attr);
  for (size_t g = 0; g < m.total_tables; ++g) {
    for (size_t c = 0; c < cols_of[g]; ++c) {
      engine->attr_table_[base[g] + c] = static_cast<uint32_t>(g);
    }
  }
  engine->attr_global_.resize(n_shards);
  engine->attr_shard_.resize(next_attr);
  engine->attr_local_.resize(next_attr);
  for (size_t s : engine->served_) {
    const DataLake& lake = *engine->shard_lakes_[s];
    auto& map = engine->attr_global_[s];
    map.resize(engine->shards_[s]->indexes().num_attributes());
    for (size_t lt = 0; lt < lake.size(); ++lt) {
      const uint32_t g = m.shards[s].global_tables[lt];
      for (size_t c = 0; c < lake.table(lt).num_columns(); ++c) {
        const uint32_t local = engine->shards_[s]->attribute_id(
            static_cast<uint32_t>(lt), static_cast<uint32_t>(c));
        const uint32_t global = base[g] + static_cast<uint32_t>(c);
        map[local] = global;
        engine->attr_shard_[global] = static_cast<uint32_t>(s);
        engine->attr_local_[global] = local;
      }
    }
  }
  return engine;
}

Result<core::QueryTarget> ShardedEngine::Profile(const Table& target) const {
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  return shards_[served_.front()]->ProfileTarget(target);
}

BackendInfo ShardedEngine::Info() const {
  BackendInfo info;
  info.kind = BackendKind::kSharded;
  info.num_tables = num_tables();
  info.num_attributes = num_attributes();
  info.num_shards = num_shards();
  info.options_fingerprint = core::OptionsFingerprint(options());
  info.index_fingerprint = index_fingerprint_;
  return info;
}

std::vector<ShardedEngine::ServedTable> ShardedEngine::ServedTables() const {
  std::vector<ServedTable> out;
  for (size_t s : served_) {
    const ShardManifestEntry& entry = manifest_.shards[s];
    for (size_t lt = 0; lt < entry.global_tables.size(); ++lt) {
      ServedTable t;
      t.global_id = entry.global_tables[lt];
      t.name = table_names_[t.global_id];
      t.column_count =
          static_cast<uint32_t>(shard_lakes_[s]->table(lt).num_columns());
      out.push_back(std::move(t));
    }
  }
  std::sort(out.begin(), out.end(), [](const ServedTable& a, const ServedTable& b) {
    return a.global_id < b.global_id;
  });
  return out;
}

Result<core::CandidateDepthCounts> ShardedEngine::CollectDepthCounts(
    const core::QueryTarget& target,
    const std::array<bool, core::kNumEvidence>& enabled_mask, size_t m) const {
  if (target.sigs.empty() || target.sigs.size() != target.profiles.size()) {
    return Status::InvalidArgument("target is not a profiled table");
  }
  std::vector<core::CandidateDepthCounts> counts(served_.size());
  pool_.ParallelFor(served_.size(), [&](size_t j) {
    counts[j] = shards_[served_[j]]->CollectDepthCounts(target, enabled_mask, m);
  });
  core::CandidateDepthCounts total = std::move(counts[0]);
  for (size_t j = 1; j < counts.size(); ++j) total.Add(counts[j]);
  return total;
}

Result<ShardedEngine::ShardScore> ShardedEngine::ScoreAtStops(
    const core::QueryTarget& target, const core::CandidateStopDepths& stops,
    size_t m, const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  if (target.sigs.empty() || target.sigs.size() != target.profiles.size()) {
    return Status::InvalidArgument("target is not a profiled table");
  }
  if (stops.depths.size() != target.sigs.size()) {
    return Status::InvalidArgument("stop depths do not match the target's columns");
  }
  const size_t n_cols = target.sigs.size();

  // Retrieve per served shard at the externally resolved depths, remapped
  // onto global ids (monotone per shard, so lists stay sorted).
  std::vector<core::CandidateLists> cand(served_.size());
  pool_.ParallelFor(served_.size(), [&](size_t j) {
    const size_t s = served_[j];
    core::CandidateLists lists = shards_[s]->CollectCandidates(target, stops, m);
    for (auto& per_evidence : lists.ids) {
      for (auto& ids : per_evidence) {
        for (uint32_t& id : ids) id = attr_global_[s][id];
      }
    }
    cand[j] = std::move(lists);
  });

  // Merge across the served shards and cap at the m smallest ids — this
  // server's candidates for the cross-server merge.
  ShardScore score;
  score.lists.ids.resize(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      std::vector<uint32_t> merged;
      for (const core::CandidateLists& lists : cand) {
        const std::vector<uint32_t>& ids = lists.ids[c][e];
        merged.insert(merged.end(), ids.begin(), ids.end());
      }
      std::sort(merged.begin(), merged.end());
      if (merged.size() > m) merged.resize(m);
      score.lists.ids[c][e] = std::move(merged);
    }
  }

  // Score this server's per-column unions and return globally addressed
  // rows. Superset rows are fine: the coordinator filters to the globally
  // selected candidates, and a row is a pure function of (query, candidate).
  std::vector<std::vector<std::vector<uint32_t>>> shard_candidates(
      served_.size(), std::vector<std::vector<uint32_t>>(n_cols));
  for (size_t c = 0; c < n_cols; ++c) {
    std::vector<uint32_t> selected;
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      const std::vector<uint32_t>& ids = score.lists.ids[c][e];
      selected.insert(selected.end(), ids.begin(), ids.end());
    }
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()), selected.end());
    for (uint32_t g : selected) {
      const auto it = std::find(served_.begin(), served_.end(),
                                static_cast<size_t>(attr_shard_[g]));
      shard_candidates[it - served_.begin()][c].push_back(attr_local_[g]);
    }
  }
  std::vector<std::vector<core::PairDistances>> rows(served_.size());
  pool_.ParallelFor(served_.size(), [&](size_t j) {
    const size_t s = served_[j];
    rows[j] = shards_[s]->ScoreCandidates(target, shard_candidates[j], enabled_mask);
    for (core::PairDistances& row : rows[j]) {
      row.attribute_id = attr_global_[s][row.attribute_id];
    }
  });
  size_t total_rows = 0;
  for (const auto& r : rows) total_rows += r.size();
  score.rows.reserve(total_rows);
  for (auto& r : rows) {
    score.rows.insert(score.rows.end(), r.begin(), r.end());
  }
  return score;
}

Result<core::SearchResult> ShardedEngine::Search(
    core::QueryTarget target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  if (!serves_all()) {
    return Status::InvalidArgument(
        "this engine serves a shard subset; whole-lake Search needs every "
        "shard (subset servers answer the phase API instead)");
  }
  if (target.sigs.empty() || target.sigs.size() != target.profiles.size()) {
    return Status::InvalidArgument("target is not a profiled table");
  }
  std::vector<ProfiledSlot> slots(1);
  slots[0].qt = std::move(target);
  std::vector<Result<core::SearchResult>> results =
      ExecuteProfiled(std::move(slots), k, enabled_mask);
  return std::move(results[0]);
}

std::vector<Result<core::SearchResult>> ShardedEngine::Execute(
    const QueryBatch& batch) const {
  const size_t n_targets = batch.targets.size();
  std::vector<ProfiledSlot> slots(n_targets);
  if (!serves_all()) {
    for (ProfiledSlot& slot : slots) {
      slot.error = Status::InvalidArgument(
          "this engine serves a shard subset; whole-lake Search needs every "
          "shard (subset servers answer the phase API instead)");
    }
    std::vector<Result<core::SearchResult>> out;
    out.reserve(n_targets);
    for (ProfiledSlot& slot : slots) out.emplace_back(std::move(slot.error));
    return out;
  }
  std::unordered_map<const Table*, size_t> first_slot;
  for (size_t i = 0; i < n_targets; ++i) {
    if (batch.targets[i] == nullptr) {
      slots[i].error = Status::InvalidArgument("batch target is null");
    } else if (batch.targets[i]->num_columns() == 0) {
      slots[i].error = Status::InvalidArgument("target has no columns");
    } else {
      // A Table repeated across slots is profiled (and scattered) once;
      // the later slots reuse the first slot's work.
      auto [it, inserted] = first_slot.try_emplace(batch.targets[i], i);
      if (!inserted) slots[i].dup_of = it->second;
    }
  }

  // Phase 1 — profile every distinct target once (signatures depend only
  // on the uniform options, so any replica produces the same QueryTarget).
  pool_.ParallelFor(n_targets, [&](size_t i) {
    if (!slots[i].error.ok() || slots[i].dup_of != SIZE_MAX) return;
    slots[i].qt = shards_[0]->ProfileTarget(*batch.targets[i]);
  });

  return ExecuteProfiled(std::move(slots), batch.k, options().enabled);
}

std::vector<Result<core::SearchResult>> ShardedEngine::ExecuteProfiled(
    std::vector<ProfiledSlot> slots, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  const size_t n_targets = slots.size();
  const size_t n_shards = shards_.size();
  const core::D3LOptions& opts = options();
  const size_t per_index_m = std::max(opts.candidates_per_attribute, k);

  struct TargetState {
    core::CandidateStopDepths stops;
    std::vector<std::vector<core::PairDistances>> shard_rows;
    core::SearchResult result;
  };
  std::vector<TargetState> state(n_targets);
  for (size_t i = 0; i < n_targets; ++i) {
    if (slots[i].dup_of != SIZE_MAX && slots[i].error.ok()) {
      slots[i].qt = slots[slots[i].dup_of].qt;
    }
    state[i].shard_rows.resize(n_shards);
  }

  // Phases 2-4 skip duplicate slots entirely: a repeated target reuses the
  // source slot's stop depths and scored rows, so the N-shard work runs
  // once per distinct table.
  const auto is_live = [&slots](size_t i) {
    return slots[i].error.ok() && slots[i].dup_of == SIZE_MAX;
  };

  // Phase 2 — scatter: per-(target, shard) candidate depth counts, each
  // forest scan early-terminating once that shard alone saturates m.
  std::vector<std::vector<core::CandidateDepthCounts>> counts(n_targets);
  for (auto& per_shard : counts) per_shard.resize(n_shards);
  pool_.ParallelFor(n_targets * n_shards, [&](size_t idx) {
    const size_t i = idx / n_shards;
    const size_t s = idx % n_shards;
    if (!is_live(i)) return;
    counts[i][s] = shards_[s]->CollectDepthCounts(slots[i].qt, enabled_mask, per_index_m);
  });

  // Coordinator — sum the disjoint-shard counts and resolve the stop
  // depths every shard will retrieve at (the global synchronous-descent
  // stop rule, identical to a single engine over the whole lake).
  for (size_t i = 0; i < n_targets; ++i) {
    if (!is_live(i)) continue;
    core::CandidateDepthCounts total = std::move(counts[i][0]);
    for (size_t s = 1; s < n_shards; ++s) total.Add(counts[i][s]);
    state[i].stops = core::D3LEngine::ResolveStopDepths(total, per_index_m);
  }

  // Phase 3 — scatter: per-shard candidate lists at the stop depths, each
  // remapped onto global ids (a monotone map, so lists stay sorted).
  std::vector<std::vector<core::CandidateLists>> cand(n_targets);
  for (auto& per_shard : cand) per_shard.resize(n_shards);
  pool_.ParallelFor(n_targets * n_shards, [&](size_t idx) {
    const size_t i = idx / n_shards;
    const size_t s = idx % n_shards;
    if (!is_live(i)) return;
    core::CandidateLists lists =
        shards_[s]->CollectCandidates(slots[i].qt, state[i].stops, per_index_m);
    for (auto& per_evidence : lists.ids) {
      for (auto& ids : per_evidence) {
        for (uint32_t& id : ids) id = attr_global_[s][id];
      }
    }
    cand[i][s] = std::move(lists);
  });

  // Coordinator — per (column, evidence), merge the sorted per-shard lists
  // and keep the m globally smallest ids (the same canonical truncation a
  // single engine applies), then split the per-column unions back into
  // shard-local candidate vectors for scoring.
  std::vector<std::vector<std::vector<std::vector<uint32_t>>>> shard_candidates(
      n_targets);  // [target][shard][column] -> sorted local ids
  for (size_t i = 0; i < n_targets; ++i) {
    if (!is_live(i)) continue;
    const size_t n_cols = slots[i].qt.sigs.size();
    shard_candidates[i].assign(n_shards,
                               std::vector<std::vector<uint32_t>>(n_cols));
    for (size_t c = 0; c < n_cols; ++c) {
      std::vector<uint32_t> selected;  // union over evidences, global ids
      for (size_t e = 0; e < core::kNumEvidence; ++e) {
        std::vector<uint32_t> merged;
        for (size_t s = 0; s < n_shards; ++s) {
          const std::vector<uint32_t>& ids = cand[i][s].ids[c][e];
          merged.insert(merged.end(), ids.begin(), ids.end());
        }
        std::sort(merged.begin(), merged.end());
        if (merged.size() > per_index_m) merged.resize(per_index_m);
        selected.insert(selected.end(), merged.begin(), merged.end());
      }
      std::sort(selected.begin(), selected.end());
      selected.erase(std::unique(selected.begin(), selected.end()),
                     selected.end());
      for (uint32_t g : selected) {
        shard_candidates[i][attr_shard_[g]][c].push_back(attr_local_[g]);
      }
    }
  }

  // Phase 4 — scatter: score each shard's selected candidates and remap
  // the shard-local attribute ids onto the global registry.
  pool_.ParallelFor(n_targets * n_shards, [&](size_t idx) {
    const size_t i = idx / n_shards;
    const size_t s = idx % n_shards;
    if (!is_live(i)) return;
    std::vector<core::PairDistances> rows =
        shards_[s]->ScoreCandidates(slots[i].qt, shard_candidates[i][s], enabled_mask);
    for (core::PairDistances& row : rows) {
      row.attribute_id = attr_global_[s][row.attribute_id];
    }
    state[i].shard_rows[s] = std::move(rows);
  });

  // Phase 5 — gather: concatenate the shard rows (RankRows canonically
  // re-sorts them) and rank globally.
  core::EvidenceWeights weights = opts.weights;
  for (size_t t = 0; t < core::kNumEvidence; ++t) {
    if (!enabled_mask[t]) weights.w[t] = 0;
  }
  pool_.ParallelFor(n_targets, [&](size_t i) {
    if (!slots[i].error.ok()) return;
    const auto& shard_rows = slots[i].dup_of != SIZE_MAX
                                 ? state[slots[i].dup_of].shard_rows
                                 : state[i].shard_rows;
    std::vector<core::PairDistances> rows;
    size_t total_rows = 0;
    for (const auto& sr : shard_rows) total_rows += sr.size();
    rows.reserve(total_rows);
    for (const auto& sr : shard_rows) {
      rows.insert(rows.end(), sr.begin(), sr.end());
    }
    state[i].result = core::D3LEngine::RankRows(
        std::move(rows), slots[i].qt.sigs.size(), num_tables(),
        [this](uint32_t id) { return attr_table_[id]; }, weights, k);
    state[i].result.target_profiles = std::move(slots[i].qt.profiles);
    state[i].result.target_sigs = std::move(slots[i].qt.sigs);
  });

  std::vector<Result<core::SearchResult>> out;
  out.reserve(n_targets);
  for (size_t i = 0; i < n_targets; ++i) {
    if (!slots[i].error.ok()) {
      out.emplace_back(std::move(slots[i].error));
    } else {
      out.emplace_back(std::move(state[i].result));
    }
  }
  return out;
}

}  // namespace d3l::serving

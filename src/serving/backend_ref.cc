#include "serving/backend_ref.h"

#include <utility>

#include "core/query.h"
#include "io/binary_io.h"
#include "serving/manifest.h"

namespace d3l::serving {

namespace {

bool ConsumePrefix(const std::string& spec, const char* prefix,
                   std::string* rest) {
  const size_t n = std::string(prefix).size();
  if (spec.compare(0, n, prefix) != 0) return false;
  *rest = spec.substr(n);
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(list.substr(start));
      break;
    }
    out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

Result<BackendRef> BackendRef::Parse(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty backend spec");
  }
  BackendRef ref;
  std::string rest;
  if (ConsumePrefix(spec, "snapshot:", &rest)) {
    if (rest.empty()) {
      return Status::InvalidArgument("'" + spec + "' names no snapshot path");
    }
    ref.kind = Kind::kSnapshot;
    ref.path = std::move(rest);
    return ref;
  }
  if (ConsumePrefix(spec, "manifest:", &rest)) {
    if (rest.empty()) {
      return Status::InvalidArgument("'" + spec + "' names no manifest path");
    }
    ref.kind = Kind::kManifest;
    ref.path = std::move(rest);
    return ref;
  }
  if (ConsumePrefix(spec, "tcp:", &rest)) {
    ref.kind = Kind::kRemote;
    for (const std::string& endpoint : SplitCommas(rest)) {
      const size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == endpoint.size()) {
        return Status::InvalidArgument("endpoint '" + endpoint + "' in '" +
                                       spec + "' is not host:port");
      }
      ref.endpoints.push_back(endpoint);
    }
    if (ref.endpoints.empty()) {
      return Status::InvalidArgument("'" + spec + "' names no endpoints");
    }
    return ref;
  }
  // Bare path: dispatch on the file's magic, the same way `d3l_snapshot
  // info` distinguishes container formats.
  D3L_ASSIGN_OR_RETURN(io::FileInfo info, io::InspectFile(spec));
  if (info.magic == std::string(core::D3LEngine::kSnapshotMagic, 8)) {
    ref.kind = Kind::kSnapshot;
  } else if (info.magic == std::string(ShardManifest::kMagic, 8)) {
    ref.kind = Kind::kManifest;
  } else {
    return Status::InvalidArgument(
        "'" + spec + "' is neither an engine snapshot nor a shard manifest "
        "(unknown magic); use an explicit snapshot:/manifest:/tcp: prefix");
  }
  ref.path = spec;
  return ref;
}

std::string BackendRef::ToString() const {
  switch (kind) {
    case Kind::kSnapshot:
      return "snapshot:" + path;
    case Kind::kManifest:
      return "manifest:" + path;
    case Kind::kRemote: {
      std::string out = "tcp:";
      for (size_t i = 0; i < endpoints.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += endpoints[i];
      }
      return out;
    }
  }
  return std::string();
}

Result<std::unique_ptr<SearchBackend>> OpenBackend(
    const BackendRef& ref, const OpenBackendOptions& options) {
  switch (ref.kind) {
    case BackendRef::Kind::kSnapshot: {
      D3L_ASSIGN_OR_RETURN(std::unique_ptr<EngineBackend> backend,
                           EngineBackend::FromSnapshot(ref.path));
      return std::unique_ptr<SearchBackend>(std::move(backend));
    }
    case BackendRef::Kind::kManifest: {
      D3L_ASSIGN_OR_RETURN(std::unique_ptr<ShardedEngine> backend,
                           ShardedEngine::Open(ref.path, options.sharded));
      return std::unique_ptr<SearchBackend>(std::move(backend));
    }
    case BackendRef::Kind::kRemote: {
      D3L_ASSIGN_OR_RETURN(
          std::unique_ptr<RemoteBackend> backend,
          RemoteBackend::Connect(ref.endpoints, options.remote));
      return std::unique_ptr<SearchBackend>(std::move(backend));
    }
  }
  return Status::InvalidArgument("unknown backend ref kind");
}

Result<std::unique_ptr<SearchBackend>> OpenBackend(
    const std::string& spec, const OpenBackendOptions& options) {
  D3L_ASSIGN_OR_RETURN(BackendRef ref, BackendRef::Parse(spec));
  return OpenBackend(ref, options);
}

}  // namespace d3l::serving

#include "serving/remote_backend.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace d3l::serving {

namespace {

/// Splits "host:port" on the LAST colon (hosts may hold none of their own
/// here — numeric IPv6 endpoints would need bracket syntax, which the lake
/// deployments this serves don't use).
Status ParseEndpoint(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not of the form host:port");
  }
  unsigned long value = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has a non-numeric port");
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 65535) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has an out-of-range port");
    }
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

/// One INFO round trip, decoded and integrity-checked.
Result<rpc::ServerInfo> FetchInfo(rpc::RpcClient& client) {
  const std::string request =
      rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  D3L_ASSIGN_OR_RETURN(std::unique_ptr<io::Reader> r,
                       client.CallChecked(rpc::kMethodInfo, request));
  rpc::ServerInfo info = rpc::LoadServerInfo(*r);
  D3L_RETURN_NOT_OK(r->status());
  D3L_RETURN_NOT_OK(r->EndSection());
  return info;
}

}  // namespace

Result<RemoteBackend::Stitched> RemoteBackend::Stitch(
    const std::vector<rpc::ServerInfo>& infos,
    const std::vector<std::string>& endpoints) {
  const rpc::ServerInfo& first = infos.front();
  Stitched st;
  st.options_fingerprint = first.backend.options_fingerprint;
  st.index_fingerprint = first.backend.index_fingerprint;
  st.num_shards = first.backend.num_shards;
  st.single_full_server = infos.size() == 1 && first.serves_all;

  // Every server must be a shard of the SAME deployment: a subset
  // ShardedEngine folds the full manifest into its fingerprints and totals
  // precisely so this comparison is exact across servers.
  for (size_t i = 0; i < infos.size(); ++i) {
    const rpc::ServerInfo& info = infos[i];
    if (info.backend.kind != BackendKind::kSharded) {
      return Status::InvalidArgument(
          "server " + endpoints[i] + " reports backend kind '" +
          BackendKindName(info.backend.kind) +
          "', not the sharded engine a shard server fronts");
    }
    if (info.backend.options_fingerprint != st.options_fingerprint ||
        info.backend.index_fingerprint != st.index_fingerprint ||
        info.backend.num_tables != first.backend.num_tables ||
        info.backend.num_attributes != first.backend.num_attributes ||
        info.backend.num_shards != st.num_shards) {
      return Status::InvalidArgument(
          "servers " + endpoints[0] + " and " + endpoints[i] +
          " disagree on deployment identity (different manifest "
          "generations or options?) — refusing to scatter-gather "
          "across mixed deployments");
    }
  }

  // The served tables must form an EXACT partition of the lake's global
  // numbering: a gap loses candidates silently, an overlap double-scores.
  const size_t n_tables = first.backend.num_tables;
  st.table_names.assign(n_tables, std::string());
  std::vector<uint32_t> column_counts(n_tables, 0);
  std::vector<bool> covered(n_tables, false);
  for (size_t i = 0; i < infos.size(); ++i) {
    for (const ShardedEngine::ServedTable& t : infos[i].served_tables) {
      if (t.global_id >= n_tables) {
        return Status::IOError("server " + endpoints[i] +
                               " reports out-of-range table id " +
                               std::to_string(t.global_id));
      }
      if (covered[t.global_id]) {
        return Status::InvalidArgument(
            "table '" + t.name + "' (id " + std::to_string(t.global_id) +
            ") is served by more than one server — shard assignments "
            "must not overlap");
      }
      covered[t.global_id] = true;
      st.table_names[t.global_id] = t.name;
      column_counts[t.global_id] = t.column_count;
    }
  }
  for (size_t g = 0; g < n_tables; ++g) {
    if (!covered[g]) {
      return Status::InvalidArgument(
          "table id " + std::to_string(g) +
          " is served by no endpoint — the given servers do not cover "
          "the whole lake");
    }
  }

  // Global attribute numbering is contiguous per table in table order
  // (the registry layout every engine over this manifest shares).
  st.attr_table.reserve(first.backend.num_attributes);
  for (size_t g = 0; g < n_tables; ++g) {
    for (uint32_t c = 0; c < column_counts[g]; ++c) {
      st.attr_table.push_back(static_cast<uint32_t>(g));
    }
  }
  if (st.attr_table.size() != first.backend.num_attributes) {
    return Status::IOError(
        "served column counts sum to " + std::to_string(st.attr_table.size()) +
        " attributes but the deployment indexes " +
        std::to_string(first.backend.num_attributes));
  }
  return st;
}

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    std::vector<std::string> endpoints, RemoteBackendOptions options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("no endpoints given");
  }
  const size_t threads =
      options.num_threads > 0 ? options.num_threads : endpoints.size();
  std::unique_ptr<RemoteBackend> backend(new RemoteBackend(threads));
  for (const std::string& spec : endpoints) {
    std::string host;
    uint16_t port = 0;
    D3L_RETURN_NOT_OK(ParseEndpoint(spec, &host, &port));
    backend->clients_.push_back(std::make_unique<rpc::RpcClient>(
        std::move(host), port, options.client));
  }

  std::vector<Result<rpc::ServerInfo>> fetched;
  fetched.reserve(endpoints.size());
  for (auto& client : backend->clients_) fetched.push_back(FetchInfo(*client));
  std::vector<rpc::ServerInfo> infos;
  infos.reserve(fetched.size());
  for (auto& f : fetched) {
    D3L_RETURN_NOT_OK(f.status());
    infos.push_back(std::move(*f));
  }

  D3L_ASSIGN_OR_RETURN(Stitched st, Stitch(infos, endpoints));
  backend->options_ = std::move(infos.front().options);
  backend->state_ = std::make_shared<const Stitched>(std::move(st));
  return backend;
}

Result<core::QueryTarget> RemoteBackend::Profile(const Table& target) const {
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  const std::string request = rpc::BuildFrame(
      rpc::kMethodProfile, [&](io::Writer& w) { rpc::SaveTable(w, target); });
  // Profiles depend only on the (uniform) options, so any server answers
  // identically — skip past unreachable ones rather than failing.
  Status last = Status::OK();
  for (auto& client : clients_) {
    Result<std::unique_ptr<io::Reader>> r =
        client->CallChecked(rpc::kMethodProfile, request);
    if (!r.ok()) {
      if (r.status().IsUnavailable()) {
        last = r.status();
        continue;
      }
      return r.status();
    }
    core::QueryTarget qt = core::LoadQueryTarget(**r);
    D3L_RETURN_NOT_OK((*r)->status());
    D3L_RETURN_NOT_OK((*r)->EndSection());
    return qt;
  }
  return last;
}

Result<core::SearchResult> RemoteBackend::Search(
    core::QueryTarget target, size_t k,
    const std::array<bool, core::kNumEvidence>& enabled_mask) const {
  if (target.sigs.empty() || target.profiles.size() != target.sigs.size()) {
    return Status::InvalidArgument("target is not a profiled QueryTarget");
  }
  const std::shared_ptr<const Stitched> st = state();
  const size_t n_servers = clients_.size();
  const size_t n_cols = target.sigs.size();

  // One full server needs no decomposition: its SRCH answer IS the
  // whole-lake answer, bytes included.
  if (st->single_full_server) {
    const std::string request =
        rpc::BuildFrame(rpc::kMethodSearch, [&](io::Writer& w) {
          core::SaveQueryTarget(w, target);
          w.WriteU64(k);
          rpc::SaveMask(w, enabled_mask);
        });
    D3L_ASSIGN_OR_RETURN(
        std::unique_ptr<io::Reader> r,
        clients_[0]->CallChecked(rpc::kMethodSearch, request));
    core::SearchResult result = core::LoadSearchResult(*r);
    D3L_RETURN_NOT_OK(r->status());
    D3L_RETURN_NOT_OK(r->EndSection());
    return result;
  }

  const size_t m = std::max(options_.candidates_per_attribute, k);

  // Phase 1 — scatter DCNT: every server sums candidate depth counts over
  // its shards; the coordinator adds the disjoint sums and resolves the
  // stop depths ONCE (the global synchronous-descent stop rule).
  const std::string count_request =
      rpc::BuildFrame(rpc::kMethodDepthCounts, [&](io::Writer& w) {
        core::SaveQueryTarget(w, target);
        rpc::SaveMask(w, enabled_mask);
        w.WriteU64(m);
      });
  std::vector<core::CandidateDepthCounts> counts(n_servers);
  std::vector<Status> errors(n_servers, Status::OK());
  // ParallelFor workers carry no trace of their own; re-installing the
  // caller's handle in each lambda puts every per-server RPC span (and the
  // server subtree it stitches in) under this query's search span.
  const obs::TraceHandle trace = obs::CurrentTrace();
  pool_.ParallelFor(n_servers, [&](size_t i) {
    obs::TraceScope scope(trace);
    Result<std::unique_ptr<io::Reader>> r =
        clients_[i]->CallChecked(rpc::kMethodDepthCounts, count_request);
    if (!r.ok()) {
      errors[i] = r.status();
      return;
    }
    counts[i] = rpc::LoadDepthCounts(**r);
    errors[i] = (*r)->status();
    if (errors[i].ok()) errors[i] = (*r)->EndSection();
  });
  for (const Status& e : errors) D3L_RETURN_NOT_OK(e);
  core::CandidateDepthCounts total = std::move(counts[0]);
  for (size_t i = 1; i < n_servers; ++i) total.Add(counts[i]);
  const core::CandidateStopDepths stops =
      core::D3LEngine::ResolveStopDepths(total, m);

  // Phase 2 — scatter SCOR: every server retrieves at the global stop
  // depths and scores its local candidate unions.
  const std::string score_request =
      rpc::BuildFrame(rpc::kMethodScoreAtStops, [&](io::Writer& w) {
        core::SaveQueryTarget(w, target);
        rpc::SaveStopDepths(w, stops);
        w.WriteU64(m);
        rpc::SaveMask(w, enabled_mask);
      });
  std::vector<core::CandidateLists> lists(n_servers);
  std::vector<std::vector<core::PairDistances>> rows(n_servers);
  pool_.ParallelFor(n_servers, [&](size_t i) {
    obs::TraceScope scope(trace);
    Result<std::unique_ptr<io::Reader>> r =
        clients_[i]->CallChecked(rpc::kMethodScoreAtStops, score_request);
    if (!r.ok()) {
      errors[i] = r.status();
      return;
    }
    lists[i] = rpc::LoadCandidateLists(**r);
    rows[i] = rpc::LoadRows(**r);
    errors[i] = (*r)->status();
    if (errors[i].ok()) errors[i] = (*r)->EndSection();
  });
  for (const Status& e : errors) D3L_RETURN_NOT_OK(e);

  // Coordinator — merge the per-server m-capped lists and re-cap at m (the
  // whole-lake first-m: an id in the global first-m owned by server S is in
  // S's first-m), then keep only the rows whose candidate survived. Each
  // server scored its LOCAL union, a superset of its share of the global
  // one, so every needed row exists and the extras are dropped here.
  std::vector<std::vector<uint32_t>> unions(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    std::vector<uint32_t> selected;
    for (size_t e = 0; e < core::kNumEvidence; ++e) {
      std::vector<uint32_t> merged;
      for (size_t i = 0; i < n_servers; ++i) {
        if (c < lists[i].ids.size()) {
          const std::vector<uint32_t>& ids = lists[i].ids[c][e];
          merged.insert(merged.end(), ids.begin(), ids.end());
        }
      }
      std::sort(merged.begin(), merged.end());
      if (merged.size() > m) merged.resize(m);
      selected.insert(selected.end(), merged.begin(), merged.end());
    }
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
    unions[c] = std::move(selected);
  }
  std::vector<core::PairDistances> all_rows;
  for (size_t i = 0; i < n_servers; ++i) {
    for (core::PairDistances& row : rows[i]) {
      if (row.target_column < n_cols &&
          std::binary_search(unions[row.target_column].begin(),
                             unions[row.target_column].end(),
                             row.attribute_id)) {
        all_rows.push_back(std::move(row));
      }
    }
  }

  core::EvidenceWeights weights = options_.weights;
  for (size_t t = 0; t < core::kNumEvidence; ++t) {
    if (!enabled_mask[t]) weights.w[t] = 0;
  }
  core::SearchResult result = core::D3LEngine::RankRows(
      std::move(all_rows), n_cols, st->table_names.size(),
      [st](uint32_t id) { return st->attr_table[id]; }, weights, k);
  result.target_profiles = std::move(target.profiles);
  result.target_sigs = std::move(target.sigs);
  return result;
}

BackendInfo RemoteBackend::Info() const {
  const std::shared_ptr<const Stitched> st = state();
  BackendInfo info;
  info.kind = BackendKind::kRemote;
  info.num_tables = st->table_names.size();
  info.num_attributes = st->attr_table.size();
  info.num_shards = st->num_shards;
  info.options_fingerprint = st->options_fingerprint;
  info.index_fingerprint = st->index_fingerprint;
  return info;
}

std::string RemoteBackend::table_name(uint32_t table_index) const {
  const std::shared_ptr<const Stitched> st = state();
  if (table_index >= st->table_names.size()) return std::string();
  return st->table_names[table_index];
}

Status RemoteBackend::Reload() {
  const std::string request =
      rpc::BuildFrame(rpc::kMethodReload, [](io::Writer&) {});
  const size_t n_servers = clients_.size();
  std::vector<rpc::ServerInfo> infos(n_servers);
  std::vector<Status> errors(n_servers, Status::OK());
  std::vector<std::string> endpoints;
  endpoints.reserve(n_servers);
  for (auto& client : clients_) endpoints.push_back(client->endpoint());
  pool_.ParallelFor(n_servers, [&](size_t i) {
    Result<std::unique_ptr<io::Reader>> r =
        clients_[i]->CallChecked(rpc::kMethodReload, request);
    if (!r.ok()) {
      errors[i] = r.status();
      return;
    }
    infos[i] = rpc::LoadServerInfo(**r);
    errors[i] = (*r)->status();
    if (errors[i].ok()) errors[i] = (*r)->EndSection();
  });
  for (const Status& e : errors) D3L_RETURN_NOT_OK(e);

  D3L_ASSIGN_OR_RETURN(Stitched st, Stitch(infos, endpoints));
  options_ = std::move(infos.front().options);
  {
    MutexLock lock(state_mu_);
    state_ = std::make_shared<const Stitched>(std::move(st));
  }
  return Status::OK();
}

}  // namespace d3l::serving

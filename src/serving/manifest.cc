#include "serving/manifest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

#include "io/binary_io.h"
#include "table/csv.h"

namespace d3l::serving {

namespace {
constexpr uint32_t kSectionManifest = io::SectionId("MANF");

/// A manifest-relative shard filename must stay inside the manifest's
/// directory: no absolute paths, no ".." components. Everything the
/// builder writes is a bare filename, so anything fancier is a hand-edited
/// (or hostile) manifest.
bool EscapesManifestDirectory(const std::string& file) {
  const std::filesystem::path p(file);
  if (p.is_absolute()) return true;
  for (const auto& component : p) {
    if (component == "..") return true;
  }
  return false;
}

}  // namespace

bool ShardManifest::has_source_identity() const {
  for (const ShardManifestEntry& e : shards) {
    if (e.sources.size() != e.global_tables.size()) return false;
  }
  return !shards.empty();
}

bool ShardManifest::has_column_counts() const {
  for (const ShardManifestEntry& e : shards) {
    if (e.column_counts.size() != e.global_tables.size()) return false;
  }
  return !shards.empty();
}

Status ShardManifest::Validate() const {
  if (shards.empty()) {
    return Status::InvalidArgument("manifest lists no shards");
  }
  // A partition needs at least total_tables entries across the shard lists,
  // so a total exceeding their (payload-bounded) sum is already invalid —
  // and checking first keeps a forged total from driving the coverage
  // allocation below to an absurd size.
  uint64_t listed = 0;
  for (const ShardManifestEntry& e : shards) listed += e.global_tables.size();
  if (total_tables > listed) {
    return Status::InvalidArgument(
        "manifest total of " + std::to_string(total_tables) +
        " tables exceeds the " + std::to_string(listed) + " listed across shards");
  }
  std::vector<bool> covered(total_tables, false);
  uint64_t attr_total = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardManifestEntry& e = shards[s];
    if (e.file.empty()) {
      return Status::InvalidArgument("shard " + std::to_string(s) + " has no filename");
    }
    if (EscapesManifestDirectory(e.file)) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " filename '" + e.file +
          "' escapes the manifest directory (absolute or '..' path)");
    }
    if (e.num_tables != e.global_tables.size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          ": table count disagrees with its global table list");
    }
    // Source identities are optional (absent in loaded v1 manifests) but
    // when present must name every table.
    if (!e.sources.empty()) {
      if (e.sources.size() != e.global_tables.size()) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) +
            ": source list disagrees with its table count");
      }
      for (const TableSource& src : e.sources) {
        if (src.file.empty()) {
          return Status::InvalidArgument("shard " + std::to_string(s) +
                                         " records a source with no filename");
        }
        // Same hardening as shard filenames: CheckFreshness joins these
        // against a caller-supplied directory, so a hostile manifest must
        // not turn it into a probe of arbitrary paths.
        if (EscapesManifestDirectory(src.file)) {
          return Status::InvalidArgument(
              "shard " + std::to_string(s) + " source filename '" + src.file +
              "' escapes the lake directory (absolute or '..' path)");
        }
      }
    }
    // Column counts are optional too (absent in loaded v1/v2 manifests) but
    // when present must name every table and sum to the shard's attribute
    // count — they are the basis of the GLOBAL attribute numbering subset
    // servers reconstruct, so an inconsistent list must not load.
    if (!e.column_counts.empty()) {
      if (e.column_counts.size() != e.global_tables.size()) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) +
            ": column count list disagrees with its table count");
      }
      uint64_t cols = 0;
      for (uint32_t c : e.column_counts) cols += c;
      if (cols != e.num_attributes) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) +
            ": per-table column counts disagree with its attribute count");
      }
    }
    attr_total += e.num_attributes;
    for (uint32_t g : e.global_tables) {
      if (g >= total_tables) {
        return Status::InvalidArgument("shard " + std::to_string(s) +
                                       " references table id " + std::to_string(g) +
                                       " outside the lake");
      }
      if (covered[g]) {
        return Status::InvalidArgument("table id " + std::to_string(g) +
                                       " assigned to more than one shard");
      }
      covered[g] = true;
    }
  }
  for (uint64_t g = 0; g < total_tables; ++g) {
    if (!covered[g]) {
      return Status::InvalidArgument("table id " + std::to_string(g) +
                                     " is missing from every shard");
    }
  }
  if (attr_total != total_attributes) {
    return Status::InvalidArgument(
        "per-shard attribute counts disagree with the manifest total");
  }
  return Status::OK();
}

Status ShardManifest::Save(const std::string& path) const {
  D3L_RETURN_NOT_OK(Validate());
  io::Writer w;
  D3L_RETURN_NOT_OK(w.Open(path, kMagic, kVersion));
  w.BeginSection(kSectionManifest);
  w.WriteU64(total_tables);
  w.WriteU64(total_attributes);
  w.WriteString(balance);
  w.WriteU64(shards.size());
  for (const ShardManifestEntry& e : shards) {
    w.WriteString(e.file);
    w.WriteU64(e.file_bytes);
    w.WriteU32(e.file_crc32);
    w.WriteU32(e.schema_crc32);
    w.WriteU64(e.num_tables);
    w.WriteU64(e.num_attributes);
    w.WriteU64(e.global_tables.size());
    for (uint32_t g : e.global_tables) w.WriteU32(g);
    // v2: per-table source identities. A count of 0 is legal (a re-saved
    // v1 manifest keeps loading; it just stays non-updatable).
    w.WriteU64(e.sources.size());
    for (const TableSource& src : e.sources) {
      w.WriteString(src.file);
      w.WriteU64(src.bytes);
      w.WriteU32(src.crc32);
    }
    // v3: per-table column counts (global attribute numbering for shard
    // subsets). Like sources, 0 entries keeps a re-saved older manifest
    // loadable; it just cannot back a subset server.
    w.WriteU64(e.column_counts.size());
    for (uint32_t c : e.column_counts) w.WriteU32(c);
  }
  return w.Finish();
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  io::Reader r;
  ShardManifest m;
  D3L_RETURN_NOT_OK(r.Open(path, kMagic, kMinReadVersion, kVersion, &m.version));
  D3L_RETURN_NOT_OK(r.OpenSection(kSectionManifest));
  m.total_tables = r.ReadU64();
  m.total_attributes = r.ReadU64();
  m.balance = r.ReadString();
  size_t n_shards = r.ReadLength(1);
  m.shards.reserve(n_shards);
  for (size_t s = 0; s < n_shards && r.status().ok(); ++s) {
    ShardManifestEntry e;
    e.file = r.ReadString();
    e.file_bytes = r.ReadU64();
    e.file_crc32 = r.ReadU32();
    e.schema_crc32 = r.ReadU32();
    e.num_tables = r.ReadU64();
    e.num_attributes = r.ReadU64();
    size_t n_tables = r.ReadLength(sizeof(uint32_t));
    e.global_tables.reserve(n_tables);
    for (size_t t = 0; t < n_tables; ++t) e.global_tables.push_back(r.ReadU32());
    if (m.version >= 2) {
      size_t n_sources = r.ReadLength(1);
      e.sources.reserve(n_sources);
      for (size_t t = 0; t < n_sources && r.status().ok(); ++t) {
        TableSource src;
        src.file = r.ReadString();
        src.bytes = r.ReadU64();
        src.crc32 = r.ReadU32();
        e.sources.push_back(std::move(src));
      }
    }
    if (m.version >= 3) {
      size_t n_counts = r.ReadLength(sizeof(uint32_t));
      e.column_counts.reserve(n_counts);
      for (size_t t = 0; t < n_counts; ++t) e.column_counts.push_back(r.ReadU32());
    }
    m.shards.push_back(std::move(e));
  }
  D3L_RETURN_NOT_OK(r.status());
  D3L_RETURN_NOT_OK(r.EndSection());
  D3L_RETURN_NOT_OK(m.Validate());
  return m;
}

Result<std::pair<uint64_t, uint32_t>> FileSizeAndCrc32(const std::string& path) {
  // ifstream happily "opens" a directory on POSIX and then fails every
  // read with only failbit set, which the loop below reads as a clean
  // empty file — reject non-files up front instead of checksumming one.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    if (std::filesystem::exists(path, ec)) {
      return Status::IOError("'" + path + "' is not a regular file");
    }
    return Status::NotFound("cannot open " + path);
  }
  // Streamed through a bounded buffer: shard snapshots can be huge, and
  // Open checksums several of them concurrently.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read " + path);
  io::Crc32Accumulator acc;
  uint64_t size = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    acc.Update(buf, static_cast<size_t>(in.gcount()));
    size += static_cast<uint64_t>(in.gcount());
  }
  if (in.bad()) return Status::IOError("read failed for " + path);
  return std::make_pair(size, acc.Finish());
}

uint32_t SchemaFingerprint(const DataLake& lake) {
  io::Crc32Accumulator acc;
  for (size_t t = 0; t < lake.size(); ++t) {
    const Table& table = lake.table(t);
    // Separators keep adjacent names from aliasing ("ab"+"c" vs "a"+"bc").
    acc.Update(table.name().data(), table.name().size());
    acc.Update("\n", 1);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const std::string& name = table.column(c).name();
      acc.Update(name.data(), name.size());
      acc.Update("\t", 1);
    }
  }
  return acc.Finish();
}

TableSource SourceOf(const Table& table) {
  if (table.source().valid()) return table.source();
  // In-memory tables (tests, generators) get a content-derived identity:
  // the canonical CSV serialization is deterministic, so two builds of the
  // same table agree and any cell/schema change is visible in the CRC.
  const std::string csv = WriteCsvString(table);
  return TableSource{table.name() + ".csv", csv.size(),
                     io::Crc32(csv.data(), csv.size())};
}

Result<ManifestFreshness> CheckFreshness(const ShardManifest& manifest,
                                         const std::string& csv_dir) {
  if (!manifest.has_source_identity()) {
    return Status::InvalidArgument(
        "manifest records no table sources (v1 format?); staleness requires "
        "a v2 manifest built by this version");
  }
  namespace fs = std::filesystem;
  ManifestFreshness out;
  out.shards.reserve(manifest.shards.size());
  std::set<std::string> known;
  for (const ShardManifestEntry& e : manifest.shards) {
    ShardFreshness f;
    f.tables = e.sources.size();
    for (const TableSource& src : e.sources) {
      known.insert(src.file);
      const std::string path = (fs::path(csv_dir) / src.file).string();
      auto size_crc = FileSizeAndCrc32(path);
      if (!size_crc.ok()) {
        // Missing means deleted; anything else (permissions, the path now
        // a directory, an I/O error mid-read) means we could not verify
        // the checksums — a distinct state, and never "fresh".
        std::error_code ec;
        if (fs::exists(path, ec)) {
          ++f.unreadable;
        } else {
          ++f.missing;
        }
      } else if (size_crc->first != src.bytes || size_crc->second != src.crc32) {
        ++f.changed;
      }
    }
    out.shards.push_back(f);
  }
  std::error_code ec;
  if (!fs::is_directory(csv_dir, ec)) {
    return Status::IOError("'" + csv_dir + "' is not a directory");
  }
  for (const auto& entry : fs::directory_iterator(csv_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv" &&
        known.count(entry.path().filename().string()) == 0) {
      out.new_files.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::IOError("error listing '" + csv_dir + "': " + ec.message());
  std::sort(out.new_files.begin(), out.new_files.end());
  return out;
}

std::string ManifestPath(const std::string& base) { return base + ".manifest"; }

std::string ShardPath(const std::string& base, size_t shard_index) {
  return base + ".shard" + std::to_string(shard_index) + ".d3l";
}

std::string StagedShardPath(const std::string& base, size_t shard_index) {
  return ShardPath(base, shard_index) + ".staged";
}

std::string ResolveRelative(const std::string& manifest_path, const std::string& file) {
  std::filesystem::path p(file);
  if (p.is_absolute()) return file;
  return (std::filesystem::path(manifest_path).parent_path() / p).string();
}

}  // namespace d3l::serving

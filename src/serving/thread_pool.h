// A fixed pool of worker threads with two scheduling modes — the execution
// substrate of the scatter-gather query engine and the async query service.
//
// Batch mode: ParallelFor(n, fn) runs fn(0..n-1) across the workers AND the
// calling thread, then returns when every iteration has finished. Caller
// participation means a pool with zero workers degenerates to a plain
// serial loop (handy in tests and on single-core boxes) and that no batch
// can deadlock waiting for itself.
//
// Task mode: Post(fn) enqueues an independent unit of work and returns
// immediately; a worker picks it up as soon as it is free. This is what
// DiscoveryService builds its query futures on. The two modes share the
// workers: queued tasks run between batches (batches take priority, as
// they are the latency-critical inner phases of a query). Posted tasks are
// never dropped — destruction runs any stragglers inline after the workers
// exit, so a future backed by a posted task is always satisfied.
//
// Posted tasks are also exception-contained: a throw escaping a posted
// task is caught at the task boundary (counted in task_exceptions()) and
// the worker keeps draining the queue. Before this guard, one throwing
// task took the whole process down via std::terminate with every queued
// promise unresolved. Throwing tasks are still a bug — the catch exists so
// one bad query cannot break every other in-flight caller's future; tasks
// that own a promise should catch their own exceptions and fail it with a
// meaningful Status (DiscoveryService does).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace d3l::serving {

/// \brief Fixed worker pool: blocking batches plus fire-and-forget tasks.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is valid: ParallelFor runs serially on
  /// the caller, and Post runs tasks inline). A non-null `name` turns on
  /// task-mode metrics under a pool=<name> label (queue depth, task count
  /// and latency) in `registry` (null = the process default). Batch-mode
  /// iterations stay uninstrumented on purpose: they are the query engine's
  /// inner loops, where a histogram record per iteration would be real
  /// overhead for a signal the per-phase query histograms already carry.
  explicit ThreadPool(size_t num_workers, const char* name = nullptr,
                      obs::MetricRegistry* registry = nullptr);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing iterations dynamically
  /// over the workers and the calling thread; blocks until all complete.
  /// Concurrent ParallelFor calls from different threads serialize (one
  /// batch owns the pool at a time). `fn` must not itself call ParallelFor
  /// on the same pool, and must not throw: like the rest of this codebase
  /// (Status, not exceptions), the pool treats a throwing task as a fatal
  /// programming error — an unwind would leave the batch armed while `fn`
  /// dangles. Worker-thread throws hit std::terminate regardless.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      D3L_EXCLUDES(batch_mutex_, m_);

  /// Enqueues `fn` to run on a worker thread and returns immediately. With
  /// zero workers the task runs inline on the calling thread before Post
  /// returns (synchronous degradation, same guarantee: the task WILL run).
  /// Tasks must not call ParallelFor on this pool. An exception escaping
  /// the task is swallowed at the task boundary (see the header comment):
  /// the worker survives and later queued tasks still run.
  void Post(std::function<void()> fn) D3L_EXCLUDES(m_);

  /// Exceptions caught escaping posted tasks since construction.
  size_t task_exceptions() const { return task_exceptions_.load(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop() D3L_EXCLUDES(m_);
  // Claims and runs iterations of the current batch until none remain.
  void Drain() D3L_EXCLUDES(m_);
  // Pops and runs queued tasks until the queue is empty.
  void DrainTasks() D3L_EXCLUDES(m_);
  // Runs one task, containing any exception it throws.
  void RunContained(const std::function<void()>& task);

  std::vector<std::thread> workers_;

  Mutex batch_mutex_;  ///< serializes whole batches

  Mutex m_;  ///< guards the per-batch state and the task queue below
  CondVar wake_cv_;
  CondVar done_cv_;
  const std::function<void(size_t)>* fn_ D3L_GUARDED_BY(m_) = nullptr;
  size_t n_ D3L_GUARDED_BY(m_) = 0;
  size_t next_ D3L_GUARDED_BY(m_) = 0;
  size_t completed_ D3L_GUARDED_BY(m_) = 0;
  /// Bumped per batch so workers never rejoin a done one.
  uint64_t epoch_ D3L_GUARDED_BY(m_) = 0;
  std::deque<std::function<void()>> tasks_ D3L_GUARDED_BY(m_);
  bool stop_ D3L_GUARDED_BY(m_) = false;
  std::atomic<size_t> task_exceptions_{0};

  // Task-mode instruments; all null when the pool was built without a name.
  std::shared_ptr<obs::Gauge> queue_depth_;
  std::shared_ptr<obs::Counter> tasks_total_;
  std::shared_ptr<obs::Histogram> task_seconds_;
};

}  // namespace d3l::serving

// The shard-set manifest: a small versioned file describing how one lake
// was partitioned into N independent engine snapshots.
//
// A sharded deployment is `<base>.manifest` plus `<base>.shard<i>.d3l`
// files, each a self-contained D3LEngine snapshot over a disjoint subset of
// the lake's tables. The manifest records, per shard, the snapshot filename
// (relative to the manifest), its size and whole-file CRC32, and the global
// table ids the shard serves in local order — everything ShardedEngine
// needs to remap shard-local results back onto the original lake's table
// and attribute numbering. The manifest's own payload is protected by the
// io::Writer section checksum.
//
// Format v2 additionally records, per table, the identity of the SOURCE
// file the table was profiled from (filename + size + CRC32 captured at
// build time). That is what makes a sharded deployment incrementally
// rebuildable: UpdateShards (shard_builder.h) diffs the current lake
// against these identities and re-profiles only the shards whose table
// sets actually changed. v1 manifests still load and serve; they just
// cannot be updated incrementally (no recorded sources).
//
// Format v3 additionally records, per table, its COLUMN COUNT. The lake's
// global attribute ids are dense in (table, column) order, so the counts +
// the partition let a process holding only some of the shards reconstruct
// the full global numbering — which is what a remote shard server needs to
// return globally addressed results (serving::RemoteBackend). v1/v2
// manifests load and serve in full; only subset serving requires v3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/lake.h"

namespace d3l::serving {

/// \brief One shard's entry in the manifest.
struct ShardManifestEntry {
  std::string file;           ///< snapshot filename, relative to the manifest
  uint64_t file_bytes = 0;    ///< snapshot size on disk
  uint32_t file_crc32 = 0;    ///< CRC32 of the whole snapshot file
  /// SchemaFingerprint of the shard's tables. Binds the entry to the
  /// CONTENT of its snapshot, so a valid shard file swapped into another
  /// entry's slot is rejected even when the shards have identical shapes
  /// and file-level checksum verification is disabled.
  uint32_t schema_crc32 = 0;
  uint64_t num_tables = 0;
  uint64_t num_attributes = 0;
  /// Global table ids (indexes into the original lake) in shard-local
  /// order: the shard's local table `i` is `global_tables[i]`.
  std::vector<uint32_t> global_tables;
  /// v2: source-file identity of each table, parallel to `global_tables`
  /// (shard-local order). Empty when loaded from a v1 manifest.
  std::vector<TableSource> sources;
  /// v3: column count of each table, parallel to `global_tables`. Together
  /// with the partition this determines the lake's global attribute
  /// numbering (attributes are dense in table order, then column order), so
  /// a server holding only a SUBSET of the shards can still remap its local
  /// results onto global ids — the precondition for remote scatter-gather
  /// (serving::RemoteBackend). Empty when loaded from a v1/v2 manifest.
  std::vector<uint32_t> column_counts;
};

/// \brief A versioned description of one sharded lake.
struct ShardManifest {
  static constexpr char kMagic[9] = "D3LSHRD\n";
  static constexpr uint32_t kVersion = 3;          ///< written by Save()
  static constexpr uint32_t kMinReadVersion = 1;   ///< oldest Load() accepts

  /// The format version this manifest was loaded with (kVersion for
  /// freshly built ones). Save() always writes the current version.
  uint32_t version = kVersion;

  uint64_t total_tables = 0;
  uint64_t total_attributes = 0;
  std::string balance;  ///< planning policy, e.g. "size-balanced" / "round-robin"
  std::vector<ShardManifestEntry> shards;

  /// True when every shard entry carries per-table source identities —
  /// the precondition for incremental updates (always true for manifests
  /// written by this version's builder, false for loaded v1 files).
  bool has_source_identity() const;

  /// True when every shard entry carries per-table column counts — the
  /// precondition for opening a shard SUBSET (remote shard servers). True
  /// for manifests written by this version's builder, false for v1/v2.
  bool has_column_counts() const;

  /// Structural invariants: at least one shard, per-shard counts consistent
  /// with the entry's table list, the global table ids forming an exact
  /// partition of [0, total_tables), and shard filenames that stay inside
  /// the manifest's directory (absolute paths and ".." components are
  /// rejected — a hand-edited or hostile manifest must not be able to make
  /// ResolveRelative escape it).
  Status Validate() const;

  /// Writes the manifest (magic, version, one checksummed section)
  /// atomically via io::Writer's temp-file + rename protocol.
  Status Save(const std::string& path) const;

  /// Reads and Validate()s a manifest written by Save() — the current
  /// version or any still-readable older one (v1: no source identities).
  static Result<ShardManifest> Load(const std::string& path);
};

/// \brief Size and CRC32 of a whole file (shard integrity checks).
Result<std::pair<uint64_t, uint32_t>> FileSizeAndCrc32(const std::string& path);

/// \brief CRC32 over a lake's schema (table and column names, in order) —
/// the identity a ShardManifestEntry pins its snapshot's contents to.
uint32_t SchemaFingerprint(const DataLake& lake);

/// \brief The source identity a shard builder records for `table`: the
/// table's own load-time source when present (CSV-loaded lakes), else a
/// content-based stand-in derived from the table's canonical CSV
/// serialization — deterministic, so regenerated in-memory lakes diff
/// cleanly too.
TableSource SourceOf(const Table& table);

/// \brief Per-shard staleness of a v2 manifest against a CSV directory,
/// judged purely by recorded source identities (sizes + checksums; no CSV
/// is parsed or profiled).
struct ShardFreshness {
  size_t tables = 0;   ///< tables the shard serves
  size_t changed = 0;  ///< source files present but with different bytes/crc
  size_t missing = 0;  ///< source files no longer in the directory
  /// Source paths that exist but cannot be read (permissions, or replaced
  /// by a non-file such as a directory). Counted separately from `missing`
  /// because the right reaction differs — a missing source means the table
  /// was deleted; an unreadable one usually means the directory is broken.
  /// Either way the shard must NOT be reported fresh: "fresh" is a claim
  /// that the recorded checksums were re-verified, which they were not.
  size_t unreadable = 0;
  bool fresh() const { return changed == 0 && missing == 0 && unreadable == 0; }
};

struct ManifestFreshness {
  std::vector<ShardFreshness> shards;
  /// *.csv files in the directory that no shard's sources mention (they
  /// would be added by an UpdateShards over the reloaded lake).
  std::vector<std::string> new_files;
};

/// \brief Checks every recorded source against `csv_dir`. Fails on a
/// manifest without source identities (v1).
Result<ManifestFreshness> CheckFreshness(const ShardManifest& manifest,
                                         const std::string& csv_dir);

/// \brief `<base>.manifest` / `<base>.shard<i>.d3l` naming scheme shared by
/// the builder, the engine and the CLI.
std::string ManifestPath(const std::string& base);
std::string ShardPath(const std::string& base, size_t shard_index);

/// \brief Where UpdateShards builds a replacement shard before committing:
/// `<shard path>.staged`. Staged files are renamed onto the final paths
/// only after EVERY rebuilt shard has been written successfully, so a
/// failed update leaves the deployed files (and the manifest that
/// checksums them) untouched and still serveable.
std::string StagedShardPath(const std::string& base, size_t shard_index);

/// \brief Resolves a manifest-relative filename against the manifest's
/// directory. Callers must only pass filenames from a Validate()d manifest
/// (Validate rejects absolute and parent-escaping entries).
std::string ResolveRelative(const std::string& manifest_path, const std::string& file);

}  // namespace d3l::serving

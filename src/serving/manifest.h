// The shard-set manifest: a small versioned file describing how one lake
// was partitioned into N independent engine snapshots.
//
// A sharded deployment is `<base>.manifest` plus `<base>.shard<i>.d3l`
// files, each a self-contained D3LEngine snapshot over a disjoint subset of
// the lake's tables. The manifest records, per shard, the snapshot filename
// (relative to the manifest), its size and whole-file CRC32, and the global
// table ids the shard serves in local order — everything ShardedEngine
// needs to remap shard-local results back onto the original lake's table
// and attribute numbering. The manifest's own payload is protected by the
// io::Writer section checksum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/lake.h"

namespace d3l::serving {

/// \brief One shard's entry in the manifest.
struct ShardManifestEntry {
  std::string file;           ///< snapshot filename, relative to the manifest
  uint64_t file_bytes = 0;    ///< snapshot size on disk
  uint32_t file_crc32 = 0;    ///< CRC32 of the whole snapshot file
  /// SchemaFingerprint of the shard's tables. Binds the entry to the
  /// CONTENT of its snapshot, so a valid shard file swapped into another
  /// entry's slot is rejected even when the shards have identical shapes
  /// and file-level checksum verification is disabled.
  uint32_t schema_crc32 = 0;
  uint64_t num_tables = 0;
  uint64_t num_attributes = 0;
  /// Global table ids (indexes into the original lake) in shard-local
  /// order: the shard's local table `i` is `global_tables[i]`.
  std::vector<uint32_t> global_tables;
};

/// \brief A versioned description of one sharded lake.
struct ShardManifest {
  static constexpr char kMagic[9] = "D3LSHRD\n";
  static constexpr uint32_t kVersion = 1;

  uint64_t total_tables = 0;
  uint64_t total_attributes = 0;
  std::string balance;  ///< planning policy, e.g. "size-balanced" / "round-robin"
  std::vector<ShardManifestEntry> shards;

  /// Structural invariants: at least one shard, per-shard counts consistent
  /// with the entry's table list, and the global table ids forming an exact
  /// partition of [0, total_tables).
  Status Validate() const;

  /// Writes the manifest (magic, version, one checksummed section).
  Status Save(const std::string& path) const;

  /// Reads and Validate()s a manifest written by Save().
  static Result<ShardManifest> Load(const std::string& path);
};

/// \brief Size and CRC32 of a whole file (shard integrity checks).
Result<std::pair<uint64_t, uint32_t>> FileSizeAndCrc32(const std::string& path);

/// \brief CRC32 over a lake's schema (table and column names, in order) —
/// the identity a ShardManifestEntry pins its snapshot's contents to.
uint32_t SchemaFingerprint(const DataLake& lake);

/// \brief `<base>.manifest` / `<base>.shard<i>.d3l` naming scheme shared by
/// the builder, the engine and the CLI.
std::string ManifestPath(const std::string& base);
std::string ShardPath(const std::string& base, size_t shard_index);

/// \brief Resolves a manifest-relative filename against the manifest's
/// directory.
std::string ResolveRelative(const std::string& manifest_path, const std::string& file);

}  // namespace d3l::serving

#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace d3l {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      break;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view s) {
  std::string_view t = TrimView(s);
  if (t.empty()) return std::nullopt;
  // Tolerate thousands separators, a common CSV artifact ("12,345.6").
  std::string cleaned;
  if (t.find(',') != std::string_view::npos) {
    cleaned.reserve(t.size());
    for (char c : t) {
      if (c != ',') cleaned += c;
    }
    t = cleaned;
    if (t.empty()) return std::nullopt;
  }
  double value = 0;
  const char* begin = t.data();
  const char* end = t.data() + t.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string FormatDouble(double v, int prec) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

}  // namespace d3l

// Seeded random number generation helpers. Header-only.
//
// Everything stochastic in this repository (generators, samplers) goes
// through Rng so runs are reproducible from a single seed.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cmath>
#include <vector>

#include "common/hash.h"

namespace d3l {

/// \brief xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t s = seed;
    for (auto& w : state_) {
      s = Mix64(s + 0x9e3779b97f4a7c15ULL);
      w = s;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = (static_cast<double>(Next() >> 11) + 1.0) / 9007199254740994.0;
    double u2 = UniformDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(&idx);
    idx.resize(std::min(k, n));
    return idx;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace d3l

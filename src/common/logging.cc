#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <ctime>

namespace d3l {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Small dense per-thread id (1, 2, 3, ... in first-log order) — readable
/// where the kernel tid would be an opaque 6-digit number.
uint64_t ThreadLogId() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t id = next.fetch_add(1) + 1;
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

std::string FormatLogRecord(LogLevel level, const std::string& msg) {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_utc;
  gmtime_r(&ts.tv_sec, &tm_utc);
  char prefix[64];
  const int n = std::snprintf(
      prefix, sizeof(prefix),
      "[%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ] [%s] [tid %llu] ",
      tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
      tm_utc.tm_min, tm_utc.tm_sec, ts.tv_nsec / 1000000, LevelName(level),
      static_cast<unsigned long long>(ThreadLogId()));
  std::string line;
  line.reserve(static_cast<size_t>(n) + msg.size() + 1);
  line.append(prefix, static_cast<size_t>(n));
  line += msg;
  line += '\n';
  return line;
}

void EmitLog(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_min_level.load()) return;
  // One write(2) per record: concurrent loggers (ThreadPool workers, RPC
  // handlers, the watcher thread) interleave whole lines, never characters
  // — stdio buffering offers no such guarantee across processes sharing
  // the stderr pipe either, which write() sidesteps entirely.
  const std::string line = FormatLogRecord(level, msg);
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        write(STDERR_FILENO, line.data() + written, line.size() - written);
    if (n <= 0) return;  // stderr is gone; nothing sensible left to do
    written += static_cast<size_t>(n);
  }
}

}  // namespace internal

}  // namespace d3l

#include "common/hash.h"

#include <cmath>

namespace d3l {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a with a seeded basis, finalized with SplitMix64 for avalanche.
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

HashFamily::HashFamily(size_t k, uint64_t seed) {
  seeds_.reserve(k);
  uint64_t s = seed;
  for (size_t i = 0; i < k; ++i) {
    s = Mix64(s + 0x9e3779b97f4a7c15ULL);
    seeds_.push_back(s);
  }
}

double GaussianFromKey(uint64_t key) {
  // Box-Muller on two uniforms derived from the key. Both uniforms are kept
  // away from 0 to avoid log(0).
  uint64_t a = Mix64(key);
  uint64_t b = Mix64(a ^ 0xD6E8FEB86659FD93ULL);
  double u1 = (static_cast<double>(a >> 11) + 1.0) / 9007199254740994.0;
  double u2 = static_cast<double>(b >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace d3l

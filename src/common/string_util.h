// Small string utilities shared by the text-processing and table layers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace d3l {

/// \brief ASCII-lowercases a copy of the input.
std::string ToLower(std::string_view s);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
inline std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

/// \brief Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

/// \brief Attempts to parse the whole (trimmed) string as a double.
///
/// Accepts optional thousands separators (commas) and a leading currency-like
/// sign character is NOT accepted; "" and partial parses return nullopt.
std::optional<double> ParseDouble(std::string_view s);

/// \brief True if the (trimmed) string parses fully as a number.
inline bool LooksNumeric(std::string_view s) { return ParseDouble(s).has_value(); }

/// \brief Formats a double compactly (up to `prec` digits, no trailing zeros).
std::string FormatDouble(double v, int prec = 6);

}  // namespace d3l

// Clang thread-safety annotations plus capability-annotated mutex wrappers
// — the compile-time locking discipline of the concurrent tier.
//
// Every mutex-protected member in src/serving, src/rpc, src/obs and
// src/table is declared through these wrappers and tagged with
// D3L_GUARDED_BY(mu), and every function with a locking precondition is
// tagged D3L_REQUIRES(mu). Under clang with -Wthread-safety (the CI
// static-analysis job passes -Werror=thread-safety-analysis) the compiler
// then REJECTS code that reads or writes a guarded member without holding
// its mutex, releases a lock it does not hold, or calls a REQUIRES
// function unlocked — the two race classes PR 6 and PR 8 fixed at runtime
// become build failures. Under gcc (and any compiler without the
// attributes) every macro expands to nothing and the wrappers are
// zero-overhead shims over the std primitives.
//
// Usage pattern:
//
//   class Account {
//    public:
//     void Deposit(int64_t amount) D3L_EXCLUDES(mu_) {
//       MutexLock lk(mu_);
//       balance_ += amount;          // OK: mu_ held via the scoped lock
//     }
//    private:
//     mutable Mutex mu_;
//     int64_t balance_ D3L_GUARDED_BY(mu_) = 0;
//   };
//
// Condition variables: CondVar::Wait takes the MutexLock itself, so the
// analysis sees the capability held across the wait (matching reality:
// wait() reacquires before returning). Write waits as explicit loops —
//
//   MutexLock lk(m_);
//   while (!ready_) cv_.Wait(lk);    // ready_ checked with m_ held
//
// — rather than predicate lambdas: the predicate then lives in the
// annotated enclosing function and needs no lambda attributes.
//
// The repo lint (tools/d3l_lint.py) enforces that no raw std::mutex /
// std::shared_mutex / std::condition_variable member is declared outside
// this header: locking that bypasses the wrappers is invisible to the
// analysis and fails the build.
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>
#include <shared_mutex>

// -- Attribute macros (clang -Wthread-safety vocabulary; no-ops elsewhere) --

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define D3L_THREAD_ANNOTATION_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef D3L_THREAD_ANNOTATION_ATTR
#define D3L_THREAD_ANNOTATION_ATTR(x)  // not clang: annotations compile away
#endif

/// Declares a type to be a lockable capability (e.g. "mutex").
#define D3L_CAPABILITY(x) D3L_THREAD_ANNOTATION_ATTR(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define D3L_SCOPED_CAPABILITY D3L_THREAD_ANNOTATION_ATTR(scoped_lockable)

/// Member may only be accessed while holding the given mutex.
#define D3L_GUARDED_BY(x) D3L_THREAD_ANNOTATION_ATTR(guarded_by(x))

/// Pointed-to data may only be accessed while holding the given mutex.
#define D3L_PT_GUARDED_BY(x) D3L_THREAD_ANNOTATION_ATTR(pt_guarded_by(x))

/// Function may only be called while holding the given mutex(es).
#define D3L_REQUIRES(...) \
  D3L_THREAD_ANNOTATION_ATTR(requires_capability(__VA_ARGS__))
#define D3L_REQUIRES_SHARED(...) \
  D3L_THREAD_ANNOTATION_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex and holds it on return.
#define D3L_ACQUIRE(...) D3L_THREAD_ANNOTATION_ATTR(acquire_capability(__VA_ARGS__))
#define D3L_ACQUIRE_SHARED(...) \
  D3L_THREAD_ANNOTATION_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex (which must be held on entry).
#define D3L_RELEASE(...) D3L_THREAD_ANNOTATION_ATTR(release_capability(__VA_ARGS__))
#define D3L_RELEASE_SHARED(...) \
  D3L_THREAD_ANNOTATION_ATTR(release_shared_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define D3L_TRY_ACQUIRE(...) \
  D3L_THREAD_ANNOTATION_ATTR(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the given mutex (deadlock prevention).
#define D3L_EXCLUDES(...) D3L_THREAD_ANNOTATION_ATTR(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given mutex.
#define D3L_RETURN_CAPABILITY(x) D3L_THREAD_ANNOTATION_ATTR(lock_returned(x))

/// Escape hatch: the function's locking is correct but inexpressible.
/// Every use needs a comment saying why — audited by review, not tooling.
#define D3L_NO_THREAD_SAFETY_ANALYSIS \
  D3L_THREAD_ANNOTATION_ATTR(no_thread_safety_analysis)

namespace d3l {

class CondVar;

/// \brief Capability-annotated exclusive mutex over std::mutex.
///
/// Prefer the scoped MutexLock; Lock()/Unlock() exist for the rare
/// split-acquire pattern and stay visible to the analysis.
class D3L_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() D3L_ACQUIRE() { mu_.lock(); }
  void Unlock() D3L_RELEASE() { mu_.unlock(); }
  bool TryLock() D3L_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief Capability-annotated reader/writer mutex over std::shared_mutex.
class D3L_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() D3L_ACQUIRE() { mu_.lock(); }
  void Unlock() D3L_RELEASE() { mu_.unlock(); }
  void LockShared() D3L_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() D3L_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class SharedMutexLock;
  friend class SharedReaderLock;
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock on a Mutex (the std::lock_guard /
/// std::unique_lock replacement). Holds the capability for its lifetime;
/// CondVar::Wait may temporarily release and reacquire it.
class D3L_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) D3L_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() D3L_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// \brief Scoped exclusive lock on a SharedMutex.
class D3L_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) D3L_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~SharedMutexLock() D3L_RELEASE() {}

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lk_;
};

/// \brief Scoped shared (reader) lock on a SharedMutex.
class D3L_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) D3L_ACQUIRE_SHARED(mu)
      : lk_(mu.mu_) {}
  ~SharedReaderLock() D3L_RELEASE() {}

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lk_;
};

/// \brief Condition variable bound to MutexLock, so waits stay inside the
/// annotated locking discipline (the capability reads as held across Wait,
/// which matches the reacquire-before-return semantics).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, waits, reacquires. Spurious wakeups
  /// happen: always wait in a `while (!condition)` loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  /// Wait with a deadline; std::cv_status::timeout when it passed.
  std::cv_status WaitUntil(MutexLock& lock,
                           std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lk_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace d3l

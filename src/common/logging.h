// Minimal leveled logging to stderr. Benches use INFO to narrate progress;
// libraries only log at WARNING and above.
#pragma once

#include <sstream>
#include <string>

namespace d3l {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
/// Renders the full record EmitLog writes: `[<UTC timestamp>] [<LEVEL>]
/// [tid <N>] <msg>\n` with a small dense per-thread id. Exposed so tests
/// can pin the format without capturing stderr.
std::string FormatLogRecord(LogLevel level, const std::string& msg);

/// Emits one record with a single atomic write(2) to stderr — concurrent
/// loggers interleave whole lines, never characters.
void EmitLog(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace d3l

#define D3L_LOG_DEBUG ::d3l::internal::LogMessage(::d3l::LogLevel::kDebug)
#define D3L_LOG_INFO ::d3l::internal::LogMessage(::d3l::LogLevel::kInfo)
#define D3L_LOG_WARNING ::d3l::internal::LogMessage(::d3l::LogLevel::kWarning)
#define D3L_LOG_ERROR ::d3l::internal::LogMessage(::d3l::LogLevel::kError)

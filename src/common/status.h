// Status / Result<T> error-handling primitives, in the style of Apache
// Arrow / RocksDB: no exceptions cross public API boundaries; fallible
// operations return a Status (or a Result<T> carrying a value on success).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace d3l {

/// \brief Machine-readable category of a Status.
///
/// The numeric values are STABLE: they are carried verbatim over the RPC
/// wire protocol (src/rpc) between builds of different versions, so an
/// existing code must never be renumbered. New codes append at the end.
/// The frozen values live in tools/frozen_codes.json, and tools/d3l_lint.py
/// fails the build if this enum (or the RPC verbs / wire magics) drifts
/// from that manifest — update the manifest ONLY when appending a new code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kInternal = 6,
  /// A dependency (e.g. a remote shard server) could not be reached after
  /// bounded retries. Transient by definition: the same call may succeed
  /// once the dependency returns.
  kUnavailable = 7,
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Decodes a wire-carried numeric code back into a StatusCode.
/// Unknown values (a newer peer's codes) map to kInternal rather than
/// failing: the peer reported SOME error, and mislabeling it is worse than
/// generalizing it.
StatusCode StatusCodeFromWire(uint32_t code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses carry a heap message.
///
/// Class-level [[nodiscard]]: every function returning a Status by value
/// warns (and fails -Werror builds) if the caller drops the return. A
/// deliberate drop must go through D3L_IGNORE_STATUS with a rationale.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Renders e.g. "Invalid argument: bad q value".
  std::string ToString() const;

  /// Aborts the process if this status is not OK. Use only where an error
  /// indicates a programming bug (e.g. in examples and benches).
  void CheckOK() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// \brief A value-or-Status holder for fallible functions that produce a T.
///
/// [[nodiscard]] like Status: dropping a Result discards an error AND a
/// computed value, which is a bug in every case observed so far.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// Access the contained value; requires ok().
  const T& ValueOrDie() const& {
    CheckHasValue();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    CheckHasValue();
    return std::get<T>(v_);
  }
  T&& ValueOrDie() && {
    CheckHasValue();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      // Failing loudly here mirrors arrow::Result::ValueOrDie semantics.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              std::get<Status>(v_).ToString().c_str());
      abort();
    }
  }

  std::variant<T, Status> v_;
};

/// Discards a Status/Result on purpose, with an auditable rationale.
///
/// [[nodiscard]] makes a bare `Foo();` a build error when Foo returns a
/// Status — which is almost always right. The rare legitimate drops
/// (best-effort cleanup, an error already counted through a metric and
/// retried elsewhere) go through this macro so each one names its reason
/// at the call site and greps as `D3L_IGNORE_STATUS`. The `why` argument
/// must be a non-empty string literal; it is compiled out.
#define D3L_IGNORE_STATUS(expr, why)                                         \
  do {                                                                       \
    static_assert(sizeof("" why) > 1,                                        \
                  "D3L_IGNORE_STATUS needs a non-empty rationale literal");  \
    static_cast<void>(expr);                                                 \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define D3L_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::d3l::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status to the caller.
#define D3L_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define D3L_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define D3L_ASSIGN_OR_RETURN_NAME(x, y) D3L_ASSIGN_OR_RETURN_CONCAT(x, y)
#define D3L_ASSIGN_OR_RETURN(lhs, expr) \
  D3L_ASSIGN_OR_RETURN_IMPL(D3L_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, expr)

}  // namespace d3l

// Deterministic 64-bit hashing primitives used across the LSH layers.
//
// All hash families here are explicitly seeded so that every index build is
// reproducible; nothing depends on std::hash (whose values are unspecified
// across implementations).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace d3l {

/// \brief SplitMix64 finalizer: a cheap, well-distributed bijective mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief FNV-1a over raw bytes, then mixed for avalanche on short inputs.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// \brief Hashes a string_view with an optional seed.
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// \brief Combines two hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// \brief A family of k independent 64-bit hash functions derived from a seed.
///
/// Function i maps a pre-hashed 64-bit key x to Mix64(x ^ seeds_[i]); this is
/// the standard "one strong hash + cheap rehash family" construction used by
/// MinHash implementations.
class HashFamily {
 public:
  HashFamily(size_t k, uint64_t seed);

  size_t size() const { return seeds_.size(); }

  /// Applies the i-th function to an already-hashed key.
  uint64_t Apply(size_t i, uint64_t key) const { return Mix64(key ^ seeds_[i]); }

 private:
  std::vector<uint64_t> seeds_;
};

/// \brief Deterministic standard Gaussian associated with an integer key.
///
/// Used to materialize random-projection hyperplane components and subword
/// embedding vectors lazily, without storing them.
double GaussianFromKey(uint64_t key);

}  // namespace d3l

#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace d3l {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

StatusCode StatusCodeFromWire(uint32_t code) {
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(code);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
    abort();
  }
}

}  // namespace d3l

#include "embedding/subword_model.h"

#include <utility>

#include "common/hash.h"
#include "common/thread_annotations.h"

namespace d3l {

Vec WordEmbeddingModel::EmbedAll(const std::vector<std::string>& words) const {
  Vec acc(dim(), 0.0f);
  if (words.empty()) return acc;
  for (const std::string& w : words) {
    AddInPlace(&acc, Embed(w));
  }
  for (float& x : acc) x = static_cast<float>(x / static_cast<double>(words.size()));
  return acc;
}

SubwordHashModel::SubwordHashModel(SubwordModelOptions options)
    : options_(options) {
  buckets_.resize(options_.num_buckets * options_.dim);
  for (size_t b = 0; b < options_.num_buckets; ++b) {
    uint64_t bucket_key = HashCombine(options_.seed, b);
    for (size_t j = 0; j < options_.dim; ++j) {
      buckets_[b * options_.dim + j] =
          static_cast<float>(GaussianFromKey(HashCombine(bucket_key, j)));
    }
  }
}

void SubwordHashModel::AccumulateBucket(uint64_t bucket, Vec* acc) const {
  const float* v = &buckets_[bucket * options_.dim];
  for (size_t j = 0; j < options_.dim; ++j) {
    (*acc)[j] += v[j];
  }
}

Vec SubwordHashModel::Embed(std::string_view word) const {
  Vec acc(options_.dim, 0.0f);
  if (word.empty()) return acc;

  // Boundary-marked word, as fastText does ("<word>").
  std::string marked;
  marked.reserve(word.size() + 2);
  marked += '<';
  marked.append(word);
  marked += '>';

  // Whole-word bucket.
  AccumulateBucket(HashString(marked, options_.seed) % options_.num_buckets, &acc);

  // Character n-gram buckets.
  for (size_t n = options_.min_ngram; n <= options_.max_ngram; ++n) {
    if (marked.size() < n) break;
    for (size_t i = 0; i + n <= marked.size(); ++i) {
      uint64_t h = HashBytes(marked.data() + i, n, options_.seed ^ n);
      AccumulateBucket(h % options_.num_buckets, &acc);
    }
  }
  Normalize(&acc);
  return acc;
}

std::shared_ptr<const SubwordHashModel> SharedSubwordModel(
    const SubwordModelOptions& options) {
  // Weak registry: expired entries are reaped on every lookup, so the table
  // stays as small as the number of distinct option sets currently alive.
  // Construction happens under the lock on purpose — the table build is the
  // expensive part, and racing callers would otherwise each build one.
  struct Registry {
    Mutex mu;
    std::vector<std::pair<SubwordModelOptions, std::weak_ptr<const SubwordHashModel>>>
        entries D3L_GUARDED_BY(mu);
  };
  static Registry registry;

  MutexLock lock(registry.mu);
  for (size_t i = 0; i < registry.entries.size();) {
    auto& [opts, weak] = registry.entries[i];
    std::shared_ptr<const SubwordHashModel> model = weak.lock();
    if (model == nullptr) {
      registry.entries[i] = std::move(registry.entries.back());
      registry.entries.pop_back();
      continue;
    }
    if (opts == options) return model;
    ++i;
  }
  auto model = std::make_shared<const SubwordHashModel>(options);
  registry.entries.emplace_back(options, model);
  return model;
}

const Vec& CachingEmbedder::Embed(const std::string& word) {
  auto it = cache_.find(word);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(word, model_->Embed(word)).first->second;
}

}  // namespace d3l

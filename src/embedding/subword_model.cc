#include "embedding/subword_model.h"

#include "common/hash.h"

namespace d3l {

Vec WordEmbeddingModel::EmbedAll(const std::vector<std::string>& words) const {
  Vec acc(dim(), 0.0f);
  if (words.empty()) return acc;
  for (const std::string& w : words) {
    AddInPlace(&acc, Embed(w));
  }
  for (float& x : acc) x = static_cast<float>(x / static_cast<double>(words.size()));
  return acc;
}

SubwordHashModel::SubwordHashModel(SubwordModelOptions options)
    : options_(options) {
  buckets_.resize(options_.num_buckets * options_.dim);
  for (size_t b = 0; b < options_.num_buckets; ++b) {
    uint64_t bucket_key = HashCombine(options_.seed, b);
    for (size_t j = 0; j < options_.dim; ++j) {
      buckets_[b * options_.dim + j] =
          static_cast<float>(GaussianFromKey(HashCombine(bucket_key, j)));
    }
  }
}

void SubwordHashModel::AccumulateBucket(uint64_t bucket, Vec* acc) const {
  const float* v = &buckets_[bucket * options_.dim];
  for (size_t j = 0; j < options_.dim; ++j) {
    (*acc)[j] += v[j];
  }
}

Vec SubwordHashModel::Embed(std::string_view word) const {
  Vec acc(options_.dim, 0.0f);
  if (word.empty()) return acc;

  // Boundary-marked word, as fastText does ("<word>").
  std::string marked;
  marked.reserve(word.size() + 2);
  marked += '<';
  marked.append(word);
  marked += '>';

  // Whole-word bucket.
  AccumulateBucket(HashString(marked, options_.seed) % options_.num_buckets, &acc);

  // Character n-gram buckets.
  for (size_t n = options_.min_ngram; n <= options_.max_ngram; ++n) {
    if (marked.size() < n) break;
    for (size_t i = 0; i + n <= marked.size(); ++i) {
      uint64_t h = HashBytes(marked.data() + i, n, options_.seed ^ n);
      AccumulateBucket(h % options_.num_buckets, &acc);
    }
  }
  Normalize(&acc);
  return acc;
}

const Vec& CachingEmbedder::Embed(const std::string& word) {
  auto it = cache_.find(word);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(word, model_->Embed(word)).first->second;
}

}  // namespace d3l

// Dense vector helpers for the embedding evidence type (E).
#pragma once

#include <vector>

namespace d3l {

using Vec = std::vector<float>;

/// \brief Dot product; vectors must have equal dimension.
double Dot(const Vec& a, const Vec& b);

/// \brief L2 norm.
double Norm(const Vec& v);

/// \brief Scales v to unit norm in place (no-op on the zero vector).
void Normalize(Vec* v);

/// \brief Cosine *similarity* in [-1, 1]; 0 if either vector is zero.
double CosineSimilarity(const Vec& a, const Vec& b);

/// \brief Cosine *distance* clamped to [0, 1]: (1 - cos_sim) / 2 would keep
/// antipodal vectors at 1; the paper uses 1 - cos_sim, so we clamp at 0/1.
double CosineDistance(const Vec& a, const Vec& b);

/// \brief Component-wise mean of a non-empty set of equal-dimension vectors.
Vec MeanVector(const std::vector<Vec>& vectors);

/// \brief a += b (equal dimensions).
void AddInPlace(Vec* a, const Vec& b);

}  // namespace d3l

// Word-embedding model (WEM) used for evidence type E.
//
// SUBSTITUTION NOTE (see DESIGN.md §4): the paper uses a pre-trained
// fastText model. fastText composes a word vector as the sum of
// hash-bucketed character n-gram vectors; we implement exactly that
// structure with deterministic, hash-seeded Gaussian bucket vectors. The
// properties D3L relies on are preserved: every token has a dense p-vector,
// orthographically/morphologically close tokens (typos, abbreviations,
// inflections) land close in cosine space, and averaging composes vectors.
// Distributional semantics of unrelated surface forms are NOT captured.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embedding/vector_ops.h"

namespace d3l {

/// \brief Abstract word-embedding model: words to p-dimensional vectors.
class WordEmbeddingModel {
 public:
  virtual ~WordEmbeddingModel() = default;

  /// Embedding dimensionality p.
  virtual size_t dim() const = 0;

  /// Returns the (unit-norm) vector for a word.
  virtual Vec Embed(std::string_view word) const = 0;

  /// Mean vector of a token sequence; zero vector if empty.
  Vec EmbedAll(const std::vector<std::string>& words) const;
};

struct SubwordModelOptions {
  size_t dim = 64;            ///< p, the embedding dimensionality
  size_t min_ngram = 3;       ///< shortest character n-gram
  size_t max_ngram = 5;       ///< longest character n-gram
  /// n-gram hash buckets. The bucket-vector table (num_buckets * dim
  /// floats) is materialized at construction; 2^16 buckets * 64 dims is
  /// 16 MB, ample for benchmark-scale vocabularies (fastText itself uses
  /// 2M buckets for web-scale corpora).
  size_t num_buckets = 1 << 16;
  uint64_t seed = 0x5eed0001;

  bool operator==(const SubwordModelOptions&) const = default;
};

/// \brief fastText-style subword-hash embedding (see file comment).
///
/// The vector of word w is the L2-normalized sum of the bucket vectors of
/// all character n-grams of "<w>" (with boundary markers, as in fastText)
/// plus a whole-word bucket vector. Bucket vectors are standard Gaussians
/// derived deterministically from (seed, bucket, component) hashes and
/// materialized once at construction.
class SubwordHashModel : public WordEmbeddingModel {
 public:
  explicit SubwordHashModel(SubwordModelOptions options = {});

  size_t dim() const override { return options_.dim; }
  Vec Embed(std::string_view word) const override;

  const SubwordModelOptions& options() const { return options_; }

 private:
  void AccumulateBucket(uint64_t bucket, Vec* acc) const;

  SubwordModelOptions options_;
  std::vector<float> buckets_;  // [bucket * dim + component]
};

/// \brief Process-wide shared instance of the model for `options`.
///
/// The bucket table is deterministic in the options and immutable after
/// construction, so every engine with equal options can share one instance.
/// That matters for snapshot loads: materializing the table (num_buckets *
/// dim Gaussians) dominates an engine open, and a serving process holds
/// many engines with identical options (shard replicas, reload generations).
/// Backed by a weak registry — models are freed when the last engine using
/// them goes away, and rebuilt on the next request. Thread-safe.
std::shared_ptr<const SubwordHashModel> SharedSubwordModel(
    const SubwordModelOptions& options);

/// \brief Memoizing wrapper: caches vectors of previously embedded words.
class CachingEmbedder {
 public:
  explicit CachingEmbedder(const WordEmbeddingModel* model) : model_(model) {}

  const Vec& Embed(const std::string& word);
  size_t cache_size() const { return cache_.size(); }

 private:
  const WordEmbeddingModel* model_;
  std::unordered_map<std::string, Vec> cache_;
};

}  // namespace d3l

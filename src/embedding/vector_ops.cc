#include "embedding/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d3l {

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

void Normalize(Vec* v) {
  double n = Norm(*v);
  if (n == 0) return;
  for (float& x : *v) x = static_cast<float>(x / n);
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0 || nb == 0) return 0;
  return Dot(a, b) / (na * nb);
}

double CosineDistance(const Vec& a, const Vec& b) {
  double d = 1.0 - CosineSimilarity(a, b);
  return std::clamp(d, 0.0, 1.0);
}

Vec MeanVector(const std::vector<Vec>& vectors) {
  assert(!vectors.empty());
  Vec out(vectors[0].size(), 0.0f);
  for (const Vec& v : vectors) AddInPlace(&out, v);
  for (float& x : out) x = static_cast<float>(x / static_cast<double>(vectors.size()));
  return out;
}

void AddInPlace(Vec* a, const Vec& b) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += b[i];
}

}  // namespace d3l

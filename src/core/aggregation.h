// The distance aggregation framework of Section III-D.
//
// For each candidate dataset S, the per-attribute-pair distance vectors are
// aggregated column-wise into one 5-vector using Eq. 1, with the Eq. 2
// weights: w_i_t = 1 - P(d <= D_i_t) over R_t, the distribution of type-t
// distances between the target attribute of the pair and every related
// attribute in the lake. The 5-vector is reduced to a scalar with Eq. 3,
// the weighted l2-norm with learned evidence weights.
#pragma once

#include <vector>

#include "core/evidence.h"
#include "stats/empirical.h"

namespace d3l::core {

/// \brief One row of a Table-I-like structure: the pair (target attribute,
/// lake attribute) and its five distances.
struct PairDistances {
  uint32_t target_column = 0;  ///< column index within the target table
  uint32_t attribute_id = 0;   ///< registry id of the lake attribute
  DistanceVector d = MaxDistances();
};

/// \brief Per-target-column, per-evidence distance distributions (R_t).
///
/// Populated during search with the distances from each target attribute to
/// every retrieved candidate; queried for CCDF weights.
class DistanceDistributions {
 public:
  explicit DistanceDistributions(size_t num_target_columns);

  /// Records an observed distance of type t for a target column.
  void Observe(uint32_t target_column, Evidence t, double distance);

  /// Freezes the samples into sorted empirical distributions.
  void Finalize();

  /// Eq. 2: 1 - P(d <= x) over R_t of the target column. A small floor
  /// keeps degenerate (all-equal) distributions from zeroing every weight.
  double Weight(uint32_t target_column, Evidence t, double x) const;

 private:
  size_t num_columns_;
  // [column][evidence] -> raw sample, then frozen distribution
  std::vector<std::vector<std::vector<double>>> samples_;
  std::vector<std::vector<EmpiricalDistribution>> frozen_;
  bool finalized_ = false;
};

/// \brief Eq. 3 evidence weights (relative importance of each type).
struct EvidenceWeights {
  std::array<double, kNumEvidence> w = {1, 1, 1, 1, 1};

  /// Weights from the logistic-regression training procedure of Section
  /// III-D (see weights.h / LearnEvidenceWeights); baked-in defaults come
  /// from a training run on the synthetic benchmark ground truth.
  static EvidenceWeights Default();

  /// Uniform weights (used by single-evidence ablations).
  static EvidenceWeights Uniform();

  bool operator==(const EvidenceWeights&) const = default;
};

/// \brief Eq. 1: column-wise weighted average of the pair rows of one
/// candidate dataset, yielding its 5-vector. Rows must share the dataset.
DistanceVector AggregateDataset(const std::vector<PairDistances>& rows,
                                const DistanceDistributions& dists);

/// \brief Eq. 3: weighted l2-norm of a 5-vector,
/// sqrt( sum_t (w_t * dv[t])^2 / sum_t w_t ).
double CombineDistances(const DistanceVector& dv, const EvidenceWeights& weights);

}  // namespace d3l::core

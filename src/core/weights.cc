#include "core/weights.h"

#include <cmath>

namespace d3l::core {

Result<LearnedWeights> LearnEvidenceWeights(
    const D3LEngine& engine, const std::vector<uint32_t>& target_tables,
    const std::function<bool(uint32_t, uint32_t)>& related,
    const WeightLearnOptions& options) {
  if (engine.lake() == nullptr) return Status::InvalidArgument("engine has no lake");
  if (target_tables.empty()) return Status::InvalidArgument("no target tables");

  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  size_t positives = 0;

  for (uint32_t ti : target_tables) {
    const Table& target = engine.lake()->table(ti);
    D3L_ASSIGN_OR_RETURN(SearchResult res,
                         engine.Search(target, options.candidates_per_target));
    for (const TableMatch& m : res.ranked) {
      if (m.table_index == ti) continue;  // a table trivially matches itself
      std::vector<double> feat(m.evidence_distances.begin(),
                               m.evidence_distances.end());
      int label = related(ti, m.table_index) ? 1 : 0;
      positives += static_cast<size_t>(label);
      xs.push_back(std::move(feat));
      ys.push_back(label);
    }
  }
  if (xs.empty() || positives == 0 || positives == xs.size()) {
    return Status::InvalidArgument(
        "training pairs must contain both related and unrelated examples (got " +
        std::to_string(positives) + "/" + std::to_string(xs.size()) + " positives)");
  }

  D3L_ASSIGN_OR_RETURN(LogisticModel model, TrainLogistic(xs, ys, options.logistic));

  LearnedWeights out;
  out.model = model;
  out.train_accuracy = model.Accuracy(xs, ys);
  out.num_pairs = xs.size();

  // Coefficient magnitudes -> Eq. 3 weights. Coefficients on distances are
  // negative for informative evidence (larger distance => less related);
  // their magnitude is the evidence's discriminative strength.
  double sum = 0;
  for (size_t t = 0; t < kNumEvidence; ++t) {
    out.weights.w[t] = std::fabs(model.weights()[t]);
    sum += out.weights.w[t];
  }
  if (sum > 0) {
    for (double& w : out.weights.w) w /= sum;
  } else {
    out.weights = EvidenceWeights::Uniform();
  }
  return out;
}

}  // namespace d3l::core

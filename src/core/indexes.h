// The four LSH indexes of D3L (IN, IV, IF, IE — Section III-B) plus the
// attribute registry they index into.
//
// Each index pairs an LSH Forest (top-m candidate retrieval) with a banded
// threshold index (membership lookups at the configured tau, used by the
// Algorithm-2 guards and the SA-join graph). Signatures are retained so
// distances between any two indexed/query attributes can be estimated
// without touching raw extents.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/attribute_profile.h"
#include "core/evidence.h"
#include "io/binary_io.h"
#include "lsh/lsh_banding.h"
#include "lsh/lsh_forest.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"

namespace d3l::core {

struct IndexOptions {
  size_t minhash_size = 256;   ///< MinHash signature size (paper: 256)
  double lsh_threshold = 0.7;  ///< tau for threshold lookups (paper: 0.7)
  /// Jaccard threshold of the auxiliary IV index used for SA-join
  /// discovery. Join candidates are containment-flavoured (a small tset
  /// included in a large one has a high overlap coefficient but a modest
  /// Jaccard), so this sits well below lsh_threshold; candidates are then
  /// filtered on the estimated overlap coefficient (Section IV's bound).
  double join_threshold = 0.45;
  size_t rp_bits = 256;        ///< random-projection signature bits
  size_t embedding_dim = 64;   ///< WEM dimensionality p
  LshForestOptions forest;     ///< trees * hashes_per_tree <= minhash_size
  uint64_t seed = 0xd31a5eed;

  bool operator==(const IndexOptions&) const = default;
};

/// \brief The signatures of one attribute under all four hashing schemes.
struct AttributeSignatures {
  Signature name_sig;    ///< MinHash of the qset
  Signature value_sig;   ///< MinHash of the tset (empty for numeric attrs)
  Signature format_sig;  ///< MinHash of the rset
  BitSignature emb_sig;  ///< random projections of the embedding vector
  bool has_value = false;
  bool has_embedding = false;

  /// Serializes all signatures into the writer's current section.
  void Save(io::Writer& w) const;

  /// Deserializes signatures written by Save(); check the reader's
  /// status() before use.
  static AttributeSignatures Load(io::Reader& r);
};

/// \brief Attribute registry + IN/IV/IF/IE. Insertion is Algorithm 1.
class D3LIndexes {
 public:
  explicit D3LIndexes(IndexOptions options = {});

  const IndexOptions& options() const { return options_; }

  /// Registers an attribute: computes signatures and inserts them into the
  /// four indexes (Algorithm 1 lines 15-18). Returns the attribute id.
  uint32_t Insert(AttributeProfile profile);

  /// Sorts the forests; must be called after the last Insert.
  void Finalize();

  size_t num_attributes() const { return profiles_.size(); }
  const AttributeProfile& profile(uint32_t id) const { return profiles_[id]; }
  const AttributeSignatures& signatures(uint32_t id) const { return sigs_[id]; }

  /// Computes query signatures for a non-inserted profile (target attrs).
  AttributeSignatures Sign(const AttributeProfile& profile) const;

  /// Top-m candidates from one evidence index. Indexes without evidence for
  /// the query (e.g. IV for a numeric target) return empty.
  std::vector<uint32_t> Lookup(Evidence e, const AttributeSignatures& query,
                               size_t m) const;

  /// Distinct-candidate counts per LSH-Forest prefix depth for one evidence
  /// index (LshForest::DepthCounts). Returns an empty vector when the query
  /// lacks the evidence. Counts of engines over disjoint attribute sets
  /// (src/serving shards) add element-wise, which is what makes the Search
  /// stop depths exactly reproducible under sharding. A non-zero `budget`
  /// enables the forest's early-terminated scan (exact at and below the
  /// stop depth; see LshForest::DepthCounts).
  std::vector<size_t> LookupDepthCounts(Evidence e, const AttributeSignatures& query,
                                        size_t budget = 0) const;

  /// All candidates of one evidence index matching the query at a prefix
  /// depth of at least `min_depth` (LshForest::QueryAtDepth). Returns empty
  /// when the query lacks the evidence or min_depth is 0.
  std::vector<uint32_t> LookupAtDepth(Evidence e, const AttributeSignatures& query,
                                      size_t min_depth) const;

  /// Threshold membership: ids whose signature collides with the query in
  /// the banded index at tau (the paper's "a' in IN.lookup(a)" relation).
  std::vector<uint32_t> LookupThreshold(Evidence e,
                                        const AttributeSignatures& query) const;

  /// IV lookup at the (lower) join threshold — SA-join candidate retrieval.
  std::vector<uint32_t> LookupValueJoin(const AttributeSignatures& query) const;

  /// Estimated distance of one evidence type between a query attribute and
  /// an indexed attribute; 1.0 when evidence is missing on either side.
  /// Evidence::kDistribution is not served here (see distance.h).
  double EstimateDistance(Evidence e, const AttributeSignatures& query,
                          uint32_t id) const;

  size_t MemoryUsage() const;

  /// Wall time the last Load() spent deserializing the four forests — the
  /// array-materialization component that a mapped kFlat reader collapses
  /// to pointer fixups. Zero for indexes built in process. The banded
  /// replay and profile/signature decode are deliberately excluded: they
  /// cost the same under either load mode.
  double forest_parse_seconds() const { return forest_parse_seconds_; }

  /// Serializes options, profiles, signatures and the four LSH forests into
  /// the writer's current section. The banded threshold indexes are not
  /// written: Load() rebuilds them deterministically from the saved
  /// signatures (band hashing is orders of magnitude cheaper than the
  /// profiling + MinHash work the snapshot exists to avoid).
  void Save(io::Writer& w) const;

  /// Deserializes indexes written by Save(). `forest_format` names the
  /// layout the embedded forests were written in (the engine snapshot
  /// version determines it; current snapshots are kFlat, v1 snapshots
  /// kPerEntry). Under a mapped reader the kFlat forests borrow the mapping
  /// instead of copying their arrays. Fails with a non-OK Status on
  /// truncated payloads, structural inconsistencies (e.g. signature sizes
  /// that contradict the saved options) or reader errors.
  static Result<D3LIndexes> Load(
      io::Reader& r, ForestWireFormat forest_format = ForestWireFormat::kFlat);

 private:
  IndexOptions options_;
  MinHasher name_hasher_;
  MinHasher value_hasher_;
  MinHasher format_hasher_;
  RandomProjectionHasher rp_hasher_;

  LshForest name_forest_;
  LshForest value_forest_;
  LshForest format_forest_;
  LshForest emb_forest_;

  BandedLsh name_banded_;
  BandedLsh value_banded_;
  BandedLsh format_banded_;
  BandedLsh emb_banded_;
  BandedLsh value_join_banded_;  ///< IV at join_threshold (Section IV)

  std::vector<AttributeProfile> profiles_;
  std::vector<AttributeSignatures> sigs_;

  double forest_parse_seconds_ = 0;  ///< see forest_parse_seconds()
};

}  // namespace d3l::core

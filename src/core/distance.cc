#include "core/distance.h"

#include <algorithm>

#include "stats/ks.h"

namespace d3l::core {

namespace {

// True iff `id` appears in the threshold lookup of any of the four indexes
// for the given query signatures (the existential I* interpretation).
bool RelatedUnderAnyIndex(const D3LIndexes& indexes, const AttributeSignatures& query,
                          uint32_t id) {
  for (Evidence e : {Evidence::kName, Evidence::kValue, Evidence::kFormat,
                     Evidence::kEmbedding}) {
    std::vector<uint32_t> hits = indexes.LookupThreshold(e, query);
    if (std::find(hits.begin(), hits.end(), id) != hits.end()) return true;
  }
  return false;
}

bool InThresholdLookup(const D3LIndexes& indexes, Evidence e,
                       const AttributeSignatures& query, uint32_t id) {
  std::vector<uint32_t> hits = indexes.LookupThreshold(e, query);
  return std::find(hits.begin(), hits.end(), id) != hits.end();
}

}  // namespace

double ComputeDistributionDistance(const D3LIndexes& indexes,
                                   const AttributeProfile& target_profile,
                                   const AttributeSignatures& target_sigs,
                                   uint32_t candidate_id,
                                   const DistributionGuardContext& guard) {
  const AttributeProfile& cand = indexes.profile(candidate_id);
  if (!target_profile.is_numeric || !cand.is_numeric) return 1.0;
  if (target_profile.numeric_sample.empty() || cand.numeric_sample.empty()) return 1.0;

  // Algorithm 2, line 4: subject attributes related under I*.
  bool guard_passed = false;
  if (guard.target_subject != nullptr && guard.source_subject_id != UINT32_MAX) {
    guard_passed =
        RelatedUnderAnyIndex(indexes, *guard.target_subject, guard.source_subject_id);
  }
  // Lines 5-6: a' in IN.lookup(a) or a' in IF.lookup(a).
  if (!guard_passed) {
    guard_passed = InThresholdLookup(indexes, Evidence::kName, target_sigs, candidate_id);
  }
  if (!guard_passed) {
    guard_passed =
        InThresholdLookup(indexes, Evidence::kFormat, target_sigs, candidate_id);
  }
  if (!guard_passed) return 1.0;  // line 7

  return KsStatistic(target_profile.numeric_sample, cand.numeric_sample);
}

PrecomputedGuards BuildGuards(const D3LIndexes& indexes,
                              const AttributeSignatures& target_sigs,
                              const AttributeSignatures* target_subject) {
  PrecomputedGuards g;
  if (target_subject != nullptr) {
    for (Evidence e : {Evidence::kName, Evidence::kValue, Evidence::kFormat,
                       Evidence::kEmbedding}) {
      for (uint32_t id : indexes.LookupThreshold(e, *target_subject)) {
        g.target_subject_istar.insert(id);
      }
    }
  }
  for (uint32_t id : indexes.LookupThreshold(Evidence::kName, target_sigs)) {
    g.name_hits.insert(id);
  }
  for (uint32_t id : indexes.LookupThreshold(Evidence::kFormat, target_sigs)) {
    g.format_hits.insert(id);
  }
  return g;
}

double ComputeDistributionDistanceFast(const D3LIndexes& indexes,
                                       const AttributeProfile& target_profile,
                                       uint32_t candidate_id,
                                       const PrecomputedGuards& guards,
                                       uint32_t source_subject_id) {
  const AttributeProfile& cand = indexes.profile(candidate_id);
  if (!target_profile.is_numeric || !cand.is_numeric) return 1.0;
  if (target_profile.numeric_sample.empty() || cand.numeric_sample.empty()) return 1.0;

  bool guard_passed =
      (source_subject_id != UINT32_MAX &&
       guards.target_subject_istar.count(source_subject_id) > 0) ||
      guards.name_hits.count(candidate_id) > 0 ||
      guards.format_hits.count(candidate_id) > 0;
  if (!guard_passed) return 1.0;
  return KsStatistic(target_profile.numeric_sample, cand.numeric_sample);
}

DistanceVector ComputeDistances(const D3LIndexes& indexes,
                                const AttributeProfile& target_profile,
                                const AttributeSignatures& target_sigs,
                                uint32_t candidate_id,
                                const DistributionGuardContext& guard) {
  DistanceVector d = MaxDistances();
  d[static_cast<size_t>(Evidence::kName)] =
      indexes.EstimateDistance(Evidence::kName, target_sigs, candidate_id);
  d[static_cast<size_t>(Evidence::kValue)] =
      indexes.EstimateDistance(Evidence::kValue, target_sigs, candidate_id);
  d[static_cast<size_t>(Evidence::kFormat)] =
      indexes.EstimateDistance(Evidence::kFormat, target_sigs, candidate_id);
  d[static_cast<size_t>(Evidence::kEmbedding)] =
      indexes.EstimateDistance(Evidence::kEmbedding, target_sigs, candidate_id);
  d[static_cast<size_t>(Evidence::kDistribution)] = ComputeDistributionDistance(
      indexes, target_profile, target_sigs, candidate_id, guard);
  return d;
}

}  // namespace d3l::core

#include "core/aggregation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d3l::core {

namespace {
constexpr double kWeightFloor = 1e-6;
}

DistanceDistributions::DistanceDistributions(size_t num_target_columns)
    : num_columns_(num_target_columns) {
  samples_.assign(num_columns_, std::vector<std::vector<double>>(kNumEvidence));
}

void DistanceDistributions::Observe(uint32_t target_column, Evidence t,
                                    double distance) {
  assert(!finalized_);
  assert(target_column < num_columns_);
  samples_[target_column][static_cast<size_t>(t)].push_back(distance);
}

void DistanceDistributions::Finalize() {
  assert(!finalized_);
  frozen_.reserve(num_columns_);
  for (auto& col_samples : samples_) {
    std::vector<EmpiricalDistribution> col;
    col.reserve(kNumEvidence);
    for (auto& s : col_samples) {
      col.emplace_back(std::move(s));
    }
    frozen_.push_back(std::move(col));
  }
  samples_.clear();
  finalized_ = true;
}

double DistanceDistributions::Weight(uint32_t target_column, Evidence t,
                                     double x) const {
  assert(finalized_);
  assert(target_column < num_columns_);
  const EmpiricalDistribution& dist = frozen_[target_column][static_cast<size_t>(t)];
  if (dist.empty()) return kWeightFloor;
  return std::max(dist.Ccdf(x), kWeightFloor);
}

EvidenceWeights EvidenceWeights::Default() {
  // Magnitude-normalized coefficients of the logistic-regression classifier
  // trained on (related, unrelated) pairs from the synthetic benchmark
  // ground truth (procedure of Section III-D; reproduced end-to-end by
  // LearnEvidenceWeights and tests/weights_test.cc). Value and embedding
  // evidence dominate; format is the weakest individual signal, matching
  // the paper's Experiment 1.
  EvidenceWeights ew;
  ew.w = {0.18, 0.31, 0.11, 0.26, 0.14};
  return ew;
}

EvidenceWeights EvidenceWeights::Uniform() {
  EvidenceWeights ew;
  ew.w = {0.2, 0.2, 0.2, 0.2, 0.2};
  return ew;
}

DistanceVector AggregateDataset(const std::vector<PairDistances>& rows,
                                const DistanceDistributions& dists) {
  DistanceVector out = MaxDistances();
  if (rows.empty()) return out;
  for (size_t t = 0; t < kNumEvidence; ++t) {
    double num = 0;
    double den = 0;
    for (const PairDistances& row : rows) {
      double w =
          dists.Weight(row.target_column, static_cast<Evidence>(t), row.d[t]);
      num += w * row.d[t];
      den += w;
    }
    out[t] = den > 0 ? num / den : 1.0;
  }
  return out;
}

double CombineDistances(const DistanceVector& dv, const EvidenceWeights& weights) {
  double num = 0;
  double den = 0;
  for (size_t t = 0; t < kNumEvidence; ++t) {
    double x = weights.w[t] * dv[t];
    num += x * x;
    den += weights.w[t];
  }
  if (den <= 0) return 1.0;
  return std::sqrt(num / den);
}

}  // namespace d3l::core

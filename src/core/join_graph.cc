#include "core/join_graph.h"

#include <algorithm>

namespace d3l::core {

namespace {

// Estimated overlap coefficient from an estimated Jaccard similarity and
// the two set sizes, via |A ∩ B| ≈ j/(1+j) * (|A| + |B|).
double OverlapFromJaccard(double jaccard, size_t size_a, size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0;
  double inter = jaccard / (1.0 + jaccard) *
                 static_cast<double>(size_a + size_b);
  double ov = inter / static_cast<double>(std::min(size_a, size_b));
  return std::clamp(ov, 0.0, 1.0);
}

uint64_t EdgeKey(uint32_t ta, uint32_t ca, uint32_t tb, uint32_t cb) {
  // Canonical order so (a, b) and (b, a) collide.
  if (ta > tb || (ta == tb && ca > cb)) {
    std::swap(ta, tb);
    std::swap(ca, cb);
  }
  return (static_cast<uint64_t>(ta) << 48) ^ (static_cast<uint64_t>(ca) << 32) ^
         (static_cast<uint64_t>(tb) << 16) ^ static_cast<uint64_t>(cb);
}

}  // namespace

SaJoinGraph SaJoinGraph::Build(const D3LEngine& engine, double min_overlap) {
  SaJoinGraph g;
  const DataLake* lake = engine.lake();
  if (lake == nullptr) return g;
  g.adjacency_.resize(lake->size());

  const D3LIndexes& indexes = engine.indexes();
  std::unordered_set<uint64_t> seen_edges;

  // For every subject attribute, find V-related attributes in other tables;
  // each hit satisfies both SA-joinability conditions (one endpoint is a
  // subject attribute, tset overlap has IV evidence at tau).
  for (uint32_t ti = 0; ti < lake->size(); ++ti) {
    uint32_t said = engine.subject_attribute_id(ti);
    if (said == UINT32_MAX) continue;
    const AttributeSignatures& ssigs = indexes.signatures(said);
    if (!ssigs.has_value) continue;
    const AttributeProfile& sprof = indexes.profile(said);

    for (uint32_t cand : indexes.LookupValueJoin(ssigs)) {
      const AttributeProfile& cprof = indexes.profile(cand);
      if (cprof.ref.table == ti) continue;
      uint64_t key = EdgeKey(ti, sprof.ref.column, cprof.ref.table, cprof.ref.column);
      if (!seen_edges.insert(key).second) continue;

      double jac = EstimateJaccard(ssigs.value_sig, indexes.signatures(cand).value_sig);
      double ov = OverlapFromJaccard(jac, sprof.tset.size(), cprof.tset.size());
      if (ov < min_overlap) continue;  // containment too weak to postulate a join

      JoinEdge e{ti, sprof.ref.column, cprof.ref.table, cprof.ref.column, ov};
      g.adjacency_[ti].push_back(e);
      JoinEdge rev{cprof.ref.table, cprof.ref.column, ti, sprof.ref.column, ov};
      g.adjacency_[cprof.ref.table].push_back(rev);
      ++g.num_edges_;
    }
  }
  return g;
}

bool SaJoinGraph::HasEdge(uint32_t a, uint32_t b) const {
  for (const JoinEdge& e : adjacency_[a]) {
    if (e.to_table == b) return true;
  }
  return false;
}

namespace {

void Dfs(const SaJoinGraph& graph, uint32_t node,
         const std::unordered_set<uint32_t>& top_k,
         const std::unordered_set<uint32_t>& related_to_target,
         const JoinGraphOptions& options, JoinPath* path,
         std::vector<JoinPath>* out) {
  if (out->size() >= options.max_paths_per_start) return;
  if (path->tables.size() >= options.max_path_length) return;
  for (const JoinEdge& e : graph.neighbours(node)) {
    uint32_t next = e.to_table;
    // Algorithm 3's admissibility conditions: not in S_k, acyclic, related
    // to the target under at least one index.
    if (top_k.count(next) > 0) continue;
    if (std::find(path->tables.begin(), path->tables.end(), next) !=
        path->tables.end()) {
      continue;
    }
    if (related_to_target.count(next) == 0) continue;

    path->tables.push_back(next);
    path->edges.push_back(e);
    out->push_back(*path);  // every admissible prefix is a join path
    Dfs(graph, next, top_k, related_to_target, options, path, out);
    path->tables.pop_back();
    path->edges.pop_back();
    if (out->size() >= options.max_paths_per_start) return;
  }
}

}  // namespace

std::vector<JoinPath> FindJoinPaths(const SaJoinGraph& graph, uint32_t start,
                                    const std::unordered_set<uint32_t>& top_k,
                                    const std::unordered_set<uint32_t>& related_to_target,
                                    const JoinGraphOptions& options) {
  std::vector<JoinPath> out;
  JoinPath path;
  path.tables.push_back(start);
  Dfs(graph, start, top_k, related_to_target, options, &path, &out);
  return out;
}

std::vector<JoinPath> FindAllJoinPaths(const SaJoinGraph& graph,
                                       const SearchResult& result,
                                       const JoinGraphOptions& options) {
  std::unordered_set<uint32_t> top_k;
  for (const TableMatch& m : result.ranked) top_k.insert(m.table_index);
  std::unordered_set<uint32_t> related;
  for (const auto& [table, aligns] : result.candidate_alignments) related.insert(table);

  std::vector<JoinPath> all;
  for (const TableMatch& m : result.ranked) {
    std::vector<JoinPath> paths =
        FindJoinPaths(graph, m.table_index, top_k, related, options);
    all.insert(all.end(), paths.begin(), paths.end());
  }
  return all;
}

}  // namespace d3l::core

// Subject-attribute detection (Section III-C).
//
// A subject attribute identifies the entities a dataset is about; the paper
// follows Venetis et al. and trains a supervised classifier whose signal
// "favours leftmost non-numeric attributes with fewer nulls and many
// distinct values". We implement the same model family (logistic
// regression over those features); DESIGN.md §4 documents the substitution
// of the paper's 350 hand-labelled data.gov.uk tables with generator-
// labelled training data. As in the paper, each dataset has exactly one
// subject attribute and it is non-numeric.
#pragma once

#include <vector>

#include "common/status.h"
#include "ml/logistic.h"
#include "table/table.h"

namespace d3l::core {

/// \brief Feature vector of a candidate column (all in [0, 1]).
///
/// [0] 1 - normalized position (leftmost -> 1)
/// [1] distinct ratio (distinct non-null / rows)
/// [2] 1 - null ratio
/// [3] textiness: 1 for string columns, 0 for numeric
/// [4] mean token count per cell, squashed to [0, 1]
std::vector<double> SubjectAttributeFeatures(const Table& table, size_t col);

/// \brief Scores columns and picks the subject attribute of a table.
class SubjectAttributeDetector {
 public:
  SubjectAttributeDetector() : model_(DefaultModel()) {}
  explicit SubjectAttributeDetector(LogisticModel model) : model_(std::move(model)) {}

  /// The index of the most-probable subject column among non-numeric
  /// columns; falls back to the highest-scoring column of any type, and
  /// returns -1 only for tables with no columns.
  int Detect(const Table& table) const;

  /// P(column is the subject attribute).
  double Score(const Table& table, size_t col) const;

  /// Trains a detector from labelled tables (label = subject column index).
  static Result<SubjectAttributeDetector> Train(
      const std::vector<const Table*>& tables, const std::vector<size_t>& subject_cols);

  const LogisticModel& model() const { return model_; }

 private:
  /// Coefficients from a training run on generator-labelled tables
  /// (see tests/subject_attribute_test.cc, which re-learns comparable ones).
  static LogisticModel DefaultModel();

  LogisticModel model_;
};

}  // namespace d3l::core

#include "core/attribute_profile.h"

#include <algorithm>

#include "text/format.h"
#include "text/qgram.h"
#include "text/token_histogram.h"
#include "text/tokenizer.h"

namespace d3l::core {

size_t AttributeProfile::MemoryUsage() const {
  size_t bytes = sizeof(AttributeProfile);
  bytes += table_name.capacity() + column_name.capacity();
  for (const auto& s : qset) bytes += s.size() + 16;
  for (const auto& s : tset) bytes += s.size() + 16;
  for (const auto& s : rset) bytes += s.size() + 16;
  bytes += embedding.capacity() * sizeof(float);
  bytes += numeric_sample.capacity() * sizeof(double);
  return bytes;
}

namespace {

// Deterministic stride sample of row indices over non-null cells.
std::vector<size_t> SampleRows(const Column& col, size_t cap) {
  std::vector<size_t> rows;
  rows.reserve(col.size());
  for (size_t r = 0; r < col.size(); ++r) {
    if (!IsNullCell(col.cell(r))) rows.push_back(r);
  }
  if (cap == 0 || rows.size() <= cap) return rows;
  std::vector<size_t> sampled;
  sampled.reserve(cap);
  double stride = static_cast<double>(rows.size()) / static_cast<double>(cap);
  for (size_t i = 0; i < cap; ++i) {
    sampled.push_back(rows[static_cast<size_t>(static_cast<double>(i) * stride)]);
  }
  return sampled;
}

}  // namespace

AttributeProfile BuildProfile(const Table& table, size_t col,
                              const WordEmbeddingModel& wem, CachingEmbedder* cache,
                              const ProfileOptions& options) {
  const Column& column = table.column(col);
  AttributeProfile p;
  p.ref = AttributeRef{0, static_cast<uint32_t>(col)};  // table id assigned by caller
  p.table_name = table.name();
  p.column_name = column.name();
  p.is_numeric = column.type() == ColumnType::kNumeric;

  // Evidence N: name q-grams (always available).
  p.qset = QGrams(column.name(), options.qgram_q);

  std::vector<size_t> rows = SampleRows(column, options.max_values);
  p.extent_size = rows.size();

  // Evidence F: format strings — for all attributes, numeric included
  // (Section III-C: numbers are indexed into the name and format indexes).
  for (size_t r : rows) {
    std::string f = FormatOf(column.cell(r));
    if (!f.empty()) p.rset.insert(std::move(f));
  }

  if (p.is_numeric) {
    // Evidence D: the extent as a sample of its originating domain.
    p.numeric_sample = column.NumericExtent();
    if (options.max_numeric_sample > 0 &&
        p.numeric_sample.size() > options.max_numeric_sample) {
      std::vector<double> sampled;
      sampled.reserve(options.max_numeric_sample);
      double stride = static_cast<double>(p.numeric_sample.size()) /
                      static_cast<double>(options.max_numeric_sample);
      for (size_t i = 0; i < options.max_numeric_sample; ++i) {
        sampled.push_back(
            p.numeric_sample[static_cast<size_t>(static_cast<double>(i) * stride)]);
      }
      p.numeric_sample = std::move(sampled);
    }
    std::sort(p.numeric_sample.begin(), p.numeric_sample.end());
    // Tokens and word embeddings are not useful signals for numbers
    // (Section III-C): no tset, no embedding.
    return p;
  }

  // Pass 1 (Algorithm 1, lines 5-8): token histogram over the extent.
  TokenHistogram hist;
  std::vector<std::vector<Part>> parts_per_row;
  parts_per_row.reserve(rows.size());
  for (size_t r : rows) {
    std::vector<Part> parts = SplitParts(column.cell(r));
    for (const Part& part : parts) hist.Insert(part.words);
    parts_per_row.push_back(std::move(parts));
  }

  // Pass 2 (Example 2): per part, least-frequent word -> tset; most-frequent
  // word -> embedding accumulator.
  Vec acc(wem.dim(), 0.0f);
  size_t acc_count = 0;
  for (const auto& parts : parts_per_row) {
    for (const Part& part : parts) {
      if (part.words.empty()) continue;
      const std::string* least = &part.words[0];
      const std::string* most = &part.words[0];
      size_t least_n = hist.CountOf(part.words[0]);
      size_t most_n = least_n;
      for (const std::string& w : part.words) {
        size_t n = hist.CountOf(w);
        if (n < least_n) {
          least_n = n;
          least = &w;
        }
        if (n > most_n) {
          most_n = n;
          most = &w;
        }
      }
      p.tset.insert(*least);
      const Vec& v = cache ? cache->Embed(*most) : wem.Embed(*most);
      AddInPlace(&acc, v);
      ++acc_count;
    }
  }
  if (acc_count > 0) {
    for (float& x : acc) x = static_cast<float>(x / static_cast<double>(acc_count));
    p.embedding = std::move(acc);
    p.has_embedding = true;
  }
  return p;
}

void AttributeProfile::Save(io::Writer& w) const {
  w.WriteU32(ref.table);
  w.WriteU32(ref.column);
  w.WriteString(table_name);
  w.WriteString(column_name);
  w.WriteBool(is_numeric);
  w.WriteU64(extent_size);
  w.WriteStringRange(qset);
  w.WriteStringRange(tset);
  w.WriteStringRange(rset);
  w.WriteFloatVector(embedding);
  w.WriteBool(has_embedding);
  w.WriteDoubleVector(numeric_sample);
}

AttributeProfile AttributeProfile::Load(io::Reader& r) {
  AttributeProfile p;
  p.ref.table = r.ReadU32();
  p.ref.column = r.ReadU32();
  p.table_name = r.ReadString();
  p.column_name = r.ReadString();
  p.is_numeric = r.ReadBool();
  p.extent_size = r.ReadU64();
  for (std::set<std::string>* s : {&p.qset, &p.tset, &p.rset}) {
    size_t n = r.ReadLength(1);
    for (size_t i = 0; i < n && r.status().ok(); ++i) s->insert(r.ReadString());
  }
  p.embedding = r.ReadFloatVector();
  p.has_embedding = r.ReadBool();
  p.numeric_sample = r.ReadDoubleVector();
  return p;
}

}  // namespace d3l::core

// Attribute profiles: the per-attribute set representations of Algorithm 1.
//
// From an attribute name we derive a qset; from its values we derive a tset
// (informative tokens), an rset (format strings) and a word-embedding vector
// (frequent tokens); from numeric extents we derive distribution samples
// (Section III-A). Numeric attributes get no tset/embedding (Section III-C).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/evidence.h"
#include "embedding/subword_model.h"
#include "io/binary_io.h"
#include "table/table.h"

namespace d3l::core {

struct ProfileOptions {
  size_t qgram_q = 4;  ///< q for name q-grams (paper: 4)
  /// Cap on the number of extent values profiled per attribute; larger
  /// extents are stride-sampled deterministically. 0 = no cap.
  size_t max_values = 512;
  /// Cap on numeric extent sample size retained for KS computations.
  size_t max_numeric_sample = 512;

  bool operator==(const ProfileOptions&) const = default;
};

/// \brief The set representations (and numeric sample) of one attribute.
struct AttributeProfile {
  AttributeRef ref;
  std::string table_name;
  std::string column_name;
  bool is_numeric = false;
  size_t extent_size = 0;  ///< non-null cells profiled

  std::set<std::string> qset;  ///< name q-grams (evidence N)
  std::set<std::string> tset;  ///< informative tokens (evidence V); empty for numeric
  std::set<std::string> rset;  ///< format strings (evidence F)
  Vec embedding;               ///< mean frequent-token vector (evidence E)
  bool has_embedding = false;  ///< false for numeric/empty-text attributes

  std::vector<double> numeric_sample;  ///< extent sample for KS (evidence D)

  /// Approximate heap footprint (space-overhead accounting).
  size_t MemoryUsage() const;

  /// Serializes the full profile (sets, embedding, numeric sample) into
  /// the writer's current section.
  void Save(io::Writer& w) const;

  /// Deserializes a profile written by Save(); check the reader's status()
  /// before use.
  static AttributeProfile Load(io::Reader& r);
};

/// \brief Builds the profile of `table.column(col)` per Algorithm 1.
///
/// Two passes over the (possibly sampled) extent: the first builds the
/// token histogram and rset; the second applies the Example-2 selection —
/// per value part, the least frequent word joins the tset and the most
/// frequent word's embedding joins the attribute vector.
AttributeProfile BuildProfile(const Table& table, size_t col,
                              const WordEmbeddingModel& wem, CachingEmbedder* cache,
                              const ProfileOptions& options = {});

}  // namespace d3l::core

#include "core/indexes.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace d3l::core {

namespace {
BandedLshOptions BandedOptionsFrom(const IndexOptions& o) {
  BandedLshOptions b;
  b.threshold = o.lsh_threshold;
  b.signature_size = o.minhash_size;
  return b;
}

BandedLshOptions JoinBandedOptionsFrom(const IndexOptions& o) {
  BandedLshOptions b;
  b.threshold = o.join_threshold;
  b.signature_size = o.minhash_size;
  return b;
}

BandedLshOptions BandedOptionsForBits(const IndexOptions& o) {
  // The embedding banded index runs over the byte sequence of the bit
  // signature (rp_bits / 8 values).
  BandedLshOptions b;
  b.threshold = o.lsh_threshold;
  b.signature_size = o.rp_bits / 8;
  return b;
}

// The embedding forest also runs over the byte sequence, so its key shape
// is clamped to what rp_bits / 8 values can provide.
LshForestOptions EmbForestOptionsFrom(const IndexOptions& o) {
  return ClampForestToSignature(o.forest, o.rp_bits / 8);
}
}  // namespace

D3LIndexes::D3LIndexes(IndexOptions options)
    : options_(options),
      name_hasher_(options.minhash_size, options.seed ^ 0x4e),
      value_hasher_(options.minhash_size, options.seed ^ 0x56),
      format_hasher_(options.minhash_size, options.seed ^ 0x46),
      rp_hasher_(options.embedding_dim, options.rp_bits, options.seed ^ 0x45),
      name_forest_(options.forest),
      value_forest_(options.forest),
      format_forest_(options.forest),
      emb_forest_(EmbForestOptionsFrom(options)),
      name_banded_(BandedOptionsFrom(options)),
      value_banded_(BandedOptionsFrom(options)),
      format_banded_(BandedOptionsFrom(options)),
      emb_banded_(BandedOptionsForBits(options)),
      value_join_banded_(JoinBandedOptionsFrom(options)) {
  assert(options.forest.num_trees * options.forest.hashes_per_tree <=
         options.minhash_size);
}

AttributeSignatures D3LIndexes::Sign(const AttributeProfile& profile) const {
  AttributeSignatures s;
  s.name_sig = name_hasher_.Sign(profile.qset);
  s.format_sig = format_hasher_.Sign(profile.rset);
  if (!profile.tset.empty()) {
    s.value_sig = value_hasher_.Sign(profile.tset);
    s.has_value = true;
  }
  if (profile.has_embedding) {
    s.emb_sig = rp_hasher_.Sign(profile.embedding);
    s.has_embedding = true;
  }
  return s;
}

uint32_t D3LIndexes::Insert(AttributeProfile profile) {
  const uint32_t id = static_cast<uint32_t>(profiles_.size());
  AttributeSignatures s = Sign(profile);

  // Algorithm 1, lines 15-18: insert set representations into the indexes.
  name_forest_.Insert(id, s.name_sig);
  name_banded_.Insert(id, s.name_sig);
  format_forest_.Insert(id, s.format_sig);
  format_banded_.Insert(id, s.format_sig);
  if (s.has_value) {
    value_forest_.Insert(id, s.value_sig);
    value_banded_.Insert(id, s.value_sig);
    value_join_banded_.Insert(id, s.value_sig);
  }
  if (s.has_embedding) {
    Signature seq = rp_hasher_.SignatureAsHashSequence(s.emb_sig);
    emb_forest_.Insert(id, seq);
    emb_banded_.Insert(id, seq);
  }
  profiles_.push_back(std::move(profile));
  sigs_.push_back(std::move(s));
  return id;
}

void D3LIndexes::Finalize() {
  name_forest_.Index();
  value_forest_.Index();
  format_forest_.Index();
  emb_forest_.Index();
}

std::vector<uint32_t> D3LIndexes::Lookup(Evidence e, const AttributeSignatures& query,
                                         size_t m) const {
  switch (e) {
    case Evidence::kName:
      return name_forest_.Query(query.name_sig, m);
    case Evidence::kValue:
      if (!query.has_value) return {};
      return value_forest_.Query(query.value_sig, m);
    case Evidence::kFormat:
      return format_forest_.Query(query.format_sig, m);
    case Evidence::kEmbedding: {
      if (!query.has_embedding) return {};
      Signature seq = rp_hasher_.SignatureAsHashSequence(query.emb_sig);
      return emb_forest_.Query(seq, m);
    }
    case Evidence::kDistribution:
      return {};
  }
  return {};
}

std::vector<size_t> D3LIndexes::LookupDepthCounts(Evidence e,
                                                  const AttributeSignatures& query,
                                                  size_t budget) const {
  switch (e) {
    case Evidence::kName:
      return name_forest_.DepthCounts(query.name_sig, budget);
    case Evidence::kValue:
      if (!query.has_value) return {};
      return value_forest_.DepthCounts(query.value_sig, budget);
    case Evidence::kFormat:
      return format_forest_.DepthCounts(query.format_sig, budget);
    case Evidence::kEmbedding: {
      if (!query.has_embedding) return {};
      Signature seq = rp_hasher_.SignatureAsHashSequence(query.emb_sig);
      return emb_forest_.DepthCounts(seq, budget);
    }
    case Evidence::kDistribution:
      return {};
  }
  return {};
}

std::vector<uint32_t> D3LIndexes::LookupAtDepth(Evidence e,
                                                const AttributeSignatures& query,
                                                size_t min_depth) const {
  if (min_depth == 0) return {};
  switch (e) {
    case Evidence::kName:
      return name_forest_.QueryAtDepth(query.name_sig, min_depth);
    case Evidence::kValue:
      if (!query.has_value) return {};
      return value_forest_.QueryAtDepth(query.value_sig, min_depth);
    case Evidence::kFormat:
      return format_forest_.QueryAtDepth(query.format_sig, min_depth);
    case Evidence::kEmbedding: {
      if (!query.has_embedding) return {};
      Signature seq = rp_hasher_.SignatureAsHashSequence(query.emb_sig);
      return emb_forest_.QueryAtDepth(seq, min_depth);
    }
    case Evidence::kDistribution:
      return {};
  }
  return {};
}

std::vector<uint32_t> D3LIndexes::LookupThreshold(
    Evidence e, const AttributeSignatures& query) const {
  switch (e) {
    case Evidence::kName:
      return name_banded_.Query(query.name_sig);
    case Evidence::kValue:
      if (!query.has_value) return {};
      return value_banded_.Query(query.value_sig);
    case Evidence::kFormat:
      return format_banded_.Query(query.format_sig);
    case Evidence::kEmbedding: {
      if (!query.has_embedding) return {};
      Signature seq = rp_hasher_.SignatureAsHashSequence(query.emb_sig);
      return emb_banded_.Query(seq);
    }
    case Evidence::kDistribution:
      return {};
  }
  return {};
}

std::vector<uint32_t> D3LIndexes::LookupValueJoin(
    const AttributeSignatures& query) const {
  if (!query.has_value) return {};
  return value_join_banded_.Query(query.value_sig);
}

double D3LIndexes::EstimateDistance(Evidence e, const AttributeSignatures& query,
                                    uint32_t id) const {
  const AttributeSignatures& s = sigs_[id];
  switch (e) {
    case Evidence::kName:
      return EstimateJaccardDistance(query.name_sig, s.name_sig);
    case Evidence::kValue:
      if (!query.has_value || !s.has_value) return 1.0;
      return EstimateJaccardDistance(query.value_sig, s.value_sig);
    case Evidence::kFormat:
      return EstimateJaccardDistance(query.format_sig, s.format_sig);
    case Evidence::kEmbedding:
      if (!query.has_embedding || !s.has_embedding) return 1.0;
      return EstimateCosineDistance(query.emb_sig, s.emb_sig);
    case Evidence::kDistribution:
      return 1.0;  // computed by the guarded KS path, not from signatures
  }
  return 1.0;
}

void AttributeSignatures::Save(io::Writer& w) const {
  w.WriteU64Vector(name_sig);
  w.WriteU64Vector(value_sig);
  w.WriteU64Vector(format_sig);
  w.WriteU64Vector(emb_sig.words);
  w.WriteU64(emb_sig.bits);
  w.WriteBool(has_value);
  w.WriteBool(has_embedding);
}

AttributeSignatures AttributeSignatures::Load(io::Reader& r) {
  AttributeSignatures s;
  s.name_sig = r.ReadU64Vector();
  s.value_sig = r.ReadU64Vector();
  s.format_sig = r.ReadU64Vector();
  s.emb_sig.words = r.ReadU64Vector();
  s.emb_sig.bits = r.ReadU64();
  s.has_value = r.ReadBool();
  s.has_embedding = r.ReadBool();
  return s;
}

void D3LIndexes::Save(io::Writer& w) const {
  w.WriteU64(options_.minhash_size);
  w.WriteDouble(options_.lsh_threshold);
  w.WriteDouble(options_.join_threshold);
  w.WriteU64(options_.rp_bits);
  w.WriteU64(options_.embedding_dim);
  w.WriteU64(options_.forest.num_trees);
  w.WriteU64(options_.forest.hashes_per_tree);
  w.WriteU64(options_.seed);

  w.WriteU64(profiles_.size());
  for (size_t i = 0; i < profiles_.size(); ++i) {
    profiles_[i].Save(w);
    sigs_[i].Save(w);
  }

  name_forest_.Save(w);
  value_forest_.Save(w);
  format_forest_.Save(w);
  emb_forest_.Save(w);
}

Result<D3LIndexes> D3LIndexes::Load(io::Reader& r, ForestWireFormat forest_format) {
  IndexOptions o;
  o.minhash_size = r.ReadU64();
  o.lsh_threshold = r.ReadDouble();
  o.join_threshold = r.ReadDouble();
  o.rp_bits = r.ReadU64();
  o.embedding_dim = r.ReadU64();
  o.forest.num_trees = r.ReadU64();
  o.forest.hashes_per_tree = r.ReadU64();
  o.seed = r.ReadU64();
  D3L_RETURN_NOT_OK(r.status());
  // Constructing hashers from implausible options would allocate wildly;
  // reject before building anything (the checksum makes this unreachable
  // for corruption, but it also guards Save/Load format drift).
  constexpr size_t kMaxDim = size_t{1} << 20;
  if (o.minhash_size == 0 || o.minhash_size > kMaxDim || o.rp_bits < 8 ||
      o.rp_bits > kMaxDim || o.embedding_dim == 0 || o.embedding_dim > kMaxDim ||
      // Bound the factors before multiplying: a crafted pair like
      // 2^32 * 2^32 would wrap the u64 product to 0 and slip through.
      o.forest.num_trees > kMaxDim || o.forest.hashes_per_tree > kMaxDim ||
      o.forest.num_trees * o.forest.hashes_per_tree > o.minhash_size) {
    return Status::IOError("corrupt file: implausible index options");
  }

  D3LIndexes idx(o);
  size_t n = r.ReadLength(1);
  idx.profiles_.reserve(n);
  idx.sigs_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AttributeProfile profile = AttributeProfile::Load(r);
    AttributeSignatures s = AttributeSignatures::Load(r);
    D3L_RETURN_NOT_OK(r.status());
    if (s.name_sig.size() != o.minhash_size || s.format_sig.size() != o.minhash_size ||
        (s.has_value && s.value_sig.size() != o.minhash_size) ||
        (s.has_embedding &&
         (s.emb_sig.bits != o.rp_bits ||
          s.emb_sig.words.size() != (s.emb_sig.bits + 63) / 64))) {
      return Status::IOError("corrupt file: signature sizes contradict index options");
    }
    // Replay the banded-index half of Insert() from the saved signatures
    // (ids were assigned densely in insertion order, so the rebuilt buckets
    // are identical to the originals).
    const auto id = static_cast<uint32_t>(i);
    idx.name_banded_.Insert(id, s.name_sig);
    idx.format_banded_.Insert(id, s.format_sig);
    if (s.has_value) {
      idx.value_banded_.Insert(id, s.value_sig);
      idx.value_join_banded_.Insert(id, s.value_sig);
    }
    if (s.has_embedding) {
      Signature seq = idx.rp_hasher_.SignatureAsHashSequence(s.emb_sig);
      idx.emb_banded_.Insert(id, seq);
    }
    idx.profiles_.push_back(std::move(profile));
    idx.sigs_.push_back(std::move(s));
  }

  const auto t_forests = std::chrono::steady_clock::now();
  idx.name_forest_ = LshForest::Load(r, forest_format);
  idx.value_forest_ = LshForest::Load(r, forest_format);
  idx.format_forest_ = LshForest::Load(r, forest_format);
  idx.emb_forest_ = LshForest::Load(r, forest_format);
  idx.forest_parse_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_forests)
          .count();
  D3L_RETURN_NOT_OK(r.status());
  if (idx.name_forest_.size() != n || idx.format_forest_.size() != n) {
    return Status::IOError("corrupt file: forest sizes disagree with attribute count");
  }
  // Forest entries feed straight into profiles_[id] at query time; reject
  // ids outside the registry now rather than crashing during a Search.
  for (const LshForest* forest :
       {&idx.name_forest_, &idx.value_forest_, &idx.format_forest_, &idx.emb_forest_}) {
    for (size_t t = 0; t < forest->num_trees(); ++t) {
      const LshForest::ItemId* ids = forest->tree_ids(t);
      for (size_t i = 0, sz = forest->tree_size(t); i < sz; ++i) {
        if (ids[i] >= n) {
          return Status::IOError("corrupt file: forest entry id out of range");
        }
      }
    }
  }
  return idx;
}

size_t D3LIndexes::MemoryUsage() const {
  size_t bytes = sizeof(D3LIndexes);
  bytes += name_forest_.MemoryUsage() + value_forest_.MemoryUsage() +
           format_forest_.MemoryUsage() + emb_forest_.MemoryUsage();
  bytes += name_banded_.MemoryUsage() + value_banded_.MemoryUsage() +
           format_banded_.MemoryUsage() + emb_banded_.MemoryUsage() +
           value_join_banded_.MemoryUsage();
  for (const AttributeProfile& p : profiles_) bytes += p.MemoryUsage();
  for (const AttributeSignatures& s : sigs_) {
    bytes += (s.name_sig.capacity() + s.value_sig.capacity() + s.format_sig.capacity()) *
             sizeof(uint64_t);
    bytes += s.emb_sig.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace d3l::core

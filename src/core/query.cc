#include "core/query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace d3l::core {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

D3LEngine::D3LEngine(D3LOptions options)
    : options_([&options] {
        options.wem.dim = options.index.embedding_dim;
        return options;
      }()),
      wem_(options_.wem),
      indexes_(options_.index) {}

Status D3LEngine::IndexLake(const DataLake& lake) {
  if (lake_ != nullptr) return Status::InvalidArgument("IndexLake already called");
  lake_ = &lake;

  const size_t n_tables = lake.size();
  attr_ids_.resize(n_tables);
  subject_cols_.assign(n_tables, -1);

  // Phase 1: profile every attribute (data pre-processing; the dominant
  // indexing cost per Experiment 4). Parallel across tables — profiles are
  // pure functions of the table contents, so the result is deterministic.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<AttributeProfile>> profiles(n_tables);
  size_t n_threads = options_.num_threads > 0
                         ? options_.num_threads
                         : std::max<size_t>(1, std::thread::hardware_concurrency());
  n_threads = std::min(n_threads, std::max<size_t>(1, n_tables));
  {
    std::vector<std::thread> workers;
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < n_threads; ++w) {
      workers.emplace_back([&] {
        CachingEmbedder cache(&wem_);
        for (;;) {
          size_t ti = next.fetch_add(1);
          if (ti >= n_tables) break;
          const Table& t = lake.table(ti);
          profiles[ti].reserve(t.num_columns());
          for (size_t c = 0; c < t.num_columns(); ++c) {
            AttributeProfile p = BuildProfile(t, c, wem_, &cache, options_.profile);
            p.ref = AttributeRef{static_cast<uint32_t>(ti), static_cast<uint32_t>(c)};
            profiles[ti].push_back(std::move(p));
          }
          subject_cols_[ti] = detector_.Detect(t);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  build_stats_.profile_seconds = SecondsSince(t0);

  // Phase 2: signature computation + LSH insertion (Algorithm 1).
  t0 = std::chrono::steady_clock::now();
  for (size_t ti = 0; ti < n_tables; ++ti) {
    attr_ids_[ti].reserve(profiles[ti].size());
    for (AttributeProfile& p : profiles[ti]) {
      attr_ids_[ti].push_back(indexes_.Insert(std::move(p)));
    }
  }
  indexes_.Finalize();
  build_stats_.insert_seconds = SecondsSince(t0);
  build_stats_.num_attributes = indexes_.num_attributes();
  build_stats_.index_bytes = indexes_.MemoryUsage();
  return Status::OK();
}

int D3LEngine::subject_column(uint32_t table_index) const {
  return subject_cols_[table_index];
}

uint32_t D3LEngine::attribute_id(uint32_t table_index, uint32_t column) const {
  return attr_ids_[table_index][column];
}

uint32_t D3LEngine::subject_attribute_id(uint32_t table_index) const {
  int col = subject_cols_[table_index];
  if (col < 0) return UINT32_MAX;
  return attr_ids_[table_index][static_cast<size_t>(col)];
}

Result<SearchResult> D3LEngine::Search(const Table& target, size_t k) const {
  return Search(target, k, options_.enabled);
}

Result<SearchResult> D3LEngine::Search(
    const Table& target, size_t k,
    const std::array<bool, kNumEvidence>& enabled_mask) const {
  if (lake_ == nullptr) return Status::InvalidArgument("IndexLake not called");
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  const size_t per_index_m = std::max(options_.candidates_per_attribute, k);

  SearchResult result;
  const size_t n_cols = target.num_columns();

  // Profile the target and its subject attribute.
  CachingEmbedder cache(&wem_);
  result.target_profiles.reserve(n_cols);
  result.target_sigs.reserve(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    AttributeProfile p = BuildProfile(target, c, wem_, &cache, options_.profile);
    result.target_sigs.push_back(indexes_.Sign(p));
    result.target_profiles.push_back(std::move(p));
  }
  int target_subject_col = detector_.Detect(target);
  const AttributeSignatures* target_subject_sigs =
      target_subject_col >= 0
          ? &result.target_sigs[static_cast<size_t>(target_subject_col)]
          : nullptr;

  const auto enabled = [&](Evidence e) {
    return enabled_mask[static_cast<size_t>(e)];
  };

  // Per target attribute: retrieve candidates from each enabled index,
  // compute full distance vectors and record every observed distance into
  // the per-attribute R_t distributions (Eq. 2).
  DistanceDistributions dists(n_cols);
  // (target_column, attribute_id) -> distance vector
  std::vector<std::vector<PairDistances>> per_table_rows(lake_->size());

  for (size_t c = 0; c < n_cols; ++c) {
    const AttributeSignatures& qsigs = result.target_sigs[c];
    const AttributeProfile& qprof = result.target_profiles[c];

    std::unordered_set<uint32_t> candidates;
    for (Evidence e : {Evidence::kName, Evidence::kValue, Evidence::kFormat,
                       Evidence::kEmbedding}) {
      if (!enabled(e)) continue;
      for (uint32_t id : indexes_.Lookup(e, qsigs, per_index_m)) {
        candidates.insert(id);
      }
    }
    // The distribution evidence has no index of its own (Section III-C);
    // when it is the only enabled evidence, numeric candidates are drawn
    // through the guard indexes (IN, IF).
    if (enabled(Evidence::kDistribution) && qprof.is_numeric) {
      for (Evidence e : {Evidence::kName, Evidence::kFormat}) {
        for (uint32_t id : indexes_.Lookup(e, qsigs, per_index_m)) {
          candidates.insert(id);
        }
      }
    }
    if (candidates.empty()) continue;

    PrecomputedGuards guards = BuildGuards(indexes_, qsigs, target_subject_sigs);

    for (uint32_t id : candidates) {
      const AttributeProfile& cand_prof = indexes_.profile(id);
      PairDistances row;
      row.target_column = static_cast<uint32_t>(c);
      row.attribute_id = id;
      for (Evidence e : {Evidence::kName, Evidence::kValue, Evidence::kFormat,
                         Evidence::kEmbedding}) {
        size_t t = static_cast<size_t>(e);
        row.d[t] = enabled(e) ? indexes_.EstimateDistance(e, qsigs, id) : 1.0;
      }
      if (enabled(Evidence::kDistribution)) {
        uint32_t src_subject = subject_attribute_id(cand_prof.ref.table);
        row.d[static_cast<size_t>(Evidence::kDistribution)] =
            ComputeDistributionDistanceFast(indexes_, qprof, id, guards, src_subject);
      }
      for (size_t t = 0; t < kNumEvidence; ++t) {
        dists.Observe(static_cast<uint32_t>(c), static_cast<Evidence>(t), row.d[t]);
      }
      per_table_rows[cand_prof.ref.table].push_back(row);
    }
  }
  dists.Finalize();

  // Evidence weights restricted to the enabled mask.
  EvidenceWeights weights = options_.weights;
  for (size_t t = 0; t < kNumEvidence; ++t) {
    if (!enabled_mask[t]) weights.w[t] = 0;
  }

  // Aggregate per candidate dataset (Eq. 1) and combine (Eq. 3).
  std::vector<TableMatch> matches;
  for (size_t ti = 0; ti < per_table_rows.size(); ++ti) {
    auto& rows = per_table_rows[ti];
    if (rows.empty()) continue;
    TableMatch m;
    m.table_index = static_cast<uint32_t>(ti);
    m.evidence_distances = AggregateDataset(rows, dists);
    m.distance = CombineDistances(m.evidence_distances, weights);
    // Record alignments for coverage/attribute-precision evaluation and for
    // Algorithm 3's "related to the target" condition.
    auto& aligns = result.candidate_alignments[m.table_index];
    for (const PairDistances& row : rows) {
      aligns.emplace_back(row.target_column, row.attribute_id);
    }
    m.pairs = std::move(rows);
    matches.push_back(std::move(m));
  }

  std::sort(matches.begin(), matches.end(), [](const TableMatch& a, const TableMatch& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.table_index < b.table_index;
  });
  if (matches.size() > k) matches.resize(k);
  result.ranked = std::move(matches);
  return result;
}

}  // namespace d3l::core

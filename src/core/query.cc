#include "core/query.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/hash.h"
#include "io/binary_io.h"

namespace d3l::core {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

constexpr uint32_t kSectionOptions = io::SectionId("OPTS");
constexpr uint32_t kSectionLake = io::SectionId("LAKE");
constexpr uint32_t kSectionIndexes = io::SectionId("INDX");
constexpr uint32_t kSectionEngine = io::SectionId("ENGN");
}  // namespace

void SaveOptions(io::Writer& w, const D3LOptions& o) {
  w.WriteU64(o.index.minhash_size);
  w.WriteDouble(o.index.lsh_threshold);
  w.WriteDouble(o.index.join_threshold);
  w.WriteU64(o.index.rp_bits);
  w.WriteU64(o.index.embedding_dim);
  w.WriteU64(o.index.forest.num_trees);
  w.WriteU64(o.index.forest.hashes_per_tree);
  w.WriteU64(o.index.seed);
  w.WriteU64(o.profile.qgram_q);
  w.WriteU64(o.profile.max_values);
  w.WriteU64(o.profile.max_numeric_sample);
  w.WriteU64(o.wem.dim);
  w.WriteU64(o.wem.min_ngram);
  w.WriteU64(o.wem.max_ngram);
  w.WriteU64(o.wem.num_buckets);
  w.WriteU64(o.wem.seed);
  for (double wt : o.weights.w) w.WriteDouble(wt);
  w.WriteU64(o.candidates_per_attribute);
  for (bool e : o.enabled) w.WriteBool(e);
  w.WriteU64(o.num_threads);
}

D3LOptions LoadOptions(io::Reader& r) {
  D3LOptions o;
  o.index.minhash_size = r.ReadU64();
  o.index.lsh_threshold = r.ReadDouble();
  o.index.join_threshold = r.ReadDouble();
  o.index.rp_bits = r.ReadU64();
  o.index.embedding_dim = r.ReadU64();
  o.index.forest.num_trees = r.ReadU64();
  o.index.forest.hashes_per_tree = r.ReadU64();
  o.index.seed = r.ReadU64();
  o.profile.qgram_q = r.ReadU64();
  o.profile.max_values = r.ReadU64();
  o.profile.max_numeric_sample = r.ReadU64();
  o.wem.dim = r.ReadU64();
  o.wem.min_ngram = r.ReadU64();
  o.wem.max_ngram = r.ReadU64();
  o.wem.num_buckets = r.ReadU64();
  o.wem.seed = r.ReadU64();
  for (double& wt : o.weights.w) wt = r.ReadDouble();
  o.candidates_per_attribute = r.ReadU64();
  for (size_t t = 0; t < kNumEvidence; ++t) o.enabled[t] = r.ReadBool();
  o.num_threads = r.ReadU64();
  return o;
}

void SaveQueryTarget(io::Writer& w, const QueryTarget& target) {
  w.WriteU64(target.profiles.size());
  for (size_t c = 0; c < target.profiles.size(); ++c) {
    target.profiles[c].Save(w);
    target.sigs[c].Save(w);
  }
  w.WriteI32(target.subject_col);
}

QueryTarget LoadQueryTarget(io::Reader& r) {
  QueryTarget target;
  const size_t n = r.ReadLength(1);
  target.profiles.reserve(n);
  target.sigs.reserve(n);
  for (size_t c = 0; c < n && r.status().ok(); ++c) {
    target.profiles.push_back(AttributeProfile::Load(r));
    target.sigs.push_back(AttributeSignatures::Load(r));
  }
  target.subject_col = r.ReadI32();
  if (r.status().ok() &&
      (target.subject_col < -1 ||
       target.subject_col >= static_cast<int>(target.profiles.size()))) {
    r.MarkCorrupt("query target subject column out of range");
  }
  return target;
}

void SaveSearchResult(io::Writer& w, const SearchResult& result) {
  w.WriteU64(result.ranked.size());
  for (const TableMatch& m : result.ranked) {
    w.WriteU32(m.table_index);
    w.WriteDouble(m.distance);
    for (double d : m.evidence_distances) w.WriteDouble(d);
    w.WriteU64(m.pairs.size());
    for (const PairDistances& p : m.pairs) {
      w.WriteU32(p.target_column);
      w.WriteU32(p.attribute_id);
      for (double d : p.d) w.WriteDouble(d);
    }
  }
  // The alignments live in an unordered_map; serialize in ascending table
  // order so byte-identical results produce byte-identical serializations.
  std::vector<uint32_t> tables;
  tables.reserve(result.candidate_alignments.size());
  for (const auto& [table, aligns] : result.candidate_alignments) {
    tables.push_back(table);
  }
  std::sort(tables.begin(), tables.end());
  w.WriteU64(tables.size());
  for (uint32_t table : tables) {
    const auto& aligns = result.candidate_alignments.at(table);
    w.WriteU32(table);
    w.WriteU64(aligns.size());
    for (const auto& [col, attr] : aligns) {
      w.WriteU32(col);
      w.WriteU32(attr);
    }
  }
  w.WriteU64(result.target_profiles.size());
  for (const AttributeProfile& p : result.target_profiles) p.Save(w);
  w.WriteU64(result.target_sigs.size());
  for (const AttributeSignatures& s : result.target_sigs) s.Save(w);
}

SearchResult LoadSearchResult(io::Reader& r) {
  SearchResult result;
  const size_t n_ranked = r.ReadLength(1);
  result.ranked.reserve(n_ranked);
  for (size_t i = 0; i < n_ranked && r.status().ok(); ++i) {
    TableMatch m;
    m.table_index = r.ReadU32();
    m.distance = r.ReadDouble();
    for (double& d : m.evidence_distances) d = r.ReadDouble();
    const size_t n_pairs = r.ReadLength(1);
    m.pairs.reserve(n_pairs);
    for (size_t p = 0; p < n_pairs && r.status().ok(); ++p) {
      PairDistances pd;
      pd.target_column = r.ReadU32();
      pd.attribute_id = r.ReadU32();
      for (double& d : pd.d) d = r.ReadDouble();
      m.pairs.push_back(pd);
    }
    result.ranked.push_back(std::move(m));
  }
  const size_t n_tables = r.ReadLength(1);
  for (size_t i = 0; i < n_tables && r.status().ok(); ++i) {
    const uint32_t table = r.ReadU32();
    const size_t n_aligns = r.ReadLength(sizeof(uint32_t) * 2);
    std::vector<std::pair<uint32_t, uint32_t>> aligns;
    aligns.reserve(n_aligns);
    for (size_t a = 0; a < n_aligns && r.status().ok(); ++a) {
      const uint32_t col = r.ReadU32();
      const uint32_t attr = r.ReadU32();
      aligns.emplace_back(col, attr);
    }
    result.candidate_alignments.emplace(table, std::move(aligns));
  }
  const size_t n_profiles = r.ReadLength(1);
  result.target_profiles.reserve(n_profiles);
  for (size_t i = 0; i < n_profiles && r.status().ok(); ++i) {
    result.target_profiles.push_back(AttributeProfile::Load(r));
  }
  const size_t n_sigs = r.ReadLength(1);
  result.target_sigs.reserve(n_sigs);
  for (size_t i = 0; i < n_sigs && r.status().ok(); ++i) {
    result.target_sigs.push_back(AttributeSignatures::Load(r));
  }
  return result;
}

uint64_t OptionsFingerprint(const D3LOptions& options, uint64_t seed) {
  D3LOptions canonical = options;
  canonical.num_threads = 0;  // build parallelism never changes results
  std::string bytes;
  io::Writer w;
  w.OpenBuffer(&bytes);
  w.BeginSection(kSectionOptions);
  SaveOptions(w, canonical);
  w.EndSection().CheckOK();
  w.Finish().CheckOK();
  return HashBytes(bytes.data(), bytes.size(), seed);
}

std::string CanonicalTargetBytes(const QueryTarget& target) {
  // Same invariant SearchTarget/ShardedEngine::Search reject with a Status;
  // a serializer returning bytes fails loudly instead (all build types —
  // a malformed target must never produce a plausible cache key).
  if (target.sigs.size() != target.profiles.size()) {
    std::fprintf(stderr,
                 "CanonicalTargetBytes: target has %zu profiles but %zu "
                 "signature sets\n",
                 target.profiles.size(), target.sigs.size());
    std::abort();
  }
  std::string bytes;
  io::Writer w;
  w.OpenBuffer(&bytes);
  w.BeginSection(io::SectionId("QTGT"));
  SaveQueryTarget(w, target);
  w.EndSection().CheckOK();
  w.Finish().CheckOK();
  return bytes;
}

D3LEngine::D3LEngine(D3LOptions options)
    : options_([&options] {
        options.wem.dim = options.index.embedding_dim;
        return options;
      }()),
      wem_(SharedSubwordModel(options_.wem)),
      indexes_(options_.index) {}

Status D3LEngine::IndexLake(const DataLake& lake) {
  if (lake_ != nullptr) return Status::InvalidArgument("IndexLake already called");
  lake_ = &lake;

  const size_t n_tables = lake.size();
  attr_ids_.resize(n_tables);
  subject_cols_.assign(n_tables, -1);

  // Phase 1: profile every attribute (data pre-processing; the dominant
  // indexing cost per Experiment 4). Parallel across tables — profiles are
  // pure functions of the table contents, so the result is deterministic.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<AttributeProfile>> profiles(n_tables);
  size_t n_threads = options_.num_threads > 0
                         ? options_.num_threads
                         : std::max<size_t>(1, std::thread::hardware_concurrency());
  n_threads = std::min(n_threads, std::max<size_t>(1, n_tables));
  {
    std::vector<std::thread> workers;
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < n_threads; ++w) {
      workers.emplace_back([&] {
        CachingEmbedder cache(wem_.get());
        for (;;) {
          size_t ti = next.fetch_add(1);
          if (ti >= n_tables) break;
          const Table& t = lake.table(ti);
          profiles[ti].reserve(t.num_columns());
          for (size_t c = 0; c < t.num_columns(); ++c) {
            AttributeProfile p = BuildProfile(t, c, *wem_, &cache, options_.profile);
            p.ref = AttributeRef{static_cast<uint32_t>(ti), static_cast<uint32_t>(c)};
            profiles[ti].push_back(std::move(p));
          }
          subject_cols_[ti] = detector_.Detect(t);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  build_stats_.profile_seconds = SecondsSince(t0);

  // Phase 2: signature computation + LSH insertion (Algorithm 1).
  t0 = std::chrono::steady_clock::now();
  for (size_t ti = 0; ti < n_tables; ++ti) {
    attr_ids_[ti].reserve(profiles[ti].size());
    for (AttributeProfile& p : profiles[ti]) {
      attr_ids_[ti].push_back(indexes_.Insert(std::move(p)));
    }
  }
  indexes_.Finalize();
  build_stats_.insert_seconds = SecondsSince(t0);
  build_stats_.num_attributes = indexes_.num_attributes();
  build_stats_.index_bytes = indexes_.MemoryUsage();
  return Status::OK();
}

Status D3LEngine::SaveSnapshot(const std::string& path) const {
  if (lake_ == nullptr) {
    return Status::InvalidArgument("SaveSnapshot requires a built engine (call IndexLake)");
  }
  io::Writer w;
  D3L_RETURN_NOT_OK(w.Open(path, kSnapshotMagic, kSnapshotVersion));

  w.BeginSection(kSectionOptions);
  SaveOptions(w, options_);
  D3L_RETURN_NOT_OK(w.EndSection());

  w.BeginSection(kSectionLake);
  lake_->SaveMetadata(w);
  D3L_RETURN_NOT_OK(w.EndSection());

  w.BeginSection(kSectionIndexes);
  indexes_.Save(w);
  D3L_RETURN_NOT_OK(w.EndSection());

  w.BeginSection(kSectionEngine);
  w.WriteU64(attr_ids_.size());
  for (const std::vector<uint32_t>& ids : attr_ids_) {
    w.WriteU64(ids.size());
    for (uint32_t id : ids) w.WriteU32(id);
  }
  w.WriteU64(subject_cols_.size());
  for (int col : subject_cols_) w.WriteI32(col);
  w.WriteDouble(build_stats_.profile_seconds);
  w.WriteDouble(build_stats_.insert_seconds);
  w.WriteU64(build_stats_.num_attributes);
  w.WriteU64(build_stats_.index_bytes);
  D3L_RETURN_NOT_OK(w.EndSection());

  return w.Finish();
}

Result<std::unique_ptr<D3LEngine>> D3LEngine::LoadSnapshot(const std::string& path,
                                                           DataLake* lake_metadata,
                                                           SnapshotLoadMode mode) {
  if (lake_metadata == nullptr || lake_metadata->size() != 0) {
    return Status::InvalidArgument("LoadSnapshot requires an empty destination lake");
  }
  const auto t_open = std::chrono::steady_clock::now();
  io::Reader r;
  uint32_t version = 0;
  D3L_RETURN_NOT_OK(r.Open(path, kSnapshotMagic, kSnapshotMinReadVersion,
                           kSnapshotVersion, &version,
                           mode == SnapshotLoadMode::kMapped ? io::ReadMode::kMapped
                                                             : io::ReadMode::kBuffered));
  // v1 predates the flat forest arrays; its forests always deserialize via
  // the per-entry copy path, mapped or not.
  const ForestWireFormat forest_format =
      version >= 2 ? ForestWireFormat::kFlat : ForestWireFormat::kPerEntry;

  D3L_RETURN_NOT_OK(r.OpenSection(kSectionOptions));
  D3LOptions options = LoadOptions(r);
  D3L_RETURN_NOT_OK(r.status());
  D3L_RETURN_NOT_OK(r.EndSection());
  // The engine constructor materializes wem.num_buckets * wem.dim bucket
  // vectors; bound them before allocating (checksummed files cannot trip
  // this, but it guards format drift between Save and Load).
  if (options.wem.dim == 0 || options.wem.dim > (1u << 16) ||
      options.wem.num_buckets == 0 || options.wem.num_buckets > (1u << 24)) {
    return Status::IOError("corrupt file: implausible embedding-model options");
  }

  auto engine = std::unique_ptr<D3LEngine>(new D3LEngine(options));

  D3L_RETURN_NOT_OK(r.OpenSection(kSectionLake));
  D3L_RETURN_NOT_OK(lake_metadata->LoadMetadata(r));
  D3L_RETURN_NOT_OK(r.EndSection());

  D3L_RETURN_NOT_OK(r.OpenSection(kSectionIndexes));
  const auto t_index = std::chrono::steady_clock::now();
  D3L_ASSIGN_OR_RETURN(engine->indexes_, D3LIndexes::Load(r, forest_format));
  engine->load_stats_.index_parse_seconds = SecondsSince(t_index);
  engine->load_stats_.forest_parse_seconds =
      engine->indexes_.forest_parse_seconds();
  D3L_RETURN_NOT_OK(r.EndSection());
  // The index options live both in OPTS (engine construction) and inside
  // INDX (self-contained D3LIndexes::Save). If the copies disagree, the
  // engine would sign query attributes with parameters the loaded index
  // was not built with — refuse rather than serve silently wrong results.
  {
    const IndexOptions& a = options.index;
    const IndexOptions& b = engine->indexes_.options();
    if (a.minhash_size != b.minhash_size || a.lsh_threshold != b.lsh_threshold ||
        a.join_threshold != b.join_threshold || a.rp_bits != b.rp_bits ||
        a.embedding_dim != b.embedding_dim ||
        a.forest.num_trees != b.forest.num_trees ||
        a.forest.hashes_per_tree != b.forest.hashes_per_tree || a.seed != b.seed) {
      return Status::IOError(
          "corrupt file: engine and index sections disagree on index options");
    }
  }

  D3L_RETURN_NOT_OK(r.OpenSection(kSectionEngine));
  size_t n_tables = r.ReadLength(sizeof(uint64_t));
  engine->attr_ids_.resize(n_tables);
  for (size_t ti = 0; ti < n_tables && r.status().ok(); ++ti) {
    size_t n_cols = r.ReadLength(sizeof(uint32_t));
    engine->attr_ids_[ti].reserve(n_cols);
    for (size_t c = 0; c < n_cols; ++c) engine->attr_ids_[ti].push_back(r.ReadU32());
  }
  size_t n_subjects = r.ReadLength(sizeof(int32_t));
  engine->subject_cols_.reserve(n_subjects);
  for (size_t ti = 0; ti < n_subjects && r.status().ok(); ++ti) {
    engine->subject_cols_.push_back(r.ReadI32());
  }
  engine->build_stats_.profile_seconds = r.ReadDouble();
  engine->build_stats_.insert_seconds = r.ReadDouble();
  engine->build_stats_.num_attributes = r.ReadU64();
  engine->build_stats_.index_bytes = r.ReadU64();
  D3L_RETURN_NOT_OK(r.status());
  D3L_RETURN_NOT_OK(r.EndSection());

  // Cross-section consistency: mappings must agree with the lake metadata
  // and the attribute registry.
  if (n_tables != lake_metadata->size() || n_subjects != n_tables) {
    return Status::IOError("corrupt file: table mappings disagree with lake metadata");
  }
  size_t total_attrs = 0;
  for (size_t ti = 0; ti < n_tables; ++ti) {
    total_attrs += engine->attr_ids_[ti].size();
    if (engine->attr_ids_[ti].size() != lake_metadata->table(ti).num_columns()) {
      return Status::IOError("corrupt file: attribute mappings disagree with schemas");
    }
    const int subject = engine->subject_cols_[ti];
    if (subject >= 0 &&
        static_cast<size_t>(subject) >= lake_metadata->table(ti).num_columns()) {
      return Status::IOError("corrupt file: subject column out of range");
    }
    for (uint32_t id : engine->attr_ids_[ti]) {
      if (id >= engine->indexes_.num_attributes()) {
        return Status::IOError("corrupt file: attribute id out of range");
      }
    }
  }
  if (total_attrs != engine->indexes_.num_attributes()) {
    return Status::IOError("corrupt file: attribute count disagrees with registry");
  }

  engine->lake_ = lake_metadata;
  engine->load_stats_.format_version = version;
  // "Mapped" means zero-copy actually happened: a v1 file may well be
  // mmap-backed inside the Reader, but its per-entry layout still decodes
  // into owned arrays, so it does not count.
  engine->load_stats_.mapped =
      r.mapped() && forest_format == ForestWireFormat::kFlat;
  engine->load_stats_.pad_bytes = r.pad_bytes();
  engine->load_stats_.open_seconds = SecondsSince(t_open);
  return engine;
}

int D3LEngine::subject_column(uint32_t table_index) const {
  return subject_cols_[table_index];
}

uint32_t D3LEngine::attribute_id(uint32_t table_index, uint32_t column) const {
  return attr_ids_[table_index][column];
}

uint32_t D3LEngine::subject_attribute_id(uint32_t table_index) const {
  int col = subject_cols_[table_index];
  if (col < 0) return UINT32_MAX;
  return attr_ids_[table_index][static_cast<size_t>(col)];
}

namespace {
// Which evidence indexes candidate retrieval consults for one target
// column: the enabled forests, plus the Algorithm-2 numeric fallback — the
// distribution evidence has no index of its own (Section III-C), so a
// numeric column draws candidates through the guard indexes (IN, IF).
std::array<bool, kNumEvidence> ConsultedIndexes(
    const std::array<bool, kNumEvidence>& enabled_mask, bool column_is_numeric) {
  std::array<bool, kNumEvidence> consulted = enabled_mask;
  consulted[static_cast<size_t>(Evidence::kDistribution)] = false;
  if (enabled_mask[static_cast<size_t>(Evidence::kDistribution)] && column_is_numeric) {
    consulted[static_cast<size_t>(Evidence::kName)] = true;
    consulted[static_cast<size_t>(Evidence::kFormat)] = true;
  }
  return consulted;
}
}  // namespace

void CandidateDepthCounts::Add(const CandidateDepthCounts& other) {
  assert(counts.size() == other.counts.size());
  for (size_t c = 0; c < counts.size(); ++c) {
    for (size_t e = 0; e < kNumEvidence; ++e) {
      assert(counts[c][e].size() == other.counts[c][e].size());
      for (size_t d = 0; d < counts[c][e].size(); ++d) {
        counts[c][e][d] += other.counts[c][e][d];
      }
    }
  }
}

QueryTarget D3LEngine::ProfileTarget(const Table& target) const {
  QueryTarget qt;
  const size_t n_cols = target.num_columns();
  CachingEmbedder cache(wem_.get());
  qt.profiles.reserve(n_cols);
  qt.sigs.reserve(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    AttributeProfile p = BuildProfile(target, c, *wem_, &cache, options_.profile);
    qt.sigs.push_back(indexes_.Sign(p));
    qt.profiles.push_back(std::move(p));
  }
  qt.subject_col = detector_.Detect(target);
  return qt;
}

CandidateDepthCounts D3LEngine::CollectDepthCounts(
    const QueryTarget& target, const std::array<bool, kNumEvidence>& enabled_mask,
    size_t budget) const {
  CandidateDepthCounts out;
  out.counts.resize(target.sigs.size());
  for (size_t c = 0; c < target.sigs.size(); ++c) {
    const std::array<bool, kNumEvidence> consulted =
        ConsultedIndexes(enabled_mask, target.profiles[c].is_numeric);
    for (size_t e = 0; e < kNumEvidence; ++e) {
      if (!consulted[e]) continue;
      out.counts[c][e] =
          indexes_.LookupDepthCounts(static_cast<Evidence>(e), target.sigs[c], budget);
    }
  }
  return out;
}

CandidateStopDepths D3LEngine::ResolveStopDepths(const CandidateDepthCounts& counts,
                                                 size_t m) {
  CandidateStopDepths stops;
  stops.depths.resize(counts.counts.size());
  for (size_t c = 0; c < counts.counts.size(); ++c) {
    for (size_t e = 0; e < kNumEvidence; ++e) {
      const std::vector<size_t>& v = counts.counts[c][e];
      stops.depths[c][e] = v.empty() ? 0 : LshForest::StopDepth(v, m);
    }
  }
  return stops;
}

CandidateLists D3LEngine::CollectCandidates(const QueryTarget& target,
                                            const CandidateStopDepths& stops,
                                            size_t m) const {
  CandidateLists lists;
  lists.ids.resize(target.sigs.size());
  for (size_t c = 0; c < target.sigs.size(); ++c) {
    for (size_t e = 0; e < kNumEvidence; ++e) {
      std::vector<uint32_t> ids = indexes_.LookupAtDepth(
          static_cast<Evidence>(e), target.sigs[c], stops.depths[c][e]);
      // Canonical per-index truncation: the m smallest ids. Keeps the work
      // per index bounded by m even when one prefix bucket is enormous.
      std::sort(ids.begin(), ids.end());
      if (ids.size() > m) ids.resize(m);
      lists.ids[c][e] = std::move(ids);
    }
  }
  return lists;
}

std::vector<std::vector<uint32_t>> D3LEngine::UnionCandidates(
    const CandidateLists& lists) {
  std::vector<std::vector<uint32_t>> per_column(lists.ids.size());
  for (size_t c = 0; c < lists.ids.size(); ++c) {
    std::vector<uint32_t>& candidates = per_column[c];
    for (size_t e = 0; e < kNumEvidence; ++e) {
      candidates.insert(candidates.end(), lists.ids[c][e].begin(),
                        lists.ids[c][e].end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  return per_column;
}

std::vector<PairDistances> D3LEngine::ScoreCandidates(
    const QueryTarget& target,
    const std::vector<std::vector<uint32_t>>& per_column_candidates,
    const std::array<bool, kNumEvidence>& enabled_mask) const {
  const auto enabled = [&](Evidence e) {
    return enabled_mask[static_cast<size_t>(e)];
  };
  const AttributeSignatures* target_subject_sigs =
      target.subject_col >= 0 ? &target.sigs[static_cast<size_t>(target.subject_col)]
                              : nullptr;

  std::vector<PairDistances> rows;
  for (size_t c = 0; c < target.sigs.size(); ++c) {
    const AttributeSignatures& qsigs = target.sigs[c];
    const AttributeProfile& qprof = target.profiles[c];
    const std::vector<uint32_t>& candidates = per_column_candidates[c];
    if (candidates.empty()) continue;

    PrecomputedGuards guards = BuildGuards(indexes_, qsigs, target_subject_sigs);

    for (uint32_t id : candidates) {
      const AttributeProfile& cand_prof = indexes_.profile(id);
      PairDistances row;
      row.target_column = static_cast<uint32_t>(c);
      row.attribute_id = id;
      for (Evidence e : {Evidence::kName, Evidence::kValue, Evidence::kFormat,
                         Evidence::kEmbedding}) {
        size_t t = static_cast<size_t>(e);
        row.d[t] = enabled(e) ? indexes_.EstimateDistance(e, qsigs, id) : 1.0;
      }
      if (enabled(Evidence::kDistribution)) {
        uint32_t src_subject = subject_attribute_id(cand_prof.ref.table);
        row.d[static_cast<size_t>(Evidence::kDistribution)] =
            ComputeDistributionDistanceFast(indexes_, qprof, id, guards, src_subject);
      }
      rows.push_back(row);
    }
  }
  return rows;
}

SearchResult D3LEngine::RankRows(std::vector<PairDistances> rows,
                                 size_t num_target_columns, size_t num_tables,
                                 const std::function<uint32_t(uint32_t)>& table_of,
                                 const EvidenceWeights& weights, size_t k) {
  // Canonical row order: (target column, attribute id). Rows gathered from
  // shards arrive interleaved; re-sorting makes the distribution samples,
  // the per-table aggregation sums and the final ranking independent of
  // which engine produced which row.
  std::sort(rows.begin(), rows.end(),
            [](const PairDistances& a, const PairDistances& b) {
              if (a.target_column != b.target_column) {
                return a.target_column < b.target_column;
              }
              return a.attribute_id < b.attribute_id;
            });

  SearchResult result;
  // Rebuild the per-attribute R_t distributions (Eq. 2) from every
  // observed distance, then bucket the rows per candidate dataset.
  DistanceDistributions dists(num_target_columns);
  std::vector<std::vector<PairDistances>> per_table_rows(num_tables);
  for (const PairDistances& row : rows) {
    for (size_t t = 0; t < kNumEvidence; ++t) {
      dists.Observe(row.target_column, static_cast<Evidence>(t), row.d[t]);
    }
    per_table_rows[table_of(row.attribute_id)].push_back(row);
  }
  dists.Finalize();

  // Aggregate per candidate dataset (Eq. 1) and combine (Eq. 3).
  std::vector<TableMatch> matches;
  for (size_t ti = 0; ti < per_table_rows.size(); ++ti) {
    auto& table_rows = per_table_rows[ti];
    if (table_rows.empty()) continue;
    TableMatch m;
    m.table_index = static_cast<uint32_t>(ti);
    m.evidence_distances = AggregateDataset(table_rows, dists);
    m.distance = CombineDistances(m.evidence_distances, weights);
    // Record alignments for coverage/attribute-precision evaluation and for
    // Algorithm 3's "related to the target" condition.
    auto& aligns = result.candidate_alignments[m.table_index];
    for (const PairDistances& row : table_rows) {
      aligns.emplace_back(row.target_column, row.attribute_id);
    }
    m.pairs = std::move(table_rows);
    matches.push_back(std::move(m));
  }

  std::sort(matches.begin(), matches.end(), [](const TableMatch& a, const TableMatch& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.table_index < b.table_index;
  });
  if (matches.size() > k) matches.resize(k);
  result.ranked = std::move(matches);
  return result;
}

Result<SearchResult> D3LEngine::Search(const Table& target, size_t k) const {
  return Search(target, k, options_.enabled);
}

Result<SearchResult> D3LEngine::Search(
    const Table& target, size_t k,
    const std::array<bool, kNumEvidence>& enabled_mask) const {
  if (lake_ == nullptr) return Status::InvalidArgument("IndexLake not called");
  if (target.num_columns() == 0) {
    return Status::InvalidArgument("target has no columns");
  }
  return SearchTarget(ProfileTarget(target), k, enabled_mask);
}

Result<SearchResult> D3LEngine::SearchTarget(
    QueryTarget target, size_t k,
    const std::array<bool, kNumEvidence>& enabled_mask) const {
  if (lake_ == nullptr) return Status::InvalidArgument("IndexLake not called");
  if (target.sigs.empty() || target.sigs.size() != target.profiles.size()) {
    return Status::InvalidArgument("target is not a profiled table");
  }
  const size_t per_index_m = std::max(options_.candidates_per_attribute, k);

  CandidateDepthCounts counts = CollectDepthCounts(target, enabled_mask, per_index_m);
  CandidateStopDepths stops = ResolveStopDepths(counts, per_index_m);
  CandidateLists lists = CollectCandidates(target, stops, per_index_m);
  std::vector<PairDistances> rows =
      ScoreCandidates(target, UnionCandidates(lists), enabled_mask);

  // Evidence weights restricted to the enabled mask.
  EvidenceWeights weights = options_.weights;
  for (size_t t = 0; t < kNumEvidence; ++t) {
    if (!enabled_mask[t]) weights.w[t] = 0;
  }

  SearchResult result = RankRows(
      std::move(rows), target.sigs.size(), lake_->size(),
      [this](uint32_t id) { return indexes_.profile(id).ref.table; }, weights, k);
  result.target_profiles = std::move(target.profiles);
  result.target_sigs = std::move(target.sigs);
  return result;
}

Result<D3LEngine::SnapshotInfo> D3LEngine::ReadSnapshotInfo(const std::string& path) {
  io::Reader r;
  uint32_t version = 0;
  D3L_RETURN_NOT_OK(
      r.Open(path, kSnapshotMagic, kSnapshotMinReadVersion, kSnapshotVersion, &version));

  SnapshotInfo info;
  info.format_version = version;
  info.mappable = version >= 2;
  D3L_RETURN_NOT_OK(r.OpenSection(kSectionOptions));
  info.options = LoadOptions(r);
  D3L_RETURN_NOT_OK(r.status());
  D3L_RETURN_NOT_OK(r.EndSection());

  // Schema metadata only; the INDX/ENGN sections are never read, which is
  // the whole point of this entry (cheap inspection of large snapshots).
  DataLake lake_metadata;
  D3L_RETURN_NOT_OK(r.OpenSection(kSectionLake));
  D3L_RETURN_NOT_OK(lake_metadata.LoadMetadata(r));
  D3L_RETURN_NOT_OK(r.EndSection());
  info.num_tables = lake_metadata.size();
  for (size_t t = 0; t < lake_metadata.size(); ++t) {
    info.num_attributes += lake_metadata.table(t).num_columns();
  }
  return info;
}

}  // namespace d3l::core

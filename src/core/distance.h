// Pairwise attribute distances, including the guarded D-relatedness
// computation of Algorithm 2.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/evidence.h"
#include "core/indexes.h"

namespace d3l::core {

/// \brief Inputs to Algorithm 2 that depend on the query side.
struct DistributionGuardContext {
  /// Signatures of the *subject attribute* of the target table.
  const AttributeSignatures* target_subject = nullptr;
  /// Attribute id of the subject attribute of the candidate's table
  /// (UINT32_MAX when the table has none).
  uint32_t source_subject_id = UINT32_MAX;
};

/// \brief Computes DD(a, a') per Algorithm 2.
///
/// Returns KS over the two numeric samples if (i) the subject attributes of
/// the two tables are related under any index (I*), or (ii) a' is in
/// IN.lookup(a), or (iii) a' is in IF.lookup(a); returns 1 otherwise.
/// Both attributes must be numeric; returns 1 if either is not.
double ComputeDistributionDistance(const D3LIndexes& indexes,
                                   const AttributeProfile& target_profile,
                                   const AttributeSignatures& target_sigs,
                                   uint32_t candidate_id,
                                   const DistributionGuardContext& guard);

/// \brief Full 5-way distance vector between a target attribute (profile +
/// signatures) and an indexed attribute. Missing evidence maps to 1.
DistanceVector ComputeDistances(const D3LIndexes& indexes,
                                const AttributeProfile& target_profile,
                                const AttributeSignatures& target_sigs,
                                uint32_t candidate_id,
                                const DistributionGuardContext& guard);

/// \brief Precomputed Algorithm-2 guard sets, shared across the candidates
/// of one target attribute (avoids re-hashing the query per candidate).
struct PrecomputedGuards {
  /// I* threshold hits of the *target table's subject attribute*.
  std::unordered_set<uint32_t> target_subject_istar;
  /// IN / IF threshold hits of the target attribute itself.
  std::unordered_set<uint32_t> name_hits;
  std::unordered_set<uint32_t> format_hits;
};

/// \brief Builds the guard sets for one target attribute.
/// \param target_subject signatures of the target table's subject attribute
///        (nullptr if the target has none).
PrecomputedGuards BuildGuards(const D3LIndexes& indexes,
                              const AttributeSignatures& target_sigs,
                              const AttributeSignatures* target_subject);

/// \brief Algorithm 2 with precomputed guard sets. `source_subject_id` is
/// the attribute id of the candidate table's subject attribute (UINT32_MAX
/// if none).
double ComputeDistributionDistanceFast(const D3LIndexes& indexes,
                                       const AttributeProfile& target_profile,
                                       uint32_t candidate_id,
                                       const PrecomputedGuards& guards,
                                       uint32_t source_subject_id);

}  // namespace d3l::core

// The five evidence types of D3L (Section III-A) and the distance-vector
// types shared across the core.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace d3l::core {

/// \brief D3L's relatedness evidence types (Section III-A).
enum class Evidence : uint8_t {
  kName = 0,          ///< N: q-grams of the attribute name
  kValue = 1,         ///< V: informative tokens of the extent
  kFormat = 2,        ///< F: format-describing regex strings
  kEmbedding = 3,     ///< E: word-embedding vector of frequent tokens
  kDistribution = 4,  ///< D: numeric domain distribution (KS statistic)
};

inline constexpr size_t kNumEvidence = 5;

inline constexpr std::array<Evidence, kNumEvidence> kAllEvidence = {
    Evidence::kName, Evidence::kValue, Evidence::kFormat, Evidence::kEmbedding,
    Evidence::kDistribution};

inline const char* EvidenceName(Evidence e) {
  switch (e) {
    case Evidence::kName:
      return "N";
    case Evidence::kValue:
      return "V";
    case Evidence::kFormat:
      return "F";
    case Evidence::kEmbedding:
      return "E";
    case Evidence::kDistribution:
      return "D";
  }
  return "?";
}

/// \brief A 5-dimensional distance vector [DN, DV, DF, DE, DD]; every
/// component lies in [0, 1] with 1 = maximally distant (the paper's value
/// for missing evidence).
using DistanceVector = std::array<double, kNumEvidence>;

/// \brief A maximally-distant vector (all ones).
inline DistanceVector MaxDistances() { return {1.0, 1.0, 1.0, 1.0, 1.0}; }

/// \brief Globally unique attribute identifier within an indexed lake.
struct AttributeRef {
  uint32_t table = 0;   ///< index of the table in the lake
  uint32_t column = 0;  ///< index of the column within the table

  bool operator==(const AttributeRef&) const = default;
};

}  // namespace d3l::core

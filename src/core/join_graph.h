// Relatedness through join paths (Section IV).
//
// Two datasets are SA-joinable iff (i) there is IV evidence that two of
// their attributes' tsets overlap, and (ii) at least one of the two
// attributes is a subject attribute. The SA-join graph has the lake's
// tables as nodes and SA-joinability edges; Algorithm 3 walks it depth-
// first from each top-k table, collecting paths through non-top-k tables
// that the indexes relate to the target.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/query.h"

namespace d3l::core {

struct JoinGraphOptions {
  /// Maximum number of tables on a path (Algorithm 3 is unbounded; paths in
  /// open-data lakes are short, and the cap bounds DFS cost).
  size_t max_path_length = 4;
  /// Cap on the number of paths collected per start table.
  size_t max_paths_per_start = 512;
};

/// \brief An SA-joinability edge: `from`'s column joins `to`'s column; at
/// least one side is its table's subject attribute.
struct JoinEdge {
  uint32_t from_table = 0;
  uint32_t from_column = 0;
  uint32_t to_table = 0;
  uint32_t to_column = 0;
  /// Estimated overlap coefficient ov(T(a), T(a')) derived from the MinHash
  /// Jaccard estimate and the tset sizes (Section IV's bound).
  double overlap_estimate = 0;
};

/// \brief The SA-join graph G_S = (S, I) over an indexed lake.
class SaJoinGraph {
 public:
  /// Builds the graph from the engine's join-threshold IV index and
  /// detected subject attributes. Candidate pairs whose estimated overlap
  /// coefficient falls below `min_overlap` are dropped (Section IV's
  /// containment semantics: partial inclusion dependencies).
  static SaJoinGraph Build(const D3LEngine& engine, double min_overlap = 0.6);

  size_t num_tables() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Outgoing edges of a table (the graph is stored symmetrically).
  const std::vector<JoinEdge>& neighbours(uint32_t table) const {
    return adjacency_[table];
  }

  bool HasEdge(uint32_t a, uint32_t b) const;

 private:
  std::vector<std::vector<JoinEdge>> adjacency_;
  size_t num_edges_ = 0;
};

/// \brief A join path rooted at a top-k table.
struct JoinPath {
  std::vector<uint32_t> tables;  ///< tables[0] is the start (top-k) table
  std::vector<JoinEdge> edges;   ///< edges[i] joins tables[i] to tables[i+1]
};

/// \brief Algorithm 3: DFS join-path discovery from one start table.
///
/// A path is admissible iff every node after the start is (i) not in the
/// top-k, (ii) not already on the path (acyclic), and (iii) related to the
/// target under at least one index — callers pass the candidate-table set
/// of a Search as `related_to_target`.
std::vector<JoinPath> FindJoinPaths(const SaJoinGraph& graph, uint32_t start,
                                    const std::unordered_set<uint32_t>& top_k,
                                    const std::unordered_set<uint32_t>& related_to_target,
                                    const JoinGraphOptions& options = {});

/// \brief Convenience: join paths for every table of a ranked result.
std::vector<JoinPath> FindAllJoinPaths(const SaJoinGraph& graph,
                                       const SearchResult& result,
                                       const JoinGraphOptions& options = {});

}  // namespace d3l::core

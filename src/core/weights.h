// Learning the Eq. 3 evidence weights (Section III-D).
//
// Relatedness discovery is construed as binary classification: pairs
// (T, S) drawn from a benchmark with ground truth are featurized by their
// five Eq. 1 aggregated distances and labelled related/unrelated; a
// logistic-regression classifier is fit by coordinate descent, and the
// magnitudes of its coefficients become the Eq. 3 weights.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "ml/logistic.h"

namespace d3l::core {

struct WeightLearnOptions {
  /// Candidates per target used to harvest training pairs.
  size_t candidates_per_target = 80;
  LogisticOptions logistic;
};

/// \brief Output of the learning procedure.
struct LearnedWeights {
  EvidenceWeights weights;  ///< |coefficients|, normalized to sum to 1
  LogisticModel model;      ///< the underlying classifier
  double train_accuracy = 0;
  size_t num_pairs = 0;
};

/// \brief Runs the Section III-D procedure end-to-end on an indexed lake.
///
/// For each target table (drawn from the lake, as the paper draws targets
/// from the benchmark), a search collects candidate datasets and their
/// Eq. 1 distance vectors; `related(target_table, candidate_table)` labels
/// each pair from ground truth. Requires at least one example per class.
Result<LearnedWeights> LearnEvidenceWeights(
    const D3LEngine& engine, const std::vector<uint32_t>& target_tables,
    const std::function<bool(uint32_t, uint32_t)>& related,
    const WeightLearnOptions& options = {});

}  // namespace d3l::core

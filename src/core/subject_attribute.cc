#include "core/subject_attribute.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace d3l::core {

std::vector<double> SubjectAttributeFeatures(const Table& table, size_t col) {
  const Column& c = table.column(col);
  const double n_cols = static_cast<double>(std::max<size_t>(table.num_columns(), 1));
  const double n_rows = static_cast<double>(std::max<size_t>(table.num_rows(), 1));

  double position = 1.0 - static_cast<double>(col) / n_cols;
  double distinct_ratio = static_cast<double>(c.distinct_count()) / n_rows;
  double non_null = 1.0 - static_cast<double>(c.null_count()) / n_rows;
  double textiness = c.type() == ColumnType::kString ? 1.0 : 0.0;

  // Mean token count, squashed: single-word ids ~0.33, 2-word names ~0.5.
  double tokens = 0;
  size_t counted = 0;
  for (size_t r = 0; r < c.size() && counted < 64; ++r) {
    if (IsNullCell(c.cell(r))) continue;
    tokens += static_cast<double>(Tokenize(c.cell(r)).size());
    ++counted;
  }
  double mean_tokens = counted > 0 ? tokens / static_cast<double>(counted) : 0;
  double tokenness = mean_tokens / (mean_tokens + 2.0);

  return {position, distinct_ratio, non_null, textiness, tokenness};
}

LogisticModel SubjectAttributeDetector::DefaultModel() {
  // Learned on generator-labelled tables (realish_gen, 400 tables); the
  // signs match the Venetis intuition: leftmost, distinct, non-null,
  // textual columns score high.
  return LogisticModel({3.4, 2.6, 1.2, 2.1, 0.8}, -5.1);
}

double SubjectAttributeDetector::Score(const Table& table, size_t col) const {
  return model_.PredictProbability(SubjectAttributeFeatures(table, col));
}

int SubjectAttributeDetector::Detect(const Table& table) const {
  if (table.num_columns() == 0) return -1;
  int best_text = -1;
  double best_text_score = -1;
  int best_any = -1;
  double best_any_score = -1;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    double s = Score(table, c);
    if (s > best_any_score) {
      best_any_score = s;
      best_any = static_cast<int>(c);
    }
    if (table.column(c).type() == ColumnType::kString && s > best_text_score) {
      best_text_score = s;
      best_text = static_cast<int>(c);
    }
  }
  // The paper assumes the subject attribute has non-numeric values.
  return best_text >= 0 ? best_text : best_any;
}

Result<SubjectAttributeDetector> SubjectAttributeDetector::Train(
    const std::vector<const Table*>& tables, const std::vector<size_t>& subject_cols) {
  if (tables.size() != subject_cols.size() || tables.empty()) {
    return Status::InvalidArgument("tables/labels size mismatch or empty");
  }
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  for (size_t i = 0; i < tables.size(); ++i) {
    const Table& t = *tables[i];
    if (subject_cols[i] >= t.num_columns()) {
      return Status::InvalidArgument("subject column out of range");
    }
    for (size_t c = 0; c < t.num_columns(); ++c) {
      xs.push_back(SubjectAttributeFeatures(t, c));
      ys.push_back(c == subject_cols[i] ? 1 : 0);
    }
  }
  D3L_ASSIGN_OR_RETURN(LogisticModel model, TrainLogistic(xs, ys));
  return SubjectAttributeDetector(std::move(model));
}

}  // namespace d3l::core

// The D3L engine: index a data lake, then answer top-k relatedness queries
// for a target table (Section III-D).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/aggregation.h"
#include "io/binary_io.h"
#include "core/attribute_profile.h"
#include "core/distance.h"
#include "core/indexes.h"
#include "core/subject_attribute.h"
#include "embedding/subword_model.h"
#include "table/lake.h"

namespace d3l::core {

// When adding a field here, also write it in SaveOptions/LoadOptions
// (query.cc): that serialization is both the snapshot format and the byte
// stream behind OptionsFingerprint, which serving uses for shard-uniformity
// checks and result-cache keys — an unserialized field cannot reach either.
struct D3LOptions {
  IndexOptions index;
  ProfileOptions profile;
  SubwordModelOptions wem;
  EvidenceWeights weights = EvidenceWeights::Default();
  /// Candidate budget per target attribute per index: each LSH Forest is
  /// descended to the depth at which this many distinct candidates match,
  /// and every candidate at that depth is retrieved (then exactly re-ranked
  /// from signatures). Ties at the stop depth can return slightly more.
  size_t candidates_per_attribute = 64;
  /// Evidence-type mask, for the individual-evidence ablation (Fig. 3):
  /// disabled types are neither looked up nor weighted in Eq. 3.
  std::array<bool, kNumEvidence> enabled = {true, true, true, true, true};
  /// Worker threads for lake profiling (0 = hardware concurrency).
  size_t num_threads = 0;
};

/// \brief One ranked candidate dataset.
struct TableMatch {
  uint32_t table_index = 0;
  double distance = 1.0;                    ///< Eq. 3 combined distance
  DistanceVector evidence_distances;        ///< Eq. 1 per-evidence aggregates
  std::vector<PairDistances> pairs;         ///< the Table-I rows for this dataset
};

/// \brief Result of a top-k search.
struct SearchResult {
  std::vector<TableMatch> ranked;  ///< ascending distance, at most k entries

  /// Every candidate table touched by any index lookup, with its attribute
  /// alignments (target column -> lake attribute id). Superset of `ranked`;
  /// feeds Algorithm 3's relatedness condition and the coverage metrics.
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>
      candidate_alignments;

  /// Profiles/signatures of the target columns (reused by join discovery).
  std::vector<AttributeProfile> target_profiles;
  std::vector<AttributeSignatures> target_sigs;
};

/// \brief Timing/size metrics of an IndexLake call.
struct IndexBuildStats {
  double profile_seconds = 0;  ///< feature extraction (dominant, per paper)
  double insert_seconds = 0;   ///< signature + LSH insertion
  size_t num_attributes = 0;
  size_t index_bytes = 0;      ///< MemoryUsage of the four indexes
};

/// \brief How LoadSnapshot backs the loaded index structures.
enum class SnapshotLoadMode {
  kCopied,  ///< buffered read; every array is a heap copy
  /// mmap the snapshot; the forest key/id arrays are served in place from
  /// the mapping (shared, page-cached across processes and replicas).
  /// Falls back to kCopied when mapping is unavailable — results are
  /// identical either way, only the backing differs.
  kMapped,
};

/// \brief What a LoadSnapshot call actually did (perf accounting: the
/// snapshot_load bench and `d3l_snapshot info` report these).
struct SnapshotLoadStats {
  uint32_t format_version = 0;  ///< version found in the file
  bool mapped = false;          ///< the file was served from an mmap
  uint64_t pad_bytes = 0;       ///< alignment padding skipped while reading
  double open_seconds = 0;      ///< whole LoadSnapshot wall time
  /// Wall time decoding the INDX section: signature/profile decode, the
  /// banded-index replay (mode-independent by design — see
  /// D3LIndexes::Save) and the forest deserialization.
  double index_parse_seconds = 0;
  /// Wall time of the forest deserialization alone — the full-array
  /// materialization that a mapped v2 load collapses to pointer fixups.
  /// This is the component `bench/snapshot_load` gates mapped-vs-copied.
  double forest_parse_seconds = 0;
};

/// \brief A profiled query target: per-column profiles and signatures plus
/// the detected subject column.
///
/// Depends only on the engine options (hashers, profile settings) — never
/// on the indexed lake — so engines built with identical options, such as
/// the shard replicas of src/serving, produce identical QueryTargets for
/// the same table. This is what lets a sharded deployment profile a target
/// once and reuse it against every shard.
struct QueryTarget {
  std::vector<AttributeProfile> profiles;
  std::vector<AttributeSignatures> sigs;
  int subject_col = -1;
};

/// \brief Canonical 64-bit fingerprint of everything in `options` that
/// influences signatures, distances or ranking.
///
/// Computed by hashing the options' snapshot serialization (SaveOptions)
/// with `num_threads` — pure build-time parallelism — zeroed out, so two
/// engines agree on the fingerprint exactly when they produce identical
/// rankings for identical indexed data. Serving compares fingerprints to
/// enforce shard uniformity and mixes them into result-cache keys; pass
/// different `seed`s to derive independent hashes of the same bytes.
uint64_t OptionsFingerprint(const D3LOptions& options, uint64_t seed = 0);

/// \brief Writes every D3LOptions field into the writer's current section —
/// the single serialization behind engine snapshots, OptionsFingerprint and
/// the RPC wire protocol (a field absent here reaches none of them; see the
/// comment on D3LOptions).
void SaveOptions(io::Writer& w, const D3LOptions& options);

/// \brief Reads options written by SaveOptions; check the reader's status()
/// before use.
D3LOptions LoadOptions(io::Reader& r);

/// \brief Writes a profiled target (per-column profiles + signatures +
/// subject column) into the writer's current section. Exactly the bytes
/// CanonicalTargetBytes fingerprints, so a target shipped over the wire and
/// one profiled locally with the same options produce identical cache keys.
void SaveQueryTarget(io::Writer& w, const QueryTarget& target);

/// \brief Reads a target written by SaveQueryTarget; check the reader's
/// status() before use.
QueryTarget LoadQueryTarget(io::Reader& r);

/// \brief Writes a SearchResult — ranking, candidate alignments (in sorted
/// table order, so equal results serialize to equal bytes), and the target
/// profiles/signatures — into the writer's current section.
void SaveSearchResult(io::Writer& w, const SearchResult& result);

/// \brief Reads a result written by SaveSearchResult; check the reader's
/// status() before use.
SearchResult LoadSearchResult(io::Reader& r);

/// \brief Canonical byte string of a profiled query target: the serialized
/// per-column profiles and signatures plus the subject column.
///
/// Two targets serialize identically iff they are indistinguishable to
/// every later query phase — the property that lets a result cache treat
/// "same bytes" as "same answer". Callers needing several independent
/// hashes of one target (the serving cache's 128-bit keys) serialize once
/// and hash the returned string per seed.
std::string CanonicalTargetBytes(const QueryTarget& target);

/// \brief Distinct-candidate counts per LSH-Forest prefix depth for every
/// (target column, evidence index) pair — the scatter half of candidate
/// retrieval.
///
/// counts[c][e] is LshForest::DepthCounts for target column c against the
/// evidence-e forest, or empty when that index is not consulted (disabled
/// evidence, or a query column without the evidence). Because shards index
/// disjoint attribute sets, counts from shard replicas Add() element-wise
/// into exactly the whole-lake counts, so the stop depths — and therefore
/// the candidate sets — of a sharded query match the single engine's.
struct CandidateDepthCounts {
  std::vector<std::array<std::vector<size_t>, kNumEvidence>> counts;

  /// Element-wise accumulation of another engine's counts (the shapes must
  /// match: same columns, same consulted indexes, same forest depths).
  void Add(const CandidateDepthCounts& other);
};

/// \brief Resolved candidate-retrieval depth for every (column, evidence)
/// lookup: candidates are all attributes matching at >= that depth. A depth
/// of 0 means the index is not consulted for that column.
struct CandidateStopDepths {
  std::vector<std::array<size_t, kNumEvidence>> depths;
};

/// \brief Retrieved candidate ids per (column, evidence): ascending, and
/// capped at the per-index budget m by id order — a canonical truncation
/// rule (smallest ids win) that bounds scoring work on degenerate lakes
/// where one prefix bucket holds far more than m attributes. Because a
/// shard's local id order is monotone in the global id order, per-shard
/// lists merge into exactly the whole-lake first-m (src/serving).
struct CandidateLists {
  std::vector<std::array<std::vector<uint32_t>, kNumEvidence>> ids;
};

/// \brief Dataset discovery engine (indexing + querying).
class D3LEngine {
 public:
  explicit D3LEngine(D3LOptions options = {});

  const D3LOptions& options() const { return options_; }

  /// Profiles and indexes every attribute of the lake (Algorithm 1) and
  /// detects each table's subject attribute. The lake must outlive the
  /// engine. May be called once.
  Status IndexLake(const DataLake& lake);

  /// Top-k most related datasets to `target` (Definition 1 relatedness,
  /// Eq. 1-3 scoring). Per-index candidate retrieval descends each LSH
  /// Forest to the depth at which max(options().candidates_per_attribute, k)
  /// distinct candidates exist and scores every candidate at that depth —
  /// so larger answers do more lookup work, as in the paper's Experiments
  /// 5-6, and retrieval decomposes exactly across shards (src/serving).
  Result<SearchResult> Search(const Table& target, size_t k) const;

  /// Search with an explicit evidence mask (the Fig. 3 single-evidence
  /// ablation); disabled types are neither looked up nor weighted.
  Result<SearchResult> Search(const Table& target, size_t k,
                              const std::array<bool, kNumEvidence>& enabled_mask) const;

  /// Search from an already-profiled target (ProfileTarget output): the
  /// whole retrieval/scoring/ranking pipeline minus the profiling phase.
  /// This is the entry the serving layer's SearchBackend interface maps
  /// onto — a front-end profiles once (possibly caching on the profile
  /// fingerprint) and then queries any backend built with the same options.
  /// The target's profiles/signatures are moved into the returned result.
  Result<SearchResult> SearchTarget(QueryTarget target, size_t k,
                                    const std::array<bool, kNumEvidence>& enabled_mask) const;

  // -- Scatter-gather decomposition of Search --
  //
  // Search(target, k) is exactly ProfileTarget -> CollectDepthCounts ->
  // ResolveStopDepths -> CollectCandidates -> UnionCandidates ->
  // ScoreCandidates -> RankRows. A sharded deployment
  // (serving::ShardedEngine) runs the same pipeline with the per-shard
  // pieces merged at the coordinator: depth counts are summed before
  // resolving stop depths, per-shard candidate lists (whose local id order
  // is monotone in the global order) are merged and re-capped at m before
  // scoring, and scored rows are concatenated (with attribute ids remapped
  // to the global registry) before ranking — yielding a top-k that is
  // byte-identical to a single engine over the whole lake.

  /// Profiles a target table (columns must be non-empty). Shard-independent:
  /// depends only on the engine options.
  QueryTarget ProfileTarget(const Table& target) const;

  /// Scatter phase A: distinct-candidate counts per forest depth for every
  /// (column, consulted index) pair. The consulted indexes are the enabled
  /// evidences plus the Algorithm-2 numeric fallback (a numeric column with
  /// distribution evidence enabled draws candidates through IN and IF).
  /// A non-zero `budget` (the per-index m) lets each forest stop scanning
  /// once it alone has seen that many distinct candidates; counts at depths
  /// at or below the final stop depth stay exact, so stop depths — and the
  /// retrieved candidates — are unchanged (LshForest::DepthCounts).
  CandidateDepthCounts CollectDepthCounts(
      const QueryTarget& target, const std::array<bool, kNumEvidence>& enabled_mask,
      size_t budget = 0) const;

  /// The stop rule applied to (possibly shard-summed) depth counts:
  /// the deepest depth with at least m distinct candidates, else 1
  /// (LshForest::StopDepth); 0 where an index is not consulted.
  static CandidateStopDepths ResolveStopDepths(const CandidateDepthCounts& counts,
                                               size_t m);

  /// Scatter phase B: the candidates matching at the stop depths, per
  /// (column, evidence), ascending and truncated to the m smallest ids.
  /// (Indexes not consulted carry stop depth 0 and yield empty lists.)
  CandidateLists CollectCandidates(const QueryTarget& target,
                                   const CandidateStopDepths& stops, size_t m) const;

  /// Per-column union (sorted, deduplicated) of a CandidateLists — the
  /// shape ScoreCandidates consumes.
  static std::vector<std::vector<uint32_t>> UnionCandidates(
      const CandidateLists& lists);

  /// Scatter phase C: scores the given candidates — one PairDistances row
  /// per (target column, candidate attribute), in (column, id) order.
  /// `per_column_candidates[c]` must be sorted and deduplicated. Pure
  /// per-engine work: a row depends only on the query and that candidate,
  /// never on other candidates, so shard rows concatenate into exactly the
  /// single-engine row set.
  std::vector<PairDistances> ScoreCandidates(
      const QueryTarget& target,
      const std::vector<std::vector<uint32_t>>& per_column_candidates,
      const std::array<bool, kNumEvidence>& enabled_mask) const;

  /// Gather phase: rebuilds the Eq. 2 distance distributions from the rows,
  /// aggregates per dataset (Eq. 1), combines with the evidence weights
  /// (Eq. 3) and returns the top-k with candidate alignments filled in.
  /// `table_of` maps an attribute id to its dataset index in [0, num_tables).
  /// Deterministic: rows are canonically re-sorted by (column, attribute id)
  /// first, so any permutation of the same row set ranks identically.
  static SearchResult RankRows(std::vector<PairDistances> rows,
                               size_t num_target_columns, size_t num_tables,
                               const std::function<uint32_t(uint32_t)>& table_of,
                               const EvidenceWeights& weights, size_t k);

  const DataLake* lake() const { return lake_; }
  const D3LIndexes& indexes() const { return indexes_; }
  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// Serializes the built engine — options, lake table/column metadata,
  /// profiles, signatures, LSH structures and table→attribute mappings —
  /// to a versioned binary snapshot ("profile once, serve many"). Requires
  /// IndexLake to have run.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot written by SaveSnapshot. `lake_metadata` receives
  /// schema-only tables (names + column names, no cells), must be empty on
  /// entry and must outlive the returned engine, which serves Search()
  /// without re-profiling. Under the default SnapshotLoadMode::kMapped a
  /// current-version snapshot is mmapped and the index arrays borrow the
  /// mapping (the engine keeps it alive); v1 snapshots and mapping failures
  /// fall back to full deserialization with identical results. Truncated,
  /// corrupt or version-mismatched files fail with a descriptive non-OK
  /// Status. See load_stats() for what a given load actually did.
  static Result<std::unique_ptr<D3LEngine>> LoadSnapshot(
      const std::string& path, DataLake* lake_metadata,
      SnapshotLoadMode mode = SnapshotLoadMode::kMapped);

  /// Magic bytes and format-version range of engine snapshot files.
  /// v1: per-entry forest encoding. v2: flat aligned forest arrays
  /// (mappable). Readers accept [kSnapshotMinReadVersion, kSnapshotVersion].
  static constexpr char kSnapshotMagic[9] = "D3LSNAP\n";
  static constexpr uint32_t kSnapshotVersion = 2;
  static constexpr uint32_t kSnapshotMinReadVersion = 1;

  /// Lightweight snapshot metadata (the `d3l_snapshot info` view).
  struct SnapshotInfo {
    D3LOptions options;
    size_t num_tables = 0;
    size_t num_attributes = 0;    ///< sum of the schema column counts
    uint32_t format_version = 0;  ///< version found in the file
    bool mappable = false;        ///< flat-array format (zero-copy capable)
  };

  /// Reads a snapshot's options and lake schema metadata without loading
  /// the index sections — cheap even for large snapshots.
  static Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

  /// Subject-attribute column of an indexed table (-1 if none).
  int subject_column(uint32_t table_index) const;
  /// Registry id of (table, column); tables/columns must be indexed.
  uint32_t attribute_id(uint32_t table_index, uint32_t column) const;
  /// Registry id of a table's subject attribute (UINT32_MAX if none).
  uint32_t subject_attribute_id(uint32_t table_index) const;

  const WordEmbeddingModel& wem() const { return *wem_; }
  const SubjectAttributeDetector& subject_detector() const { return detector_; }

  /// What the snapshot load that produced this engine did (all zero for
  /// engines built via IndexLake).
  const SnapshotLoadStats& load_stats() const { return load_stats_; }

 private:
  D3LOptions options_;
  /// Shared across engines with equal options (SharedSubwordModel): the
  /// bucket table is immutable and expensive, and serving processes hold
  /// many same-options engines (shard replicas, reload generations).
  std::shared_ptr<const SubwordHashModel> wem_;
  SubjectAttributeDetector detector_;
  D3LIndexes indexes_;
  const DataLake* lake_ = nullptr;
  std::vector<std::vector<uint32_t>> attr_ids_;  // [table][column] -> id
  std::vector<int> subject_cols_;                // [table] -> column or -1
  IndexBuildStats build_stats_;
  SnapshotLoadStats load_stats_;
};

}  // namespace d3l::core

// The D3L engine: index a data lake, then answer top-k relatedness queries
// for a target table (Section III-D).
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/aggregation.h"
#include "core/attribute_profile.h"
#include "core/distance.h"
#include "core/indexes.h"
#include "core/subject_attribute.h"
#include "embedding/subword_model.h"
#include "table/lake.h"

namespace d3l::core {

struct D3LOptions {
  IndexOptions index;
  ProfileOptions profile;
  SubwordModelOptions wem;
  EvidenceWeights weights = EvidenceWeights::Default();
  /// Candidates retrieved per target attribute per index (the LSH Forest
  /// top-m; candidates are then exactly re-ranked from signatures).
  size_t candidates_per_attribute = 64;
  /// Evidence-type mask, for the individual-evidence ablation (Fig. 3):
  /// disabled types are neither looked up nor weighted in Eq. 3.
  std::array<bool, kNumEvidence> enabled = {true, true, true, true, true};
  /// Worker threads for lake profiling (0 = hardware concurrency).
  size_t num_threads = 0;
};

/// \brief One ranked candidate dataset.
struct TableMatch {
  uint32_t table_index = 0;
  double distance = 1.0;                    ///< Eq. 3 combined distance
  DistanceVector evidence_distances;        ///< Eq. 1 per-evidence aggregates
  std::vector<PairDistances> pairs;         ///< the Table-I rows for this dataset
};

/// \brief Result of a top-k search.
struct SearchResult {
  std::vector<TableMatch> ranked;  ///< ascending distance, at most k entries

  /// Every candidate table touched by any index lookup, with its attribute
  /// alignments (target column -> lake attribute id). Superset of `ranked`;
  /// feeds Algorithm 3's relatedness condition and the coverage metrics.
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>
      candidate_alignments;

  /// Profiles/signatures of the target columns (reused by join discovery).
  std::vector<AttributeProfile> target_profiles;
  std::vector<AttributeSignatures> target_sigs;
};

/// \brief Timing/size metrics of an IndexLake call.
struct IndexBuildStats {
  double profile_seconds = 0;  ///< feature extraction (dominant, per paper)
  double insert_seconds = 0;   ///< signature + LSH insertion
  size_t num_attributes = 0;
  size_t index_bytes = 0;      ///< MemoryUsage of the four indexes
};

/// \brief Dataset discovery engine (indexing + querying).
class D3LEngine {
 public:
  explicit D3LEngine(D3LOptions options = {});

  const D3LOptions& options() const { return options_; }

  /// Profiles and indexes every attribute of the lake (Algorithm 1) and
  /// detects each table's subject attribute. The lake must outlive the
  /// engine. May be called once.
  Status IndexLake(const DataLake& lake);

  /// Top-k most related datasets to `target` (Definition 1 relatedness,
  /// Eq. 1-3 scoring). Per-index candidate retrieval uses
  /// max(options().candidates_per_attribute, k) so larger answers do more
  /// lookup work, as in the paper's Experiments 5-6.
  Result<SearchResult> Search(const Table& target, size_t k) const;

  /// Search with an explicit evidence mask (the Fig. 3 single-evidence
  /// ablation); disabled types are neither looked up nor weighted.
  Result<SearchResult> Search(const Table& target, size_t k,
                              const std::array<bool, kNumEvidence>& enabled_mask) const;

  const DataLake* lake() const { return lake_; }
  const D3LIndexes& indexes() const { return indexes_; }
  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// Serializes the built engine — options, lake table/column metadata,
  /// profiles, signatures, LSH structures and table→attribute mappings —
  /// to a versioned binary snapshot ("profile once, serve many"). Requires
  /// IndexLake to have run.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads a snapshot written by SaveSnapshot. `lake_metadata` receives
  /// schema-only tables (names + column names, no cells), must be empty on
  /// entry and must outlive the returned engine, which serves Search()
  /// without re-profiling. Truncated, corrupt or version-mismatched files
  /// fail with a descriptive non-OK Status.
  static Result<std::unique_ptr<D3LEngine>> LoadSnapshot(const std::string& path,
                                                         DataLake* lake_metadata);

  /// Magic bytes and current format version of engine snapshot files.
  static constexpr char kSnapshotMagic[9] = "D3LSNAP\n";
  static constexpr uint32_t kSnapshotVersion = 1;

  /// Subject-attribute column of an indexed table (-1 if none).
  int subject_column(uint32_t table_index) const;
  /// Registry id of (table, column); tables/columns must be indexed.
  uint32_t attribute_id(uint32_t table_index, uint32_t column) const;
  /// Registry id of a table's subject attribute (UINT32_MAX if none).
  uint32_t subject_attribute_id(uint32_t table_index) const;

  const WordEmbeddingModel& wem() const { return wem_; }
  const SubjectAttributeDetector& subject_detector() const { return detector_; }

 private:
  D3LOptions options_;
  SubwordHashModel wem_;
  SubjectAttributeDetector detector_;
  D3LIndexes indexes_;
  const DataLake* lake_ = nullptr;
  std::vector<std::vector<uint32_t>> attr_ids_;  // [table][column] -> id
  std::vector<int> subject_cols_;                // [table] -> column or -1
  IndexBuildStats build_stats_;
};

}  // namespace d3l::core

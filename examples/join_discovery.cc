// Join-path discovery on a generated dirty lake (Section IV at benchmark
// scale): shows target coverage with and without join paths.
//
//   $ ./build/examples/join_discovery
#include <cstdio>

#include "benchdata/realish_gen.h"
#include "core/join_graph.h"
#include "core/query.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

using namespace d3l;

int main() {
  // A small dirty lake with topic clusters (shared entity pools -> joins).
  benchdata::RealishOptions opts;
  opts.num_clusters = 10;
  opts.tables_per_cluster_min = 4;
  opts.tables_per_cluster_max = 7;
  opts.seed = 99;
  auto gen = benchdata::GenerateRealish(opts);
  gen.status().CheckOK();
  printf("generated lake: %zu tables\n", gen->lake.size());

  core::D3LEngine engine;
  engine.IndexLake(gen->lake).CheckOK();
  core::SaJoinGraph graph = core::SaJoinGraph::Build(engine);
  printf("SA-join graph: %zu edges over %zu tables\n\n", graph.num_edges(),
         graph.num_tables());

  eval::TablePrinter out({"target", "k", "coverage", "coverage+J", "paths"});
  for (uint32_t t : eval::SampleTargets(gen->lake, 5, 42)) {
    const Table& target = gen->lake.table(t);
    const size_t k = 8;
    auto res = engine.Search(target, k);
    res.status().CheckOK();
    if (res->ranked.empty()) continue;

    // Convert matches into the evaluation representation.
    std::vector<eval::RankedTable> topk;
    for (const auto& m : res->ranked) {
      eval::RankedTable rt;
      rt.name = gen->lake.table(m.table_index).name();
      for (const auto& p : m.pairs) {
        rt.alignments.push_back(
            {p.target_column, engine.indexes().profile(p.attribute_id).ref.column});
      }
      topk.push_back(std::move(rt));
    }

    // Join paths per top-k table (Algorithm 3).
    std::unordered_set<uint32_t> top_set;
    for (const auto& m : res->ranked) top_set.insert(m.table_index);
    std::unordered_set<uint32_t> related;
    for (const auto& [ti, a] : res->candidate_alignments) related.insert(ti);

    size_t total_paths = 0;
    std::vector<std::vector<eval::RankedTable>> joins(topk.size());
    for (size_t i = 0; i < res->ranked.size(); ++i) {
      auto paths =
          core::FindJoinPaths(graph, res->ranked[i].table_index, top_set, related);
      total_paths += paths.size();
      std::unordered_set<uint32_t> path_tables;
      for (const auto& p : paths) {
        for (size_t j = 1; j < p.tables.size(); ++j) path_tables.insert(p.tables[j]);
      }
      for (uint32_t pt : path_tables) {
        eval::RankedTable rt;
        rt.name = gen->lake.table(pt).name();
        auto it = res->candidate_alignments.find(pt);
        if (it != res->candidate_alignments.end()) {
          for (const auto& [tc, attr] : it->second) {
            rt.alignments.push_back({tc, engine.indexes().profile(attr).ref.column});
          }
        }
        joins[i].push_back(std::move(rt));
      }
    }

    double cov = eval::AverageCoverage(topk, target.num_columns());
    double cov_j = eval::AverageJoinCoverage(topk, joins, target.num_columns());
    out.AddRow({target.name(), std::to_string(k), eval::TablePrinter::Num(cov, 3),
                eval::TablePrinter::Num(cov_j, 3), std::to_string(total_paths)});
  }
  out.Print();
  printf(
      "\nTables with weak direct relatedness contribute extra target\n"
      "attributes when reached through SA-join paths (coverage+J >= coverage).\n");
  return 0;
}

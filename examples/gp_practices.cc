// The paper's running example (Figure 1 / Table I / Example 1).
//
// Builds the GP tables T, S1, S2, S3, prints a Table-I-style distance
// matrix for (T, S2), runs the top-k search, and shows how a join path
// through S3 covers the target's "Hours" attribute.
//
//   $ ./build/examples/gp_practices
#include <cstdio>

#include "core/join_graph.h"
#include "core/query.h"
#include "eval/table_printer.h"
#include "table/lake.h"

using namespace d3l;

namespace {
Table MakeTable(std::string name, std::vector<std::string> cols,
                std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}
}  // namespace

int main() {
  // Figure 1 of the paper (S1 and S2 padded with a few extra practices so
  // extents carry enough signal for hashing).
  Table s1 = MakeTable(
      "S1_gp_practices", {"Practice Name", "Address", "City", "Postcode", "Patients"},
      {{"Dr E Cullen", "51 Botanic Av", "Belfast", "BT7 1JL", "1202"},
       {"Blackfriars", "1a Chapel St", "Salford", "M3 6AF", "3572"},
       {"Radclife Care", "69 Church St", "Manchester", "M26 2SP", "2210"},
       {"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY", "1870"},
       {"Mirabel Surgery", "9 Mirabel St", "Manchester", "M3 1NN", "950"}});
  Table s2 = MakeTable("S2_gp_funding", {"Practice", "City", "Postcode", "Payment"},
                       {{"The London Clinic", "London", "W1G 6BW", "73648"},
                        {"Blackfriars", "Salford", "M3 6AF", "15530"},
                        {"Radclife Care", "Manchester", "M26 2SP", "18220"},
                        {"Bolton Medical", "Bolton", "BL3 6PY", "12790"}});
  Table s3 = MakeTable("S3_local_gps", {"GP", "Location", "Opening hours"},
                       {{"Blackfriars", "Salford", "08:00-18:00"},
                        {"Radclife Care", "-", "07:00-20:00"},
                        {"Bolton Medical", "Bolton", "08:00-16:00"}});
  Table target = MakeTable("T_gps", {"Practice", "Street", "City", "Postcode", "Hours"},
                           {{"Radclife Care", "69 Church St", "Manchester", "M26 2SP",
                             "07:00-20:00"},
                            {"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY",
                             "08:00-16:00"}});

  DataLake lake;
  lake.AddTable(s1).CheckOK();
  lake.AddTable(s2).CheckOK();
  lake.AddTable(s3).CheckOK();

  core::D3LEngine engine;
  engine.IndexLake(lake).CheckOK();

  // --- Table I analogue: per-pair distances between T and S2 -------------
  auto result = engine.Search(target, 3);
  result.status().CheckOK();

  printf("Table I analogue — attribute-pair distances for (T, S2):\n\n");
  eval::TablePrinter tbl({"Pair", "DN", "DV", "DF", "DE", "DD"});
  uint32_t s2_idx = static_cast<uint32_t>(lake.TableIndex("S2_gp_funding"));
  for (const core::TableMatch& m : result->ranked) {
    if (m.table_index != s2_idx) continue;
    for (const core::PairDistances& p : m.pairs) {
      const auto& prof = engine.indexes().profile(p.attribute_id);
      std::string pair_name = "(T." + target.column(p.target_column).name() + ", S2." +
                              prof.column_name + ")";
      tbl.AddRow({pair_name, eval::TablePrinter::Num(p.d[0], 2),
                  eval::TablePrinter::Num(p.d[1], 2), eval::TablePrinter::Num(p.d[2], 2),
                  eval::TablePrinter::Num(p.d[3], 2),
                  eval::TablePrinter::Num(p.d[4], 2)});
    }
  }
  tbl.Print();

  // --- top-k ranking ------------------------------------------------------
  printf("\nTop-k datasets related to T:\n\n");
  eval::TablePrinter rank({"rank", "dataset", "distance"});
  int r = 1;
  for (const core::TableMatch& m : result->ranked) {
    rank.AddRow({std::to_string(r++), lake.table(m.table_index).name(),
                 eval::TablePrinter::Num(m.distance)});
  }
  rank.Print();

  // --- join paths (Section IV): S3 contributes "Hours" --------------------
  core::SaJoinGraph graph = core::SaJoinGraph::Build(engine);
  printf("\nSA-join graph: %zu edges\n", graph.num_edges());

  auto top2 = engine.Search(target, 2);
  top2.status().CheckOK();
  auto paths = core::FindAllJoinPaths(graph, *top2);
  for (const core::JoinPath& p : paths) {
    std::string desc = lake.table(p.tables[0]).name();
    for (size_t i = 0; i < p.edges.size(); ++i) {
      const core::JoinEdge& e = p.edges[i];
      desc += " --[" + lake.table(e.from_table).column(e.from_column).name() + " ~ " +
              lake.table(e.to_table).column(e.to_column).name() + "]--> " +
              lake.table(p.tables[i + 1]).name();
    }
    printf("join path: %s\n", desc.c_str());
  }
  printf(
      "\nS3 is weakly related to T, but joins with the top-k tables on\n"
      "practice names — its 'Opening hours' column can populate T.Hours,\n"
      "exactly the Example-1 scenario.\n");
  return 0;
}

#!/bin/sh
# Remote-serving smoke test: two shard_server processes on localhost must
# answer a query BYTE-IDENTICALLY to the local sharded engine over the same
# manifest — the exactness contract of serving::RemoteBackend, checked here
# end-to-end across real processes and real sockets (CI runs this via
# ctest; see examples/CMakeLists.txt).
#
#   usage: remote_smoke.sh <build_dir> <csv_dir> <target.csv> <work_dir>
#
# Builds a 2-shard deployment under <work_dir>, starts one server per shard
# on kernel-assigned ports (discovered through --port-file), queries both
# the local manifest and the remote pair with --plain, and diffs the
# rankings.
set -eu

BUILD_DIR=$1
CSV_DIR=$2
TARGET=$3
WORK_DIR=$4

mkdir -p "$WORK_DIR"
BASE="$WORK_DIR/remote_smoke"
rm -f "$BASE".* "$WORK_DIR"/server*.port "$WORK_DIR"/server*.in \
      "$WORK_DIR"/local.out "$WORK_DIR"/remote.out

"$BUILD_DIR/d3l_snapshot" shard "$CSV_DIR" "$BASE" --shards=2

# Each server reads stdin until `quit`; keeping the pipe open via a fifo
# lets this script shut them down cleanly (EOF also stops them, so the
# trap's kill is only a safety net).
mkfifo "$WORK_DIR/server0.in" "$WORK_DIR/server1.in"
"$BUILD_DIR/shard_server" "$BASE.manifest" --serve-shards=0 \
    --port-file="$WORK_DIR/server0.port" < "$WORK_DIR/server0.in" &
PID0=$!
"$BUILD_DIR/shard_server" "$BASE.manifest" --serve-shards=1 \
    --port-file="$WORK_DIR/server1.port" < "$WORK_DIR/server1.in" &
PID1=$!
# Open write ends (and keep them open) so the servers do not see EOF.
exec 3> "$WORK_DIR/server0.in" 4> "$WORK_DIR/server1.in"
trap 'kill $PID0 $PID1 2>/dev/null || true' EXIT INT TERM

# The port files appear once each server is bound and serving.
tries=0
while [ ! -s "$WORK_DIR/server0.port" ] || [ ! -s "$WORK_DIR/server1.port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "remote_smoke: servers did not come up" >&2
    exit 1
  fi
  sleep 0.1
done
EP0=$(awk '{print $1 ":" $2}' "$WORK_DIR/server0.port")
EP1=$(awk '{print $1 ":" $2}' "$WORK_DIR/server1.port")
echo "servers up at $EP0 and $EP1"

"$BUILD_DIR/d3l_snapshot" query --shards "$BASE.manifest" "$TARGET" 5 \
    --plain > "$WORK_DIR/local.out"
"$BUILD_DIR/d3l_snapshot" query --remote "$EP0,$EP1" "$TARGET" 5 \
    --plain > "$WORK_DIR/remote.out"

# Clean shutdown before the verdict (also exercises the quit path).
echo quit >&3
echo quit >&4
wait $PID0 $PID1 || true
trap - EXIT INT TERM

if ! diff -u "$WORK_DIR/local.out" "$WORK_DIR/remote.out"; then
  echo "remote_smoke: FAILED — remote ranking differs from local" >&2
  exit 1
fi
echo "remote_smoke: OK — remote ranking byte-identical to local"
cat "$WORK_DIR/local.out"

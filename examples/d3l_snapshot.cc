// Snapshot CLI: profile a CSV lake once, then serve discovery queries from
// the persisted index ("profile once, serve many") — monolithic or sharded.
//
//   $ ./build/d3l_snapshot build <csv_dir> <out.d3l>
//       Loads every *.csv in <csv_dir>, runs Algorithm 1 over the lake and
//       writes the built engine (profiles, signatures, LSH structures,
//       schema metadata) to <out.d3l>.
//
//   $ ./build/d3l_snapshot query <backend> <target.csv> [k] [--threads=T]
//                                [--repeat=N] [--cache=C] [--plain]
//       Opens ANY backend reference through serving::OpenBackend and serves
//       the top-k query through the DiscoveryService front-end (default
//       k = 5): a snapshot file or snapshot:<path> loads the monolithic
//       engine (no re-profiling of the lake); a manifest file or
//       manifest:<path> opens every shard replica and serves the query
//       scatter-gather across a T-thread pool; tcp:host:port[,host:port...]
//       connects to running shard_server processes and scatter-gathers
//       remotely. All three paths produce byte-identical rankings over the
//       same lake. `query --shards <base.manifest>` and `query --remote
//       <host:port[,...]>` are spelling shortcuts for the manifest:/tcp:
//       prefixes. --repeat=N serves the query N times (serve-style
//       repeated-query mode): with the result cache on (capacity C, default
//       256; 0 disables) every repeat after the first is a cache hit, and
//       the per-query stats printed at the end show the hit/miss latencies.
//       --plain prints only the ranking (rank, dataset, full-precision
//       distance) — the byte-comparable form the remote smoke test diffs.
//
//   $ ./build/d3l_snapshot shard <csv_dir> <out_base> [--shards=N] [--balance=cells|rr]
//       Partitions the lake into N shards (default 2; size-balanced by
//       cell count, or round-robin with --balance=rr), indexes each shard
//       independently and writes <out_base>.shard<i>.d3l plus
//       <out_base>.manifest.
//
//   $ ./build/d3l_snapshot update <csv_dir> <out_base>
//       Incrementally rebuilds the sharded deployment at <out_base> to
//       match the (changed) CSV directory: diffs the lake against the
//       manifest's recorded source identities and re-profiles ONLY the
//       shards whose tables were added, removed or edited — the others'
//       snapshots are reused byte-for-byte, and added tables are placed
//       by the deployment's recorded balance policy. The updated
//       deployment answers queries exactly like a from-scratch `shard`
//       over the new lake at the same placement.
//
//   $ ./build/d3l_snapshot serve <csv_dir> <out_base> [k] [--threads=T] [--cache=C]
//                                [--shards=N] [--balance=cells|rr]
//                                [--watch] [--interval=MS]
//       Long-running server over a sharded deployment (built from
//       <csv_dir> on first run). Reads commands from stdin, one per line:
//       a CSV path serves that file as a top-k query, `reload` runs an
//       incremental rebuild + RCU generation swap (in-flight queries keep
//       the old index; see serving/hot_reload.h), `stats` prints the
//       service and reload counters plus the full Prometheus text
//       exposition of every registry series, `quit` exits. With --watch a
//       background poller (every MS milliseconds, default 500) reloads
//       automatically whenever the CSV directory's recorded checksums go
//       stale — edits to the lake show up in query results without a
//       restart.
//
//   $ ./build/d3l_snapshot info <file> [csv_dir]
//       Prints container metadata (format version, section table with
//       offsets, sizes and checksum state) plus, for engine snapshots, the
//       table/attribute counts, key options, whether the format is
//       mappable (v2 aligned arrays) and a trial mapped load's stats
//       (zero-copy engaged?, alignment-padding bytes, open/parse time),
//       and for shard manifests, the per-shard layout. With a CSV
//       directory, each shard is additionally checked for staleness
//       against the current files (by recorded size/CRC32 only — nothing
//       is parsed or profiled).
//
// Snapshots are self-contained: `query` never touches the original CSV
// directory, which is what makes a snapshot (or a shard set) the unit of
// deployment for a serving replica.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/query.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "eval/table_printer.h"
#include "io/binary_io.h"
#include "serving/backend_ref.h"
#include "serving/discovery_service.h"
#include "serving/hot_reload.h"
#include "serving/manifest.h"
#include "serving/search_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "table/csv.h"
#include "table/lake.h"

using namespace d3l;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s build <csv_dir> <out.d3l>\n"
      "  %s query <backend> <target.csv> [k] [--threads=T] [--repeat=N]\n"
      "       [--cache=C] [--plain]\n"
      "       <backend>: snapshot.d3l | base.manifest | snapshot:<path> |\n"
      "                  manifest:<path> | tcp:host:port[,host:port...]\n"
      "       (query --shards <base.manifest> and query --remote\n"
      "        <host:port[,...]> are shortcuts for the last two)\n"
      "  %s shard <csv_dir> <out_base> [--shards=N] [--balance=cells|rr]\n"
      "  %s update <csv_dir> <out_base>\n"
      "  %s serve <csv_dir> <out_base> [k] [--threads=T] [--cache=C]\n"
      "       [--shards=N] [--balance=cells|rr] [--watch] [--interval=MS]\n"
      "  %s info <snapshot.d3l | base.manifest> [csv_dir]\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int RunBuild(const std::string& csv_dir, const std::string& out_path) {
  DataLake lake;
  Status load = lake.LoadDirectory(csv_dir);
  if (!load.ok()) return Fail(load);
  if (lake.size() == 0) {
    std::fprintf(stderr, "no CSV files found in %s\n", csv_dir.c_str());
    return 1;
  }
  LakeStats stats = lake.Stats();
  std::printf("loaded %zu tables, %zu attributes from %s\n", stats.num_tables,
              stats.num_attributes, csv_dir.c_str());

  core::D3LEngine engine;
  eval::Timer timer;
  Status indexed = engine.IndexLake(lake);
  if (!indexed.ok()) return Fail(indexed);
  std::printf("indexed in %.3fs (profiling %.3fs, insertion %.3fs)\n", timer.Seconds(),
              engine.build_stats().profile_seconds, engine.build_stats().insert_seconds);

  Status saved = engine.SaveSnapshot(out_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("snapshot written to %s\n", out_path.c_str());
  return 0;
}

void PrintRanking(const core::SearchResult& res,
                  const std::function<std::string(uint32_t)>& name_of) {
  eval::TablePrinter out({"rank", "dataset", "distance"});
  int rank = 1;
  for (const auto& m : res.ranked) {
    out.AddRow({std::to_string(rank++), name_of(m.table_index),
                eval::TablePrinter::Num(m.distance)});
  }
  out.Print();
}

/// Serves `repeat` identical queries through the unified async front-end
/// (the same code path for monolithic and sharded backends) and prints the
/// ranking once plus, for repeated serving, the cache hit/miss stats.
int ServeQueries(const serving::SearchBackend& backend, const Table& target, size_t k,
                 size_t repeat, size_t cache_capacity) {
  serving::DiscoveryServiceOptions service_options;
  service_options.cache_capacity = cache_capacity;
  // The repeats are strictly sequential, so run them inline on this thread
  // (no idle worker pool, no queue-time noise in the printed latencies).
  service_options.inline_execution = true;
  serving::DiscoveryService service(&backend, service_options);

  double miss_seconds = 0, hit_seconds = 0;
  size_t misses = 0, hits = 0;
  bool printed = false;
  for (size_t r = 0; r < repeat; ++r) {
    serving::QueryResponse response =
        service.Query({&target, k, std::nullopt, /*bypass_cache=*/false});
    if (!response.result.ok()) return Fail(response.result.status());
    if (response.stats.cache_hit) {
      ++hits;
      hit_seconds += response.stats.total_seconds;
    } else {
      ++misses;
      miss_seconds += response.stats.total_seconds;
    }
    if (!printed) {
      PrintRanking(*response.result,
                   [&](uint32_t t) { return backend.table_name(t); });
      printed = true;
    }
  }
  if (repeat > 1) {
    serving::ServiceStats stats = service.Stats();
    std::printf("\nserved %zu repeats: %zu cache hits / %zu misses "
                "(capacity %zu)\n",
                repeat, stats.cache_hits, stats.cache_misses,
                stats.cache.capacity);
    if (misses > 0) {
      std::printf("mean miss latency: %.3f ms\n",
                  miss_seconds * 1000 / static_cast<double>(misses));
    }
    if (hits > 0) {
      std::printf("mean hit latency:  %.3f ms\n",
                  hit_seconds * 1000 / static_cast<double>(hits));
    }
  }
  return 0;
}

/// Serves `query` over ANY backend ref — an engine snapshot, a shard
/// manifest (local scatter-gather) or tcp: shard-server endpoints (remote
/// scatter-gather) — through the single serving::OpenBackend factory; the
/// serving path after open is identical for all three. --plain prints the
/// ranking alone (rank, dataset, full-precision distance), the
/// byte-comparable form examples/remote_smoke.sh diffs between a local and
/// a remote deployment of the same manifest.
int RunBackendQuery(const std::string& spec, const std::string& target_csv,
                    size_t k, size_t threads, size_t repeat,
                    size_t cache_capacity, bool plain) {
  serving::OpenBackendOptions open_options;
  open_options.sharded.num_threads = threads;
  open_options.remote.num_threads = threads;
  eval::Timer timer;
  auto backend = serving::OpenBackend(spec, open_options);
  if (!backend.ok()) return Fail(backend.status());
  serving::BackendInfo info = (*backend)->Info();
  if (!plain) {
    std::printf("opened %s backend in %.3fs: %zu tables, %zu attributes, "
                "%zu shard%s\n",
                serving::BackendKindName(info.kind), timer.Seconds(),
                info.num_tables, info.num_attributes, info.num_shards,
                info.num_shards == 1 ? "" : "s");
    std::printf("options fingerprint %016llx, index fingerprint %016llx\n",
                static_cast<unsigned long long>(info.options_fingerprint),
                static_cast<unsigned long long>(info.index_fingerprint));
  }

  auto target = ReadCsvFile(target_csv);
  if (!target.ok()) return Fail(target.status());

  if (plain) {
    auto result = (*backend)->Search(*target, k);
    if (!result.ok()) return Fail(result.status());
    int rank = 1;
    for (const auto& m : result->ranked) {
      std::printf("%d\t%s\t%.17g\n", rank++,
                  (*backend)->table_name(m.table_index).c_str(), m.distance);
    }
    return 0;
  }

  std::printf("query target: %s (%zu columns)\n\n", target->name().c_str(),
              target->num_columns());
  return ServeQueries(**backend, *target, k, repeat, cache_capacity);
}

int RunShard(const std::string& csv_dir, const std::string& out_base,
             size_t num_shards, serving::ShardingOptions::Balance balance) {
  DataLake lake;
  Status load = lake.LoadDirectory(csv_dir);
  if (!load.ok()) return Fail(load);
  if (lake.size() == 0) {
    std::fprintf(stderr, "no CSV files found in %s\n", csv_dir.c_str());
    return 1;
  }
  serving::ShardingOptions options;
  options.num_shards = num_shards;
  options.balance = balance;
  auto report = serving::BuildShards(lake, options, out_base);
  if (!report.ok()) return Fail(report.status());
  std::printf("sharded %zu tables into %zu shards in %.3fs:\n", lake.size(),
              report->shard_paths.size(), report->build_seconds);
  for (size_t s = 0; s < report->shard_paths.size(); ++s) {
    std::printf("  %s (%zu tables)\n", report->shard_paths[s].c_str(),
                report->plan[s].size());
  }
  std::printf("manifest written to %s\n", report->manifest_path.c_str());
  return 0;
}

int RunUpdate(const std::string& csv_dir, const std::string& out_base) {
  DataLake lake;
  Status load = lake.LoadDirectory(csv_dir);
  if (!load.ok()) return Fail(load);
  if (lake.size() == 0) {
    std::fprintf(stderr, "no CSV files found in %s\n", csv_dir.c_str());
    return 1;
  }
  // Shard count and balance policy come from the deployed manifest, not
  // flags: an update never repartitions.
  auto report = serving::UpdateShards(lake, serving::ShardingOptions{}, out_base);
  if (!report.ok()) return Fail(report.status());
  std::printf("updated %zu-shard deployment in %.3fs: %zu rebuilt, %zu reused\n",
              report->shard_paths.size(), report->build_seconds,
              report->rebuilt_shards.size(), report->shards_reused);
  const auto print_list = [](const char* what, const std::vector<std::string>& files) {
    if (files.empty()) return;
    std::printf("%s (%zu):", what, files.size());
    for (const std::string& f : files) std::printf(" %s", f.c_str());
    std::printf("\n");
  };
  print_list("added", report->added);
  print_list("removed", report->removed);
  print_list("changed", report->changed);
  for (size_t s : report->rebuilt_shards) {
    std::printf("  rebuilt %s (%zu tables)\n", report->shard_paths[s].c_str(),
                report->plan[s].size());
  }
  std::printf("manifest rewritten at %s\n", report->manifest_path.c_str());
  return 0;
}

int RunServe(const std::string& csv_dir, const std::string& out_base, size_t k,
             size_t threads, size_t cache_capacity, size_t num_shards,
             serving::ShardingOptions::Balance balance, bool watch,
             size_t interval_ms) {
  serving::HotReloaderOptions options;
  options.sharding.num_shards = num_shards;  // first build only; updates
  options.sharding.balance = balance;        // keep the deployed config
  options.engine.num_threads = threads;
  options.service.cache_capacity = cache_capacity;
  // The stdin loop is strictly sequential; inline execution keeps the
  // printed latencies free of queue-time noise. Reloads still swap from
  // the watcher thread, which is exactly what the generation snapshot in
  // DiscoveryService::Execute makes safe.
  options.service.inline_execution = true;
  options.watch_interval_ms = interval_ms;

  eval::Timer timer;
  auto opened = serving::HotReloader::Open(csv_dir, out_base, options);
  if (!opened.ok()) return Fail(opened.status());
  std::unique_ptr<serving::HotReloader> server = std::move(opened).ValueOrDie();
  serving::BackendInfo info = server->service().Info();
  std::printf("serving %zu shards (%zu tables, %zu attributes) in %.3fs, "
              "index fingerprint %016llx\n",
              info.num_shards, info.num_tables, info.num_attributes,
              timer.Seconds(),
              static_cast<unsigned long long>(info.index_fingerprint));
  if (watch) {
    server->StartWatching();
    std::printf("watching %s every %zums\n", csv_dir.c_str(), interval_ms);
  }
  std::printf("commands: <target.csv> | reload | stats | quit\n");

  std::string line;
  while (std::getline(std::cin, line)) {
    // Trim surrounding whitespace so piped heredocs behave.
    const size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    line = line.substr(b, line.find_last_not_of(" \t\r") - b + 1);
    if (line == "quit" || line == "exit") break;
    if (line == "reload") {
      auto report = server->Reload();
      if (!report.ok()) {
        // An error keeps the old generation serving; report and carry on.
        std::fprintf(stderr, "reload failed: %s\n",
                     report.status().ToString().c_str());
        continue;
      }
      if (report->swapped) {
        std::printf("reloaded in %.3fs: %zu shards rebuilt, %zu replicas "
                    "reused, now serving %016llx\n",
                    report->seconds, report->shards_rebuilt,
                    report->replicas_reused,
                    static_cast<unsigned long long>(report->index_fingerprint));
      } else {
        std::printf("reload: deployment already current (%016llx)\n",
                    static_cast<unsigned long long>(report->index_fingerprint));
      }
      continue;
    }
    if (line == "stats") {
      serving::ServiceStats service_stats = server->service().Stats();
      serving::ReloadStats reload_stats = server->Stats();
      std::printf("queries: %zu completed, %zu failed, %zu cache hits / %zu "
                  "misses\n",
                  service_stats.completed, service_stats.failed,
                  service_stats.cache_hits, service_stats.cache_misses);
      std::printf("reloads: %zu swapped, %zu no-op, %zu failed, %zu watch "
                  "polls, serving %016llx\n",
                  reload_stats.reloads, reload_stats.noop_reloads,
                  reload_stats.failed_reloads, reload_stats.watch_polls,
                  static_cast<unsigned long long>(reload_stats.index_fingerprint));
      // Full Prometheus exposition under the summary — every registry
      // series (service, cache, pool), same bytes a STAT scrape returns.
      const std::string text = obs::MetricRegistry::Default().ExportText();
      std::fwrite(text.data(), 1, text.size(), stdout);
      std::fflush(stdout);
      continue;
    }
    auto target = ReadCsvFile(line);
    if (!target.ok()) {
      std::fprintf(stderr, "error: %s\n", target.status().ToString().c_str());
      continue;
    }
    serving::QueryResponse response =
        server->service().Query({&*target, k, std::nullopt, false});
    if (!response.result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.result.status().ToString().c_str());
      continue;
    }
    std::printf("%s: top %zu in %.3fms (generation %016llx%s)\n",
                target->name().c_str(), k, response.stats.total_seconds * 1000,
                static_cast<unsigned long long>(response.stats.index_fingerprint),
                response.stats.cache_hit ? ", cache hit" : "");
    // Names resolve against one pinned generation (a watcher-thread swap
    // between Query and here must not read two different numberings).
    const std::shared_ptr<const serving::ShardedEngine> gen = server->engine();
    PrintRanking(*response.result,
                 [&gen](uint32_t t) { return gen->table_name(t); });
  }
  return 0;
}

int RunInfo(const std::string& path, const std::string& csv_dir) {
  auto inspected = io::InspectFile(path);
  if (!inspected.ok()) return Fail(inspected.status());

  std::string magic_display;
  for (char c : inspected->magic) {
    if (c == '\n') {
      magic_display += "\\n";
    } else if (c >= 0x20 && c < 0x7f) {
      magic_display.push_back(c);
    } else {
      magic_display.push_back('?');
    }
  }
  std::printf("%s: magic \"%s\", format v%u, %llu bytes\n", path.c_str(),
              magic_display.c_str(), inspected->version,
              static_cast<unsigned long long>(inspected->file_bytes));

  eval::TablePrinter sections({"section", "offset", "payload bytes", "checksum"});
  for (const io::SectionInfo& s : inspected->sections) {
    sections.AddRow({io::SectionName(s.id), std::to_string(s.payload_offset),
                     std::to_string(s.payload_bytes), s.crc_ok ? "ok" : "MISMATCH"});
  }
  sections.Print();

  const std::string magic = inspected->magic;
  if (magic == std::string(core::D3LEngine::kSnapshotMagic, 8)) {
    auto info = core::D3LEngine::ReadSnapshotInfo(path);
    if (!info.ok()) return Fail(info.status());
    std::printf("\nengine snapshot: %zu tables, %zu attributes\n", info->num_tables,
                info->num_attributes);
    std::printf("mappable: %s\n",
                info->mappable
                    ? "yes (v2 aligned index arrays; loads are zero-copy)"
                    : "no (v1 per-entry layout; loads deserialize)");
    {
      // Trial mapped load: reports whether zero-copy actually engages on
      // this platform and how many alignment-padding bytes the writer
      // spent to make the arrays land 8-aligned.
      DataLake trial_lake;
      auto trial = core::D3LEngine::LoadSnapshot(path, &trial_lake,
                                                 core::SnapshotLoadMode::kMapped);
      if (trial.ok()) {
        const core::SnapshotLoadStats& ls = (*trial)->load_stats();
        std::printf("trial load: %s, %llu alignment-padding bytes, "
                    "%.3fs open (%.3fs index parse, %.6fs forest parse)\n",
                    ls.mapped ? "mapped (zero-copy)" : "buffered fallback",
                    static_cast<unsigned long long>(ls.pad_bytes),
                    ls.open_seconds, ls.index_parse_seconds,
                    ls.forest_parse_seconds);
      }
    }
    std::printf("options: minhash=%zu rp_bits=%zu trees=%zux%zu threshold=%.2f "
                "candidates/attr=%zu\n",
                info->options.index.minhash_size, info->options.index.rp_bits,
                info->options.index.forest.num_trees,
                info->options.index.forest.hashes_per_tree,
                info->options.index.lsh_threshold,
                info->options.candidates_per_attribute);
    // The canonical options fingerprint: snapshots agree exactly when a
    // result cache may serve one's entries for the other's queries (the
    // full cache key also folds the index fingerprint — see
    // serving/discovery_service.h).
    std::printf("options fingerprint: %016llx\n",
                static_cast<unsigned long long>(
                    core::OptionsFingerprint(info->options)));
  } else if (magic == std::string(serving::ShardManifest::kMagic, 8)) {
    auto manifest = serving::ShardManifest::Load(path);
    if (!manifest.ok()) return Fail(manifest.status());
    std::printf("\nshard manifest (v%u): %llu tables, %llu attributes, %zu shards (%s)\n",
                manifest->version,
                static_cast<unsigned long long>(manifest->total_tables),
                static_cast<unsigned long long>(manifest->total_attributes),
                manifest->shards.size(), manifest->balance.c_str());
    // Per-shard staleness against the CSV directory (v2 manifests record
    // every table's source size/CRC32; nothing is parsed or profiled).
    std::vector<serving::ShardFreshness> freshness;
    if (!csv_dir.empty()) {
      auto checked = serving::CheckFreshness(*manifest, csv_dir);
      if (!checked.ok()) return Fail(checked.status());
      freshness = std::move(checked->shards);
      if (!checked->new_files.empty()) {
        std::printf("%zu new csv file(s) not in any shard (first: %s)\n",
                    checked->new_files.size(), checked->new_files[0].c_str());
      }
    }
    eval::TablePrinter shards(
        freshness.empty()
            ? std::vector<std::string>{"shard", "file", "tables", "attrs", "bytes"}
            : std::vector<std::string>{"shard", "file", "tables", "attrs", "bytes",
                                       "status"});
    for (size_t s = 0; s < manifest->shards.size(); ++s) {
      const serving::ShardManifestEntry& e = manifest->shards[s];
      std::vector<std::string> row{std::to_string(s), e.file,
                                   std::to_string(e.num_tables),
                                   std::to_string(e.num_attributes),
                                   std::to_string(e.file_bytes)};
      if (!freshness.empty()) {
        const serving::ShardFreshness& f = freshness[s];
        std::string status;
        if (f.fresh()) {
          status = "fresh";
        } else {
          // Unreadable sources are reported apart from missing ones: the
          // checksums could not be re-verified, which is not the same
          // claim as "the file was deleted" — and never "fresh".
          status = "stale (" + std::to_string(f.changed) + " changed, " +
                   std::to_string(f.missing) + " missing";
          if (f.unreadable > 0) {
            status += ", " + std::to_string(f.unreadable) + " unreadable";
          }
          status += ")";
        }
        row.push_back(std::move(status));
      }
      shards.AddRow(std::move(row));
    }
    shards.Print();
    // Shard sets are options-uniform (enforced at Open), so shard 0's
    // options fingerprint is the deployment's cache-compatibility identity.
    if (!manifest->shards.empty()) {
      const std::string shard0 =
          serving::ResolveRelative(path, manifest->shards[0].file);
      auto info = core::D3LEngine::ReadSnapshotInfo(shard0);
      if (info.ok()) {
        std::printf("options fingerprint: %016llx (from %s)\n",
                    static_cast<unsigned long long>(
                        core::OptionsFingerprint(info->options)),
                    manifest->shards[0].file.c_str());
      }
    }
  }
  return 0;
}

/// Parses trailing [k] / --threads=T / --repeat=N / --cache=C / --shards=N
/// / --balance= flags. Flags outside a subcommand's whitelist are rejected,
/// not ignored — a silently dropped --threads would look like configured
/// parallelism.
struct ParsedFlags {
  size_t k = 5;
  size_t threads = 0;
  size_t shards = 2;
  size_t repeat = 1;
  size_t cache = 256;
  serving::ShardingOptions::Balance balance =
      serving::ShardingOptions::Balance::kSizeBalanced;
  bool watch = false;
  bool plain = false;
  size_t interval = 500;
  std::vector<std::string> positional;
  bool ok = true;
};

ParsedFlags ParseFlags(int argc, char** argv, int first, bool allow_threads,
                       bool allow_shard_flags, bool allow_serve_flags = false,
                       bool allow_watch_flags = false) {
  ParsedFlags f;
  const auto reject = [&f](const char* flag, const char* why) {
    std::fprintf(stderr, "%s flag '%s'\n", why, flag);
    f.ok = false;
    return f;
  };
  for (int i = first; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0) {
      if (!allow_threads) return reject(a, "subcommand does not take");
      long v = std::atol(a + 10);
      if (v < 0) return reject(a, "non-negative value required for");
      f.threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--repeat=", 9) == 0) {
      if (!allow_serve_flags) return reject(a, "subcommand does not take");
      long v = std::atol(a + 9);
      if (v <= 0) return reject(a, "positive value required for");
      f.repeat = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--cache=", 8) == 0) {
      if (!allow_serve_flags) return reject(a, "subcommand does not take");
      long v = std::atol(a + 8);
      if (v < 0) return reject(a, "non-negative value required for");
      f.cache = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      if (!allow_shard_flags) return reject(a, "subcommand does not take");
      long v = std::atol(a + 9);
      if (v <= 0) return reject(a, "positive value required for");
      f.shards = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--balance=", 10) == 0) {
      if (!allow_shard_flags) return reject(a, "subcommand does not take");
      if (std::strcmp(a + 10, "rr") == 0) {
        f.balance = serving::ShardingOptions::Balance::kRoundRobin;
      } else if (std::strcmp(a + 10, "cells") == 0) {
        f.balance = serving::ShardingOptions::Balance::kSizeBalanced;
      } else {
        return reject(a, "unknown policy in");
      }
    } else if (std::strcmp(a, "--plain") == 0) {
      if (!allow_serve_flags) return reject(a, "subcommand does not take");
      f.plain = true;
    } else if (std::strcmp(a, "--watch") == 0) {
      if (!allow_watch_flags) return reject(a, "subcommand does not take");
      f.watch = true;
    } else if (std::strncmp(a, "--interval=", 11) == 0) {
      if (!allow_watch_flags) return reject(a, "subcommand does not take");
      long v = std::atol(a + 11);
      if (v <= 0) return reject(a, "positive value required for");
      f.interval = static_cast<size_t>(v);
    } else if (a[0] == '-' && a[1] == '-') {
      return reject(a, "unrecognized");
    } else {
      f.positional.push_back(a);
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);

  if (std::strcmp(argv[1], "build") == 0) {
    if (argc != 4) return Usage(argv[0]);
    return RunBuild(argv[2], argv[3]);
  }

  if (std::strcmp(argv[1], "query") == 0) {
    // --shards / --remote are spelling shortcuts for the explicit
    // manifest: / tcp: backend-ref prefixes; a bare first positional also
    // works (snapshot vs manifest resolved by file magic).
    const bool sharded = (argc >= 3 && std::strcmp(argv[2], "--shards") == 0);
    const bool remote = (argc >= 3 && std::strcmp(argv[2], "--remote") == 0);
    ParsedFlags f = ParseFlags(argc, argv, (sharded || remote) ? 3 : 2,
                               /*allow_threads=*/true,
                               /*allow_shard_flags=*/false,
                               /*allow_serve_flags=*/true);
    if (!f.ok || f.positional.size() < 2 || f.positional.size() > 3) {
      return Usage(argv[0]);
    }
    size_t k = 5;
    if (f.positional.size() == 3) {
      long parsed = std::atol(f.positional[2].c_str());
      if (parsed <= 0) return Usage(argv[0]);
      k = static_cast<size_t>(parsed);
    }
    std::string spec = f.positional[0];
    if (sharded) spec = "manifest:" + spec;
    if (remote) spec = "tcp:" + spec;
    return RunBackendQuery(spec, f.positional[1], k, f.threads, f.repeat,
                           f.cache, f.plain);
  }

  if (std::strcmp(argv[1], "shard") == 0) {
    ParsedFlags f = ParseFlags(argc, argv, 2, /*allow_threads=*/false,
                               /*allow_shard_flags=*/true);
    if (!f.ok || f.positional.size() != 2) return Usage(argv[0]);
    return RunShard(f.positional[0], f.positional[1], f.shards, f.balance);
  }

  if (std::strcmp(argv[1], "update") == 0) {
    // --shards= and --balance= are rejected here on purpose: an update
    // keeps the deployed shard count and balance policy (repartitioning
    // or a policy change is a full `shard` build).
    ParsedFlags f = ParseFlags(argc, argv, 2, /*allow_threads=*/false,
                               /*allow_shard_flags=*/false);
    if (!f.ok || f.positional.size() != 2) return Usage(argv[0]);
    return RunUpdate(f.positional[0], f.positional[1]);
  }

  if (std::strcmp(argv[1], "serve") == 0) {
    ParsedFlags f = ParseFlags(argc, argv, 2, /*allow_threads=*/true,
                               /*allow_shard_flags=*/true,
                               /*allow_serve_flags=*/true,
                               /*allow_watch_flags=*/true);
    if (!f.ok || f.positional.size() < 2 || f.positional.size() > 3) {
      return Usage(argv[0]);
    }
    size_t k = 5;
    if (f.positional.size() == 3) {
      long parsed = std::atol(f.positional[2].c_str());
      if (parsed <= 0) return Usage(argv[0]);
      k = static_cast<size_t>(parsed);
    }
    return RunServe(f.positional[0], f.positional[1], k, f.threads, f.cache,
                    f.shards, f.balance, f.watch, f.interval);
  }

  if (std::strcmp(argv[1], "info") == 0) {
    if (argc != 3 && argc != 4) return Usage(argv[0]);
    return RunInfo(argv[2], argc == 4 ? argv[3] : "");
  }

  return Usage(argv[0]);
}

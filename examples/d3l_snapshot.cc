// Snapshot CLI: profile a CSV lake once, then serve discovery queries from
// the persisted index ("profile once, serve many").
//
//   $ ./build/d3l_snapshot build <csv_dir> <out.d3l>
//       Loads every *.csv in <csv_dir>, runs Algorithm 1 over the lake and
//       writes the built engine (profiles, signatures, LSH structures,
//       schema metadata) to <out.d3l>.
//
//   $ ./build/d3l_snapshot query <snapshot.d3l> <target.csv> [k]
//       Loads the snapshot — no re-profiling of the lake — and prints the
//       top-k datasets related to the target table (default k = 5).
//
// The snapshot is self-contained: `query` never touches the original CSV
// directory, which is what makes a snapshot the unit of deployment for a
// serving replica.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/query.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "table/csv.h"
#include "table/lake.h"

using namespace d3l;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s build <csv_dir> <out.d3l>\n"
               "  %s query <snapshot.d3l> <target.csv> [k]\n",
               argv0, argv0);
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int RunBuild(const std::string& csv_dir, const std::string& out_path) {
  DataLake lake;
  Status load = lake.LoadDirectory(csv_dir);
  if (!load.ok()) return Fail(load);
  if (lake.size() == 0) {
    std::fprintf(stderr, "no CSV files found in %s\n", csv_dir.c_str());
    return 1;
  }
  LakeStats stats = lake.Stats();
  std::printf("loaded %zu tables, %zu attributes from %s\n", stats.num_tables,
              stats.num_attributes, csv_dir.c_str());

  core::D3LEngine engine;
  eval::Timer timer;
  Status indexed = engine.IndexLake(lake);
  if (!indexed.ok()) return Fail(indexed);
  std::printf("indexed in %.3fs (profiling %.3fs, insertion %.3fs)\n", timer.Seconds(),
              engine.build_stats().profile_seconds, engine.build_stats().insert_seconds);

  Status saved = engine.SaveSnapshot(out_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("snapshot written to %s\n", out_path.c_str());
  return 0;
}

int RunQuery(const std::string& snapshot_path, const std::string& target_csv, size_t k) {
  DataLake lake_metadata;
  eval::Timer timer;
  auto loaded = core::D3LEngine::LoadSnapshot(snapshot_path, &lake_metadata);
  if (!loaded.ok()) return Fail(loaded.status());
  std::unique_ptr<core::D3LEngine> engine = std::move(loaded).ValueOrDie();
  std::printf("snapshot loaded in %.3fs: %zu tables, %zu attributes "
              "(original profiling cost: %.3fs)\n",
              timer.Seconds(), lake_metadata.size(),
              engine->indexes().num_attributes(),
              engine->build_stats().profile_seconds);

  auto target = ReadCsvFile(target_csv);
  if (!target.ok()) return Fail(target.status());
  std::printf("query target: %s (%zu columns)\n\n", target->name().c_str(),
              target->num_columns());

  auto res = engine->Search(*target, k);
  if (!res.ok()) return Fail(res.status());

  eval::TablePrinter out({"rank", "dataset", "distance"});
  int rank = 1;
  for (const auto& m : res->ranked) {
    out.AddRow({std::to_string(rank++), lake_metadata.table(m.table_index).name(),
                eval::TablePrinter::Num(m.distance)});
  }
  out.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  if (std::strcmp(argv[1], "build") == 0) {
    if (argc != 4) return Usage(argv[0]);
    return RunBuild(argv[2], argv[3]);
  }
  if (std::strcmp(argv[1], "query") == 0) {
    if (argc != 4 && argc != 5) return Usage(argv[0]);
    size_t k = 5;
    if (argc == 5) {
      long parsed = std::atol(argv[4]);
      if (parsed <= 0) return Usage(argv[0]);
      k = static_cast<size_t>(parsed);
    }
    return RunQuery(argv[2], argv[3], k);
  }
  return Usage(argv[0]);
}

// Shard-serving daemon: one process serving part (or all) of a sharded
// deployment over the D3L RPC protocol.
//
//   $ ./build/shard_server <base.manifest> [--port=P] [--host=H]
//                          [--serve-shards=i,j,...] [--threads=T]
//                          [--workers=W] [--port-file=PATH] [--timeout=SEC]
//   $ ./build/shard_server --stats=HOST:PORT
//
// The second form is a client: it asks a RUNNING server for its live
// metrics over the STAT verb, prints the Prometheus text exposition and
// exits — `curl` for the wire protocol. A running daemon also answers a
// `stats` line on stdin by printing its own exposition.
//
// Loads the manifest's shards — all of them, or the --serve-shards subset
// that makes this process one member of a multi-server deployment — behind
// a serving::ShardedEngine and answers the wire-format protocol (src/rpc)
// on a TCP socket: INFO, PROF, SRCH (full servers), the DCNT/SCOR
// scatter-gather phases, and RELD, which re-opens the manifest in place
// (reusing unchanged replicas, exactly like the local hot-reload path) and
// swaps generations without dropping in-flight queries.
//
// --port=0 (the default) takes a kernel-assigned port; --port-file=PATH
// writes the bound "host port" line so scripts (examples/remote_smoke.sh,
// the CI remote-serving smoke test) can find an ephemeral server. The
// process serves until stdin reports `quit` or EOF, so orchestration is a
// pipe away — no signal handling required.
//
// A typical two-server deployment over a 2-shard build:
//
//   $ ./build/d3l_snapshot shard lake_csvs out --shards=2
//   $ ./build/shard_server out.manifest --serve-shards=0 --port=7001 &
//   $ ./build/shard_server out.manifest --serve-shards=1 --port=7002 &
//   $ ./build/d3l_snapshot query --remote 127.0.0.1:7001,127.0.0.1:7002 target.csv 5
//
// The remote answer is byte-identical to `query --shards out.manifest` —
// the exactness contract serving::RemoteBackend documents and
// tests/remote_test.cc enforces.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "serving/sharded_engine.h"

using namespace d3l;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <base.manifest> [--port=P] [--host=H]\n"
               "       [--serve-shards=i,j,...] [--threads=T] [--workers=W]\n"
               "       [--port-file=PATH] [--timeout=SEC]\n"
               "       %s --stats=HOST:PORT\n",
               argv0, argv0);
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// --stats=HOST:PORT client mode: one STAT round trip, exposition to
/// stdout.
int FetchStats(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size()) {
    return Fail(Status::InvalidArgument("--stats needs HOST:PORT, got '" +
                                        endpoint + "'"));
  }
  const long port = std::atol(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Fail(Status::InvalidArgument("bad port in '" + endpoint + "'"));
  }
  rpc::RpcClient client(endpoint.substr(0, colon),
                        static_cast<uint16_t>(port));
  const std::string request =
      rpc::BuildFrame(rpc::kMethodStat, [](io::Writer&) {});
  auto r = client.CallChecked(rpc::kMethodStat, request);
  if (!r.ok()) return Fail(r.status());
  const std::string text = (*r)->ReadString();
  if (!(*r)->status().ok()) return Fail((*r)->status());
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

bool ParseShardList(const char* list, std::vector<size_t>* out) {
  size_t value = 0;
  bool in_number = false;
  for (const char* p = list;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<size_t>(*p - '0');
      in_number = true;
    } else if (*p == ',' || *p == '\0') {
      if (!in_number) return false;
      out->push_back(value);
      value = 0;
      in_number = false;
      if (*p == '\0') return true;
    } else {
      return false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strncmp(argv[1], "--stats=", 8) == 0) {
    if (argc != 2) return Usage(argv[0]);
    return FetchStats(argv[1] + 8);
  }
  const std::string manifest_path = argv[1];

  rpc::RpcServerOptions server_options;
  serving::ShardedEngineOptions engine_options;
  std::string port_file;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--port=", 7) == 0) {
      const long v = std::atol(a + 7);
      if (v < 0 || v > 65535) return Usage(argv[0]);
      server_options.port = static_cast<uint16_t>(v);
    } else if (std::strncmp(a, "--host=", 7) == 0) {
      server_options.host = a + 7;
    } else if (std::strncmp(a, "--serve-shards=", 15) == 0) {
      if (!ParseShardList(a + 15, &engine_options.serve_shards)) {
        return Usage(argv[0]);
      }
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      const long v = std::atol(a + 10);
      if (v < 0) return Usage(argv[0]);
      engine_options.num_threads = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      const long v = std::atol(a + 10);
      if (v <= 0) return Usage(argv[0]);
      server_options.num_workers = static_cast<size_t>(v);
    } else if (std::strncmp(a, "--port-file=", 12) == 0) {
      port_file = a + 12;
    } else if (std::strncmp(a, "--timeout=", 10) == 0) {
      const double v = std::atof(a + 10);
      if (v <= 0) return Usage(argv[0]);
      server_options.io_timeout_seconds = v;
    } else {
      return Usage(argv[0]);
    }
  }

  auto opened = serving::ShardedEngine::Open(manifest_path, engine_options);
  if (!opened.ok()) return Fail(opened.status());
  std::shared_ptr<const serving::ShardedEngine> engine =
      std::move(*opened);

  // RELD re-opens the manifest in place, handing the current generation in
  // for replica reuse — an incremental update pays only for rebuilt shards.
  rpc::RpcServer::ReloadFn reload =
      [manifest_path, engine_options](const serving::ShardedEngine* current)
      -> Result<std::shared_ptr<const serving::ShardedEngine>> {
    D3L_ASSIGN_OR_RETURN(
        std::unique_ptr<serving::ShardedEngine> next,
        serving::ShardedEngine::Open(manifest_path, engine_options, current));
    return std::shared_ptr<const serving::ShardedEngine>(std::move(next));
  };

  auto started =
      rpc::RpcServer::Start(engine, server_options, std::move(reload));
  if (!started.ok()) return Fail(started.status());
  std::unique_ptr<rpc::RpcServer> server = std::move(*started);

  const serving::BackendInfo info = engine->Info();
  std::printf("serving %zu of %zu shards (%zu tables, %zu attributes) on "
              "%s:%u, index fingerprint %016llx\n",
              engine->served_shards().size(), info.num_shards,
              engine->ServedTables().size(), info.num_attributes,
              server->host().c_str(), server->port(),
              static_cast<unsigned long long>(info.index_fingerprint));
  std::fflush(stdout);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%s %u\n", server->host().c_str(), server->port());
    std::fclose(f);
  }

  // Serve until stdin says quit (or closes): orchestration by pipe, the
  // same convention d3l_snapshot's serve loop uses. `stats` prints the
  // live exposition — the same bytes a STAT request returns.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      const std::string text = obs::MetricRegistry::Default().ExportText();
      std::fwrite(text.data(), 1, text.size(), stdout);
      std::fflush(stdout);
    }
  }
  server->Stop();
  std::printf("served %llu requests\n",
              static_cast<unsigned long long>(server->requests_served()));
  return 0;
}

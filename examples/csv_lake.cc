// Loading a data lake from CSV files on disk.
//
// With no directory argument, writes a handful of CSVs to a temporary
// directory, loads them with DataLake::LoadDirectory, and runs a discovery
// query — the workflow a downstream user with a folder of open-data CSVs
// would follow. Pass a directory to load your own CSVs instead; the first
// loaded table is then used as the query target.
//
// With --snapshot=PATH the example demonstrates profile-once/query-many:
// the first run indexes the lake and saves the engine to PATH; subsequent
// runs open the snapshot through serving::OpenBackend ("snapshot:PATH", the
// same factory that opens shard manifests and remote deployments) instead
// of re-profiling.
//
// Queries go through the unified serving API: the engine is wrapped in a
// serving::EngineBackend and served by a DiscoveryService (async submit +
// result cache). With --repeat=N the query is served N times to show the
// cache at work — every repeat after the first is a hit.
//
//   $ ./build/csv_lake [DIR] [--snapshot=PATH] [--repeat=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "core/query.h"
#include "eval/table_printer.h"
#include "serving/backend_ref.h"
#include "serving/discovery_service.h"
#include "serving/search_backend.h"
#include "table/csv.h"
#include "table/lake.h"

using namespace d3l;
namespace fs = std::filesystem;

namespace {
Table MakeTable(std::string name, std::vector<std::string> cols,
                std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}
}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string dir_arg;
  size_t repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
      snapshot_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      long v = std::atol(argv[i] + 9);
      if (v <= 0) {
        std::fprintf(stderr, "positive value required for '%s'\n", argv[i]);
        return 2;
      }
      repeat = static_cast<size_t>(v);
    } else if (dir_arg.empty()) {
      dir_arg = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [DIR] [--snapshot=PATH] [--repeat=N]\n", argv[0]);
      return 2;
    }
  }
  const bool own_dir = dir_arg.empty();
  fs::path dir;
  if (own_dir) {
    dir = fs::temp_directory_path() / "d3l_csv_lake_example";
    fs::create_directories(dir);

    // Stage some open-data-style CSVs (quoting included).
    WriteCsvFile(MakeTable("hospitals", {"Hospital", "City", "Beds"},
                           {{"Manchester Royal", "Manchester", "950"},
                            {"Salford Royal", "Salford", "720"},
                            {"Leeds General", "Leeds", "1100"}}),
                 (dir / "hospitals.csv").string())
        .CheckOK();
    WriteCsvFile(MakeTable("hospital_funding", {"Provider", "City", "Funding"},
                           {{"Manchester Royal", "Manchester", "1250000"},
                            {"Salford Royal", "Salford", "870000"}}),
                 (dir / "hospital_funding.csv").string())
        .CheckOK();
    WriteCsvFile(MakeTable("bus_routes", {"Route", "Operator"},
                           {{"192", "Stagecoach"}, {"43", "First"}}),
                 (dir / "bus_routes.csv").string())
        .CheckOK();
  } else {
    dir = dir_arg;
  }

  // Load the directory as a lake.
  DataLake lake;
  Status load = lake.LoadDirectory(dir.string());
  if (!load.ok()) {
    fprintf(stderr, "failed to load %s: %s\n", dir.string().c_str(),
            load.ToString().c_str());
    return 1;
  }
  if (lake.size() == 0) {
    fprintf(stderr, "no CSV files found in %s\n", dir.string().c_str());
    return 1;
  }
  LakeStats stats = lake.Stats();
  printf("loaded %zu tables, %zu attributes (%.0f%% numeric)\n\n", stats.num_tables,
         stats.num_attributes, stats.numeric_ratio * 100);

  // Discover datasets related to a target: a hospital table for the staged
  // demo, or the first loaded table for a user-supplied directory. With
  // --snapshot, an existing snapshot is served directly (profile once,
  // query many); otherwise the freshly built engine is persisted for the
  // next run.
  std::unique_ptr<core::D3LEngine> engine;
  std::unique_ptr<serving::SearchBackend> opened_backend;  // snapshot-loaded
  std::optional<serving::EngineBackend> inline_backend;    // freshly built
  const serving::SearchBackend* backend = nullptr;
  if (!snapshot_path.empty() && fs::exists(snapshot_path)) {
    // The single factory every front-end uses: "snapshot:<path>" opens a
    // self-contained EngineBackend (no re-profiling; result table indexes
    // resolve against the snapshot's recorded metadata, which may disagree
    // with the directory's current contents).
    auto loaded = serving::OpenBackend("snapshot:" + snapshot_path);
    loaded.status().CheckOK();
    opened_backend = std::move(loaded).ValueOrDie();
    backend = opened_backend.get();
    printf("served from snapshot %s (skipped re-profiling %zu attributes)\n\n",
           snapshot_path.c_str(), backend->Info().num_attributes);
  } else {
    engine = std::make_unique<core::D3LEngine>();
    engine->IndexLake(lake).CheckOK();
    if (!snapshot_path.empty()) {
      engine->SaveSnapshot(snapshot_path).CheckOK();
      printf("snapshot saved to %s\n\n", snapshot_path.c_str());
    }
    inline_backend.emplace(engine.get(), &lake);
    backend = &*inline_backend;
  }
  Table target = own_dir ? MakeTable("my_hospitals", {"Hospital Name", "Town"},
                                     {{"Salford Royal", "Salford"},
                                      {"Leeds General", "Leeds"}})
                         : lake.table(0);
  printf("query target: %s\n\n", target.name().c_str());

  // Serve through the unified API: backend + service with a result cache.
  // The same lines would serve a sharded or remote backend instead. The
  // repeats below are strictly sequential, so skip the worker pool and run
  // inline.
  serving::DiscoveryServiceOptions service_options;
  service_options.inline_execution = true;
  serving::DiscoveryService service(backend, service_options);

  // A lake table used as target trivially retrieves itself; ask for one
  // extra result and drop the self-match below.
  const size_t k = own_dir ? 3 : 4;
  serving::QueryResponse response;
  for (size_t i = 0; i < repeat; ++i) {
    response = service.Query({&target, k, std::nullopt, /*bypass_cache=*/false});
    response.result.status().CheckOK();
  }

  eval::TablePrinter out({"rank", "dataset", "distance"});
  int r = 1;
  for (const auto& m : response.result->ranked) {
    if (backend->table_name(m.table_index) == target.name()) continue;
    if (r > 3) break;
    out.AddRow({std::to_string(r++), backend->table_name(m.table_index),
                eval::TablePrinter::Num(m.distance)});
  }
  out.Print();

  if (repeat > 1) {
    serving::ServiceStats stats = service.Stats();
    printf("\nserved %zu repeats: %zu cache hits / %zu misses\n", repeat,
           stats.cache_hits, stats.cache_misses);
  }

  if (own_dir) fs::remove_all(dir);
  return 0;
}

// Loading a data lake from CSV files on disk.
//
// Writes a handful of CSVs to a temporary directory, loads them with
// DataLake::LoadDirectory, and runs a discovery query — the workflow a
// downstream user with a folder of open-data CSVs would follow.
//
//   $ ./build/examples/csv_lake
#include <cstdio>
#include <filesystem>

#include "core/query.h"
#include "eval/table_printer.h"
#include "table/csv.h"
#include "table/lake.h"

using namespace d3l;
namespace fs = std::filesystem;

namespace {
Table MakeTable(std::string name, std::vector<std::string> cols,
                std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}
}  // namespace

int main() {
  fs::path dir = fs::temp_directory_path() / "d3l_csv_lake_example";
  fs::create_directories(dir);

  // Stage some open-data-style CSVs (quoting included).
  WriteCsvFile(MakeTable("hospitals", {"Hospital", "City", "Beds"},
                         {{"Manchester Royal", "Manchester", "950"},
                          {"Salford Royal", "Salford", "720"},
                          {"Leeds General", "Leeds", "1100"}}),
               (dir / "hospitals.csv").string())
      .CheckOK();
  WriteCsvFile(MakeTable("hospital_funding", {"Provider", "City", "Funding"},
                         {{"Manchester Royal", "Manchester", "1250000"},
                          {"Salford Royal", "Salford", "870000"}}),
               (dir / "hospital_funding.csv").string())
      .CheckOK();
  WriteCsvFile(MakeTable("bus_routes", {"Route", "Operator"},
                         {{"192", "Stagecoach"}, {"43", "First"}}),
               (dir / "bus_routes.csv").string())
      .CheckOK();

  // Load the directory as a lake.
  DataLake lake;
  lake.LoadDirectory(dir.string()).CheckOK();
  LakeStats stats = lake.Stats();
  printf("loaded %zu tables, %zu attributes (%.0f%% numeric)\n\n", stats.num_tables,
         stats.num_attributes, stats.numeric_ratio * 100);

  // Discover datasets related to a hospital target.
  core::D3LEngine engine;
  engine.IndexLake(lake).CheckOK();
  Table target = MakeTable("my_hospitals", {"Hospital Name", "Town"},
                           {{"Salford Royal", "Salford"}, {"Leeds General", "Leeds"}});
  auto res = engine.Search(target, 3);
  res.status().CheckOK();

  eval::TablePrinter out({"rank", "dataset", "distance"});
  int r = 1;
  for (const auto& m : res->ranked) {
    out.AddRow({std::to_string(r++), lake.table(m.table_index).name(),
                eval::TablePrinter::Num(m.distance)});
  }
  out.Print();

  fs::remove_all(dir);
  return 0;
}

// Loading a data lake from CSV files on disk.
//
// With no argument, writes a handful of CSVs to a temporary directory,
// loads them with DataLake::LoadDirectory, and runs a discovery query —
// the workflow a downstream user with a folder of open-data CSVs would
// follow. Pass a directory to load your own CSVs instead; the first
// loaded table is then used as the query target.
//
//   $ ./build/csv_lake [DIR]
#include <cstdio>
#include <filesystem>

#include "core/query.h"
#include "eval/table_printer.h"
#include "table/csv.h"
#include "table/lake.h"

using namespace d3l;
namespace fs = std::filesystem;

namespace {
Table MakeTable(std::string name, std::vector<std::string> cols,
                std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}
}  // namespace

int main(int argc, char** argv) {
  const bool own_dir = argc < 2;
  fs::path dir;
  if (own_dir) {
    dir = fs::temp_directory_path() / "d3l_csv_lake_example";
    fs::create_directories(dir);

    // Stage some open-data-style CSVs (quoting included).
    WriteCsvFile(MakeTable("hospitals", {"Hospital", "City", "Beds"},
                           {{"Manchester Royal", "Manchester", "950"},
                            {"Salford Royal", "Salford", "720"},
                            {"Leeds General", "Leeds", "1100"}}),
                 (dir / "hospitals.csv").string())
        .CheckOK();
    WriteCsvFile(MakeTable("hospital_funding", {"Provider", "City", "Funding"},
                           {{"Manchester Royal", "Manchester", "1250000"},
                            {"Salford Royal", "Salford", "870000"}}),
                 (dir / "hospital_funding.csv").string())
        .CheckOK();
    WriteCsvFile(MakeTable("bus_routes", {"Route", "Operator"},
                           {{"192", "Stagecoach"}, {"43", "First"}}),
                 (dir / "bus_routes.csv").string())
        .CheckOK();
  } else {
    dir = argv[1];
  }

  // Load the directory as a lake.
  DataLake lake;
  Status load = lake.LoadDirectory(dir.string());
  if (!load.ok()) {
    fprintf(stderr, "failed to load %s: %s\n", dir.string().c_str(),
            load.ToString().c_str());
    return 1;
  }
  if (lake.size() == 0) {
    fprintf(stderr, "no CSV files found in %s\n", dir.string().c_str());
    return 1;
  }
  LakeStats stats = lake.Stats();
  printf("loaded %zu tables, %zu attributes (%.0f%% numeric)\n\n", stats.num_tables,
         stats.num_attributes, stats.numeric_ratio * 100);

  // Discover datasets related to a target: a hospital table for the staged
  // demo, or the first loaded table for a user-supplied directory.
  core::D3LEngine engine;
  engine.IndexLake(lake).CheckOK();
  Table target = own_dir ? MakeTable("my_hospitals", {"Hospital Name", "Town"},
                                     {{"Salford Royal", "Salford"},
                                      {"Leeds General", "Leeds"}})
                         : lake.table(0);
  printf("query target: %s\n\n", target.name().c_str());
  // A lake table used as target trivially retrieves itself; ask for one
  // extra result and drop the self-match below.
  auto res = engine.Search(target, own_dir ? 3 : 4);
  res.status().CheckOK();

  eval::TablePrinter out({"rank", "dataset", "distance"});
  int r = 1;
  for (const auto& m : res->ranked) {
    if (lake.table(m.table_index).name() == target.name()) continue;
    if (r > 3) break;
    out.AddRow({std::to_string(r++), lake.table(m.table_index).name(),
                eval::TablePrinter::Num(m.distance)});
  }
  out.Print();

  if (own_dir) fs::remove_all(dir);
  return 0;
}

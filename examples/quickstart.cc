// Quickstart: build a tiny in-memory lake, index it with D3L, and run a
// top-k relatedness query for a target table.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/query.h"
#include "eval/table_printer.h"
#include "table/lake.h"

using namespace d3l;

namespace {
Table MakeTable(std::string name, std::vector<std::string> cols,
                std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}
}  // namespace

int main() {
  // 1. Assemble a lake: two store datasets and one unrelated dataset.
  DataLake lake;
  lake.AddTable(MakeTable("store_locations", {"Store", "City", "Postcode"},
                          {{"Northern Widgets", "Manchester", "M1 2AB"},
                           {"Harbor Goods", "Liverpool", "L3 9XY"},
                           {"Crown Supplies", "Leeds", "LS1 4QQ"},
                           {"Pennine Traders", "Bradford", "BD1 5TT"}}))
      .CheckOK();
  lake.AddTable(MakeTable("store_revenue", {"Store Name", "City", "Revenue"},
                          {{"Northern Widgets", "Manchester", "125000"},
                           {"Harbor Goods", "Liverpool", "98000"},
                           {"Crown Supplies", "Leeds", "143000"}}))
      .CheckOK();
  lake.AddTable(MakeTable("paint_colors", {"Shade", "Stars"},
                          {{"Crimson", "4"}, {"Teal", "5"}, {"Olive", "3"}}))
      .CheckOK();

  // 2. Index the lake (Algorithm 1 over every attribute).
  core::D3LEngine engine;
  engine.IndexLake(lake).CheckOK();
  printf("indexed %zu attributes from %zu tables\n\n",
         engine.indexes().num_attributes(), lake.size());

  // 3. Query: which lake datasets relate to this target?
  Table target = MakeTable("target_shops", {"Shop", "Town", "Postcode"},
                           {{"Northern Widgets", "Manchester", "M1 2AB"},
                            {"Pennine Traders", "Bradford", "BD1 5TT"}});
  auto result = engine.Search(target, 3);
  result.status().CheckOK();

  // 4. Inspect the ranking: smaller distance = more related.
  eval::TablePrinter out({"rank", "dataset", "distance", "DN", "DV", "DF", "DE", "DD"});
  int rank = 1;
  for (const core::TableMatch& m : result->ranked) {
    const auto& ed = m.evidence_distances;
    out.AddRow({std::to_string(rank++), lake.table(m.table_index).name(),
                eval::TablePrinter::Num(m.distance), eval::TablePrinter::Num(ed[0], 2),
                eval::TablePrinter::Num(ed[1], 2), eval::TablePrinter::Num(ed[2], 2),
                eval::TablePrinter::Num(ed[3], 2), eval::TablePrinter::Num(ed[4], 2)});
  }
  out.Print();
  printf("\nThe two store datasets rank above the unrelated paint table.\n");
  return 0;
}

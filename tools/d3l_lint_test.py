#!/usr/bin/env python3
"""Self-test for tools/d3l_lint.py against the known-bad fixture trees.

Each fixture root under tools/lint_fixtures/ is a miniature repo layout
carrying exactly one class of violation. The lint must (a) exit non-zero on
every fixture, (b) emit the expected rule tag the expected number of times,
and (c) emit nothing from any other rule family — a lint that cries wolf on
clean code would get waived into uselessness within a week.

Run directly or via `ctest -R lint_selftest`.
"""

import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
LINT = TOOLS / "d3l_lint.py"
FIXTURES = TOOLS / "lint_fixtures"
MANIFEST = TOOLS / "frozen_codes.json"

# fixture dir -> {rule tag: expected finding count}
CASES = {
    "bad_status_enum": {"frozen-constants": 2},   # kIOError + kNotFound swapped
    "bad_naked_mutex": {"raw-mutex": 1},
    "bad_unchecked_section": {"reader-sections": 2},  # no-EndSection + dropped
    "bad_naked_new": {"naked-new": 3},  # new, delete, reasonless waiver
}

ALL_RULES = {"frozen-constants", "naked-new", "raw-mutex", "reader-sections"}


def run_lint(root):
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(root),
         "--manifest", str(MANIFEST)],
        capture_output=True, text=True)


def main():
    failures = []
    for case, expected in CASES.items():
        root = FIXTURES / case
        proc = run_lint(root)
        out = proc.stdout
        if proc.returncode != 1:
            failures.append(f"{case}: expected exit 1, got {proc.returncode}\n"
                            f"{out}{proc.stderr}")
            continue
        for rule, want in expected.items():
            got = out.count(f"[{rule}]")
            if got != want:
                failures.append(
                    f"{case}: expected {want} [{rule}] finding(s), got {got}\n{out}")
        for rule in ALL_RULES - set(expected):
            if f"[{rule}]" in out:
                failures.append(
                    f"{case}: unexpected [{rule}] finding (false positive)\n{out}")

    # The lint must also be runnable at all (usage error is exit 2, not 1).
    proc = run_lint(FIXTURES / "bad_naked_new")
    if proc.returncode == 2:
        failures.append(f"lint reported a usage/manifest error:\n{proc.stderr}")

    if failures:
        print("d3l_lint_test: FAIL", file=sys.stderr)
        for f in failures:
            print("---\n" + f, file=sys.stderr)
        return 1
    print(f"d3l_lint_test: {len(CASES)} fixture case(s) behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Lint fixture — NOT compiled. Raw owning pointers: both the naked `new`
// and the naked `delete` must be flagged (and a waiver comment without a
// reason must itself be a finding, not a pass).
namespace d3l::core {

struct Buffer {
  int* data = nullptr;
  int size = 0;
};

Buffer MakeBuffer(int n) {
  Buffer b;
  b.data = new int[n];
  b.size = n;
  return b;
}

void FreeBuffer(Buffer& b) {
  // d3l-lint: allow(naked-new)
  delete[] b.data;
  b.data = nullptr;
}

}  // namespace d3l::core

// Lint fixture — NOT compiled. EndSection IS the checksum verification;
// dropping its Status on the floor means corruption is detected and then
// ignored. d3l_lint.py must flag the bare EndSection statement.
#include "io/binary_io.h"

namespace d3l::serving {

void SkipFooter(io::Reader& r) {
  Status open = r.OpenSection(0x46545230);
  if (!open.ok()) return;
  r.EndSection();
}

}  // namespace d3l::serving

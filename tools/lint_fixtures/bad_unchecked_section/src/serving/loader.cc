// Lint fixture — NOT compiled. OpenSection with no EndSection anywhere in
// the file: the section's checksum is never verified, so a corrupt payload
// parses as clean data. d3l_lint.py must flag the OpenSection call.
#include "io/binary_io.h"

namespace d3l::serving {

Status LoadHeader(io::Reader& r) {
  Status open = r.OpenSection(0x54534554);
  if (!open.ok()) return open;
  return Status::OK();
}

}  // namespace d3l::serving

// Lint fixture — NOT compiled, NOT the real status.h.
// kIOError and kNotFound are renumbered (swapped) relative to
// tools/frozen_codes.json; d3l_lint.py must flag both. A peer built from
// this header would report file corruption as missing shards and vice versa.
#pragma once

namespace d3l {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 3,
  kNotFound = 2,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kUnavailable = 7,
};

}  // namespace d3l

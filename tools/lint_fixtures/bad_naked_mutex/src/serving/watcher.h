// Lint fixture — NOT compiled. A raw std::mutex member outside the
// capability-annotated wrappers in src/common/thread_annotations.h:
// clang's -Wthread-safety cannot see locking through it, so the guarded
// members silently lose their analysis. d3l_lint.py must flag the member.
#pragma once

#include <mutex>

namespace d3l::serving {

class Watcher {
 public:
  void Poke();

 private:
  std::mutex mu_;
  int ticks_ = 0;
};

}  // namespace d3l::serving

#!/usr/bin/env python3
"""Repo lint for invariants the compiler cannot see.

Four rule families, each mirroring a breakage this codebase actually cares
about (CI runs this in the static-analysis job; `ctest -R lint` runs it
locally):

  frozen-constants   The StatusCode enum, RPC verbs/magic, shard-manifest
                     magic/version, and snapshot magic/version must match
                     tools/frozen_codes.json byte for byte. These values are
                     persisted on disk and on the wire; renumbering one makes
                     old shards unreadable and old peers misinterpret errors.
  naked-new          No naked `new` / `delete` outside tests. `new` is
                     allowed when the same or previous line wraps it into a
                     unique_ptr/shared_ptr (the private-constructor factory
                     idiom); anything else needs a waiver comment.
  raw-mutex          No raw std::mutex / std::shared_mutex /
                     std::condition_variable outside
                     src/common/thread_annotations.h — everything must go
                     through the capability-annotated wrappers so clang's
                     -Wthread-safety actually sees the locking.
  reader-sections    Every io::Reader/Writer OpenSection must be paired with
                     an EndSection (the call that verifies the section
                     checksum), and every EndSection result must be consumed
                     — a dropped EndSection Status means a corrupt section
                     parses as clean data.

Waiver: append `d3l-lint: allow(<rule>) -- <reason>` in a comment on the
offending line or the line above it. The reason is mandatory prose, not a
tag; waivers without one are themselves findings.

Exit status: 0 = clean, 1 = findings, 2 = usage/manifest error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench", "examples")
SOURCE_SUFFIXES = (".h", ".cc")

# Files the rules themselves are about, exempted from the rule they implement.
RAW_MUTEX_EXEMPT = {"src/common/thread_annotations.h"}
READER_SECTION_EXEMPT = {"src/io/binary_io.h", "src/io/binary_io.cc"}

WAIVER_RE = re.compile(r"d3l-lint:\s*allow\((?P<rule>[a-z-]+)\)(?P<reason>.*)")


class Linter:
    def __init__(self, root: Path, manifest_path: Path):
        self.root = root
        self.manifest_path = manifest_path
        self.findings = []

    def finding(self, rel, lineno, rule, msg):
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # ----- shared helpers ---------------------------------------------------

    def source_files(self):
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in SOURCE_SUFFIXES and path.is_file():
                    yield path

    @staticmethod
    def strip_code(line):
        """Remove string/char literals and // comments so rule regexes only
        see code. Good enough for this codebase: no raw strings, no /* */
        spanning lines in rule-relevant positions."""
        out = []
        i, n = 0, len(line)
        quote = None
        while i < n:
            c = line[i]
            if quote:
                if c == "\\":
                    i += 2
                    continue
                if c == quote:
                    quote = None
                i += 1
                continue
            if c in ('"', "'"):
                quote = c
                i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                end = line.find("*/", i + 2)
                if end < 0:
                    break
                i = end + 2
                continue
            out.append(c)
            i += 1
        return "".join(out)

    def waived(self, rel, lines, idx, rule):
        """True if line idx (0-based) or the contiguous comment block above it
        carries a valid waiver for `rule`. A waiver with no reason is reported
        and does not waive."""
        candidates = [idx]
        j = idx - 1
        while j >= 0 and lines[j].lstrip().startswith("//"):
            candidates.append(j)
            j -= 1
        for j in candidates:
            m = WAIVER_RE.search(lines[j])
            if m and m.group("rule") == rule:
                reason = m.group("reason").strip(" -:\t")
                if not reason:
                    self.finding(rel, j + 1, rule,
                                 "waiver comment without a reason")
                return bool(reason)
        return False

    # ----- rule: frozen-constants -------------------------------------------

    @staticmethod
    def _int_of(text):
        """Evaluate the integer constant expressions the frozen headers use:
        decimal/hex literals with u/l suffixes, optionally `A << B`."""
        text = text.strip().rstrip(";").strip()
        shift = re.fullmatch(r"(.+?)<<(.+)", text)
        if shift:
            return Linter._int_of(shift.group(1)) << Linter._int_of(shift.group(2))
        text = re.sub(r"[uUlL]+$", "", text.strip())
        return int(text, 0)

    def _check_named_ints(self, rel, text, expected, rule):
        for name, want in expected.items():
            m = re.search(rf"\b{name}\s*=\s*([^;,\n]+)[;,]", text)
            if not m:
                self.finding(rel, 1, rule, f"frozen constant {name} not found")
                continue
            try:
                got = self._int_of(m.group(1))
            except ValueError:
                self.finding(rel, 1, rule,
                             f"{name}: cannot parse '{m.group(1).strip()}'")
                continue
            if got != want:
                self.finding(
                    rel, 1, rule,
                    f"{name} = {got} but tools/frozen_codes.json freezes "
                    f"{want} — existing values must never be renumbered")

    def check_frozen(self):
        rule = "frozen-constants"
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"d3l_lint: cannot load manifest {self.manifest_path}: {e}",
                  file=sys.stderr)
            sys.exit(2)

        for family, spec in manifest.items():
            if family.startswith("_"):
                continue
            rel = spec["file"]
            path = self.root / rel
            if not path.is_file():
                continue  # fixture roots carry only the files under test
            text = path.read_text()

            if family == "status_codes":
                self._check_named_ints(rel, text, spec["values"], rule)
                continue

            magic = spec.get("magic")
            if magic is not None:
                name = spec.get("magic_name", "kMagic")
                m = re.search(rf'\b{name}\s*\[\s*9\s*\]\s*=\s*"([^"]*)"', text)
                if not m:
                    self.finding(rel, 1, rule, f"magic {name} not found")
                elif m.group(1) != magic:
                    self.finding(
                        rel, 1, rule,
                        f'{name} = "{m.group(1)}" but the manifest freezes '
                        f'"{magic}"')

            self._check_named_ints(rel, text, spec.get("ints", {}), rule)

            for name, fourcc in spec.get("fourccs", {}).items():
                m = re.search(rf'\b{name}\s*=\s*io::SectionId\("([^"]*)"\)', text)
                if not m:
                    self.finding(rel, 1, rule, f"fourcc {name} not found")
                elif m.group(1) != fourcc:
                    self.finding(
                        rel, 1, rule,
                        f'{name} = SectionId("{m.group(1)}") but the manifest '
                        f'freezes "{fourcc}"')

    # ----- rule: naked-new --------------------------------------------------

    WRAPPED_RE = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")

    def check_naked_new(self):
        rule = "naked-new"
        for path in self.source_files():
            rel = str(path.relative_to(self.root))
            lines = path.read_text().splitlines()
            stripped = [self.strip_code(l) for l in lines]
            for i, code in enumerate(stripped):
                if re.search(r"\bnew\b", code):
                    if self.WRAPPED_RE.search(code) or (
                            i > 0 and self.WRAPPED_RE.search(stripped[i - 1])):
                        continue  # factory idiom: wrapped at the call site
                    if self.waived(rel, lines, i, rule):
                        continue
                    self.finding(rel, i + 1, rule,
                                 "naked `new` — wrap it in unique_ptr/"
                                 "shared_ptr on this or the previous line, "
                                 "or add a d3l-lint waiver with a reason")
                if re.search(r"\bdelete\b", code) and \
                        not re.search(r"=\s*(delete)\b", code):
                    if self.waived(rel, lines, i, rule):
                        continue
                    self.finding(rel, i + 1, rule,
                                 "naked `delete` — ownership belongs in a "
                                 "smart pointer")

    # ----- rule: raw-mutex --------------------------------------------------

    RAW_MUTEX_RE = re.compile(
        r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
        r"shared_timed_mutex|condition_variable|condition_variable_any)\b")

    def check_raw_mutex(self):
        rule = "raw-mutex"
        for path in self.source_files():
            rel = str(path.relative_to(self.root))
            if rel in RAW_MUTEX_EXEMPT:
                continue
            lines = path.read_text().splitlines()
            for i, line in enumerate(lines):
                code = self.strip_code(line)
                m = self.RAW_MUTEX_RE.search(code)
                if not m:
                    continue
                if self.waived(rel, lines, i, rule):
                    continue
                self.finding(
                    rel, i + 1, rule,
                    f"raw std::{m.group(1)} — use the capability-annotated "
                    "wrappers in src/common/thread_annotations.h so clang's "
                    "-Wthread-safety can check the locking")

    # ----- rule: reader-sections --------------------------------------------

    CONSUMED_RE = re.compile(
        r"D3L_RETURN_NOT_OK|D3L_ASSIGN_OR_RETURN|D3L_IGNORE_STATUS|"
        r"\breturn\b|=|\.CheckOK\(\)|EXPECT_|ASSERT_|\bif\b")

    def check_reader_sections(self):
        rule = "reader-sections"
        for path in self.source_files():
            rel = str(path.relative_to(self.root))
            if rel in READER_SECTION_EXEMPT:
                continue
            lines = path.read_text().splitlines()
            stripped = [self.strip_code(l) for l in lines]
            for i, code in enumerate(stripped):
                if re.search(r"\bOpenSection\s*\(", code):
                    # Delegating the whole Status to the caller is fine; the
                    # caller's EndSection pairing is checked in its own file.
                    if re.search(r"\breturn\b.*OpenSection", code):
                        continue
                    if any(re.search(r"\bEndSection\s*\(", s)
                           for s in stripped[i + 1:]):
                        continue
                    if self.waived(rel, lines, i, rule):
                        continue
                    self.finding(
                        rel, i + 1, rule,
                        "OpenSection with no later EndSection in this file — "
                        "the section checksum is never verified")
                if re.search(r"\bEndSection\s*\(", code) and \
                        not self.CONSUMED_RE.search(code):
                    if self.waived(rel, lines, i, rule):
                        continue
                    self.finding(
                        rel, i + 1, rule,
                        "EndSection result dropped — this is the checksum "
                        "verification; check it or D3L_IGNORE_STATUS it")

    # ----- driver -----------------------------------------------------------

    def run(self):
        self.check_frozen()
        self.check_naked_new()
        self.check_raw_mutex()
        self.check_reader_sections()
        return self.findings


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root to scan (default: cwd)")
    ap.add_argument("--manifest", default=None,
                    help="frozen-constants manifest "
                         "(default: <root>/tools/frozen_codes.json, falling "
                         "back to the manifest next to this script)")
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()
    if args.manifest:
        manifest = Path(args.manifest)
    else:
        manifest = root / "tools" / "frozen_codes.json"
        if not manifest.is_file():
            manifest = Path(__file__).resolve().parent / "frozen_codes.json"

    findings = Linter(root, manifest).run()
    for f in findings:
        print(f)
    if findings:
        print(f"d3l_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("d3l_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

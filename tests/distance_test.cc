#include "core/distance.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"

namespace d3l::core {
namespace {

// Builds numeric tables with controlled distributions plus textual anchors.
Table NumericTable(const std::string& name, const std::string& num_col_name,
                   double mean, double stddev, uint64_t seed, size_t rows = 120) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> data;
  for (size_t i = 0; i < rows; ++i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.2f", rng.Gaussian(mean, stddev));
    data.push_back({"entity_" + std::to_string(seed) + "_" + std::to_string(i), buf});
  }
  return testutil::MakeTable(name, {"Entity", num_col_name}, data);
}

class DistanceTest : public ::testing::Test {
 protected:
  DistanceTest() : indexes_(IndexOptions{}), cache_(&wem_) {}

  uint32_t Insert(const Table& t, size_t col, uint32_t table_id) {
    AttributeProfile p = BuildProfile(t, col, wem_, &cache_);
    p.ref = AttributeRef{table_id, static_cast<uint32_t>(col)};
    return indexes_.Insert(std::move(p));
  }

  SubwordHashModel wem_;
  D3LIndexes indexes_;
  CachingEmbedder cache_;
};

TEST_F(DistanceTest, GuardPassesViaNameIndex) {
  // Same attribute name ("Age") on both sides: IN guard passes, KS runs.
  Table a = NumericTable("a", "Age", 50, 10, 1);
  Table b = NumericTable("b", "Age", 50, 10, 2);
  Insert(b, 1, 1);
  indexes_.Finalize();

  AttributeProfile qa = BuildProfile(a, 1, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(qa);
  DistributionGuardContext guard;  // no subject info
  double dd = ComputeDistributionDistance(indexes_, qa, qs, 0, guard);
  EXPECT_LT(dd, 0.25);  // same distribution -> small KS
}

TEST_F(DistanceTest, GuardBlocksUnrelatedNumericPairs) {
  // Different names, different formats (ints vs decimals) and no subject
  // relation: Algorithm 2 returns 1 without computing KS.
  Rng rng(3);
  std::vector<std::vector<std::string>> rows_a;
  std::vector<std::vector<std::string>> rows_b;
  for (int i = 0; i < 100; ++i) {
    rows_a.push_back({"e" + std::to_string(i), std::to_string(rng.UniformInt(0, 99))});
    char buf[32];
    snprintf(buf, sizeof(buf), "%.4f", rng.UniformDouble(0, 1));
    rows_b.push_back({"x" + std::to_string(i), buf});
  }
  Table a = testutil::MakeTable("a", {"Entity", "Age"}, rows_a);
  Table b = testutil::MakeTable("b", {"Thing", "Fraction"}, rows_b);
  Insert(b, 1, 1);
  indexes_.Finalize();

  AttributeProfile qa = BuildProfile(a, 1, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(qa);
  DistributionGuardContext guard;
  EXPECT_DOUBLE_EQ(ComputeDistributionDistance(indexes_, qa, qs, 0, guard), 1.0);
}

TEST_F(DistanceTest, GuardPassesViaSubjectRelation) {
  // Names/formats differ ("Age" int vs "Years" decimal), but the two
  // tables share subject-attribute values: line 4 of Algorithm 2 passes.
  std::vector<std::vector<std::string>> rows_a;
  std::vector<std::vector<std::string>> rows_b;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    std::string entity = "shared_entity_" + std::to_string(i);
    rows_a.push_back({entity, std::to_string(rng.UniformInt(0, 99))});
    char buf[32];
    snprintf(buf, sizeof(buf), "%.1f", rng.UniformDouble(0, 99));
    rows_b.push_back({entity, buf});
  }
  Table a = testutil::MakeTable("a", {"Entity", "Age"}, rows_a);
  Table b = testutil::MakeTable("b", {"Member", "Years"}, rows_b);

  uint32_t b_subject = Insert(b, 0, 1);
  Insert(b, 1, 1);
  indexes_.Finalize();

  AttributeProfile qa = BuildProfile(a, 1, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(qa);
  AttributeProfile subj_prof = BuildProfile(a, 0, wem_, &cache_);
  AttributeSignatures subj_sigs = indexes_.Sign(subj_prof);

  DistributionGuardContext guard;
  guard.target_subject = &subj_sigs;
  guard.source_subject_id = b_subject;
  double dd = ComputeDistributionDistance(indexes_, qa, qs, 1, guard);
  EXPECT_LT(dd, 1.0);  // guard passed, KS computed
}

TEST_F(DistanceTest, NonNumericPairsAlwaysOne) {
  Table s1 = testutil::FigureS1();
  Insert(s1, 0, 0);
  indexes_.Finalize();
  AttributeProfile q = BuildProfile(testutil::FigureTarget(), 0, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(q);
  DistributionGuardContext guard;
  EXPECT_DOUBLE_EQ(ComputeDistributionDistance(indexes_, q, qs, 0, guard), 1.0);
}

TEST_F(DistanceTest, KsSeparatesDistributionsWhenGuardPasses) {
  Table a = NumericTable("a", "Age", 50, 10, 7);
  Table same = NumericTable("s", "Age", 50, 10, 8);
  Table shifted = NumericTable("d", "Age", 200, 10, 9);
  uint32_t same_id = Insert(same, 1, 1);
  uint32_t shifted_id = Insert(shifted, 1, 2);
  indexes_.Finalize();

  AttributeProfile qa = BuildProfile(a, 1, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(qa);
  DistributionGuardContext guard;
  double d_same = ComputeDistributionDistance(indexes_, qa, qs, same_id, guard);
  double d_shifted = ComputeDistributionDistance(indexes_, qa, qs, shifted_id, guard);
  EXPECT_LT(d_same, 0.25);
  // Same name => guard passes, but disjoint distributions => KS ~ 1.
  EXPECT_GT(d_shifted, 0.9);
}

TEST_F(DistanceTest, ComputeDistancesFillsAllFive) {
  Table s2 = testutil::FigureS2();
  for (size_t c = 0; c < s2.num_columns(); ++c) Insert(s2, c, 0);
  indexes_.Finalize();

  Table target = testutil::FigureTarget();
  AttributeProfile q = BuildProfile(target, 3, wem_, &cache_);  // Postcode
  AttributeSignatures qs = indexes_.Sign(q);
  DistributionGuardContext guard;
  DistanceVector d = ComputeDistances(indexes_, q, qs, 2, guard);  // S2.Postcode
  // Identical name: DN == 0; strong value overlap: DV < 1; same format.
  EXPECT_LT(d[0], 0.05);
  EXPECT_LT(d[1], 0.8);
  EXPECT_LT(d[2], 0.5);
  EXPECT_LE(d[3], 1.0);
  EXPECT_DOUBLE_EQ(d[4], 1.0);  // textual pair: no distribution evidence
}

TEST_F(DistanceTest, FastPathAgreesWithGuardedPath) {
  Table a = NumericTable("a", "Age", 50, 10, 21);
  Table b = NumericTable("b", "Age", 50, 10, 22);
  uint32_t id = Insert(b, 1, 1);
  indexes_.Finalize();

  AttributeProfile qa = BuildProfile(a, 1, wem_, &cache_);
  AttributeSignatures qs = indexes_.Sign(qa);
  DistributionGuardContext guard;
  double slow = ComputeDistributionDistance(indexes_, qa, qs, id, guard);
  PrecomputedGuards guards = BuildGuards(indexes_, qs, nullptr);
  double fast = ComputeDistributionDistanceFast(indexes_, qa, id, guards, UINT32_MAX);
  EXPECT_DOUBLE_EQ(slow, fast);
}

}  // namespace
}  // namespace d3l::core

// The unified serving API and its async front-end: SearchBackend over both
// engine kinds, DiscoveryService futures, and the result cache — hits must
// be byte-identical to direct D3LEngine::Search, eviction must be LRU,
// keys must separate options/index fingerprints, and concurrent Submit()
// hammering must be clean under ASan/TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchdata/synthetic_gen.h"
#include "core/query.h"
#include "serving/discovery_service.h"
#include "serving/result_cache.h"
#include "serving/search_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "serving/thread_pool.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

DataLake MakeLake() {
  DataLake lake;
  lake.AddTable(testutil::FigureS1()).CheckOK();
  lake.AddTable(testutil::FigureS2()).CheckOK();
  lake.AddTable(testutil::FigureS3()).CheckOK();
  for (int salt = 0; salt < 2; ++salt) {
    lake.AddTable(testutil::FillerColors(salt)).CheckOK();
    lake.AddTable(testutil::FillerInventory(salt)).CheckOK();
    lake.AddTable(testutil::FillerWeather(salt)).CheckOK();
  }
  return lake;
}

void ExpectIdenticalResults(const core::SearchResult& expected,
                            const core::SearchResult& actual,
                            const std::string& context) {
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size()) << context;
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    const core::TableMatch& e = expected.ranked[i];
    const core::TableMatch& a = actual.ranked[i];
    EXPECT_EQ(a.table_index, e.table_index) << context << " rank " << i;
    // Bitwise equality, not approximate: a cached or backend-served result
    // must reproduce the single engine's floating-point work exactly.
    EXPECT_EQ(a.distance, e.distance) << context << " rank " << i;
    EXPECT_EQ(a.evidence_distances, e.evidence_distances) << context << " rank " << i;
    ASSERT_EQ(a.pairs.size(), e.pairs.size()) << context << " rank " << i;
    for (size_t p = 0; p < e.pairs.size(); ++p) {
      EXPECT_EQ(a.pairs[p].target_column, e.pairs[p].target_column) << context;
      EXPECT_EQ(a.pairs[p].attribute_id, e.pairs[p].attribute_id) << context;
      EXPECT_EQ(a.pairs[p].d, e.pairs[p].d) << context;
    }
  }
  ASSERT_EQ(actual.candidate_alignments.size(), expected.candidate_alignments.size())
      << context;
  for (const auto& [table, aligns] : expected.candidate_alignments) {
    auto it = actual.candidate_alignments.find(table);
    ASSERT_NE(it, actual.candidate_alignments.end()) << context;
    EXPECT_EQ(it->second, aligns) << context << " table " << table;
  }
  ASSERT_EQ(actual.target_sigs.size(), expected.target_sigs.size()) << context;
  for (size_t c = 0; c < expected.target_sigs.size(); ++c) {
    EXPECT_EQ(actual.target_sigs[c].name_sig, expected.target_sigs[c].name_sig);
    EXPECT_EQ(actual.target_sigs[c].value_sig, expected.target_sigs[c].value_sig);
    EXPECT_EQ(actual.target_sigs[c].format_sig, expected.target_sigs[c].format_sig);
  }
}

// ------------------------------------------------------- options fingerprint

TEST(OptionsFingerprintTest, StableAcrossCopiesAndThreadCounts) {
  core::D3LOptions a;
  core::D3LOptions b;
  EXPECT_EQ(core::OptionsFingerprint(a), core::OptionsFingerprint(b));
  // Build parallelism never changes results, so it must not change the
  // fingerprint either.
  b.num_threads = 31;
  EXPECT_EQ(core::OptionsFingerprint(a), core::OptionsFingerprint(b));
  // Distinct seeds derive independent hashes of the same bytes.
  EXPECT_NE(core::OptionsFingerprint(a, 1), core::OptionsFingerprint(a, 2));
}

TEST(OptionsFingerprintTest, EveryRankingRelevantFieldChangesTheHash) {
  const core::D3LOptions base;
  const uint64_t fp = core::OptionsFingerprint(base);

  core::D3LOptions o = base;
  o.index.minhash_size = 128;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.index.lsh_threshold = 0.5;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.profile.qgram_q = 3;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.wem.num_buckets += 1;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.weights.w[0] += 0.125;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.candidates_per_attribute = 7;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
  o = base;
  o.enabled[2] = false;
  EXPECT_NE(core::OptionsFingerprint(o), fp);
}

// ------------------------------------------------------------- result cache

core::SearchResult ResultWithMarker(uint32_t marker) {
  core::SearchResult r;
  core::TableMatch m;
  m.table_index = marker;
  m.distance = 0.25;
  r.ranked.push_back(m);
  return r;
}

TEST(ResultCacheTest, LruEvictionUnderTinyCapacity) {
  serving::ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  auto key = [](uint64_t i) { return serving::CacheKey{i, i}; };
  cache.Insert(key(1), ResultWithMarker(1));
  cache.Insert(key(2), ResultWithMarker(2));

  core::SearchResult out;
  ASSERT_EQ(cache.Lookup(key(1), &out), serving::CacheLookup::kHit);  // bumps 1 to most-recent
  EXPECT_EQ(out.ranked[0].table_index, 1u);

  cache.Insert(key(3), ResultWithMarker(3));  // evicts 2 (LRU), not 1
  EXPECT_EQ(cache.Lookup(key(1), &out), serving::CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup(key(2), &out), serving::CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(key(3), &out), serving::CacheLookup::kHit);

  serving::ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  serving::ResultCache cache(0);
  cache.Insert({1, 1}, ResultWithMarker(1));
  core::SearchResult out;
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kMiss);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, KeysDifferingOnlyInHiDoNotCollide) {
  serving::ResultCache cache(8, /*num_shards=*/4);
  cache.Insert({42, 1}, ResultWithMarker(1));
  cache.Insert({42, 2}, ResultWithMarker(2));
  core::SearchResult out;
  ASSERT_EQ(cache.Lookup({42, 1}, &out), serving::CacheLookup::kHit);
  EXPECT_EQ(out.ranked[0].table_index, 1u);
  ASSERT_EQ(cache.Lookup({42, 2}, &out), serving::CacheLookup::kHit);
  EXPECT_EQ(out.ranked[0].table_index, 2u);
}

core::SearchResult PaddedResult(uint32_t marker, size_t pairs) {
  core::SearchResult r;
  core::TableMatch m;
  m.table_index = marker;
  m.distance = 0.25;
  m.evidence_distances.fill(1.0);
  m.pairs.resize(pairs);
  r.ranked.push_back(std::move(m));
  return r;
}

TEST(ResultCacheTest, ByteBudgetEvictsBeforeEntryCapacity) {
  const size_t one = serving::ApproxResultBytes(PaddedResult(0, 100));
  // Entry capacity would allow 16 results; the byte budget only two.
  serving::ResultCache cache(/*capacity=*/16, /*num_shards=*/1,
                             /*max_bytes=*/2 * one + one / 2);
  cache.Insert({1, 1}, PaddedResult(1, 100));
  cache.Insert({2, 2}, PaddedResult(2, 100));
  EXPECT_EQ(cache.GetStats().entries, 2u);
  cache.Insert({3, 3}, PaddedResult(3, 100));  // pushes bytes past the budget

  serving::ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.max_bytes);
  core::SearchResult out;
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kMiss);  // LRU victim
  EXPECT_EQ(cache.Lookup({2, 2}, &out), serving::CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup({3, 3}, &out), serving::CacheLookup::kHit);
}

TEST(ResultCacheTest, OversizedResultStillCachesAsOnlyEntry) {
  const size_t one = serving::ApproxResultBytes(PaddedResult(0, 400));
  serving::ResultCache cache(/*capacity=*/8, /*num_shards=*/1, /*max_bytes=*/one / 2);
  cache.Insert({1, 1}, PaddedResult(1, 400));
  // Larger than the whole byte slice, but the just-admitted entry is never
  // evicted: repeats of the one huge query still hit.
  EXPECT_EQ(cache.GetStats().entries, 1u);
  core::SearchResult out;
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kHit);
  EXPECT_EQ(out.ranked[0].table_index, 1u);

  cache.Insert({2, 2}, PaddedResult(2, 400));  // displaces the first
  serving::ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup({2, 2}, &out), serving::CacheLookup::kHit);
}

TEST(ResultCacheTest, NegativeEntriesRoundTripInTheSameLru) {
  serving::ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.InsertNegative({1, 1});
  core::SearchResult out;
  out.ranked.push_back(core::TableMatch{});  // must be left untouched by a negative hit
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kNegative);
  EXPECT_EQ(out.ranked.size(), 1u);

  serving::ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.negative_entries, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Negative entries are ordinary LRU citizens: newer inserts evict them.
  cache.Insert({2, 2}, PaddedResult(2, 1));
  cache.Insert({3, 3}, PaddedResult(3, 1));
  EXPECT_EQ(cache.Lookup({1, 1}, &out), serving::CacheLookup::kMiss);
  EXPECT_EQ(cache.GetStats().negative_entries, 0u);
}

// ---------------------------------------------------------- thread pool Post

TEST(ThreadPoolPostTest, RunsEveryPostedTask) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
    std::atomic<int> hits{0};
    {
      serving::ThreadPool pool(workers);
      for (int i = 0; i < 64; ++i) {
        pool.Post([&hits] { hits.fetch_add(1); });
      }
      // Destruction drains: every posted task must have run by now.
    }
    EXPECT_EQ(hits.load(), 64) << "workers=" << workers;
  }
}

TEST(ThreadPoolPostTest, TasksAndBatchesCoexist) {
  serving::ThreadPool pool(3);
  std::atomic<int> task_hits{0};
  std::vector<std::atomic<int>> batch_hits(101);
  for (int round = 0; round < 5; ++round) {
    pool.Post([&task_hits] { task_hits.fetch_add(1); });
    pool.ParallelFor(batch_hits.size(), [&](size_t i) { batch_hits[i].fetch_add(1); });
  }
  pool.ParallelFor(0, [](size_t) {});  // no-op batch is fine
  for (size_t i = 0; i < batch_hits.size(); ++i) {
    EXPECT_EQ(batch_hits[i].load(), 5) << "i=" << i;
  }
}

// Regression: a throw escaping a posted task used to reach the worker's
// stack frame and std::terminate the whole process, with every queued task
// (and any promise it owned) silently dropped. The pool must contain the
// throw at the task boundary and keep draining.
TEST(ThreadPoolPostTest, ThrowingTaskKeepsWorkersDrainingTheQueue) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
    std::atomic<int> hits{0};
    {
      serving::ThreadPool pool(workers);
      for (int i = 0; i < 32; ++i) {
        pool.Post([&hits, i] {
          if (i % 4 == 0) throw std::runtime_error("poisoned task");
          hits.fetch_add(1);
        });
      }
      // Destruction drains: the 24 well-behaved tasks must all have run
      // despite 8 throwers interleaved among them.
    }
    EXPECT_EQ(hits.load(), 24) << "workers=" << workers;
  }
}

TEST(ThreadPoolPostTest, TaskExceptionsAreCounted) {
  // Zero workers runs tasks inline, so the counter is settled by the time
  // Post returns — no drain race in the assertions.
  serving::ThreadPool pool(0);
  pool.Post([] { throw std::runtime_error("boom"); });
  EXPECT_EQ(pool.task_exceptions(), 1u);
  pool.Post([] {});
  EXPECT_EQ(pool.task_exceptions(), 1u);
  pool.Post([] { throw 42; });  // non-std exceptions are contained too
  EXPECT_EQ(pool.task_exceptions(), 2u);
}

// --------------------------------------------------------- backends + service

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = MakeLake();
    engine_.IndexLake(lake_).CheckOK();
    target_ = testutil::FigureTarget();
  }

  DataLake lake_;
  core::D3LEngine engine_;
  Table target_ = testutil::FigureTarget();
};

TEST_F(ServiceTest, EngineBackendMatchesDirectSearch) {
  serving::EngineBackend backend(&engine_, &lake_);
  auto direct = engine_.Search(target_, 5);
  ASSERT_TRUE(direct.ok());
  auto via_backend = backend.Search(target_, 5);
  ASSERT_TRUE(via_backend.ok());
  ExpectIdenticalResults(*direct, *via_backend, "engine backend");

  serving::BackendInfo info = backend.Info();
  EXPECT_EQ(info.kind, serving::BackendKind::kEngine);
  EXPECT_EQ(info.num_tables, lake_.size());
  EXPECT_EQ(info.options_fingerprint, core::OptionsFingerprint(engine_.options()));
  EXPECT_NE(info.index_fingerprint, 0u);

  EXPECT_EQ(backend.table_name(0), lake_.table(0).name());
  EXPECT_FALSE(backend.Profile(Table()).ok());
}

TEST_F(ServiceTest, ServiceHitIsByteIdenticalToDirectSearch) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 16;
  serving::DiscoveryService service(&backend, options);

  auto direct = engine_.Search(target_, 5);
  ASSERT_TRUE(direct.ok());

  serving::QueryRequest request{&target_, 5, std::nullopt, false};
  serving::QueryResponse miss = service.Query(request);
  ASSERT_TRUE(miss.result.ok());
  EXPECT_FALSE(miss.stats.cache_hit);
  ExpectIdenticalResults(*direct, *miss.result, "first query (miss)");

  serving::QueryResponse hit = service.Query(request);
  ASSERT_TRUE(hit.result.ok());
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_EQ(hit.stats.search_seconds, 0.0);  // retrieval skipped entirely
  ExpectIdenticalResults(*direct, *hit.result, "second query (hit)");

  // A typographically different target must not hit the first one's entry.
  Table other = testutil::FigureS3();
  serving::QueryResponse third = service.Query({&other, 5, std::nullopt, false});
  ASSERT_TRUE(third.result.ok());
  EXPECT_FALSE(third.stats.cache_hit);

  serving::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST_F(ServiceTest, CacheKeySeparatesKAndMaskAndOptions) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryService service(&backend);

  core::QueryTarget qt = engine_.ProfileTarget(target_);
  const std::array<bool, core::kNumEvidence> all = {true, true, true, true, true};
  const std::array<bool, core::kNumEvidence> no_name = {false, true, true, true, true};

  serving::CacheKey base_key = service.KeyFor(qt, 5, all);
  EXPECT_EQ(base_key, service.KeyFor(qt, 5, all));  // deterministic
  EXPECT_NE(base_key, service.KeyFor(qt, 6, all));
  EXPECT_NE(base_key, service.KeyFor(qt, 5, no_name));

  // A backend with different options (different fingerprint) keys the same
  // profiled target differently — options drift cannot serve stale results.
  core::D3LOptions other_options;
  other_options.candidates_per_attribute = 17;
  core::D3LEngine other_engine(other_options);
  other_engine.IndexLake(lake_).CheckOK();
  serving::EngineBackend other_backend(&other_engine, &lake_);
  serving::DiscoveryService other_service(&other_backend);
  EXPECT_NE(base_key, other_service.KeyFor(qt, 5, all));
}

TEST_F(ServiceTest, DifferentSnapshotsInvalidateEachOthersKeys) {
  fs::path dir = fs::temp_directory_path() / "d3l_service_test_snapshots";
  fs::create_directories(dir);
  const std::string path_a = (dir / "a.d3l").string();
  const std::string path_b = (dir / "b.d3l").string();
  engine_.SaveSnapshot(path_a).CheckOK();

  // A second engine over a lake with one extra table: different snapshot,
  // different index fingerprint, disjoint cache key spaces.
  DataLake bigger = MakeLake();
  bigger.AddTable(testutil::Filler(9)).CheckOK();
  core::D3LEngine engine_b;
  engine_b.IndexLake(bigger).CheckOK();
  engine_b.SaveSnapshot(path_b).CheckOK();

  auto backend_a = serving::EngineBackend::FromSnapshot(path_a);
  ASSERT_TRUE(backend_a.ok());
  auto backend_b = serving::EngineBackend::FromSnapshot(path_b);
  ASSERT_TRUE(backend_b.ok());

  serving::BackendInfo info_a = (*backend_a)->Info();
  serving::BackendInfo info_b = (*backend_b)->Info();
  EXPECT_EQ(info_a.options_fingerprint, info_b.options_fingerprint);
  EXPECT_NE(info_a.index_fingerprint, info_b.index_fingerprint);

  serving::DiscoveryService service_a(backend_a->get());
  serving::DiscoveryService service_b(backend_b->get());
  core::QueryTarget qt = engine_.ProfileTarget(target_);
  const std::array<bool, core::kNumEvidence> all = {true, true, true, true, true};
  EXPECT_NE(service_a.KeyFor(qt, 5, all), service_b.KeyFor(qt, 5, all));

  fs::remove_all(dir);
}

TEST_F(ServiceTest, EvictionUnderTinyServiceCache) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.inline_execution = true;  // deterministic ordering
  options.cache_capacity = 1;
  options.cache_shards = 1;
  serving::DiscoveryService service(&backend, options);

  Table t2 = testutil::FigureS2();
  (void)service.Query({&target_, 5, std::nullopt, false});  // miss, cached
  serving::QueryResponse r1 = service.Query({&target_, 5, std::nullopt, false});
  EXPECT_TRUE(r1.stats.cache_hit);
  (void)service.Query({&t2, 5, std::nullopt, false});  // miss, evicts target_
  serving::QueryResponse r2 = service.Query({&target_, 5, std::nullopt, false});
  EXPECT_FALSE(r2.stats.cache_hit);  // was evicted by t2
  EXPECT_GE(service.Stats().cache.evictions, 1u);
}

TEST_F(ServiceTest, BypassCacheNeverHitsNorInserts) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.inline_execution = true;
  serving::DiscoveryService service(&backend, options);

  (void)service.Query({&target_, 5, std::nullopt, true});
  serving::QueryResponse second = service.Query({&target_, 5, std::nullopt, true});
  EXPECT_FALSE(second.stats.cache_hit);
  EXPECT_EQ(service.Stats().cache.entries, 0u);
}

TEST_F(ServiceTest, EmptyRetrievalsHitTheNegativeCache) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.inline_execution = true;
  serving::DiscoveryService service(&backend, options);

  // An all-false evidence mask consults no index: the retrieval is
  // guaranteed empty, the canonical zero-candidate query.
  std::array<bool, core::kNumEvidence> none{};
  serving::QueryRequest request{&target_, 5, none, false};

  serving::QueryResponse first = service.Query(request);
  ASSERT_TRUE(first.result.ok());
  EXPECT_TRUE(first.result->ranked.empty());
  EXPECT_TRUE(first.result->candidate_alignments.empty());
  EXPECT_FALSE(first.stats.cache_hit);

  serving::QueryResponse second = service.Query(request);
  ASSERT_TRUE(second.result.ok());
  EXPECT_TRUE(second.stats.cache_hit);
  EXPECT_TRUE(second.stats.negative_hit);
  EXPECT_TRUE(second.result->ranked.empty());
  EXPECT_TRUE(second.result->candidate_alignments.empty());

  // The reconstructed empty result is byte-identical to the recomputed
  // one: profiles and signatures serialize to the same canonical bytes.
  const auto canonical = [](const core::SearchResult& r) {
    core::QueryTarget qt;
    qt.profiles = r.target_profiles;
    qt.sigs = r.target_sigs;
    return core::CanonicalTargetBytes(qt);
  };
  EXPECT_EQ(canonical(*first.result), canonical(*second.result));

  serving::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.cache.negative_entries, 1u);
  // Negative entries store a marker, not the (heavy) result payload.
  EXPECT_LT(stats.cache.bytes, serving::ApproxResultBytes(*first.result));

  // A real query through the same service still caches positively.
  serving::QueryResponse full = service.Query({&target_, 5, std::nullopt, false});
  ASSERT_TRUE(full.result.ok());
  EXPECT_FALSE(full.result->ranked.empty());
  EXPECT_EQ(service.Stats().cache.negative_entries, 1u);
  EXPECT_EQ(service.Stats().cache.entries, 2u);
}

TEST_F(ServiceTest, NullAndEmptyTargetsFailOnlyTheirFuture) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryService service(&backend);
  serving::QueryResponse null_response = service.Query({nullptr, 5, std::nullopt, false});
  EXPECT_FALSE(null_response.result.ok());
  Table empty;
  serving::QueryResponse empty_response =
      service.Query({&empty, 5, std::nullopt, false});
  EXPECT_FALSE(empty_response.result.ok());
  serving::QueryResponse good = service.Query({&target_, 5, std::nullopt, false});
  EXPECT_TRUE(good.result.ok());
  EXPECT_EQ(service.Stats().failed, 2u);
}

TEST_F(ServiceTest, SubmitAfterShutdownFailsFast) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryService service(&backend);
  service.Shutdown();
  serving::QueryResponse response = service.Query({&target_, 5, std::nullopt, false});
  EXPECT_FALSE(response.result.ok());
  EXPECT_TRUE(response.result.status().IsInvalidArgument());
  serving::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected);
}

TEST_F(ServiceTest, ConcurrentSubmitHammeringStaysConsistent) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 8;
  options.cache_shards = 2;
  serving::DiscoveryService service(&backend, options);

  auto direct = engine_.Search(target_, 5);
  ASSERT_TRUE(direct.ok());
  auto direct_s3 = engine_.Search(lake_.table(2), 5);
  ASSERT_TRUE(direct_s3.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::vector<std::thread> hammers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool use_s3 = (t + i) % 2 == 0;
        const Table* target = use_s3 ? &lake_.table(2) : &target_;
        serving::QueryResponse response =
            service.Submit({target, 5, std::nullopt, false}).get();
        if (!response.result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const core::SearchResult& expected = use_s3 ? *direct_s3 : *direct;
        if (response.result->ranked.size() != expected.ranked.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < expected.ranked.size(); ++r) {
          if (response.result->ranked[r].table_index != expected.ranked[r].table_index ||
              response.result->ranked[r].distance != expected.ranked[r].distance) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& h : hammers) h.join();
  EXPECT_EQ(failures.load(), 0);

  serving::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
  // With only two distinct queries and a warm cache, hits must dominate.
  EXPECT_GE(stats.cache_hits, stats.submitted / 2);
}

TEST_F(ServiceTest, ShardedBackendThroughServiceMatchesSingleEngine) {
  fs::path dir = fs::temp_directory_path() / "d3l_service_test_sharded";
  fs::create_directories(dir);

  serving::ShardingOptions shard_options;
  shard_options.num_shards = 3;
  auto report = serving::BuildShards(lake_, shard_options, (dir / "lake").string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto sharded = serving::ShardedEngine::Open(report->manifest_path);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  serving::BackendInfo info = (*sharded)->Info();
  EXPECT_EQ(info.kind, serving::BackendKind::kSharded);
  EXPECT_EQ(info.num_shards, 3u);
  EXPECT_NE(info.index_fingerprint, 0u);

  serving::DiscoveryServiceOptions options;
  options.num_threads = 2;
  serving::DiscoveryService service(sharded->get(), options);

  auto direct = engine_.Search(target_, 6);
  ASSERT_TRUE(direct.ok());
  serving::QueryResponse miss = service.Query({&target_, 6, std::nullopt, false});
  ASSERT_TRUE(miss.result.ok());
  EXPECT_FALSE(miss.stats.cache_hit);
  ExpectIdenticalResults(*direct, *miss.result, "sharded service miss");
  serving::QueryResponse hit = service.Query({&target_, 6, std::nullopt, false});
  ASSERT_TRUE(hit.result.ok());
  EXPECT_TRUE(hit.stats.cache_hit);
  ExpectIdenticalResults(*direct, *hit.result, "sharded service hit");

  fs::remove_all(dir);
}

// A backend whose Search throws instead of returning a Status — the worst
// kind of guest code. The service must convert the throw into a failed
// response for THAT caller and stay fully alive for everyone else.
class ThrowingBackend : public serving::SearchBackend {
 public:
  ThrowingBackend(const core::D3LEngine* engine, const DataLake* lake)
      : inner_(engine, lake) {}

  Result<core::QueryTarget> Profile(const Table& target) const override {
    return inner_.Profile(target);
  }
  Result<core::SearchResult> Search(
      core::QueryTarget, size_t,
      const std::array<bool, core::kNumEvidence>&) const override {
    throw std::runtime_error("backend blew up mid-search");
  }
  const core::D3LOptions& options() const override { return inner_.options(); }
  serving::BackendInfo Info() const override { return inner_.Info(); }
  std::string table_name(uint32_t t) const override { return inner_.table_name(t); }

 private:
  serving::EngineBackend inner_;
};

TEST_F(ServiceTest, ThrowingBackendFailsOnlyItsOwnQueries) {
  ThrowingBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.num_threads = 2;
  serving::DiscoveryService service(&backend, options);

  // Every future must resolve — before the Execute guard, the first throw
  // took down the process and stranded the rest.
  std::vector<std::future<serving::QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.Submit({&target_, 5, std::nullopt, false}));
  }
  for (auto& f : futures) {
    serving::QueryResponse response = f.get();
    EXPECT_FALSE(response.result.ok());
    EXPECT_TRUE(response.result.status().IsInternal())
        << response.result.status().ToString();
  }
  serving::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 8u);
}

TEST_F(ServiceTest, SwapBackendServesEachGenerationExactly) {
  // Generation A: the fixture engine. Generation B: a bigger lake indexed
  // separately — different results AND a different index fingerprint.
  auto backend_a = std::make_shared<serving::EngineBackend>(&engine_, &lake_);
  DataLake bigger = MakeLake();
  bigger.AddTable(testutil::FillerColors(7)).CheckOK();
  core::D3LEngine engine_b;
  engine_b.IndexLake(bigger).CheckOK();
  auto backend_b = std::make_shared<serving::EngineBackend>(&engine_b, &bigger);
  ASSERT_NE(backend_a->Info().index_fingerprint, backend_b->Info().index_fingerprint);

  serving::DiscoveryServiceOptions options;
  options.inline_execution = true;
  serving::DiscoveryService service(backend_a, options);

  auto direct_a = engine_.Search(target_, 5);
  auto direct_b = engine_b.Search(target_, 5);
  ASSERT_TRUE(direct_a.ok());
  ASSERT_TRUE(direct_b.ok());

  const serving::QueryRequest request{&target_, 5, std::nullopt, false};
  serving::QueryResponse first = service.Query(request);
  ASSERT_TRUE(first.result.ok());
  EXPECT_EQ(first.stats.index_fingerprint, backend_a->Info().index_fingerprint);
  ExpectIdenticalResults(*direct_a, *first.result, "generation A miss");

  service.SwapBackend(backend_b);
  EXPECT_EQ(service.Info().index_fingerprint, backend_b->Info().index_fingerprint);

  // The fingerprint flip must re-key the same request: no hit against A's
  // cached entry, and the answer is B's, byte for byte.
  serving::QueryResponse second = service.Query(request);
  ASSERT_TRUE(second.result.ok());
  EXPECT_FALSE(second.stats.cache_hit);
  EXPECT_EQ(second.stats.index_fingerprint, backend_b->Info().index_fingerprint);
  ExpectIdenticalResults(*direct_b, *second.result, "generation B miss");
  serving::QueryResponse third = service.Query(request);
  ASSERT_TRUE(third.result.ok());
  EXPECT_TRUE(third.stats.cache_hit);
  ExpectIdenticalResults(*direct_b, *third.result, "generation B hit");

  // Swapping BACK finds A's entry still keyed under A's fingerprint — the
  // generations' cache populations never mix in either direction.
  service.SwapBackend(backend_a);
  serving::QueryResponse fourth = service.Query(request);
  ASSERT_TRUE(fourth.result.ok());
  EXPECT_TRUE(fourth.stats.cache_hit);
  EXPECT_EQ(fourth.stats.index_fingerprint, backend_a->Info().index_fingerprint);
  ExpectIdenticalResults(*direct_a, *fourth.result, "generation A hit after swap back");
}

TEST_F(ServiceTest, EvidenceMaskRequestMatchesMaskedSearch) {
  serving::EngineBackend backend(&engine_, &lake_);
  serving::DiscoveryServiceOptions options;
  options.inline_execution = true;
  serving::DiscoveryService service(&backend, options);

  const std::array<bool, core::kNumEvidence> name_only = {true, false, false, false,
                                                          false};
  auto direct = engine_.Search(target_, 5, name_only);
  ASSERT_TRUE(direct.ok());
  serving::QueryResponse response = service.Query({&target_, 5, name_only, false});
  ASSERT_TRUE(response.result.ok());
  ExpectIdenticalResults(*direct, *response.result, "masked query");
  // Masked and unmasked queries occupy distinct cache entries.
  serving::QueryResponse unmasked = service.Query({&target_, 5, std::nullopt, false});
  ASSERT_TRUE(unmasked.result.ok());
  EXPECT_FALSE(unmasked.stats.cache_hit);
}

}  // namespace
}  // namespace d3l

#include "core/query.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace d3l::core {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = testutil::FigureLake(6);
    engine_ = std::make_unique<D3LEngine>();
    ASSERT_TRUE(engine_->IndexLake(lake_).ok());
  }
  DataLake lake_;
  std::unique_ptr<D3LEngine> engine_;
};

TEST_F(QueryTest, SearchBeforeIndexFails) {
  D3LEngine fresh;
  EXPECT_FALSE(fresh.Search(testutil::FigureTarget(), 3).ok());
}

TEST_F(QueryTest, DoubleIndexFails) {
  EXPECT_TRUE(engine_->IndexLake(lake_).IsInvalidArgument());
}

TEST_F(QueryTest, EmptyTargetFails) {
  Table empty("empty");
  EXPECT_FALSE(engine_->Search(empty, 3).ok());
}

TEST_F(QueryTest, RelatedSourcesRankAboveFillers) {
  auto res = engine_->Search(testutil::FigureTarget(), 3);
  ASSERT_TRUE(res.ok());
  ASSERT_GE(res->ranked.size(), 3u);
  // The three GP tables (all related to the target by value/name overlap)
  // must occupy the top ranks, ahead of every color filler.
  const std::set<std::string> gp = {"s1_gp_practices", "s2_gp_funding",
                                    "s3_local_gps"};
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(gp.count(lake_.table(res->ranked[i].table_index).name()))
        << "rank " << i << " is " << lake_.table(res->ranked[i].table_index).name();
  }
  // Distances ascend.
  for (size_t i = 1; i < res->ranked.size(); ++i) {
    EXPECT_LE(res->ranked[i - 1].distance, res->ranked[i].distance);
  }
}

TEST_F(QueryTest, DistancesWithinUnitRange) {
  auto res = engine_->Search(testutil::FigureTarget(), 10);
  ASSERT_TRUE(res.ok());
  for (const TableMatch& m : res->ranked) {
    EXPECT_GE(m.distance, 0.0);
    EXPECT_LE(m.distance, 1.0);
    for (double d : m.evidence_distances) {
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST_F(QueryTest, KTruncatesResults) {
  auto res1 = engine_->Search(testutil::FigureTarget(), 1);
  ASSERT_TRUE(res1.ok());
  EXPECT_EQ(res1->ranked.size(), 1u);
  auto res_all = engine_->Search(testutil::FigureTarget(), 100);
  ASSERT_TRUE(res_all.ok());
  EXPECT_GE(res_all->ranked.size(), 2u);
}

TEST_F(QueryTest, AlignmentsRecordTargetColumns) {
  auto res = engine_->Search(testutil::FigureTarget(), 3);
  ASSERT_TRUE(res.ok());
  const TableMatch& top = res->ranked[0];
  ASSERT_FALSE(top.pairs.empty());
  for (const PairDistances& p : top.pairs) {
    EXPECT_LT(p.target_column, testutil::FigureTarget().num_columns());
    EXPECT_LT(p.attribute_id, engine_->indexes().num_attributes());
  }
  // candidate_alignments covers at least the ranked tables.
  EXPECT_TRUE(res->candidate_alignments.count(top.table_index));
}

TEST_F(QueryTest, SingleEvidenceAblationStillRanksRelatedFirst) {
  D3LOptions opts;
  opts.enabled = {false, true, false, false, false};  // V only
  D3LEngine v_engine(opts);
  ASSERT_TRUE(v_engine.IndexLake(lake_).ok());
  auto res = v_engine.Search(testutil::FigureTarget(), 2);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  std::string top = lake_.table(res->ranked[0].table_index).name();
  EXPECT_TRUE(top == "s1_gp_practices" || top == "s2_gp_funding" ||
              top == "s3_local_gps")
      << top;
}

TEST_F(QueryTest, NameOnlyAblationUsesNames) {
  D3LOptions opts;
  opts.enabled = {true, false, false, false, false};  // N only
  D3LEngine n_engine(opts);
  ASSERT_TRUE(n_engine.IndexLake(lake_).ok());
  // S2 shares "Practice", "City" and "Postcode" with the target verbatim.
  auto res = n_engine.Search(testutil::FigureTarget(), 1);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_EQ(lake_.table(res->ranked[0].table_index).name(), "s2_gp_funding");
}

TEST_F(QueryTest, BuildStatsPopulated) {
  const IndexBuildStats& s = engine_->build_stats();
  EXPECT_EQ(s.num_attributes, engine_->indexes().num_attributes());
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_GE(s.profile_seconds, 0.0);
}

TEST_F(QueryTest, SubjectColumnsDetectedForAllTables) {
  for (uint32_t t = 0; t < lake_.size(); ++t) {
    EXPECT_GE(engine_->subject_column(t), 0) << lake_.table(t).name();
    EXPECT_NE(engine_->subject_attribute_id(t), UINT32_MAX);
  }
}

TEST_F(QueryTest, SearchIsDeterministic) {
  auto a = engine_->Search(testutil::FigureTarget(), 5);
  auto b = engine_->Search(testutil::FigureTarget(), 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ranked.size(), b->ranked.size());
  for (size_t i = 0; i < a->ranked.size(); ++i) {
    EXPECT_EQ(a->ranked[i].table_index, b->ranked[i].table_index);
    EXPECT_DOUBLE_EQ(a->ranked[i].distance, b->ranked[i].distance);
  }
}

TEST_F(QueryTest, SingleThreadedIndexMatchesParallel) {
  D3LOptions opts;
  opts.num_threads = 1;
  D3LEngine serial(opts);
  ASSERT_TRUE(serial.IndexLake(lake_).ok());
  auto a = serial.Search(testutil::FigureTarget(), 5);
  auto b = engine_->Search(testutil::FigureTarget(), 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ranked.size(), b->ranked.size());
  for (size_t i = 0; i < a->ranked.size(); ++i) {
    EXPECT_EQ(a->ranked[i].table_index, b->ranked[i].table_index);
    EXPECT_DOUBLE_EQ(a->ranked[i].distance, b->ranked[i].distance);
  }
}

}  // namespace
}  // namespace d3l::core

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace d3l {
namespace {

TEST(TokenizerTest, SplitsAtPunctuationIntoParts) {
  // The paper's Example 2: "18 Portland Street, M1 3BE" splits into two
  // parts at the comma.
  auto parts = SplitParts("18 Portland Street, M1 3BE");
  ASSERT_EQ(parts.size(), 2u);
  ASSERT_EQ(parts[0].words.size(), 3u);
  EXPECT_EQ(parts[0].words[0], "18");
  EXPECT_EQ(parts[0].words[1], "portland");
  EXPECT_EQ(parts[0].words[2], "street");
  ASSERT_EQ(parts[1].words.size(), 2u);
  EXPECT_EQ(parts[1].words[0], "m1");
  EXPECT_EQ(parts[1].words[1], "3be");
}

TEST(TokenizerTest, LowercasesWords) {
  auto toks = Tokenize("Hello WORLD");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
}

TEST(TokenizerTest, MultiplePunctuationKinds) {
  auto parts = SplitParts("a.b;c:d/e-f");
  EXPECT_EQ(parts.size(), 6u);
}

TEST(TokenizerTest, ConsecutiveDelimitersYieldNoEmptyParts) {
  auto parts = SplitParts("a,,  ,b");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].words[0], "a");
  EXPECT_EQ(parts[1].words[0], "b");
}

TEST(TokenizerTest, EmptyAndWhitespaceInputs) {
  EXPECT_TRUE(SplitParts("").empty());
  EXPECT_TRUE(SplitParts("   ").empty());
  EXPECT_TRUE(SplitParts(",;:").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, DigitsAreWords) {
  auto toks = Tokenize("08:00-18:00");
  // ':' and '-' are delimiters: four numeric words.
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "08");
  EXPECT_EQ(toks[3], "00");
}

TEST(TokenizerTest, IsPartDelimiterClassification) {
  EXPECT_TRUE(IsPartDelimiter(','));
  EXPECT_TRUE(IsPartDelimiter('/'));
  EXPECT_TRUE(IsPartDelimiter('-'));
  EXPECT_TRUE(IsPartDelimiter('@'));
  EXPECT_FALSE(IsPartDelimiter('a'));
  EXPECT_FALSE(IsPartDelimiter('7'));
  EXPECT_FALSE(IsPartDelimiter(' '));
}

}  // namespace
}  // namespace d3l

// Cross-module property tests: invariants that must hold for arbitrary
// (seeded) inputs, swept with parameterized suites.
#include <gtest/gtest.h>

#include "benchdata/domains.h"
#include "benchdata/realish_gen.h"
#include "benchdata/synthetic_gen.h"
#include "common/random.h"
#include "core/query.h"
#include "eval/metrics.h"
#include "table/csv.h"
#include "text/format.h"
#include "text/qgram.h"
#include "text/tokenizer.h"

namespace d3l {
namespace {

// ---------------------------------------------------------------------------
// CSV round-trip holds for arbitrary cell content.
// ---------------------------------------------------------------------------
class CsvRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripSweep, ArbitraryCellsSurviveRoundTrip) {
  Rng rng(GetParam());
  const std::string alphabet = "abz09,\"\n\r ;|'\t\\.-";
  Table t("fuzz");
  size_t cols = 1 + rng.Uniform(5);
  for (size_t c = 0; c < cols; ++c) {
    ASSERT_TRUE(t.AddColumn("c" + std::to_string(c)).ok());
  }
  size_t rows = rng.Uniform(20);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      std::string cell;
      size_t len = rng.Uniform(12);
      for (size_t i = 0; i < len; ++i) cell += alphabet[rng.Uniform(alphabet.size())];
      row.push_back(std::move(cell));
    }
    ASSERT_TRUE(t.AddRow(row).ok());
  }
  auto back = ReadCsvString(WriteCsvString(t), "fuzz");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_columns(), t.num_columns());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(back->column(c).cell(r), t.column(c).cell(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Text substrate invariants over generated values.
// ---------------------------------------------------------------------------
class TextInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextInvariantSweep, TokensLowercaseAndDelimiterFree) {
  const auto& reg = benchdata::DomainRegistry::Instance();
  Rng rng(GetParam());
  for (uint32_t d : reg.TextDomains()) {
    for (int i = 0; i < 5; ++i) {
      std::string v = reg.GenerateValue(d, 0, &rng);
      for (const std::string& tok : Tokenize(v)) {
        ASSERT_FALSE(tok.empty());
        for (char c : tok) {
          EXPECT_FALSE(IsPartDelimiter(c)) << v << " -> " << tok;
          EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c))) << tok;
          EXPECT_FALSE(std::isspace(static_cast<unsigned char>(c))) << tok;
        }
      }
      // Formats contain only class symbols and '+'.
      for (char c : FormatOf(v)) {
        EXPECT_TRUE(c == 'C' || c == 'U' || c == 'L' || c == 'N' || c == 'A' ||
                    c == 'P' || c == '+')
            << FormatOf(v);
      }
      // q-grams of the value's own name-normalization are within length q.
      for (const std::string& g : QGrams(v, 4)) {
        EXPECT_LE(g.size(), 4u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextInvariantSweep, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// Engine invariants over generated lakes of varying shapes.
// ---------------------------------------------------------------------------
struct LakeShape {
  size_t clusters;
  uint64_t seed;
};

class EngineInvariantSweep : public ::testing::TestWithParam<LakeShape> {};

TEST_P(EngineInvariantSweep, SearchInvariantsHold) {
  benchdata::RealishOptions opts;
  opts.num_clusters = GetParam().clusters;
  opts.tables_per_cluster_min = 3;
  opts.tables_per_cluster_max = 5;
  opts.rows_min = 30;
  opts.rows_max = 60;
  opts.seed = GetParam().seed;
  auto gen = benchdata::GenerateRealish(opts);
  ASSERT_TRUE(gen.ok());

  core::D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(gen->lake).ok());

  const Table& target = gen->lake.table(0);
  auto res = engine.Search(target, 10);
  ASSERT_TRUE(res.ok());

  // Invariant 1: ranking sorted ascending, distances in [0, 1].
  for (size_t i = 0; i < res->ranked.size(); ++i) {
    const auto& m = res->ranked[i];
    EXPECT_GE(m.distance, 0.0);
    EXPECT_LE(m.distance, 1.0);
    if (i > 0) {
      EXPECT_GE(m.distance, res->ranked[i - 1].distance);
    }
    // Invariant 2: every ranked table has at least one alignment row.
    EXPECT_FALSE(m.pairs.empty());
    // Invariant 3: Eq. 1 aggregates bounded by the pair distances.
    for (size_t t = 0; t < core::kNumEvidence; ++t) {
      double lo = 1.0;
      double hi = 0.0;
      for (const auto& p : m.pairs) {
        lo = std::min(lo, p.d[t]);
        hi = std::max(hi, p.d[t]);
      }
      EXPECT_GE(m.evidence_distances[t], lo - 1e-9);
      EXPECT_LE(m.evidence_distances[t], hi + 1e-9);
    }
  }
  // Invariant 4: a lake table used as target retrieves itself first with
  // near-zero distance.
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_EQ(res->ranked[0].table_index, 0u);
  EXPECT_LT(res->ranked[0].distance, 0.2);
  // Invariant 5: candidate_alignments covers every ranked table.
  for (const auto& m : res->ranked) {
    EXPECT_TRUE(res->candidate_alignments.count(m.table_index));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, EngineInvariantSweep,
                         ::testing::Values(LakeShape{4, 1}, LakeShape{8, 2},
                                           LakeShape{12, 3}, LakeShape{6, 99}));

// ---------------------------------------------------------------------------
// Metric sanity over ground truth: our own ranking from the ground truth
// itself must score perfectly; a reversed one, poorly.
// ---------------------------------------------------------------------------
TEST(MetricPropertyTest, OracleRankingScoresPerfectly) {
  benchdata::SyntheticOptions opts;
  opts.num_base_tables = 4;
  opts.derived_per_base = 5;
  opts.seed = 17;
  auto gen = benchdata::GenerateSynthetic(opts);
  ASSERT_TRUE(gen.ok());
  const std::string target = gen->lake.table(0).name();

  std::vector<std::string> oracle;
  std::vector<std::string> inverse;
  for (const Table& t : gen->lake.tables()) {
    if (t.name() == target) continue;
    if (gen->truth.TablesRelated(target, t.name())) {
      oracle.push_back(t.name());
    } else {
      inverse.push_back(t.name());
    }
  }
  ASSERT_FALSE(oracle.empty());
  auto good = eval::EvaluateTopK(oracle, target, gen->truth);
  EXPECT_DOUBLE_EQ(good.precision, 1.0);
  EXPECT_DOUBLE_EQ(good.recall, 1.0);
  auto bad = eval::EvaluateTopK(
      std::vector<std::string>(inverse.begin(),
                               inverse.begin() + std::min<size_t>(5, inverse.size())),
      target, gen->truth);
  EXPECT_DOUBLE_EQ(bad.precision, 0.0);
  EXPECT_DOUBLE_EQ(bad.recall, 0.0);
}

// ---------------------------------------------------------------------------
// Dirt transforms: idempotent at zero probability, bounded edit otherwise.
// ---------------------------------------------------------------------------
class DirtSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirtSweep, EditsAreBounded) {
  Rng rng(GetParam());
  benchdata::DirtOptions dirt;
  dirt.null_prob = 0;  // keep content for the length check
  for (int i = 0; i < 50; ++i) {
    std::string original = "Blackfriars Medical Practice";
    std::string dirty = benchdata::DirtyValue(original, dirt, &rng);
    // One typo and one abbreviation can shrink the string, but never below
    // half, and never grow it by more than a couple of characters.
    EXPECT_GE(dirty.size(), original.size() / 2);
    EXPECT_LE(dirty.size(), original.size() + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirtSweep, ::testing::Values(3, 7, 31));

}  // namespace
}  // namespace d3l

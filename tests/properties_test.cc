// Cross-module property tests: invariants that must hold for arbitrary
// (seeded) inputs, swept with parameterized suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "benchdata/domains.h"
#include "benchdata/realish_gen.h"
#include "benchdata/synthetic_gen.h"
#include "common/random.h"
#include "core/query.h"
#include "embedding/vector_ops.h"
#include "eval/metrics.h"
#include "lsh/minhash.h"
#include "lsh/simhash.h"
#include "table/csv.h"
#include "text/format.h"
#include "text/qgram.h"
#include "text/tokenizer.h"

namespace d3l {
namespace {

// ---------------------------------------------------------------------------
// CSV round-trip holds for arbitrary cell content.
// ---------------------------------------------------------------------------
class CsvRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripSweep, ArbitraryCellsSurviveRoundTrip) {
  Rng rng(GetParam());
  const std::string alphabet = "abz09,\"\n\r ;|'\t\\.-";
  Table t("fuzz");
  size_t cols = 1 + rng.Uniform(5);
  for (size_t c = 0; c < cols; ++c) {
    ASSERT_TRUE(t.AddColumn("c" + std::to_string(c)).ok());
  }
  size_t rows = rng.Uniform(20);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      std::string cell;
      size_t len = rng.Uniform(12);
      for (size_t i = 0; i < len; ++i) cell += alphabet[rng.Uniform(alphabet.size())];
      row.push_back(std::move(cell));
    }
    ASSERT_TRUE(t.AddRow(row).ok());
  }
  auto back = ReadCsvString(WriteCsvString(t), "fuzz");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_columns(), t.num_columns());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(back->column(c).cell(r), t.column(c).cell(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Text substrate invariants over generated values.
// ---------------------------------------------------------------------------
class TextInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextInvariantSweep, TokensLowercaseAndDelimiterFree) {
  const auto& reg = benchdata::DomainRegistry::Instance();
  Rng rng(GetParam());
  for (uint32_t d : reg.TextDomains()) {
    for (int i = 0; i < 5; ++i) {
      std::string v = reg.GenerateValue(d, 0, &rng);
      for (const std::string& tok : Tokenize(v)) {
        ASSERT_FALSE(tok.empty());
        for (char c : tok) {
          EXPECT_FALSE(IsPartDelimiter(c)) << v << " -> " << tok;
          EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c))) << tok;
          EXPECT_FALSE(std::isspace(static_cast<unsigned char>(c))) << tok;
        }
      }
      // Formats contain only class symbols and '+'.
      for (char c : FormatOf(v)) {
        EXPECT_TRUE(c == 'C' || c == 'U' || c == 'L' || c == 'N' || c == 'A' ||
                    c == 'P' || c == '+')
            << FormatOf(v);
      }
      // q-grams of the value's own name-normalization are within length q.
      for (const std::string& g : QGrams(v, 4)) {
        EXPECT_LE(g.size(), 4u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextInvariantSweep, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// Engine invariants over generated lakes of varying shapes.
// ---------------------------------------------------------------------------
struct LakeShape {
  size_t clusters;
  uint64_t seed;
};

class EngineInvariantSweep : public ::testing::TestWithParam<LakeShape> {};

TEST_P(EngineInvariantSweep, SearchInvariantsHold) {
  benchdata::RealishOptions opts;
  opts.num_clusters = GetParam().clusters;
  opts.tables_per_cluster_min = 3;
  opts.tables_per_cluster_max = 5;
  opts.rows_min = 30;
  opts.rows_max = 60;
  opts.seed = GetParam().seed;
  auto gen = benchdata::GenerateRealish(opts);
  ASSERT_TRUE(gen.ok());

  core::D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(gen->lake).ok());

  const Table& target = gen->lake.table(0);
  auto res = engine.Search(target, 10);
  ASSERT_TRUE(res.ok());

  // Invariant 1: ranking sorted ascending, distances in [0, 1].
  for (size_t i = 0; i < res->ranked.size(); ++i) {
    const auto& m = res->ranked[i];
    EXPECT_GE(m.distance, 0.0);
    EXPECT_LE(m.distance, 1.0);
    if (i > 0) {
      EXPECT_GE(m.distance, res->ranked[i - 1].distance);
    }
    // Invariant 2: every ranked table has at least one alignment row.
    EXPECT_FALSE(m.pairs.empty());
    // Invariant 3: Eq. 1 aggregates bounded by the pair distances.
    for (size_t t = 0; t < core::kNumEvidence; ++t) {
      double lo = 1.0;
      double hi = 0.0;
      for (const auto& p : m.pairs) {
        lo = std::min(lo, p.d[t]);
        hi = std::max(hi, p.d[t]);
      }
      EXPECT_GE(m.evidence_distances[t], lo - 1e-9);
      EXPECT_LE(m.evidence_distances[t], hi + 1e-9);
    }
  }
  // Invariant 4: a lake table used as target retrieves itself first with
  // near-zero distance.
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_EQ(res->ranked[0].table_index, 0u);
  EXPECT_LT(res->ranked[0].distance, 0.2);
  // Invariant 5: candidate_alignments covers every ranked table.
  for (const auto& m : res->ranked) {
    EXPECT_TRUE(res->candidate_alignments.count(m.table_index));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, EngineInvariantSweep,
                         ::testing::Values(LakeShape{4, 1}, LakeShape{8, 2},
                                           LakeShape{12, 3}, LakeShape{6, 99}));

// ---------------------------------------------------------------------------
// Metric sanity over ground truth: our own ranking from the ground truth
// itself must score perfectly; a reversed one, poorly.
// ---------------------------------------------------------------------------
TEST(MetricPropertyTest, OracleRankingScoresPerfectly) {
  benchdata::SyntheticOptions opts;
  opts.num_base_tables = 4;
  opts.derived_per_base = 5;
  opts.seed = 17;
  auto gen = benchdata::GenerateSynthetic(opts);
  ASSERT_TRUE(gen.ok());
  const std::string target = gen->lake.table(0).name();

  std::vector<std::string> oracle;
  std::vector<std::string> inverse;
  for (const Table& t : gen->lake.tables()) {
    if (t.name() == target) continue;
    if (gen->truth.TablesRelated(target, t.name())) {
      oracle.push_back(t.name());
    } else {
      inverse.push_back(t.name());
    }
  }
  ASSERT_FALSE(oracle.empty());
  auto good = eval::EvaluateTopK(oracle, target, gen->truth);
  EXPECT_DOUBLE_EQ(good.precision, 1.0);
  EXPECT_DOUBLE_EQ(good.recall, 1.0);
  auto bad = eval::EvaluateTopK(
      std::vector<std::string>(inverse.begin(),
                               inverse.begin() + std::min<size_t>(5, inverse.size())),
      target, gen->truth);
  EXPECT_DOUBLE_EQ(bad.precision, 0.0);
  EXPECT_DOUBLE_EQ(bad.recall, 0.0);
}

// ---------------------------------------------------------------------------
// LSH estimator statistics (fixed seeds, deterministic).
// ---------------------------------------------------------------------------

// Two overlapping string sets with an exactly known Jaccard similarity;
// returns the Jaccard the construction actually achieves after rounding.
double MakeSetsWithJaccard(size_t universe, double jaccard, uint64_t seed,
                           std::vector<std::string>* a, std::vector<std::string>* b) {
  // |A| = |B| = n, |A ∩ B| = m  =>  J = m / (2n - m). Solve m for given J.
  size_t n = universe;
  size_t m = static_cast<size_t>(std::round(2.0 * n * jaccard / (1.0 + jaccard)));
  a->clear();
  b->clear();
  for (size_t i = 0; i < n; ++i) {
    a->push_back("elem_" + std::to_string(seed) + "_" + std::to_string(i));
  }
  for (size_t i = n - m; i < 2 * n - m; ++i) {
    b->push_back("elem_" + std::to_string(seed) + "_" + std::to_string(i));
  }
  return static_cast<double>(m) / static_cast<double>(2 * n - m);
}

// MinHash is an unbiased Jaccard estimator with stddev sqrt(J(1-J)/k): the
// mean absolute error over many set pairs must shrink as the signature grows
// and stay within a few standard deviations at the paper's k = 256.
TEST(LshEstimatorPropertyTest, MinHashErrorShrinksWithSignatureSize) {
  const size_t kUniverse = 400;
  const double kJaccard = 0.4;
  const int kPairs = 20;

  double truth = kJaccard;
  std::vector<double> mean_errors;
  for (size_t k : {16u, 64u, 256u}) {
    double err_sum = 0;
    for (int p = 0; p < kPairs; ++p) {
      MinHasher hasher(k, /*seed=*/1000 + p);
      std::vector<std::string> a, b;
      truth = MakeSetsWithJaccard(kUniverse, kJaccard, /*seed=*/50 + p, &a, &b);
      err_sum += std::abs(EstimateJaccard(hasher.Sign(a), hasher.Sign(b)) - truth);
    }
    mean_errors.push_back(err_sum / kPairs);
  }
  // Monotone improvement across a 16x signature growth (small slack for the
  // finite sample of pairs).
  EXPECT_LT(mean_errors[2], mean_errors[0] + 1e-9);
  EXPECT_LE(mean_errors[1], mean_errors[0] + 0.02);
  EXPECT_LE(mean_errors[2], mean_errors[1] + 0.02);
  // At k=256, stddev = sqrt(J(1-J)/256) ~= 0.031; mean |err| of an unbiased
  // estimator is ~0.8 stddev, so 2 stddev is a generous deterministic bound.
  EXPECT_LT(mean_errors[2], 2.0 * std::sqrt(truth * (1 - truth) / 256.0));
}

TEST(LshEstimatorPropertyTest, MinHashIdenticalAndDisjointSetsAreExact) {
  MinHasher hasher(128, /*seed=*/7);
  std::vector<std::string> a, b;
  MakeSetsWithJaccard(200, 0.5, /*seed=*/3, &a, &b);
  EXPECT_DOUBLE_EQ(EstimateJaccard(hasher.Sign(a), hasher.Sign(a)), 1.0);
  std::vector<std::string> c;
  for (size_t i = 0; i < 200; ++i) c.push_back("other_" + std::to_string(i));
  // Disjoint sets collide on a component only by hash accident: near zero.
  EXPECT_LT(EstimateJaccard(hasher.Sign(a), hasher.Sign(c)), 0.05);
}

// SimHash: P[bit agreement] = 1 - theta/pi, so the cosine estimated from the
// Hamming distance must track the true cosine within the binomial bound.
TEST(LshEstimatorPropertyTest, SimHashCosineEstimateWithinBound) {
  const size_t kDim = 64;
  const size_t kBits = 256;
  const int kVectorPairs = 20;
  Rng rng(4242);

  double worst_err = 0;
  for (int p = 0; p < kVectorPairs; ++p) {
    RandomProjectionHasher hasher(kDim, kBits, /*seed=*/900 + p);
    Vec a(kDim), noise(kDim);
    for (size_t i = 0; i < kDim; ++i) {
      a[i] = static_cast<float>(rng.Gaussian());
      noise[i] = static_cast<float>(rng.Gaussian());
    }
    // b = a rotated toward noise by a varying mix: covers cosines in (0, 1).
    double mix = 0.1 + 0.8 * (p / static_cast<double>(kVectorPairs));
    Vec b(kDim);
    for (size_t i = 0; i < kDim; ++i) {
      b[i] = static_cast<float>((1 - mix) * a[i] + mix * noise[i]);
    }
    double truth = CosineSimilarity(a, b);
    double est = EstimateCosine(hasher.Sign(a), hasher.Sign(b));
    worst_err = std::max(worst_err, std::abs(est - truth));
  }
  // Hamming/bits has stddev <= 0.5/sqrt(256) ~= 0.031; through the cosine
  // transform the error stays well under 0.2 for every pair.
  EXPECT_LT(worst_err, 0.2);
}

TEST(LshEstimatorPropertyTest, SimHashHammingSymmetricAndSelfZero) {
  RandomProjectionHasher hasher(32, 128, /*seed=*/5);
  Rng rng(99);
  Vec a(32), b(32);
  for (size_t i = 0; i < 32; ++i) {
    a[i] = static_cast<float>(rng.Gaussian());
    b[i] = static_cast<float>(rng.Gaussian());
  }
  auto sa = hasher.Sign(a);
  auto sb = hasher.Sign(b);
  EXPECT_EQ(HammingDistance(sa, sa), 0u);
  EXPECT_EQ(HammingDistance(sa, sb), HammingDistance(sb, sa));
  EXPECT_DOUBLE_EQ(EstimateCosine(sa, sa), 1.0);
}

// ---------------------------------------------------------------------------
// Dirt transforms: idempotent at zero probability, bounded edit otherwise.
// ---------------------------------------------------------------------------
class DirtSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirtSweep, EditsAreBounded) {
  Rng rng(GetParam());
  benchdata::DirtOptions dirt;
  dirt.null_prob = 0;  // keep content for the length check
  for (int i = 0; i < 50; ++i) {
    std::string original = "Blackfriars Medical Practice";
    std::string dirty = benchdata::DirtyValue(original, dirt, &rng);
    // One typo and one abbreviation can shrink the string, but never below
    // half, and never grow it by more than a couple of characters.
    EXPECT_GE(dirty.size(), original.size() / 2);
    EXPECT_LE(dirty.size(), original.size() + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirtSweep, ::testing::Values(3, 7, 31));

}  // namespace
}  // namespace d3l

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/descriptive.h"
#include "stats/empirical.h"
#include "stats/ks.h"

namespace d3l {
namespace {

TEST(KsTest, IdenticalSamplesGiveZero) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsTest, DisjointSamplesGiveOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsTest, EmptySampleGivesOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2}, {}), 1.0);
}

TEST(KsTest, SymmetricAndUnsortedInputs) {
  std::vector<double> a = {5, 1, 3, 2, 4};
  std::vector<double> b = {2.5, 6, 0.5, 3.5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, b), KsStatistic(b, a));
}

TEST(KsTest, SameDistributionSmallStatistic) {
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.Gaussian(10, 2));
  for (int i = 0; i < 2000; ++i) b.push_back(rng.Gaussian(10, 2));
  double d = KsStatistic(a, b);
  EXPECT_LT(d, 0.06);
  // The same-distribution p-value should not be tiny.
  EXPECT_GT(KsPValue(d, a.size(), b.size()), 0.01);
}

TEST(KsTest, DifferentDistributionsLargeStatistic) {
  Rng rng(2);
  std::vector<double> age;
  std::vector<double> money;
  for (int i = 0; i < 1000; ++i) age.push_back(rng.UniformDouble(0, 100));
  for (int i = 0; i < 1000; ++i) money.push_back(std::exp(rng.Gaussian(8, 1.2)));
  double d = KsStatistic(age, money);
  EXPECT_GT(d, 0.5);
  EXPECT_LT(KsPValue(d, age.size(), money.size()), 1e-6);
}

TEST(KsTest, ShiftDetected) {
  Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1000; ++i) a.push_back(rng.Gaussian(0, 1));
  for (int i = 0; i < 1000; ++i) b.push_back(rng.Gaussian(1.0, 1));
  EXPECT_GT(KsStatistic(a, b), 0.3);
}

TEST(EmpiricalTest, CdfAndCcdf) {
  EmpiricalDistribution d({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(1), 0.25);
  EXPECT_DOUBLE_EQ(d.Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(4), 1.0);
  EXPECT_DOUBLE_EQ(d.Ccdf(1), 0.75);
  EXPECT_DOUBLE_EQ(d.Ccdf(4), 0.0);
}

TEST(EmpiricalTest, EmptyDistribution) {
  EmpiricalDistribution d({});
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.Ccdf(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
}

TEST(EmpiricalTest, Quantiles) {
  EmpiricalDistribution d({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(d.Quantile(0), 1);
  EXPECT_DOUBLE_EQ(d.Quantile(1), 5);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 3);
  EXPECT_DOUBLE_EQ(d.min(), 1);
  EXPECT_DOUBLE_EQ(d.max(), 5);
}

TEST(EmpiricalTest, SmallestValueGetsLargestCcdfWeight) {
  // The Eq. 2 intuition: the smallest distance has the highest weight.
  EmpiricalDistribution d({0.1, 0.5, 0.9});
  EXPECT_GT(d.Ccdf(0.1), d.Ccdf(0.5));
  EXPECT_GT(d.Ccdf(0.5), d.Ccdf(0.9));
}

TEST(DescriptiveTest, Summarize) {
  Summary s = Summarize({2, 4, 6});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4);
  EXPECT_DOUBLE_EQ(s.min, 2);
  EXPECT_DOUBLE_EQ(s.max, 6);
  EXPECT_NEAR(s.variance, 8.0 / 3.0, 1e-12);
  Summary empty = Summarize({});
  EXPECT_EQ(empty.count, 0u);
}

TEST(DescriptiveTest, JaccardAndOverlap) {
  EXPECT_DOUBLE_EQ(JaccardFromCounts(2, 4, 4), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(JaccardFromCounts(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficientFromCounts(2, 2, 10), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficientFromCounts(0, 0, 5), 0.0);
}

}  // namespace
}  // namespace d3l
